#!/usr/bin/env bash
# Bench-regression gate: rerun the kernel and inference benchmarks and
# compare their medians against the committed bench-baseline.json,
# failing if any metric regressed more than the baseline's threshold
# (25%). After an intentional perf change, refresh the pinned medians
# with:
#
#   cargo run --release -p mb-bench --bin bench_gate -- --update
#
# Usage: scripts/bench_gate.sh

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -p mb-bench --bin bench_kernels
cargo run --release -p mb-bench --bin bench_inference
# Open-loop serving latency: only sub-saturation rungs are gated (p50
# at low offered QPS is stable on one core; past-saturation rungs are
# for the EXPERIMENTS.md curve, not the gate).
cargo run --release -p mb-bench --bin loadgen -- --open-loop --qps 40,160 --duration-ms 1500
# Sharded-store retrieval: streamed store build + deterministic IVF vs
# brute force (recall@64 floor asserted inside the bin).
cargo run --release -p mb-bench --bin bench_retrieval
cargo run --release -p mb-bench --bin bench_gate
