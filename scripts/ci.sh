#!/usr/bin/env bash
# The CI gate, runnable locally with byte-for-byte the same steps as
# .github/workflows/ci.yml. The drift test (tests/ci_drift.rs) compares
# `scripts/ci.sh --list-steps` against the workflow's `- run:` lines,
# so the two cannot silently diverge.
#
# The workspace is hermetic: every dependency is a path crate, so all
# steps work with networking disabled (cargo never touches a registry).
#
# Usage: scripts/ci.sh              # run the full gate
#        scripts/ci.sh --list-steps # print the step commands, one per line

set -euo pipefail
cd "$(dirname "$0")/.."

# One "name|command" entry per step, in run order. The command half is
# what --list-steps prints and what the drift test matches against the
# workflow, so edits here and in ci.yml must stay in lockstep.
STEPS=(
    "fmt|cargo fmt --all --check"
    "clippy|cargo clippy --workspace --all-targets -- -D warnings"
    # In-repo static analysis: panic-freedom, determinism, lock
    # discipline, unsafe gate, tape-free serving, plus the
    # interprocedural panic-reach / det-taint / lock-across-call /
    # alloc-in-hot-loop rules. Fails on any finding not in
    # lint-baseline.txt — the baseline only ever shrinks.
    "lint|cargo run -q -p mb-lint"
    # Incremental lint cache contract: two runs against a fresh cache
    # must report byte-identical --json, the second fully cached and no
    # slower than the first.
    "lint-cache|scripts/lint_cache_check.sh"
    "build|cargo build --release --workspace"
    "test|cargo test -q --workspace"
    # Bench smoke: the probe harness exercises the full pipeline
    # (worldgen -> synthetic supervision -> two-stage training -> eval)
    # at bench scale on one domain.
    "bench-smoke|cargo run --release -p mb-bench --bin probe -- Lego"
    # Fault-injection smoke: kill training at every step, resume from
    # the surviving checkpoints, and require bit-identical results. The
    # exhaustive sweep is #[ignore]d in the default (debug) suite and
    # run here in release.
    "fault-smoke|cargo test --release -q -p mb-core --test resume -- --include-ignored"
    # Kernel bench smoke: times the cache-blocked matmul against the
    # naive reference (and asserts bit-identity between them before
    # timing); writes target/experiments/BENCH_kernels.json.
    "kernel-smoke|cargo run --release -p mb-bench --bin bench_kernels"
    # Thread-count determinism: linker outputs, meta weights, and
    # trained parameters must be bit-identical at 1/2/4 worker threads.
    # Run in release so the blocked (not fallback) kernels are pinned.
    "thread-determinism|cargo test --release -q -p mb-core --test thread_determinism"
    # Serve smoke: train a small model, serve it, and drive it with the
    # load generator — 100% 2xx under load, non-empty /metrics, and a
    # graceful shutdown that exits 0.
    "serve-smoke|scripts/serve_smoke.sh"
    # Chaos serve: drive the server through a seed-replayable
    # fault-injecting proxy (slow loris, torn replies, aborts, stalled
    # clients) with a hot model swap racing the traffic, and overload
    # it past its deadline budget — it must never wedge, never emit a
    # torn 200, shed fast 503s with Retry-After, and recover healthy.
    "chaos-serve|cargo test --release -q -p mb-serve --test chaos -- --include-ignored"
    # Retrieval smoke: stream a small sharded entity store to disk,
    # build the deterministic IVF index over it, and assert recall@64
    # >= 0.95 plus a byte-identical rebuild at 1 and 3 workers.
    "retrieval-smoke|cargo run --release -q -p mb-bench --bin bench_retrieval -- --smoke"
    # Bench regression: rerun the kernel + inference benchmarks and fail
    # if any median regressed >25% vs the committed bench-baseline.json.
    "bench-regression|scripts/bench_gate.sh"
)

if [[ "${1:-}" == "--list-steps" ]]; then
    for step in "${STEPS[@]}"; do
        echo "${step#*|}"
    done
    exit 0
fi

names=()
seconds=()
for step in "${STEPS[@]}"; do
    name="${step%%|*}"
    cmd="${step#*|}"
    echo
    echo "==> [$name] $cmd"
    start=$SECONDS
    bash -c "$cmd"
    names+=("$name")
    seconds+=("$((SECONDS - start))")
done

echo
echo "stage timing:"
total=0
for i in "${!names[@]}"; do
    printf '  %-20s %4ss\n' "${names[$i]}" "${seconds[$i]}"
    total=$((total + seconds[i]))
done
printf '  %-20s %4ss\n' "total" "$total"

echo
echo "CI gate passed."
