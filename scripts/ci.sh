#!/usr/bin/env bash
# The CI gate, runnable locally and byte-for-byte the same steps as
# .github/workflows/ci.yml — keep the two in sync.
#
# The workspace is hermetic: every dependency is a path crate, so all
# steps work with networking disabled (cargo never touches a registry).
#
# Usage: scripts/ci.sh

set -euo pipefail
cd "$(dirname "$0")/.."

run() {
    echo
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check
run cargo clippy --workspace --all-targets -- -D warnings
# In-repo static analysis: panic-freedom, determinism, lock
# discipline, unsafe gate. Fails on any finding not in
# lint-baseline.txt — the baseline only ever shrinks.
run cargo run -q -p mb-lint
run cargo build --release --workspace
run cargo test -q --workspace
# Bench smoke: the probe harness exercises the full pipeline
# (worldgen -> synthetic supervision -> two-stage training -> eval)
# at bench scale on one domain.
run cargo run --release -p mb-bench --bin probe -- Lego
# Fault-injection smoke: kill training at every step, resume from the
# surviving checkpoints, and require bit-identical results. The
# exhaustive sweep is #[ignore]d in the default (debug) suite and run
# here in release.
run cargo test --release -q -p mb-core --test resume -- --include-ignored
# Kernel bench smoke: times the cache-blocked matmul against the naive
# reference (and asserts bit-identity between them before timing);
# writes target/experiments/BENCH_kernels.json.
run cargo run --release -p mb-bench --bin bench_kernels
# Thread-count determinism: linker outputs, meta weights, and trained
# parameters must be bit-identical at 1/2/4 worker threads. Run in
# release so the blocked (not fallback) kernels are what is pinned.
run cargo test --release -q -p mb-core --test thread_determinism
# Serve smoke: train a small model, serve it, and drive it with the
# load generator — 100% 2xx under load, non-empty /metrics, and a
# graceful shutdown that exits 0.
run scripts/serve_smoke.sh

echo
echo "CI gate passed."
