#!/usr/bin/env bash
# CI check for the mb-lint incremental cache (DESIGN.md §15): two
# consecutive runs against a fresh cache file must produce
# byte-identical --json reports, the second run must be served entirely
# from the cache, and the cached run must not be slower than the cold
# one. Findings themselves are gated by the `lint` step; here only the
# cache contract is under test, so exit 1 (findings present) is
# tolerated as long as both runs agree.

set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
cache="$workdir/lint-cache.txt"

run() { # $1 = cold|warm; prints the timing stats line
    local code=0
    cargo run -q -p mb-lint -- --json --timing --cache "$cache" \
        >"$workdir/$1.json" 2>"$workdir/$1.err" || code=$?
    if [[ $code -ge 2 ]]; then
        cat "$workdir/$1.err" >&2
        echo "lint-cache: mb-lint exited $code on the $1 run" >&2
        exit 1
    fi
    grep -o 'files=[0-9]* cached=[0-9]* analysis_ms=[0-9]*' "$workdir/$1.err"
}

field() { # $1 = stats line, $2 = key
    echo "$1" | tr ' ' '\n' | grep "^$2=" | cut -d= -f2
}

cold_stats=$(run cold)
warm_stats=$(run warm)

if ! cmp -s "$workdir/cold.json" "$workdir/warm.json"; then
    echo "lint-cache: cold and warm --json reports differ:" >&2
    diff "$workdir/cold.json" "$workdir/warm.json" | head >&2
    exit 1
fi

files=$(field "$warm_stats" files)
cached=$(field "$warm_stats" cached)
cold_ms=$(field "$cold_stats" analysis_ms)
warm_ms=$(field "$warm_stats" analysis_ms)

if [[ "$cached" != "$files" ]]; then
    echo "lint-cache: warm run analyzed files it should have cached ($cached/$files)" >&2
    exit 1
fi
if ((warm_ms > cold_ms)); then
    echo "lint-cache: warm run slower than cold (${warm_ms}ms > ${cold_ms}ms)" >&2
    exit 1
fi

echo "lint-cache: ok — byte-identical reports, $cached/$files cached, ${cold_ms}ms cold / ${warm_ms}ms warm"
