#!/usr/bin/env bash
# Serve smoke test, called from scripts/ci.sh and the serve-smoke CI
# job: train a small model, serve it on an ephemeral port, drive it
# with the closed-loop load generator, and require
#
#   - 100% 2xx responses under concurrent load (loadgen --strict),
#   - a non-empty /metrics endpoint (loadgen --check-metrics),
#   - a graceful drain: after POST /admin/shutdown the server process
#     must exit 0 on its own.
#
# Usage: scripts/serve_smoke.sh

set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

cargo run --release -q --bin metablink -- train --seed 7 --scale small \
    --domain Lego --method blink --source seed --out "$workdir/model"

cargo run --release -q --bin metablink -- serve --model "$workdir/model" \
    --addr 127.0.0.1:0 --addr-file "$workdir/addr.txt" &
server_pid=$!

# loadgen polls the addr file until the server has bound its port.
cargo run --release -q -p mb-bench --bin loadgen -- \
    --addr-file "$workdir/addr.txt" --requests 80 --concurrency 4 \
    --strict --check-metrics --shutdown

wait "$server_pid"
echo "serve smoke passed (graceful shutdown exited 0)."
