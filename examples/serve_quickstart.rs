//! Serving a linking model over HTTP — start `mb-serve` on an
//! ephemeral port with a tiny model, send a `POST /link` request over a
//! raw `TcpStream`, print the answer, and shut the server down
//! gracefully.
//!
//! The server fuses concurrent requests into one forward pass
//! (adaptive micro-batching), so the responses here are bit-identical
//! to what `TwoStageLinker::link` would return in-process.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use metablink::common::Rng;
use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method, TargetTask};
use metablink::datagen::{World, WorldConfig};
use metablink::encoders::input::build_vocab;
use metablink::serve::{json, ServeModel, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn main() {
    // A tiny synthetic world with a quick BLINK training pass on the
    // seed mentions; `metablink serve` does the same from a saved
    // checkpoint directory.
    println!("building a tiny world and training a model …");
    let world = World::generate(WorldConfig::tiny(42));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let seed_mentions = {
        let mut rng = Rng::seed_from_u64(9);
        metablink::datagen::mentions::generate_mentions(&world, &domain, 40, &mut rng).mentions
    };
    let syn = metablink::nlg::SynDataset {
        domain: domain.name.clone(),
        exact: Vec::new(),
        rewritten: Vec::new(),
    };
    let task = TargetTask {
        world: &world,
        vocab: &vocab,
        domain: &domain,
        syn: &syn,
        syn_star: &syn,
        seed: &seed_mentions,
        general: &[],
    };
    let trained = train(&task, Method::Blink, DataSource::Seed, &MetaBlinkConfig::fast_test());
    let model = ServeModel::new(
        vocab,
        world.kb().clone(),
        world.kb().domain_entities(domain.id).to_vec(),
        trained.bi,
        trained.cross,
        trained.linker_cfg,
        domain.name.clone(),
    );

    // Port 0 asks the OS for an ephemeral port; the entity index is
    // precomputed before `start` returns.
    let server = Server::start(model, ServerConfig::default()).expect("start server");
    let addr = server.addr();
    println!("serving {} on http://{addr}", domain.name);

    // Borrow a real mention surface from the world so the query is
    // linkable.
    let mention = {
        let mut rng = Rng::seed_from_u64(3);
        metablink::datagen::mentions::generate_mentions(&world, &domain, 1, &mut rng)
            .mentions
            .remove(0)
    };
    let body = format!(
        "{{\"surface\":{},\"left\":{},\"right\":{},\"k\":3}}",
        json::escape(&mention.surface),
        json::escape(&mention.left),
        json::escape(&mention.right),
    );
    println!("\nPOST /link {body}");

    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST /link HTTP/1.1\r\nhost: example\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");

    let mut reader = BufReader::new(stream);
    let mut status = String::new();
    reader.read_line(&mut status).expect("status line");
    println!("{}", status.trim_end());
    let mut response = String::new();
    reader.read_to_string(&mut response).expect("read response");
    let payload = response.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or(&response);

    let doc = json::parse(payload.as_bytes()).expect("valid JSON");
    match doc.get("candidates") {
        Some(json::Json::Arr(items)) => {
            println!("\ntop candidates:");
            for c in items {
                println!(
                    "  {:<30} {:>8.3}",
                    c.get("title").and_then(|t| t.as_str()).unwrap_or("?").to_string(),
                    c.get("score").and_then(|s| s.as_f64()).unwrap_or(f64::NAN),
                );
            }
        }
        other => println!("unexpected response: {other:?}"),
    }

    // Graceful shutdown: close the queue, drain in-flight batches,
    // join every server thread.
    println!("\nshutting down …");
    server.shutdown();
    println!("done");
}
