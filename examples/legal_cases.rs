//! Few-shot linking in a custom specialised dictionary — the paper's
//! motivating "legal cases" scenario: a domain-specific entity
//! dictionary with no alias tables, no popularity statistics, and only
//! a handful of labeled examples.
//!
//! This example builds a world whose target domain stands in for a
//! legal-case dictionary, shows that name matching and seed-only
//! training fail, and that the weak-supervision + meta-learning
//! pipeline recovers most of the lost accuracy.
//!
//! ```sh
//! cargo run --release --example legal_cases
//! ```

use metablink::core::baselines::name_matching_accuracy;
use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use metablink::datagen::world::{DomainRole, DomainSpec, WorldConfig};
use metablink::eval::{ContextConfig, ExperimentContext};

fn main() {
    // A bespoke world: two rich source domains (general news-like
    // corpora) and one "Legal Cases" target dictionary. The large gap
    // (0.7) models legal jargon that barely overlaps ordinary text.
    let world_cfg = WorldConfig {
        seed: 2026,
        general_vocab: 400,
        ambiguity_rate: 0.15,
        domains: vec![
            DomainSpec::new("News Archive", DomainRole::Train, 400, 600, 0.35),
            DomainSpec::new("Business Register", DomainRole::Train, 400, 600, 0.35),
            DomainSpec::new("Legal Cases", DomainRole::Test, 350, 400, 0.70),
        ],
    };
    println!("building the Legal Cases benchmark …");
    let ctx = ExperimentContext::build_with_world(ContextConfig::small(2026), world_cfg);
    let domain = "Legal Cases";
    let task = ctx.task(domain);
    let split = ctx.dataset.split(domain);
    println!(
        "dictionary: {} cases; labeled examples: {}; unlabeled test mentions: {}",
        ctx.dataset.world().kb().domain_entities(task.domain.id).len(),
        split.seed.len(),
        split.test.len()
    );

    let cfg = MetaBlinkConfig::fast_test();
    let nm = name_matching_accuracy(ctx.dataset.world().kb(), task.domain.id, &split.test);
    println!("\n{:<28} U.Acc = {nm:>6.2}%", "Name Matching");

    for (label, method, source) in [
        ("BLINK (50 labeled only)", Method::Blink, DataSource::Seed),
        ("BLINK (synthetic only)", Method::Blink, DataSource::Syn),
        ("MetaBLINK (syn + 50 seed)", Method::MetaBlink, DataSource::SynSeed),
    ] {
        let m = train(&task, method, source, &cfg).evaluate(&task, &split.test);
        println!(
            "{:<28} U.Acc = {:>6.2}%  (R@{} {:.2}%, N.Acc {:.2}%)",
            label, m.unnormalized_acc, cfg.linker.k, m.recall_at_k, m.normalized_acc
        );
    }
    println!(
        "\nThe few labeled cases alone cannot train the linker; the synthetic\n\
              supervision generated from the case descriptions plus the\n\
              meta-learning reweighting recovers usable accuracy."
    );
}
