//! Crash-safe training: kill a MetaBLINK run mid-flight, resume it from
//! its checkpoints, and verify the result is bit-identical to a run
//! that was never interrupted.
//!
//! The demo runs entirely against in-memory storage with an injected
//! kill so it is deterministic and leaves nothing on disk; the same
//! `CheckpointManager` API works on a real directory via
//! `CheckpointManager::on_disk` — see the commented footer.
//!
//! ```sh
//! cargo run --release --example resume_training
//! ```

use mb_fault::KillAt;
use metablink::common::storage::{MemStorage, NoBudget};
use metablink::common::Error;
use metablink::core::checkpoint::{CheckpointConfig, CheckpointManager};
use metablink::core::pipeline::{train, train_resumable, DataSource, MetaBlinkConfig, Method};
use metablink::eval::{ContextConfig, ExperimentContext};
use std::path::PathBuf;

fn main() {
    println!("building benchmark …");
    let ctx = ExperimentContext::build(ContextConfig::small(5));
    let domain = "YuGiOh";
    let task = ctx.task(domain);
    let cfg = MetaBlinkConfig::fast_test();

    // The reference: an uninterrupted, unmanaged run.
    println!("training the uninterrupted reference run …");
    let reference = train(&task, Method::MetaBlink, DataSource::SynSeed, &cfg);

    // Checkpoint policy: save at every stage boundary and every 10 meta
    // steps, keep the last 3 generations.
    let mut ck_cfg = CheckpointConfig::new(PathBuf::from("ckpts"));
    ck_cfg.every_n_steps = 10;

    // A manager whose step budget kills the process at tick 40 — deep
    // inside the bi-encoder's meta-training phase.
    let storage = MemStorage::new();
    let mut dying = CheckpointManager::with_parts(
        ck_cfg.clone(),
        Box::new(storage.clone()),
        Box::new(KillAt::new(40)),
    );
    println!("training with an injected kill at step 40 …");
    match train_resumable(&task, Method::MetaBlink, DataSource::SynSeed, &cfg, &mut dying) {
        Err(Error::Aborted(msg)) => println!("  run died as planned: {msg}"),
        Err(other) => panic!("expected the injected kill, got {other}"),
        Ok(_) => panic!("expected the injected kill, but the run finished"),
    }
    println!("  {} checkpoints were written before the crash", dying.saves());

    // "Restart the process": a fresh manager over the same storage
    // finds the newest intact checkpoint and resumes from it.
    let mut recovering =
        CheckpointManager::with_parts(ck_cfg, Box::new(storage.clone()), Box::new(NoBudget));
    println!("resuming from the surviving checkpoints …");
    let resumed =
        train_resumable(&task, Method::MetaBlink, DataSource::SynSeed, &cfg, &mut recovering)
            .expect("resume completes");

    // The resumed run must equal the never-killed run bit for bit.
    let identical =
        reference.bi.params().iter().zip(resumed.bi.params().iter()).all(|((_, a), (_, b))| {
            a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
        }) && reference.cross.params().iter().zip(resumed.cross.params().iter()).all(
            |((_, a), (_, b))| {
                a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits())
            },
        ) && reference.bi_meta_stats == resumed.bi_meta_stats
            && reference.cross_meta_stats == resumed.cross_meta_stats;
    assert!(identical, "resumed run diverged from the reference");
    println!("resumed run is bit-identical to the uninterrupted reference ✔");

    let test = &ctx.dataset.split(domain).test;
    let m = resumed.evaluate(&task, test);
    println!(
        "\nresumed model on {} test mentions: R@{} {:.2}%  U.Acc {:.2}%",
        m.count, cfg.linker.k, m.recall_at_k, m.unnormalized_acc
    );

    // On a real machine, persist to disk instead:
    //   let mgr_cfg = CheckpointConfig::new("my_run/ckpts".into());
    //   let mut mgr = CheckpointManager::on_disk(mgr_cfg);
    //   train_resumable(&task, Method::MetaBlink, DataSource::SynSeed, &cfg, &mut mgr)?;
    // Re-running the same command after a crash resumes automatically.
}
