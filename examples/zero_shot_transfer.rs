//! Zero-shot domain transfer: no labeled in-domain data at all.
//!
//! The seed set is *mined* instead of labeled (Section VI-C): quality
//! rules filter the synthetic pairs, and the self-match heuristic turns
//! disambiguation-phrase titles into exact labeled mentions found in
//! their own descriptions.
//!
//! ```sh
//! cargo run --release --example zero_shot_transfer
//! ```

use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use metablink::core::seed::{mine_zero_shot_seed, self_match_seeds, SeedFilterConfig};
use metablink::eval::{ContextConfig, ExperimentContext};

fn main() {
    println!("building benchmark …");
    let ctx = ExperimentContext::build(ContextConfig::small(5));
    let domain = "YuGiOh";
    let world = ctx.dataset.world();
    let dom = world.domain(domain);

    // Mine the seed.
    let self_matched = self_match_seeds(world.kb(), world.kb().domain_entities(dom.id));
    println!(
        "self-match mining found {} exact in-description mentions; examples:",
        self_matched.len()
    );
    for s in self_matched.iter().take(3) {
        println!(
            "  {:?} inside the description of {:?}",
            s.surface,
            world.kb().entity(s.entity).title
        );
    }
    let mined = mine_zero_shot_seed(
        world.kb(),
        &ctx.vocab,
        world.kb().domain_entities(dom.id),
        &ctx.syn_of(domain).rewritten,
        &SeedFilterConfig::default(),
        50,
    );
    println!("mined seed set: {} mentions (self-match + filtered synthetic)", mined.len());

    // Train with the mined seed against the labeled-seed upper bound.
    let cfg = MetaBlinkConfig::fast_test();
    let test = &ctx.dataset.split(domain).test;

    let task_zero = ctx.task_with_seed(domain, &mined);
    let zero = train(&task_zero, Method::MetaBlink, DataSource::GeneralSynSeed, &cfg)
        .evaluate(&task_zero, test);

    let task_few = ctx.task(domain); // the real 50-sample seed
    let few = train(&task_few, Method::MetaBlink, DataSource::GeneralSynSeed, &cfg)
        .evaluate(&task_few, test);

    let baseline =
        train(&task_zero, Method::Blink, DataSource::General, &cfg).evaluate(&task_zero, test);

    println!("\nU.Acc on {} unlabeled test mentions:", test.len());
    println!("  BLINK, general-domain training only  {:>6.2}%", baseline.unnormalized_acc);
    println!("  MetaBLINK, mined (zero-shot) seed    {:>6.2}%", zero.unnormalized_acc);
    println!("  MetaBLINK, labeled (few-shot) seed   {:>6.2}%", few.unnormalized_acc);
    println!("\nmined seeds recover much of the few-shot gain without any labeling.");
}
