//! Linking mentions of internal company projects — the paper's second
//! motivating scenario: a project dictionary whose entries are known by
//! informal nicknames in chat/issue text (Low Overlap mentions), with
//! no alias table to fall back on.
//!
//! The example inspects the synthetic-supervision pipeline itself:
//! how exact matching seeds the data, how rewriting diversifies the
//! surfaces, and what the meta-learning selects.
//!
//! ```sh
//! cargo run --release --example company_projects
//! ```

use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use metablink::datagen::world::{DomainRole, DomainSpec, WorldConfig};
use metablink::eval::{ContextConfig, ExperimentContext};
use metablink::text::OverlapCategory;

fn main() {
    let world_cfg = WorldConfig {
        seed: 77,
        general_vocab: 400,
        ambiguity_rate: 0.2,
        domains: vec![
            DomainSpec::new("Public Docs", DomainRole::Train, 400, 600, 0.3),
            DomainSpec::new("Eng Wiki", DomainRole::Train, 400, 600, 0.3),
            DomainSpec::new("Company Projects", DomainRole::Test, 300, 400, 0.65),
        ],
    };
    println!("building the Company Projects benchmark …");
    let ctx = ExperimentContext::build_with_world(ContextConfig::small(77), world_cfg);
    let domain = "Company Projects";
    let task = ctx.task(domain);
    let split = ctx.dataset.split(domain);

    // How do people actually mention projects? Mostly informally.
    let counts = ctx.dataset.mentions(domain).category_counts();
    let total: usize = counts.iter().sum();
    println!("\nmention surface forms in project chatter:");
    for (cat, c) in OverlapCategory::all().iter().zip(counts) {
        println!("  {:<20} {:>5.1}%", cat.label(), 100.0 * c as f64 / total as f64);
    }

    // The synthetic-supervision pipeline.
    let syn = task.syn;
    println!(
        "\nsynthetic supervision: {} exact-match pairs → {} rewritten pairs \
         ({:.1}% weak-label noise)",
        syn.exact.len(),
        syn.rewritten.len(),
        100.0 * syn.noise_rate()
    );
    println!("example rewrites (title → generated mention):");
    for p in syn.rewritten.iter().take(4) {
        let e = ctx.dataset.world().kb().entity(p.mention.entity);
        println!("  {:<28} → {:?}", e.title, p.mention.surface);
    }

    // Train and inspect the meta-learning selection statistics.
    let cfg = MetaBlinkConfig::fast_test();
    let model = train(&task, Method::MetaBlink, DataSource::SynSeed, &cfg);
    let m = model.evaluate(&task, &split.test);
    println!(
        "\nMetaBLINK on {} test mentions: R@{} {:.2}%, N.Acc {:.2}%, U.Acc {:.2}%",
        split.test.len(),
        cfg.linker.k,
        m.recall_at_k,
        m.normalized_acc,
        m.unnormalized_acc
    );
    if let Some(stats) = &model.bi_meta_stats {
        let clean: Vec<usize> = (0..task.syn.rewritten.len())
            .filter(|&i| !task.syn.rewritten[i].is_mislabeled())
            .collect();
        let noisy: Vec<usize> = (0..task.syn.rewritten.len())
            .filter(|&i| task.syn.rewritten[i].is_mislabeled())
            .collect();
        println!(
            "meta-learning selection ratio: clean pairs {:.3}, mislabeled pairs {:.3}",
            stats.mean_selection_ratio(clean),
            stats.mean_selection_ratio(noisy)
        );
    }
}
