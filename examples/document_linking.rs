//! Document-level linking with global coherence and NIL prediction —
//! the two extensions the paper names as future work (Section VIII),
//! implemented in `mb-core::{coherence, nil}`.
//!
//! ```sh
//! cargo run --release --example document_linking
//! ```

use metablink::common::Rng;
use metablink::core::coherence::{compare_on_documents, CoherenceConfig};
use metablink::core::nil::NilAwareLinker;
use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use metablink::core::{LinkerConfig, TwoStageLinker};
use metablink::datagen::mentions::{generate_mentions, generate_one};
use metablink::datagen::LinkedMention;
use metablink::eval::{ContextConfig, ExperimentContext};

fn main() -> metablink::common::Result<()> {
    println!("building benchmark + training a linker …");
    let ctx = ExperimentContext::build(ContextConfig::small(31));
    let domain = "Forgotten Realms";
    let task = ctx.task(domain);
    let split = ctx.dataset.split(domain);
    let cfg = MetaBlinkConfig::fast_test();
    let model = train(&task, Method::MetaBlink, DataSource::SynSeed, &cfg);

    let world = ctx.dataset.world();
    let dom = world.domain(domain);
    let linker = TwoStageLinker::try_new(
        &model.bi,
        &model.cross,
        &ctx.vocab,
        world.kb(),
        world.kb().domain_entities(dom.id),
        LinkerConfig { k: 16, ..model.linker_cfg },
    )?;

    // ------------------------------------------------------------------
    // 1. Global coherence: documents mentioning related entities.
    // ------------------------------------------------------------------
    let dict = world.kb().domain_entities(dom.id);
    let mut rng = Rng::seed_from_u64(3);
    let documents: Vec<Vec<LinkedMention>> = (0..20)
        .map(|k| {
            let anchor = dict[(k * 5) % dict.len()];
            let mut doc = vec![generate_one(world, dom, anchor, &mut rng)];
            for &rel in &world.meta(anchor).related {
                doc.push(generate_one(world, dom, rel, &mut rng));
            }
            doc
        })
        .collect();
    let (independent, coherent, total) =
        compare_on_documents(&linker, &documents, &CoherenceConfig::default());
    println!(
        "\ncoherence on {} documents ({} mentions):\n  independent linking: {}/{} correct\n  \
         joint (coherence):   {}/{} correct",
        documents.len(),
        total,
        independent,
        total,
        coherent,
        total
    );

    // ------------------------------------------------------------------
    // 2. NIL prediction: mix in mentions whose entity is NOT in the KB
    //    (here: mentions from another domain's dictionary).
    // ------------------------------------------------------------------
    let foreign = world.domain("Lego").clone();
    let nil_pool = generate_mentions(world, &foreign, 120, &mut rng).mentions;
    let (dev_link, test_link) = split.test.split_at(split.test.len() / 2);
    let (dev_nil, test_nil) = nil_pool.split_at(60);

    let calibrated = NilAwareLinker::calibrate(&linker, dev_link, dev_nil, 50);
    println!("\nNIL threshold calibrated on dev: {:.3}", calibrated.threshold());
    let with_nil = calibrated.evaluate(test_link, test_nil);
    let never =
        NilAwareLinker::with_threshold(&linker, f64::NEG_INFINITY).evaluate(test_link, test_nil);
    println!("mixed test set ({} linkable + {} NIL mentions):", test_link.len(), test_nil.len());
    println!(
        "  never-NIL linker:  P {:.3}  R {:.3}  F1 {:.3}  (NIL detection {:.3})",
        never.precision(),
        never.recall(),
        never.f1(),
        never.nil_accuracy()
    );
    println!(
        "  calibrated linker: P {:.3}  R {:.3}  F1 {:.3}  (NIL detection {:.3})",
        with_nil.precision(),
        with_nil.recall(),
        with_nil.f1(),
        with_nil.nil_accuracy()
    );
    Ok(())
}
