//! Quickstart: generate a small benchmark world, run the full MetaBLINK
//! pipeline on a few-shot target domain, and link some mentions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use metablink::core::baselines::name_matching_accuracy;
use metablink::core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use metablink::core::{LinkerConfig, TwoStageLinker};
use metablink::eval::{ContextConfig, ExperimentContext};

fn main() -> metablink::common::Result<()> {
    // 1. Build a (seeded, synthetic) Zeshel-like benchmark: 16 domains,
    //    a knowledge base, gold mentions, few-shot splits, and the
    //    synthetic supervision (exact matching + mention rewriting).
    println!("building benchmark world + synthetic supervision …");
    let ctx = ExperimentContext::build(ContextConfig::small(7));
    let domain = "Lego";
    let task = ctx.task(domain);
    let split = ctx.dataset.split(domain);
    println!(
        "target domain {:?}: {} entities, {} seed mentions, {} test mentions, {} synthetic pairs",
        domain,
        ctx.dataset.world().kb().domain_entities(task.domain.id).len(),
        split.seed.len(),
        split.test.len(),
        task.syn.rewritten.len(),
    );

    // 2. The trivial baseline: link by exact title match.
    let nm = name_matching_accuracy(ctx.dataset.world().kb(), task.domain.id, &split.test);
    println!("\nName Matching baseline     U.Acc = {nm:.2}%");

    // 3. Train MetaBLINK: synthetic data reweighted by the 50-sample
    //    seed via the meta-learning mechanism (Algorithm 1 + 2).
    println!("training MetaBLINK (Syn+Seed) …");
    let cfg = MetaBlinkConfig::fast_test();
    let model = train(&task, Method::MetaBlink, DataSource::SynSeed, &cfg);
    let metrics = model.evaluate(&task, &split.test);
    println!(
        "MetaBLINK (Syn+Seed)       R@{} = {:.2}%, N.Acc = {:.2}%, U.Acc = {:.2}%",
        cfg.linker.k, metrics.recall_at_k, metrics.normalized_acc, metrics.unnormalized_acc
    );

    // 4. Link a few individual mentions.
    let world = ctx.dataset.world();
    let linker = TwoStageLinker::try_new(
        &model.bi,
        &model.cross,
        &ctx.vocab,
        world.kb(),
        world.kb().domain_entities(task.domain.id),
        LinkerConfig { k: 16, ..model.linker_cfg },
    )?;
    println!("\nsample predictions:");
    for m in split.test.iter().take(5) {
        let predicted = linker
            .predict(m)
            .ok_or_else(|| metablink::common::Error::NotFound("empty candidate set".to_string()))?;
        let gold = &world.kb().entity(m.entity).title;
        let got = &world.kb().entity(predicted).title;
        let mark = if predicted == m.entity { "✓" } else { "✗" };
        let mut text = m.text();
        text.truncate(60);
        println!("  {mark} \"…{text}…\"  → {got}  (gold: {gold})");
    }
    Ok(())
}
