//! Property-based tests of world generation invariants.

use mb_check::{gen, prop_assert, prop_assert_eq};
use mb_common::Rng;
use mb_datagen::mentions::generate_mentions;
use mb_datagen::world::{DomainRole, DomainSpec, World, WorldConfig};

fn tiny_config(seed: u64, entities: usize, gap: f64) -> WorldConfig {
    WorldConfig {
        seed,
        general_vocab: 80,
        ambiguity_rate: 0.15,
        domains: vec![
            DomainSpec::new("Src", DomainRole::Train, 40, 60, 0.4),
            DomainSpec::new("Tgt", DomainRole::Test, entities, 60, gap),
        ],
    }
}

mb_check::check! {
    // World generation is comparatively expensive; stay at the floor.
    #![config(cases = 32)]

    fn worlds_are_deterministic_and_well_formed(
        seed in gen::u64_in(0..1000),
        entities in gen::usize_in(30..80),
        gap in gen::f64_in(0.1..0.9),
    ) {
        let a = World::generate(tiny_config(seed, entities, gap));
        let b = World::generate(tiny_config(seed, entities, gap));
        prop_assert_eq!(a.kb().len(), b.kb().len());
        let tgt = a.domain("Tgt");
        prop_assert_eq!(a.kb().domain_entities(tgt.id).len(), entities);
        for (ea, eb) in a.kb().entities().iter().zip(b.kb().entities()) {
            prop_assert_eq!(&ea.title, &eb.title);
            prop_assert!(!ea.title.is_empty());
            prop_assert!(!ea.description.is_empty());
        }
        // Every entity has keywords and at least one alias.
        for e in a.kb().entities() {
            let m = a.meta(e.id);
            prop_assert_eq!(m.keywords.len(), 3);
            prop_assert!(!m.aliases.is_empty());
            prop_assert!(m.popularity > 0.0);
        }
    }

    fn mentions_link_within_domain_with_consistent_categories(seed in gen::u64_in(0..500)) {
        let world = World::generate(tiny_config(seed, 50, 0.5));
        let domain = world.domain("Tgt").clone();
        let ms = generate_mentions(&world, &domain, 80, &mut Rng::seed_from_u64(seed ^ 7));
        prop_assert_eq!(ms.len(), 80);
        for m in &ms.mentions {
            prop_assert_eq!(world.kb().entity(m.entity).domain, domain.id);
            let title = &world.kb().entity(m.entity).title;
            prop_assert_eq!(m.category, mb_text::overlap::classify(&m.surface, title));
            prop_assert!(!m.surface.trim().is_empty());
        }
        // Category histogram sums to the mention count.
        let counts = ms.category_counts();
        prop_assert_eq!(counts.iter().sum::<usize>(), ms.len());
    }
}
