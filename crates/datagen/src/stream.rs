//! Streaming entity generation for million-entity stores.
//!
//! [`crate::World`] materializes every entity before returning — fine
//! at benchmark scale, hopeless at the million-entity scale the
//! sharded store targets. [`EntityStream`] instead yields entities in
//! fixed-size chunks, deriving each entity entirely from
//! `(config, global index)`:
//!
//! - per-entity RNG = `world_rng.split(STREAM_SALT).split(index)`, so
//!   the emitted world is **independent of chunk size** and of how
//!   many chunks the consumer drains — resuming at chunk `k` yields
//!   the same entities a fresh full drain would;
//! - titles embed the global index, so uniqueness holds by
//!   construction with no cross-chunk dedup state;
//! - vectors are drawn around `topics` latent unit centers
//!   (`normalize(center + noise · gauss)`), giving the cluster
//!   structure IVF retrieval exploits while keeping every vector
//!   L2-normalized like real bi-encoder embeddings.
//!
//! Peak memory is one chunk of entities plus the lexicon and topic
//! table — O(chunk + topics·dim), regardless of `entities`.

use crate::lexicon::Lexicon;
use mb_common::{Error, Result, Rng};

/// Salt separating the stream's RNG tree from other world streams.
const STREAM_SALT: u64 = 0x0057_0EA4;

/// Parameters of a streamed entity world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Total entities to emit.
    pub entities: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Latent topic (cluster) count for vector structure.
    pub topics: usize,
    /// Gaussian spread around a topic center before renormalization.
    pub noise: f64,
    /// Entities per yielded chunk (the RAM bound).
    pub chunk: usize,
    /// World seed.
    pub seed: u64,
}

impl StreamConfig {
    /// A small, fast configuration for tests and CI smokes.
    pub fn tiny(entities: usize, seed: u64) -> Self {
        StreamConfig { entities, dim: 16, topics: 8, noise: 0.35, chunk: 512, seed }
    }
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            entities: 1_000_000,
            dim: 32,
            topics: 256,
            noise: 0.35,
            chunk: 65_536,
            seed: 0,
        }
    }
}

/// One streamed entity: store-ready text plus its embedding.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedEntity {
    /// Unique title (embeds the global index).
    pub title: String,
    /// Short synthetic description.
    pub description: String,
    /// L2-normalized embedding of length `cfg.dim`.
    pub vector: Vec<f64>,
}

/// Chunked iterator over a streamed world.
#[derive(Debug)]
pub struct EntityStream {
    cfg: StreamConfig,
    base: Rng,
    lexicon: Lexicon,
    /// `topics * dim`, row-major, rows unit-norm.
    topics: Vec<f64>,
    next: usize,
}

/// L2-normalize `v` in place (no-op on the zero vector).
fn normalize(v: &mut [f64]) {
    let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

impl EntityStream {
    /// Validate the configuration and set up the lexicon and topic
    /// centers (the only state shared across chunks).
    ///
    /// # Errors
    /// [`Error::InvalidConfig`] when any count is zero, `noise` is not
    /// finite and non-negative, or `dim < 2`.
    pub fn new(cfg: StreamConfig) -> Result<EntityStream> {
        if cfg.entities == 0 || cfg.topics == 0 || cfg.chunk == 0 {
            return Err(Error::InvalidConfig(
                "stream entities, topics and chunk must be positive".to_string(),
            ));
        }
        if cfg.dim < 2 {
            return Err(Error::InvalidConfig("stream dim must be at least 2".to_string()));
        }
        if !(cfg.noise.is_finite() && cfg.noise >= 0.0) {
            return Err(Error::InvalidConfig(format!(
                "stream noise must be finite and non-negative, got {}",
                cfg.noise
            )));
        }
        let world_rng = Rng::seed_from_u64(cfg.seed);
        let general = Lexicon::general_pool(&world_rng, 160);
        let lexicon = Lexicon::build("stream", &world_rng.split(1), general, 96, 0.6);
        let mut topic_rng = world_rng.split(2);
        let mut topics = vec![0.0f64; cfg.topics * cfg.dim];
        for t in 0..cfg.topics {
            let row = &mut topics[t * cfg.dim..(t + 1) * cfg.dim];
            for x in row.iter_mut() {
                *x = topic_rng.gaussian();
            }
            normalize(row);
        }
        Ok(EntityStream { cfg, base: world_rng.split(STREAM_SALT), lexicon, topics, next: 0 })
    }

    /// The configuration this stream was built with.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Entities emitted so far.
    pub fn emitted(&self) -> usize {
        self.next
    }

    /// Generate the entity at `index` (pure in `(config, index)`).
    fn entity(&self, index: usize) -> StreamedEntity {
        let mut rng = self.base.split(index as u64);
        let name_len = rng.length(1, 2, 0.4);
        let name = self.lexicon.name(&mut rng, name_len);
        let title = format!("{name} {index}");
        let topic = rng.below(self.cfg.topics);
        let mut vector = vec![0.0f64; self.cfg.dim];
        let center = &self.topics[topic * self.cfg.dim..(topic + 1) * self.cfg.dim];
        for (x, &c) in vector.iter_mut().zip(center) {
            *x = c + self.cfg.noise * rng.gaussian();
        }
        normalize(&mut vector);
        let kw1 = self.lexicon.specific_word(&mut rng).to_string();
        let kw2 = self.lexicon.content_word(&mut rng).to_string();
        let description =
            format!("{name} is a {kw1} of the {kw2} world, catalogued as entry {index}.");
        StreamedEntity { title, description, vector }
    }

    /// Emit the next chunk (shorter at the tail), or `None` when the
    /// world is exhausted.
    pub fn next_chunk(&mut self) -> Option<Vec<StreamedEntity>> {
        if self.next >= self.cfg.entities {
            return None;
        }
        let lo = self.next;
        let hi = (lo + self.cfg.chunk).min(self.cfg.entities);
        let mut out = Vec::with_capacity(hi - lo);
        for i in lo..hi {
            out.push(self.entity(i));
        }
        self.next = hi;
        Some(out)
    }
}

impl Iterator for EntityStream {
    type Item = Vec<StreamedEntity>;

    fn next(&mut self) -> Option<Vec<StreamedEntity>> {
        self.next_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_does_not_change_the_world() {
        let mut a = EntityStream::new(StreamConfig { chunk: 7, ..StreamConfig::tiny(50, 9) })
            .expect("stream");
        let mut b = EntityStream::new(StreamConfig { chunk: 50, ..StreamConfig::tiny(50, 9) })
            .expect("stream");
        let flat_a: Vec<StreamedEntity> = a.by_ref().flatten().collect();
        let flat_b: Vec<StreamedEntity> = b.by_ref().flatten().collect();
        assert_eq!(flat_a.len(), 50);
        assert_eq!(flat_a, flat_b);
    }

    #[test]
    fn titles_are_unique_and_vectors_unit_norm() {
        let stream = EntityStream::new(StreamConfig::tiny(200, 3)).expect("stream");
        let mut titles = std::collections::BTreeSet::new();
        for chunk in stream {
            for e in chunk {
                assert!(titles.insert(e.title.clone()), "duplicate title {}", e.title);
                let norm: f64 = e.vector.iter().map(|x| x * x).sum::<f64>();
                assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
                assert_eq!(e.vector.len(), 16);
            }
        }
        assert_eq!(titles.len(), 200);
    }

    #[test]
    fn rejects_degenerate_configs() {
        assert!(EntityStream::new(StreamConfig::tiny(0, 1)).is_err());
        assert!(EntityStream::new(StreamConfig { dim: 1, ..StreamConfig::tiny(10, 1) }).is_err());
        assert!(EntityStream::new(StreamConfig { noise: f64::NAN, ..StreamConfig::tiny(10, 1) })
            .is_err());
        assert!(EntityStream::new(StreamConfig { topics: 0, ..StreamConfig::tiny(10, 1) }).is_err());
    }

    #[test]
    fn tail_chunk_is_short() {
        let chunks: Vec<usize> =
            EntityStream::new(StreamConfig { chunk: 8, ..StreamConfig::tiny(20, 5) })
                .expect("stream")
                .map(|c| c.len())
                .collect();
        assert_eq!(chunks, vec![8, 8, 4]);
    }
}
