//! # mb-datagen
//!
//! Synthetic Zeshel-like corpus generation for metablink-rs.
//!
//! The paper evaluates on the Zeshel benchmark (16 Fandom-wiki domains).
//! That corpus is not available here, so this crate generates the
//! closest synthetic equivalent: a seeded world with the same 16 named
//! domains and train/dev/test split, themed per-domain lexicons mixed
//! with a shared general vocabulary (the mixing fraction is the
//! measurable "domain gap" of Table VIII), entities with salient
//! keywords that tie contexts to descriptions, titles with
//! disambiguation phrases and deliberate ambiguity groups, gold mentions
//! in the paper's four overlap categories (skewed to Low Overlap), and
//! unlabeled in-domain text for the rewriter's adaptation step.
//!
//! Everything is deterministic in the top-level seed: the same seed
//! reproduces the same world bit-for-bit on any platform.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops are clearer in generation code

pub mod corpus;
pub mod dataset;
pub mod lexicon;
pub mod mentions;
pub mod noise;
pub mod splits;
pub mod stream;
pub mod world;

pub use dataset::{Dataset, DatasetConfig};
pub use mentions::{LinkedMention, MentionSet};
pub use splits::FewShotSplit;
pub use stream::{EntityStream, StreamConfig, StreamedEntity};
pub use world::{DomainRole, DomainSpec, World, WorldConfig};
