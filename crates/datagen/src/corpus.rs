//! Unlabeled in-domain text.
//!
//! The paper's syn → syn* upgrade fine-tunes T5 on *unlabeled* target
//! text with a denoising objective. Our rewriter substitute adapts its
//! domain statistics on the same kind of resource: a bag of raw
//! documents from the target domain, generated here without labels
//! (descriptions plus label-free context sentences).

use crate::world::{DomainInfo, World};
use mb_common::Rng;

/// Generate `count` unlabeled documents from a domain.
///
/// Roughly half are entity descriptions (what a wiki dump would
/// contain) and half are free-text sentences built from the domain
/// lexicon.
pub fn unlabeled_documents(
    world: &World,
    domain: &DomainInfo,
    count: usize,
    rng: &mut Rng,
) -> Vec<String> {
    let ids = world.kb().domain_entities(domain.id);
    let lex = &domain.lexicon;
    let mut docs = Vec::with_capacity(count);
    for _ in 0..count {
        if rng.chance(0.5) && !ids.is_empty() {
            let id = *rng.choose(ids);
            docs.push(world.kb().entity(id).description.clone());
        } else {
            let n = rng.range(6, 14);
            let mut words = Vec::with_capacity(n);
            for k in 0..n {
                if k % 3 == 2 {
                    words.push("the".to_string());
                } else {
                    words.push(lex.content_word(rng).to_string());
                }
            }
            docs.push(words.join(" "));
        }
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    #[test]
    fn generates_nonempty_documents() {
        let world = World::generate(WorldConfig::tiny(5));
        let domain = world.domain("TargetX").clone();
        let docs = unlabeled_documents(&world, &domain, 40, &mut Rng::seed_from_u64(1));
        assert_eq!(docs.len(), 40);
        assert!(docs.iter().all(|d| !d.is_empty()));
    }

    #[test]
    fn documents_reflect_domain_vocabulary() {
        let world = World::generate(WorldConfig::tiny(5));
        let domain = world.domain("TargetX").clone();
        let docs = unlabeled_documents(&world, &domain, 60, &mut Rng::seed_from_u64(2));
        let text = docs.join(" ").to_lowercase();
        let hits =
            domain.lexicon.specific_words().iter().filter(|w| text.contains(w.as_str())).count();
        assert!(hits > 5, "only {hits} domain words appear in the corpus");
    }

    #[test]
    fn deterministic() {
        let world = World::generate(WorldConfig::tiny(5));
        let domain = world.domain("TargetX").clone();
        let a = unlabeled_documents(&world, &domain, 10, &mut Rng::seed_from_u64(3));
        let b = unlabeled_documents(&world, &domain, 10, &mut Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
