//! World generation: domains, entities, descriptions, aliases, triples.
//!
//! A [`World`] is the static part of the benchmark — the knowledge base
//! plus per-entity metadata (salient keywords, aliases, popularity)
//! that the mention generator and the supervision pipelines build on.
//!
//! The generative model, in brief: every entity has 3 *salient
//! keywords* drawn from its domain lexicon. Those keywords appear both
//! in the entity's description and in the contexts of mentions linking
//! to it — they are the semantic signal that makes context–description
//! linking learnable beyond surface forms, standing in for the
//! distributional signal BERT exploits in the paper. Titles may carry
//! parenthesised disambiguation phrases, and deliberate *ambiguity
//! groups* share a base name across entities so that pure name matching
//! is ambiguous or wrong (Table II's failure cases).

use crate::lexicon::{Lexicon, TYPE_WORDS};
use mb_common::{Error, Result, Rng};
use mb_kb::{DomainId, EntityId, KbBuilder, KnowledgeBase};
use mb_text::tokenizer::tokenize;
use std::collections::BTreeSet;

/// Where a domain sits in the benchmark split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainRole {
    /// Source domain with rich labeled data (the "general domain").
    Train,
    /// Validation domain.
    Dev,
    /// Few-shot / zero-shot target domain.
    Test,
}

/// Configuration of one generated domain.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Human-readable domain name (themed stems exist for the 16
    /// Zeshel names).
    pub name: String,
    /// Benchmark role.
    pub role: DomainRole,
    /// Number of entities to generate.
    pub entities: usize,
    /// Number of gold mentions to generate.
    pub mentions: usize,
    /// Domain-gap parameter in `[0, 1]`: probability that a content
    /// word is domain jargon rather than shared vocabulary.
    pub gap: f64,
    /// Size of the domain-specific word pool.
    pub specific_vocab: usize,
}

impl DomainSpec {
    /// Convenience constructor with a vocabulary sized to the entity
    /// count.
    pub fn new(name: &str, role: DomainRole, entities: usize, mentions: usize, gap: f64) -> Self {
        DomainSpec {
            name: name.to_string(),
            role,
            entities,
            mentions,
            gap,
            specific_vocab: (entities / 4).clamp(40, 400),
        }
    }
}

/// Configuration of a whole world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Size of the shared general vocabulary.
    pub general_vocab: usize,
    /// Fraction of entities that join an ambiguity group (share a base
    /// name with other entities).
    pub ambiguity_rate: f64,
    /// The domains to generate.
    pub domains: Vec<DomainSpec>,
}

/// Paper entity counts per domain (Table III), used for scaled configs.
pub const ZESHEL_DOMAINS: &[(&str, DomainRole, usize)] = &[
    ("American Football", DomainRole::Train, 31_929),
    ("Doctor Who", DomainRole::Train, 40_821),
    ("Fallout", DomainRole::Train, 16_992),
    ("Final Fantasy", DomainRole::Train, 14_044),
    ("Military", DomainRole::Train, 104_520),
    ("Pro Wrestling", DomainRole::Train, 10_133),
    ("StarWars", DomainRole::Train, 87_056),
    ("World of Warcraft", DomainRole::Train, 27_677),
    ("Coronation Street", DomainRole::Dev, 17_809),
    ("Muppets", DomainRole::Dev, 21_344),
    ("Ice Hockey", DomainRole::Dev, 28_684),
    ("Elder Scrolls", DomainRole::Dev, 21_712),
    ("Forgotten Realms", DomainRole::Test, 15_603),
    ("Lego", DomainRole::Test, 10_076),
    ("Star Trek", DomainRole::Test, 34_430),
    ("YuGiOh", DomainRole::Test, 10_031),
];

/// Paper mention counts for the four test domains (Table IV totals:
/// 50 train + 50 dev + test).
pub const ZESHEL_TEST_MENTIONS: &[(&str, usize)] =
    &[("Forgotten Realms", 1_200), ("Lego", 1_199), ("Star Trek", 4_227), ("YuGiOh", 3_374)];

/// Domain-gap parameters chosen so the generated benchmark reproduces
/// Table VIII's ordering: Forgotten Realms / Star Trek close to the
/// general distribution, Lego / YuGiOh far from it.
fn zeshel_gap(name: &str) -> f64 {
    match name {
        "Forgotten Realms" => 0.30,
        "Star Trek" => 0.28,
        "Lego" => 0.62,
        "YuGiOh" => 0.68,
        _ => 0.40,
    }
}

impl WorldConfig {
    /// The full 16-domain Zeshel-like benchmark, with entity counts
    /// scaled down by `entity_scale` for train/dev domains and
    /// `test_entity_scale` for test domains, and test-domain mention
    /// counts scaled by `mention_scale`.
    pub fn zeshel_like(
        seed: u64,
        entity_scale: usize,
        test_entity_scale: usize,
        mention_scale: usize,
    ) -> Self {
        assert!(entity_scale > 0 && test_entity_scale > 0 && mention_scale > 0);
        let mut domains = Vec::new();
        for &(name, role, paper_entities) in ZESHEL_DOMAINS {
            let scale = if role == DomainRole::Test { test_entity_scale } else { entity_scale };
            let entities = (paper_entities / scale).max(50);
            let mentions = match role {
                DomainRole::Test => {
                    let paper = ZESHEL_TEST_MENTIONS
                        .iter()
                        .find(|(n, _)| *n == name)
                        .map_or(1_000, |(_, m)| *m);
                    (paper / mention_scale).max(150)
                }
                // Source/dev domains carry labeled data proportional to
                // their size, capped to keep training tractable.
                _ => (entities / 2).clamp(100, 1_500),
            };
            domains.push(DomainSpec::new(name, role, entities, mentions, zeshel_gap(name)));
        }
        WorldConfig { seed, general_vocab: 600, ambiguity_rate: 0.12, domains }
    }

    /// Default benchmark scale used by the experiment harnesses:
    /// train/dev entities ÷40, test entities ÷10, test mentions ÷4.
    pub fn zeshel_default(seed: u64) -> Self {
        Self::zeshel_like(seed, 40, 10, 4)
    }

    /// A tiny two-train / one-test world for unit tests.
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            general_vocab: 120,
            ambiguity_rate: 0.15,
            domains: vec![
                DomainSpec::new("SrcA", DomainRole::Train, 80, 120, 0.4),
                DomainSpec::new("SrcB", DomainRole::Train, 80, 120, 0.4),
                DomainSpec::new("TargetX", DomainRole::Test, 90, 140, 0.6),
            ],
        }
    }
}

/// Per-entity generation metadata, aligned with KB entity ids.
#[derive(Debug, Clone)]
pub struct EntityMeta {
    /// Salient content words tying contexts to the description.
    pub keywords: Vec<String>,
    /// Alternative surface forms (used for Low Overlap mentions).
    pub aliases: Vec<String>,
    /// The entity's type word (also its disambiguation phrase if any).
    pub type_word: String,
    /// Related same-domain entities referenced by the description.
    pub related: Vec<EntityId>,
    /// Zipf-style popularity weight for mention sampling.
    pub popularity: f64,
}

/// Per-domain generation products.
#[derive(Debug, Clone)]
pub struct DomainInfo {
    /// KB domain id.
    pub id: DomainId,
    /// Domain name.
    pub name: String,
    /// Benchmark role.
    pub role: DomainRole,
    /// The domain's lexicon (needed by mention/corpus generation).
    pub lexicon: Lexicon,
}

/// A fully generated static world.
#[derive(Debug, Clone)]
pub struct World {
    kb: KnowledgeBase,
    meta: Vec<EntityMeta>,
    domains: Vec<DomainInfo>,
    config: WorldConfig,
}

/// Locally staged entity before KB insertion.
struct StagedEntity {
    title: String,
    type_word: String,
    keywords: Vec<String>,
    aliases: Vec<String>,
    related: Vec<usize>,
    description: String,
}

impl World {
    /// Generate a world from a configuration. Deterministic in
    /// `config.seed`.
    pub fn generate(config: WorldConfig) -> Self {
        let root = Rng::seed_from_u64(config.seed);
        let general = Lexicon::general_pool(&root, config.general_vocab);
        let mut builder = KbBuilder::new();
        // Generated worlds are bounded by WorldConfig, far below the KB
        // id-space limits, so capacity errors here are unreachable.
        let related_rel = builder.relation("related_to").expect("relation id space");
        let mut meta: Vec<EntityMeta> = Vec::new();
        let mut domains = Vec::new();

        for (di, spec) in config.domains.iter().enumerate() {
            let domain_rng = root.split(0x0D00_0000 + di as u64);
            let lexicon = Lexicon::build(
                &spec.name,
                &domain_rng,
                general.clone(),
                spec.specific_vocab,
                spec.gap,
            );
            let domain_id = builder.domain(&spec.name).expect("domain id space");
            let staged = stage_domain(spec, &lexicon, config.ambiguity_rate, &domain_rng);

            // Insert into the KB, then wire aliases/triples/meta.
            let ids: Vec<EntityId> = staged
                .iter()
                .map(|s| {
                    builder
                        .add_entity(&s.title, &s.description, domain_id)
                        .expect("entity id space")
                })
                .collect();
            let n = staged.len() as f64;
            for (k, s) in staged.into_iter().enumerate() {
                let id = ids[k];
                if spec.role == DomainRole::Train {
                    for alias in &s.aliases {
                        builder.add_alias(alias, id);
                    }
                }
                let related: Vec<EntityId> = s.related.iter().map(|&r| ids[r]).collect();
                for &tail in &related {
                    builder.add_triple(id, related_rel, tail);
                }
                // Zipf-ish popularity by generation rank.
                let popularity = 1.0 / (1.0 + k as f64).powf(0.8) * n;
                meta.push(EntityMeta {
                    keywords: s.keywords,
                    aliases: s.aliases,
                    type_word: s.type_word,
                    related,
                    popularity,
                });
            }
            domains.push(DomainInfo {
                id: domain_id,
                name: spec.name.clone(),
                role: spec.role,
                lexicon,
            });
        }

        let kb = builder.build().expect("generated world must be internally consistent");
        World { kb, meta, domains, config }
    }

    /// The knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Generation metadata of one entity.
    pub fn meta(&self, id: EntityId) -> &EntityMeta {
        &self.meta[id.0 as usize]
    }

    /// Per-domain info in generation order.
    pub fn domains(&self) -> &[DomainInfo] {
        &self.domains
    }

    /// Find a domain by name.
    ///
    /// # Panics
    /// Panics if the domain does not exist. Use this when the name is
    /// hard-coded (worlds are static; a wrong literal is a programming
    /// bug); for names that arrive from external input — CLI flags,
    /// model manifests — use [`World::domain_checked`] instead.
    pub fn domain(&self, name: &str) -> &DomainInfo {
        self.domain_checked(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Find a domain by name, surfacing unknown names as an error.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] when no domain has this name — the
    /// recoverable form of [`World::domain`] for load paths.
    pub fn domain_checked(&self, name: &str) -> Result<&DomainInfo> {
        self.domains
            .iter()
            .find(|d| d.name == name)
            .ok_or_else(|| Error::NotFound(format!("domain {name:?} not in world")))
    }

    /// The configuration used to generate this world.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// All domains with a given role.
    pub fn domains_with_role(&self, role: DomainRole) -> Vec<&DomainInfo> {
        self.domains.iter().filter(|d| d.role == role).collect()
    }

    /// The spec used for a domain.
    ///
    /// # Panics
    /// Panics on unknown names; see [`World::spec_checked`] for the
    /// recoverable form.
    pub fn spec(&self, name: &str) -> &DomainSpec {
        self.spec_checked(name).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The spec used for a domain, surfacing unknown names as an error.
    ///
    /// # Errors
    /// Returns [`Error::NotFound`] when the config has no spec with
    /// this name.
    pub fn spec_checked(&self, name: &str) -> Result<&DomainSpec> {
        self.config
            .domains
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| Error::NotFound(format!("domain spec {name:?} not in config")))
    }
}

/// Generate all entities of one domain locally.
fn stage_domain(
    spec: &DomainSpec,
    lexicon: &Lexicon,
    ambiguity_rate: f64,
    domain_rng: &Rng,
) -> Vec<StagedEntity> {
    let mut rng = domain_rng.split(10);
    let mut taken: BTreeSet<String> = BTreeSet::new();
    let mut staged: Vec<StagedEntity> = Vec::with_capacity(spec.entities);
    let mut attempts = 0usize;
    let max_attempts = spec.entities.saturating_mul(200).max(10_000);

    while staged.len() < spec.entities {
        attempts += 1;
        if attempts > max_attempts {
            // Name space exhausted (tiny lexicon): fall back to
            // guaranteed-unique numbered titles.
            let k = staged.len();
            let base = lexicon.name(&mut rng, 2);
            let type_word = rng.choose(TYPE_WORDS).to_string();
            let title = format!("{base} {k}");
            if let Some(e) = try_stage(&title, &type_word, lexicon, &mut taken, &mut rng) {
                staged.push(e);
            }
            continue;
        }
        let remaining = spec.entities - staged.len();
        let group = if remaining >= 3 && rng.chance(ambiguity_rate) {
            rng.range(2, 4) // ambiguity group of 2–3 sharing a base name
        } else {
            1
        };
        let name_len = rng.length(1, 3, 0.45);
        let base = lexicon.name(&mut rng, name_len);
        if group == 1 {
            // Possibly give a lone entity a disambiguation phrase too.
            let type_word = rng.choose(TYPE_WORDS).to_string();
            let title =
                if rng.chance(0.15) { format!("{base} ({type_word})") } else { base.clone() };
            if let Some(e) = try_stage(&title, &type_word, lexicon, &mut taken, &mut rng) {
                staged.push(e);
            }
        } else {
            // Ambiguity group: distinct disambiguation phrases, plus
            // possibly the bare base as its own entity.
            let mut types: Vec<&str> = TYPE_WORDS.to_vec();
            rng.shuffle(&mut types);
            let bare_first = rng.chance(0.5);
            for g in 0..group {
                let type_word = types[g % types.len()].to_string();
                let title = if g == 0 && bare_first {
                    base.clone()
                } else {
                    format!("{base} ({type_word})")
                };
                if staged.len() < spec.entities {
                    if let Some(e) = try_stage(&title, &type_word, lexicon, &mut taken, &mut rng) {
                        staged.push(e);
                    }
                }
            }
        }
    }

    // Related wiring (indices within the domain).
    let n = staged.len();
    let mut rel_rng = domain_rng.split(11);
    for i in 0..n {
        let n_rel = rel_rng.range(1, 3);
        let mut related = Vec::with_capacity(n_rel);
        for _ in 0..n_rel {
            let other = rel_rng.below(n);
            if other != i && !related.contains(&other) {
                related.push(other);
            }
        }
        staged[i].related = related;
    }

    // Descriptions last (they reference related titles).
    let titles: Vec<String> = staged.iter().map(|s| s.title.clone()).collect();
    let mut desc_rng = domain_rng.split(12);
    for s in &mut staged {
        let related_titles: Vec<&str> = s.related.iter().map(|&r| titles[r].as_str()).collect();
        s.description = compose_description(
            &s.title,
            &s.type_word,
            &s.keywords,
            &related_titles,
            lexicon,
            &mut desc_rng,
        );
    }
    staged
}

/// Stage one entity if its canonical title is still free in the domain.
fn try_stage(
    title: &str,
    type_word: &str,
    lexicon: &Lexicon,
    taken: &mut BTreeSet<String>,
    rng: &mut Rng,
) -> Option<StagedEntity> {
    let key = mb_kb::index::canonical(title);
    if !taken.insert(key) {
        return None;
    }
    // Three salient keywords: two in-domain, one gap-mixed.
    let keywords = vec![
        lexicon.specific_word(rng).to_string(),
        lexicon.specific_word(rng).to_string(),
        lexicon.content_word(rng).to_string(),
    ];
    // Aliases are keyword-based epithets built from the entity's
    // *salient* words (how domain text actually paraphrases an entity).
    // They share no tokens with the title, which keeps them in the Low
    // Overlap category with overwhelming probability.
    let mut aliases = vec![format!("the {} {}", keywords[0], keywords[1])];
    if rng.chance(0.6) {
        aliases.push(format!("the {} of {}", keywords[1], keywords[0]));
    }
    Some(StagedEntity {
        title: title.to_string(),
        type_word: type_word.to_string(),
        keywords,
        aliases,
        related: Vec::new(),
        description: String::new(),
    })
}

/// Compose a 2–3 sentence description exposing the entity's keywords
/// and (usually) one related entity's title.
fn compose_description(
    title: &str,
    type_word: &str,
    keywords: &[String],
    related_titles: &[&str],
    lexicon: &Lexicon,
    rng: &mut Rng,
) -> String {
    let base = title_base_text(title);
    let kw = keywords;
    let filler1 = lexicon.content_word(rng).to_string();
    let filler2 = lexicon.content_word(rng).to_string();
    let mut sentences = Vec::with_capacity(3);
    sentences.push(match rng.below(3) {
        0 => format!("{base} is a {} {type_word} of the {} {filler1}.", kw[0], kw[1]),
        1 => format!("{base} is the {type_word} known for the {} {}.", kw[0], kw[1]),
        _ => format!("The {type_word} {base} belongs to the {} {filler1}.", kw[0]),
    });
    if let Some(rt) = related_titles.first() {
        let rbase = title_base_text(rt);
        sentences.push(match rng.below(3) {
            0 => format!("It appeared in the {} {filler2} with {rbase}.", kw[2]),
            1 => format!("Together with {rbase} it shaped the {} {filler2}.", kw[2]),
            _ => format!("{rbase} first encountered it during the {} {filler2}.", kw[2]),
        });
    } else {
        sentences.push(format!("It is remembered for the {} {filler2}.", kw[2]));
    }
    if rng.chance(0.7) {
        let filler3 = lexicon.content_word(rng).to_string();
        sentences.push(format!("The {type_word} is associated with {} and {filler3}.", kw[0]));
    }
    sentences.join(" ")
}

/// The title's base text (before any disambiguation phrase).
pub fn title_base_text(title: &str) -> String {
    match mb_text::overlap::title_base(title) {
        Some(base) => base.to_string(),
        None => title.to_string(),
    }
}

/// A contiguous proper token sub-span of a multi-token base title, for
/// Ambiguous Substring mentions. Returns `None` for single-token bases.
pub fn substring_span(title: &str, rng: &mut Rng) -> Option<String> {
    let base = title_base_text(title);
    let toks = tokenize(&base);
    if toks.len() < 2 {
        return None;
    }
    let len = rng.range(1, toks.len());
    let start = rng.range(0, toks.len() - len + 1);
    Some(toks[start..start + len].join(" "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn tiny_world() -> World {
        World::generate(WorldConfig::tiny(42))
    }

    #[test]
    fn generates_requested_counts() {
        let w = tiny_world();
        assert_eq!(w.kb().num_domains(), 3);
        let target = w.domain("TargetX");
        assert_eq!(w.kb().domain_entities(target.id).len(), 90);
        let src = w.domain("SrcA");
        assert_eq!(w.kb().domain_entities(src.id).len(), 80);
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny_world();
        let b = tiny_world();
        assert_eq!(a.kb().len(), b.kb().len());
        for (ea, eb) in a.kb().entities().iter().zip(b.kb().entities()) {
            assert_eq!(ea.title, eb.title);
            assert_eq!(ea.description, eb.description);
        }
        for id in 0..a.kb().len() as u32 {
            let id = EntityId(id);
            assert_eq!(a.meta(id).keywords, b.meta(id).keywords);
            assert_eq!(a.meta(id).aliases, b.meta(id).aliases);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::tiny(1));
        let b = World::generate(WorldConfig::tiny(2));
        let same = a
            .kb()
            .entities()
            .iter()
            .zip(b.kb().entities())
            .filter(|(x, y)| x.title == y.title)
            .count();
        assert!(same < a.kb().len() / 4, "{same} identical titles");
    }

    #[test]
    fn titles_unique_within_domain() {
        let w = tiny_world();
        for d in w.domains() {
            let mut seen = HashSet::new();
            for &id in w.kb().domain_entities(d.id) {
                let key = mb_kb::index::canonical(&w.kb().entity(id).title);
                assert!(seen.insert(key), "duplicate title in domain {}", d.name);
            }
        }
    }

    #[test]
    fn descriptions_contain_keywords() {
        let w = tiny_world();
        let mut hits = 0;
        let mut total = 0;
        for e in w.kb().entities() {
            let m = w.meta(e.id);
            let desc = e.description.to_lowercase();
            total += m.keywords.len();
            hits += m.keywords.iter().filter(|k| desc.contains(k.as_str())).count();
        }
        // The first keyword always appears; the others usually do.
        assert!(hits as f64 / total as f64 > 0.85, "{hits}/{total}");
    }

    #[test]
    fn ambiguity_groups_exist() {
        let w = tiny_world();
        let mut with_disambig = 0;
        for e in w.kb().entities() {
            if mb_text::overlap::title_base(&e.title).is_some() {
                with_disambig += 1;
            }
        }
        assert!(with_disambig > 5, "only {with_disambig} disambiguated titles");
    }

    #[test]
    fn aliases_are_low_overlap() {
        let w = tiny_world();
        let mut low = 0;
        let mut total = 0;
        for e in w.kb().entities() {
            for alias in &w.meta(e.id).aliases {
                total += 1;
                if mb_text::overlap::classify(alias, &e.title)
                    == mb_text::OverlapCategory::LowOverlap
                {
                    low += 1;
                }
            }
        }
        assert!(low as f64 / total as f64 > 0.95, "{low}/{total} aliases low-overlap");
    }

    #[test]
    fn alias_table_only_for_train_domains() {
        let w = tiny_world();
        let target = w.domain("TargetX");
        for &id in w.kb().domain_entities(target.id) {
            for alias in &w.meta(id).aliases {
                assert!(
                    w.kb()
                        .by_alias(alias)
                        .iter()
                        .all(|hit| { w.kb().entity(*hit).domain != target.id }),
                    "target-domain alias leaked into alias table"
                );
            }
        }
        // And train-domain aliases are present.
        let src = w.domain("SrcA");
        let any = w
            .kb()
            .domain_entities(src.id)
            .iter()
            .any(|&id| !w.kb().by_alias(&w.meta(id).aliases[0]).is_empty());
        assert!(any, "train-domain alias table is empty");
    }

    #[test]
    fn popularity_is_positive_and_decreasing_overall() {
        let w = tiny_world();
        let d = w.domain("TargetX");
        let ids = w.kb().domain_entities(d.id);
        assert!(ids.iter().all(|&id| w.meta(id).popularity > 0.0));
        assert!(w.meta(ids[0]).popularity > w.meta(*ids.last().unwrap()).popularity);
    }

    #[test]
    fn zeshel_config_counts_scale() {
        let cfg = WorldConfig::zeshel_like(1, 40, 10, 4);
        assert_eq!(cfg.domains.len(), 16);
        let lego = cfg.domains.iter().find(|d| d.name == "Lego").unwrap();
        assert_eq!(lego.entities, 10_076 / 10);
        assert_eq!(lego.mentions, 1_199 / 4);
        assert_eq!(lego.role, DomainRole::Test);
        let military = cfg.domains.iter().find(|d| d.name == "Military").unwrap();
        assert_eq!(military.entities, 104_520 / 40);
        assert_eq!(military.role, DomainRole::Train);
    }

    #[test]
    fn substring_span_is_contained() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..50 {
            let span = substring_span("Golden Master Crown (item)", &mut rng).unwrap();
            let toks = tokenize(&span);
            let base = tokenize("golden master crown");
            assert!(toks.len() < base.len(), "span must be proper: {span:?}");
            assert!(base.windows(toks.len()).any(|w| w == toks.as_slice()));
        }
        assert!(substring_span("Solo", &mut rng).is_none());
        assert!(substring_span("Solo (item)", &mut rng).is_none());
    }

    #[test]
    fn related_entities_stay_in_domain() {
        let w = tiny_world();
        for e in w.kb().entities() {
            for &r in &w.meta(e.id).related {
                assert_eq!(w.kb().entity(r).domain, e.domain);
                assert_ne!(r, e.id);
            }
        }
    }
}
