//! Adversarial noise injection (Figure 4 harness).
//!
//! The paper validates the meta-learning denoiser by generating *bad*
//! training pairs — mentions relinked to random entities — and
//! measuring how often the reweighting selects them versus normal data.

use crate::mentions::LinkedMention;
use mb_common::Rng;
use mb_kb::EntityId;

/// A training pair tagged with its provenance for the selection-ratio
/// measurement.
#[derive(Debug, Clone)]
pub struct TaggedPair {
    /// The (possibly corrupted) mention.
    pub mention: LinkedMention,
    /// True if this pair was deliberately corrupted.
    pub is_bad: bool,
}

/// Append `bad_count` corrupted copies of random mentions, each
/// relinked to a random *different* entity from `entity_pool`.
///
/// Returns the tagged combination of all normal pairs plus the bad
/// ones, shuffled.
///
/// # Panics
/// Panics if `entity_pool` has fewer than two entities (no wrong entity
/// exists to link to) or `mentions` is empty while `bad_count > 0`.
pub fn inject_bad_pairs(
    mentions: &[LinkedMention],
    entity_pool: &[EntityId],
    bad_count: usize,
    rng: &mut Rng,
) -> Vec<TaggedPair> {
    assert!(
        entity_pool.len() >= 2 || bad_count == 0,
        "need at least two entities to corrupt links"
    );
    assert!(!mentions.is_empty() || bad_count == 0, "cannot corrupt an empty mention list");
    let mut out: Vec<TaggedPair> =
        mentions.iter().map(|m| TaggedPair { mention: m.clone(), is_bad: false }).collect();
    for _ in 0..bad_count {
        let src = rng.choose(mentions);
        let mut wrong = *rng.choose(entity_pool);
        while wrong == src.entity {
            wrong = *rng.choose(entity_pool);
        }
        let mut corrupted = src.clone();
        corrupted.entity = wrong;
        out.push(TaggedPair { mention: corrupted, is_bad: true });
    }
    rng.shuffle(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mentions::generate_mentions;
    use crate::world::{World, WorldConfig};

    #[test]
    fn injects_requested_bad_count_with_wrong_links() {
        let world = World::generate(WorldConfig::tiny(9));
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(4);
        let ms = generate_mentions(&world, &domain, 60, &mut rng);
        let pool = world.kb().domain_entities(domain.id).to_vec();
        let tagged = inject_bad_pairs(&ms.mentions, &pool, 30, &mut rng);
        assert_eq!(tagged.len(), 90);
        let bad: Vec<_> = tagged.iter().filter(|t| t.is_bad).collect();
        assert_eq!(bad.len(), 30);
        // A corrupted pair must have a different gold entity from the
        // original mention with the same text.
        for b in &bad {
            let original_gold = ms
                .mentions
                .iter()
                .find(|m| m.text() == b.mention.text() && m.surface == b.mention.surface)
                .map(|m| m.entity);
            if let Some(orig) = original_gold {
                assert_ne!(b.mention.entity, orig, "bad pair still correctly linked");
            }
        }
    }

    #[test]
    fn zero_bad_count_is_identity_up_to_shuffle() {
        let world = World::generate(WorldConfig::tiny(9));
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(4);
        let ms = generate_mentions(&world, &domain, 20, &mut rng);
        let pool = world.kb().domain_entities(domain.id).to_vec();
        let tagged = inject_bad_pairs(&ms.mentions, &pool, 0, &mut rng);
        assert_eq!(tagged.len(), 20);
        assert!(tagged.iter().all(|t| !t.is_bad));
    }
}
