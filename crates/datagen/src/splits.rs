//! Few-shot splits (Table IV): 50 seed / 50 dev / rest test.

use crate::mentions::{LinkedMention, MentionSet};
use mb_common::Rng;

/// A few-shot split of one target domain's gold mentions.
#[derive(Debug, Clone)]
pub struct FewShotSplit {
    /// Domain name.
    pub domain: String,
    /// The seed set — the few labeled in-domain examples MetaBLINK's
    /// meta-learning consumes (paper default: 50).
    pub seed: Vec<LinkedMention>,
    /// Development set for model selection (paper default: 50).
    pub dev: Vec<LinkedMention>,
    /// Held-out test set.
    pub test: Vec<LinkedMention>,
}

impl FewShotSplit {
    /// Randomly split a mention set into seed/dev/test.
    ///
    /// # Panics
    /// Panics if the set has fewer than `seed_n + dev_n + 1` mentions —
    /// a split without a test set is a configuration error.
    pub fn split(set: &MentionSet, seed_n: usize, dev_n: usize, rng: &mut Rng) -> Self {
        assert!(
            set.len() > seed_n + dev_n,
            "domain {}: {} mentions cannot support a {}+{} split",
            set.domain,
            set.len(),
            seed_n,
            dev_n
        );
        let mut idx: Vec<usize> = (0..set.len()).collect();
        rng.shuffle(&mut idx);
        let take = |range: std::ops::Range<usize>| -> Vec<LinkedMention> {
            idx[range].iter().map(|&i| set.mentions[i].clone()).collect()
        };
        FewShotSplit {
            domain: set.domain.clone(),
            seed: take(0..seed_n),
            dev: take(seed_n..seed_n + dev_n),
            test: take(seed_n + dev_n..set.len()),
        }
    }

    /// The paper's default 50/50/rest split.
    pub fn paper_default(set: &MentionSet, rng: &mut Rng) -> Self {
        Self::split(set, 50, 50, rng)
    }

    /// Total number of mentions across all three parts.
    pub fn total(&self) -> usize {
        self.seed.len() + self.dev.len() + self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mentions::generate_mentions;
    use crate::world::{World, WorldConfig};

    fn mention_set() -> MentionSet {
        let world = World::generate(WorldConfig::tiny(3));
        let domain = world.domain("TargetX").clone();
        generate_mentions(&world, &domain, 140, &mut Rng::seed_from_u64(1))
    }

    #[test]
    fn sizes_are_exact_and_disjoint() {
        let set = mention_set();
        let split = FewShotSplit::split(&set, 50, 50, &mut Rng::seed_from_u64(2));
        assert_eq!(split.seed.len(), 50);
        assert_eq!(split.dev.len(), 50);
        assert_eq!(split.test.len(), 40);
        assert_eq!(split.total(), set.len());
        // Partition: counts of each distinct mention add up.
        let count_in =
            |part: &[LinkedMention], m: &LinkedMention| part.iter().filter(|x| *x == m).count();
        for m in &set.mentions {
            let total =
                count_in(&split.seed, m) + count_in(&split.dev, m) + count_in(&split.test, m);
            let orig = set.mentions.iter().filter(|x| *x == m).count();
            assert_eq!(total, orig);
        }
    }

    #[test]
    fn deterministic() {
        let set = mention_set();
        let a = FewShotSplit::split(&set, 30, 30, &mut Rng::seed_from_u64(7));
        let b = FewShotSplit::split(&set, 30, 30, &mut Rng::seed_from_u64(7));
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.test, b.test);
    }

    #[test]
    #[should_panic(expected = "cannot support")]
    fn rejects_oversized_split() {
        let set = mention_set();
        FewShotSplit::split(&set, 100, 40, &mut Rng::seed_from_u64(1));
    }
}
