//! Whole-benchmark assembly: world + mentions + few-shot splits.

use crate::mentions::{generate_mentions, MentionSet};
use crate::splits::FewShotSplit;
use crate::world::{DomainRole, World, WorldConfig};
use mb_common::Rng;

/// Configuration of a full benchmark dataset.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// World configuration (domains, sizes, gaps).
    pub world: WorldConfig,
    /// Seed-set size per test domain (paper: 50).
    pub seed_size: usize,
    /// Dev-set size per test domain (paper: 50).
    pub dev_size: usize,
}

impl DatasetConfig {
    /// Paper-default splits over the given world.
    pub fn new(world: WorldConfig) -> Self {
        DatasetConfig { world, seed_size: 50, dev_size: 50 }
    }

    /// Tiny configuration for unit tests (smaller splits too).
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig { world: WorldConfig::tiny(seed), seed_size: 25, dev_size: 25 }
    }
}

/// A generated benchmark: the world, gold mentions for every domain,
/// and few-shot splits for the test domains.
#[derive(Debug, Clone)]
pub struct Dataset {
    world: World,
    /// Mention sets aligned with `world.domains()` order.
    mentions: Vec<MentionSet>,
    /// Few-shot splits for every `Test`-role domain, in domain order.
    splits: Vec<FewShotSplit>,
}

impl Dataset {
    /// Generate the full benchmark. Deterministic in the world seed.
    pub fn generate(config: DatasetConfig) -> Self {
        let seed = config.world.seed;
        let world = World::generate(config.world);
        let root = Rng::seed_from_u64(seed ^ 0x0DA7_A5E7);
        let mut mentions = Vec::with_capacity(world.domains().len());
        let mut splits = Vec::new();
        for (di, domain) in world.domains().to_vec().iter().enumerate() {
            let mut rng = root.split(di as u64);
            let count = world.spec(&domain.name).mentions;
            let set = generate_mentions(&world, domain, count, &mut rng);
            if domain.role == DomainRole::Test {
                let mut split_rng = root.split(0x5917 + di as u64);
                splits.push(FewShotSplit::split(
                    &set,
                    config.seed_size,
                    config.dev_size,
                    &mut split_rng,
                ));
            }
            mentions.push(set);
        }
        Dataset { world, mentions, splits }
    }

    /// The underlying world.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Gold mentions of a domain by name.
    ///
    /// # Panics
    /// Panics for unknown domain names.
    pub fn mentions(&self, domain: &str) -> &MentionSet {
        self.mentions
            .iter()
            .find(|m| m.domain == domain)
            .unwrap_or_else(|| panic!("no mentions for domain {domain:?}"))
    }

    /// All mention sets in domain order.
    pub fn all_mentions(&self) -> &[MentionSet] {
        &self.mentions
    }

    /// Few-shot split of a test domain by name.
    ///
    /// # Panics
    /// Panics if the domain is not a test domain.
    pub fn split(&self, domain: &str) -> &FewShotSplit {
        self.splits
            .iter()
            .find(|s| s.domain == domain)
            .unwrap_or_else(|| panic!("no few-shot split for domain {domain:?}"))
    }

    /// All few-shot splits.
    pub fn splits(&self) -> &[FewShotSplit] {
        &self.splits
    }

    /// Pooled labeled mentions of all `Train`-role domains — the
    /// "general domain" training source of Tables VII/IX.
    pub fn general_domain_mentions(&self) -> Vec<(&str, &MentionSet)> {
        self.world
            .domains()
            .iter()
            .zip(&self.mentions)
            .filter(|(d, _)| d.role == DomainRole::Train)
            .map(|(d, m)| (d.name.as_str(), m))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(DatasetConfig::tiny(21))
    }

    #[test]
    fn builds_all_parts() {
        let ds = tiny();
        assert_eq!(ds.all_mentions().len(), 3);
        assert_eq!(ds.splits().len(), 1);
        let split = ds.split("TargetX");
        assert_eq!(split.seed.len(), 25);
        assert_eq!(split.dev.len(), 25);
        assert_eq!(split.test.len(), 140 - 50);
        assert_eq!(ds.mentions("SrcA").len(), 120);
    }

    #[test]
    fn general_domain_pool_excludes_test() {
        let ds = tiny();
        let general = ds.general_domain_mentions();
        assert_eq!(general.len(), 2);
        assert!(general.iter().all(|(name, _)| *name != "TargetX"));
    }

    #[test]
    fn deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.mentions("TargetX").mentions, b.mentions("TargetX").mentions);
        assert_eq!(a.split("TargetX").seed, b.split("TargetX").seed);
    }

    #[test]
    #[should_panic(expected = "no few-shot split")]
    fn split_for_train_domain_panics() {
        tiny().split("SrcA");
    }
}
