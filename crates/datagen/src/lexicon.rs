//! Per-domain lexicons built from a syllable grammar.
//!
//! Each domain's content vocabulary mixes two pools:
//!
//! * a **general pool**, shared by every domain (seeded only by the
//!   world seed), standing in for ordinary English content words;
//! * a **domain pool**, seeded by the domain name, standing in for the
//!   domain's jargon (card names, starship classes, brick types, …).
//!
//! The probability of drawing from the domain pool is the domain's
//! `gap` parameter. A large gap means most content words are unseen
//! outside the domain — exactly the property Table VIII measures via
//! the fine-tuning improvement, and the reason MetaBLINK helps most on
//! Lego/YuGiOh.
//!
//! For the 16 named Zeshel domains a small list of themed stems is
//! blended into the domain pool so that generated samples are readable
//! in the qualitative tables (Table II).

use mb_common::Rng;

const ONSETS: &[&str] = &[
    "b", "br", "c", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kr", "l", "m", "n", "p", "pr",
    "qu", "r", "s", "sh", "sk", "st", "t", "th", "tr", "v", "w", "z",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ae", "ia", "ou", "ei"];
const CODAS: &[&str] = &["", "", "", "l", "n", "r", "s", "st", "th", "x", "k", "m", "nd", "rk"];

/// Generate one pronounceable pseudo-word of 2–3 syllables.
// clippy's explicit_auto_deref suggestion breaks type inference here
// (T would be inferred as `str` before deref coercion applies).
#[allow(clippy::explicit_auto_deref)]
pub fn pseudo_word(rng: &mut Rng) -> String {
    let syllables = rng.range(2, 4);
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(*rng.choose(ONSETS));
        w.push_str(*rng.choose(VOWELS));
        if rng.chance(0.4) {
            w.push_str(*rng.choose(CODAS));
        }
    }
    w
}

/// Themed stems for the named Zeshel domains (empty for unknown names).
pub fn themed_stems(domain: &str) -> &'static [&'static str] {
    match domain {
        "American Football" => {
            &["quarterback", "touchdown", "stadium", "coach", "playoff", "league"]
        }
        "Doctor Who" => &["tardis", "dalek", "regeneration", "timelord", "sonic", "companion"],
        "Fallout" => &["vault", "wasteland", "raider", "stimpak", "overseer", "mutant"],
        "Final Fantasy" => &["chocobo", "summon", "crystal", "airship", "esper", "limit"],
        "Military" => &["battalion", "regiment", "artillery", "garrison", "offensive", "armour"],
        "Pro Wrestling" => &["champion", "heel", "ringside", "suplex", "federation", "title"],
        "StarWars" => &["jedi", "lightsaber", "droid", "empire", "force", "cruiser"],
        "World of Warcraft" => &["raid", "horde", "alliance", "dungeon", "quest", "mana"],
        "Coronation Street" => &["cobbles", "pub", "landlady", "affair", "factory", "wedding"],
        "Muppets" => &["puppet", "sketch", "theatre", "frog", "song", "backstage"],
        "Ice Hockey" => &["goaltender", "puck", "hattrick", "rink", "faceoff", "penalty"],
        "Elder Scrolls" => &["daedra", "dovah", "shout", "guild", "mage", "scroll"],
        "Forgotten Realms" => &["dragon", "realm", "archmage", "sword", "temple", "drow"],
        "Lego" => &["brick", "minifigure", "baseplate", "stud", "playset", "instruction"],
        "Star Trek" => &["starship", "warp", "federation", "phaser", "shuttlecraft", "tricorder"],
        "YuGiOh" => &["duel", "monster", "trap", "summon", "graveyard", "archetype"],
        _ => &[],
    }
}

/// Entity type words shared by all domains; used as disambiguation
/// phrases and description slots.
pub const TYPE_WORDS: &[&str] = &["character", "location", "item", "episode", "event", "faction"];

/// A domain's content-word lexicon.
#[derive(Debug, Clone)]
pub struct Lexicon {
    general: Vec<String>,
    specific: Vec<String>,
    /// A small pool of high-frequency domain words (connective jargon
    /// that appears all over the domain but is never entity-salient —
    /// never chosen as a keyword). Their high document frequency is
    /// only observable from *target* text, which is exactly what the
    /// rewriter's unsupervised adaptation (syn → syn*) learns.
    common: Vec<String>,
    /// Probability of drawing a content word from the domain pool.
    gap: f64,
}

impl Lexicon {
    /// Build the shared general pool (same for every domain of a world).
    pub fn general_pool(world_rng: &Rng, size: usize) -> Vec<String> {
        let mut rng = world_rng.split(0x009E_3A11);
        let mut pool = Vec::with_capacity(size);
        let mut seen = std::collections::BTreeSet::new();
        while pool.len() < size {
            let w = pseudo_word(&mut rng);
            if seen.insert(w.clone()) {
                pool.push(w);
            }
        }
        pool
    }

    /// Build a domain lexicon.
    ///
    /// `domain_rng` must be a per-domain stream; `general` is the shared
    /// pool from [`Lexicon::general_pool`].
    ///
    /// # Panics
    /// Panics if `general` is empty, `specific_size == 0`, or `gap` is
    /// outside `[0, 1]`.
    pub fn build(
        domain_name: &str,
        domain_rng: &Rng,
        general: Vec<String>,
        specific_size: usize,
        gap: f64,
    ) -> Self {
        assert!(!general.is_empty(), "Lexicon: general pool must be non-empty");
        assert!(specific_size > 0, "Lexicon: specific_size must be > 0");
        assert!((0.0..=1.0).contains(&gap), "Lexicon: gap must be in [0,1], got {gap}");
        let mut rng = domain_rng.split(0x05EC_1F1C);
        let mut specific: Vec<String> =
            themed_stems(domain_name).iter().map(|s| s.to_string()).collect();
        let mut seen: std::collections::BTreeSet<String> = specific.iter().cloned().collect();
        seen.extend(general.iter().cloned());
        while specific.len() < specific_size.max(specific.len()) {
            let w = pseudo_word(&mut rng);
            if seen.insert(w.clone()) {
                specific.push(w);
            }
        }
        let common_size = (specific_size / 16).clamp(6, 24);
        let mut common = Vec::with_capacity(common_size);
        while common.len() < common_size {
            let w = pseudo_word(&mut rng);
            if seen.insert(w.clone()) {
                common.push(w);
            }
        }
        Lexicon { general, specific, common, gap }
    }

    /// The domain-gap parameter.
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// The domain-specific pool.
    pub fn specific_words(&self) -> &[String] {
        &self.specific
    }

    /// The shared general pool.
    pub fn general_words(&self) -> &[String] {
        &self.general
    }

    /// The common (high-frequency, non-salient) domain pool.
    pub fn common_words(&self) -> &[String] {
        &self.common
    }

    /// Sample a content word: domain pool with probability `gap`
    /// (split evenly between the small common pool and the salient
    /// pool), general pool otherwise.
    pub fn content_word(&self, rng: &mut Rng) -> &str {
        if rng.chance(self.gap) {
            if rng.chance(0.5) {
                rng.choose(&self.common).as_str()
            } else {
                rng.choose(&self.specific).as_str()
            }
        } else {
            rng.choose(&self.general).as_str()
        }
    }

    /// Sample a domain-specific word unconditionally (for entity
    /// keywords, which should be recognisably in-domain).
    pub fn specific_word(&self, rng: &mut Rng) -> &str {
        rng.choose(&self.specific).as_str()
    }

    /// Sample a general word unconditionally.
    pub fn general_word(&self, rng: &mut Rng) -> &str {
        rng.choose(&self.general).as_str()
    }

    /// Capitalise a word for use in a name/title.
    pub fn capitalize(word: &str) -> String {
        let mut cs = word.chars();
        match cs.next() {
            Some(first) => first.to_uppercase().chain(cs).collect(),
            None => String::new(),
        }
    }

    /// Sample an entity name of `len` capitalised words, biased to the
    /// domain pool (names are jargon-heavy even in low-gap domains).
    pub fn name(&self, rng: &mut Rng, len: usize) -> String {
        let mut parts = Vec::with_capacity(len);
        for _ in 0..len {
            let w = if rng.chance(self.gap.max(0.6)) {
                rng.choose(&self.specific).as_str()
            } else {
                rng.choose(&self.general).as_str()
            };
            parts.push(Self::capitalize(w));
        }
        parts.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lexicon(gap: f64) -> Lexicon {
        let world = Rng::seed_from_u64(7);
        let general = Lexicon::general_pool(&world, 50);
        Lexicon::build("Lego", &world.split(1), general, 40, gap)
    }

    #[test]
    fn pseudo_words_are_nonempty_and_deterministic() {
        let mut a = Rng::seed_from_u64(3);
        let mut b = Rng::seed_from_u64(3);
        for _ in 0..50 {
            let wa = pseudo_word(&mut a);
            assert!(!wa.is_empty());
            assert_eq!(wa, pseudo_word(&mut b));
            assert!(wa.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn general_pool_is_unique_and_sized() {
        let world = Rng::seed_from_u64(1);
        let pool = Lexicon::general_pool(&world, 100);
        assert_eq!(pool.len(), 100);
        let set: std::collections::HashSet<_> = pool.iter().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn themed_stems_included_for_named_domains() {
        let lex = sample_lexicon(0.5);
        assert!(lex.specific_words().iter().any(|w| w == "brick"));
        assert!(lex.specific_words().iter().any(|w| w == "minifigure"));
        assert!(themed_stems("No Such Domain").is_empty());
    }

    #[test]
    fn gap_controls_pool_mixture() {
        let lex_hi = sample_lexicon(1.0);
        let mut rng = Rng::seed_from_u64(5);
        let mut common_hits = 0;
        for _ in 0..200 {
            let w = lex_hi.content_word(&mut rng).to_string();
            let in_specific = lex_hi.specific_words().contains(&w);
            let in_common = lex_hi.common_words().contains(&w);
            assert!(in_specific || in_common);
            common_hits += usize::from(in_common);
        }
        // The common pool supplies roughly half the domain draws.
        assert!((60..140).contains(&common_hits), "common draws {common_hits}");
        let lex_lo = sample_lexicon(0.0);
        let mut rng = Rng::seed_from_u64(6);
        for _ in 0..200 {
            let w = lex_lo.content_word(&mut rng).to_string();
            assert!(lex_lo.general_words().contains(&w));
        }
    }

    #[test]
    fn names_are_capitalised_with_requested_length() {
        let lex = sample_lexicon(0.7);
        let mut rng = Rng::seed_from_u64(9);
        let name = lex.name(&mut rng, 2);
        let parts: Vec<&str> = name.split(' ').collect();
        assert_eq!(parts.len(), 2);
        for p in parts {
            assert!(p.chars().next().unwrap().is_uppercase());
        }
    }

    #[test]
    #[should_panic(expected = "gap must be in [0,1]")]
    fn rejects_bad_gap() {
        let world = Rng::seed_from_u64(7);
        let general = Lexicon::general_pool(&world, 10);
        Lexicon::build("X", &world.split(1), general, 10, 1.5);
    }

    #[test]
    fn different_domains_get_different_jargon() {
        let world = Rng::seed_from_u64(7);
        let general = Lexicon::general_pool(&world, 50);
        let a = Lexicon::build("A", &world.split(1), general.clone(), 60, 0.5);
        let b = Lexicon::build("B", &world.split(2), general, 60, 0.5);
        let sa: std::collections::HashSet<_> = a.specific_words().iter().collect();
        let overlap = b.specific_words().iter().filter(|w| sa.contains(w)).count();
        assert!(overlap < 10, "domain pools overlap too much: {overlap}");
    }
}
