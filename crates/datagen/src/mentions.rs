//! Gold mention generation.
//!
//! A [`LinkedMention`] is a context with a marked mention span plus the
//! gold entity. Surfaces are sampled over the paper's four overlap
//! categories, skewed towards Low Overlap (the paper reports Low
//! Overlap as the majority type, which is why Name Matching fails).
//! Contexts always carry some of the entity's salient keywords — the
//! learnable semantic signal — and occasionally a *distractor* keyword
//! from a related entity, which creates Table II-style confusions.

use crate::world::{substring_span, title_base_text, DomainInfo, World};
use mb_common::Rng;
use mb_kb::EntityId;
use mb_text::{overlap, OverlapCategory};

/// A gold labeled mention: `context = left ⧺ surface ⧺ right`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkedMention {
    /// Context text before the mention span.
    pub left: String,
    /// The mention surface form.
    pub surface: String,
    /// Context text after the mention span.
    pub right: String,
    /// The gold entity.
    pub entity: EntityId,
    /// Overlap category of (surface, gold title).
    pub category: OverlapCategory,
}

impl LinkedMention {
    /// The full context with the surface inlined.
    pub fn text(&self) -> String {
        format!("{}{}{}", self.left, self.surface, self.right)
    }

    /// Re-derive the category from the stored surface and a title.
    pub fn classify_against(&self, title: &str) -> OverlapCategory {
        overlap::classify(&self.surface, title)
    }

    /// Replace the surface form (mention rewriting, Figure 3): the new
    /// surface is spliced into the same context and the category is
    /// re-derived against the gold title.
    pub fn with_surface(&self, surface: String, gold_title: &str) -> LinkedMention {
        let category = overlap::classify(&surface, gold_title);
        LinkedMention {
            left: self.left.clone(),
            surface,
            right: self.right.clone(),
            entity: self.entity,
            category,
        }
    }
}

/// All gold mentions of one domain.
#[derive(Debug, Clone)]
pub struct MentionSet {
    /// Domain name these mentions belong to.
    pub domain: String,
    /// The mentions, in generation order.
    pub mentions: Vec<LinkedMention>,
}

impl MentionSet {
    /// Number of mentions.
    pub fn len(&self) -> usize {
        self.mentions.len()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.mentions.is_empty()
    }

    /// Count per overlap category, in [`OverlapCategory::all`] order.
    pub fn category_counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for m in &self.mentions {
            let idx = OverlapCategory::all()
                .iter()
                .position(|c| *c == m.category)
                .expect("category in all()");
            counts[idx] += 1;
        }
        counts
    }
}

/// Default category sampling weights: [High, Multiple, Ambiguous, Low].
/// Low Overlap is the majority, as in the Zeshel test domains.
pub const CATEGORY_WEIGHTS: [f64; 4] = [0.18, 0.10, 0.15, 0.57];

/// Generate `count` gold mentions for a domain.
///
/// Entities are sampled by popularity; the surface category is sampled
/// from [`CATEGORY_WEIGHTS`] restricted to what the entity's title
/// permits (e.g. Multiple Categories needs a disambiguation phrase).
pub fn generate_mentions(
    world: &World,
    domain: &DomainInfo,
    count: usize,
    rng: &mut Rng,
) -> MentionSet {
    let ids = world.kb().domain_entities(domain.id);
    assert!(!ids.is_empty(), "cannot generate mentions for empty domain {}", domain.name);
    let popularity: Vec<f64> = ids.iter().map(|&id| world.meta(id).popularity).collect();
    let mut mentions = Vec::with_capacity(count);
    for _ in 0..count {
        let id = ids[rng.choose_weighted(&popularity)];
        mentions.push(generate_one(world, domain, id, rng));
    }
    MentionSet { domain: domain.name.clone(), mentions }
}

/// Generate one mention for a specific entity.
pub fn generate_one(
    world: &World,
    domain: &DomainInfo,
    id: EntityId,
    rng: &mut Rng,
) -> LinkedMention {
    let entity = world.kb().entity(id);
    let meta = world.meta(id);
    let title = &entity.title;
    let has_disambig = overlap::title_base(title).is_some();
    let base = title_base_text(title);
    let multi_token_base = mb_text::tokenize(&base).len() >= 2;

    // Feasible categories with their weights.
    let mut weights = CATEGORY_WEIGHTS;
    if has_disambig {
        weights[0] = 0.0; // High Overlap: full title with "(type)" never appears in text
    } else {
        weights[1] = 0.0; // Multiple Categories needs a disambiguation phrase
    }
    if !multi_token_base {
        weights[2] = 0.0; // Ambiguous Substring needs a multi-token base
    }
    let category = OverlapCategory::all()[rng.choose_weighted(&weights)];

    let surface = match category {
        OverlapCategory::HighOverlap => base.clone(),
        OverlapCategory::MultipleCategories => base.clone(),
        OverlapCategory::AmbiguousSubstring => {
            substring_span(title, rng).unwrap_or_else(|| base.clone())
        }
        OverlapCategory::LowOverlap => rng.choose(&meta.aliases).clone(),
    };
    // Re-derive the category from the actual strings: a substring span
    // can coincide with the base of a disambiguated title, etc.
    let category = overlap::classify(&surface, title);

    let (left, right) = compose_context(world, domain, id, rng);
    LinkedMention { left, surface, right, entity: id, category }
}

/// Compose the left/right context around a mention slot.
fn compose_context(
    world: &World,
    domain: &DomainInfo,
    id: EntityId,
    rng: &mut Rng,
) -> (String, String) {
    let meta = world.meta(id);
    let lex = &domain.lexicon;
    let kw1 = rng.choose(&meta.keywords).clone();
    let kw2 = rng.choose(&meta.keywords).clone();
    let filler1 = lex.content_word(rng).to_string();
    let filler2 = lex.content_word(rng).to_string();
    // Occasionally name-drop a related entity or one of its keywords —
    // this is the confusable signal behind Table II error cases.
    let distractor = if !meta.related.is_empty() && rng.chance(0.35) {
        let rel = *rng.choose(&meta.related);
        if rng.chance(0.5) {
            title_base_text(&world.kb().entity(rel).title).to_lowercase()
        } else {
            rng.choose(&world.meta(rel).keywords).clone()
        }
    } else {
        lex.content_word(rng).to_string()
    };
    match rng.below(4) {
        0 => (
            format!("the {kw1} {filler1} turned on "),
            format!(" when the {kw2} of {distractor} appeared"),
        ),
        1 => (
            format!("after the {kw1} {filler1}, "),
            format!(" faced the {distractor} in the {kw2} {filler2}"),
        ),
        2 => (
            format!("{distractor} remembered that "),
            format!(" held the {kw1} during the {kw2} {filler2}"),
        ),
        _ => (
            format!("in the {filler1} of {kw1}, "),
            format!(" was seen near the {kw2} {distractor}"),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{World, WorldConfig};

    fn setup() -> (World, MentionSet) {
        let world = World::generate(WorldConfig::tiny(11));
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(5);
        let ms = generate_mentions(&world, &domain, 300, &mut rng);
        (world, ms)
    }

    #[test]
    fn generates_requested_count_with_valid_entities() {
        let (world, ms) = setup();
        assert_eq!(ms.len(), 300);
        let target = world.domain("TargetX");
        for m in &ms.mentions {
            assert_eq!(world.kb().entity(m.entity).domain, target.id);
            assert!(!m.surface.is_empty());
        }
    }

    #[test]
    fn low_overlap_is_majority() {
        let (_, ms) = setup();
        let counts = ms.category_counts();
        let total: usize = counts.iter().sum();
        // counts order: [High, Multiple, Ambiguous, Low]
        assert!(counts[3] * 2 > total, "Low Overlap not majority: {counts:?}");
        assert!(counts[0] > 0, "no High Overlap mentions: {counts:?}");
    }

    #[test]
    fn stored_category_matches_reclassification() {
        let (world, ms) = setup();
        for m in &ms.mentions {
            let title = &world.kb().entity(m.entity).title;
            assert_eq!(m.category, m.classify_against(title));
        }
    }

    #[test]
    fn contexts_carry_entity_keywords() {
        let (world, ms) = setup();
        let mut with_kw = 0;
        for m in &ms.mentions {
            let ctx = format!("{} {}", m.left, m.right).to_lowercase();
            let kws = &world.meta(m.entity).keywords;
            if kws.iter().any(|k| ctx.contains(k.as_str())) {
                with_kw += 1;
            }
        }
        assert!(
            with_kw as f64 / ms.len() as f64 > 0.95,
            "only {with_kw}/{} contexts contain a keyword",
            ms.len()
        );
    }

    #[test]
    fn text_splices_surface() {
        let (_, ms) = setup();
        let m = &ms.mentions[0];
        assert!(m.text().contains(&m.surface));
        assert!(m.text().starts_with(&m.left));
        assert!(m.text().ends_with(&m.right));
    }

    #[test]
    fn with_surface_reclassifies() {
        let (world, ms) = setup();
        let m = &ms.mentions[0];
        let title = &world.kb().entity(m.entity).title;
        let rewritten = m.with_surface(title_base_text(title), title);
        assert!(matches!(
            rewritten.category,
            OverlapCategory::HighOverlap | OverlapCategory::MultipleCategories
        ));
        assert_eq!(rewritten.left, m.left);
        assert_eq!(rewritten.entity, m.entity);
    }

    #[test]
    fn popularity_biases_sampling() {
        let (world, ms) = setup();
        use std::collections::HashMap;
        let mut counts: HashMap<EntityId, usize> = HashMap::new();
        for m in &ms.mentions {
            *counts.entry(m.entity).or_insert(0) += 1;
        }
        // The most-mentioned entity should be sampled clearly above the
        // uniform rate (300 / 90 = 3.3).
        let max = counts.values().max().copied().unwrap();
        assert!(max >= 7, "max mention count {max} suggests no popularity skew");
        let target = world.domain("TargetX");
        let _ = target;
    }

    #[test]
    fn deterministic_given_seed() {
        let world = World::generate(WorldConfig::tiny(11));
        let domain = world.domain("TargetX").clone();
        let a = generate_mentions(&world, &domain, 50, &mut Rng::seed_from_u64(9));
        let b = generate_mentions(&world, &domain, 50, &mut Rng::seed_from_u64(9));
        assert_eq!(a.mentions, b.mentions);
    }
}
