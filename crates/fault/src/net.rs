//! Deterministic network fault injection: a seed-replayable TCP proxy.
//!
//! [`NetProxy`] sits between a client and an upstream server and
//! applies one [`NetFault`] per accepted connection, chosen by the
//! connection's accept index from a seeded [`NetFaultPlan`]. The same
//! seed always yields the same fault parameters in the same order, so
//! a chaos-test failure replays exactly from its seed (the accept
//! *order* under real concurrency is the only nondeterminism, which is
//! why plans assign faults by index instead of by wall clock).
//!
//! The fault model mirrors what real networks do to an HTTP server:
//!
//! * **Slow loris** ([`NetFault::SlowLoris`]): the client's request
//!   bytes trickle upstream a few bytes at a time with a delay between
//!   chunks — a slow or adversarial writer. The server must bound the
//!   read with a timeout instead of parking a handler thread forever.
//! * **Torn reply** ([`NetFault::TornReply`]): the proxy forwards only
//!   a prefix of the server's response and then closes both directions
//!   — a connection dying mid-response. The *client* sees torn bytes;
//!   the test asserts such responses never parse as a complete `200`.
//! * **Abort** ([`NetFault::Abort`]): the connection is closed abruptly
//!   after a prefix of the *request* has been forwarded — a client
//!   reset while the server is still reading. The server must treat it
//!   as an I/O error, not a crash.
//! * **Stalled client** ([`NetFault::StalledClient`]): response bytes
//!   are held for a while before being forwarded — a reader that stops
//!   draining its socket. Bounded server-side write buffering plus the
//!   reply path's timeout keep worker state bounded.

use mb_common::Rng;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Upper bound on how long a proxy pump thread blocks in one read; this
/// is what bounds the proxy's wall clock after the test stops driving
/// traffic.
const PUMP_READ_TIMEOUT: Duration = Duration::from_secs(5);

/// Copy-buffer size for the pump threads.
const PUMP_BUF: usize = 4096;

/// One per-connection network fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Forward traffic untouched.
    None,
    /// Trickle the request upstream `chunk` bytes at a time, sleeping
    /// `delay_ms` between chunks.
    SlowLoris {
        /// Bytes forwarded per chunk (≥ 1).
        chunk: usize,
        /// Sleep between chunks, in milliseconds.
        delay_ms: u64,
    },
    /// Forward only the first `after` bytes of the response, then close
    /// both directions — the client observes a torn response.
    TornReply {
        /// Response bytes forwarded before the tear.
        after: u64,
    },
    /// Close the connection abruptly after forwarding `after` request
    /// bytes upstream — the server observes a mid-request disconnect.
    Abort {
        /// Request bytes forwarded before the abort.
        after: u64,
    },
    /// Hold response bytes for `delay_ms` before forwarding the first
    /// chunk — a client that stops reading.
    StalledClient {
        /// How long the first response chunk is held, in milliseconds.
        delay_ms: u64,
    },
}

/// A seeded, replayable schedule assigning a [`NetFault`] to every
/// accepted connection by its accept index (wrapping around the plan).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetFaultPlan {
    faults: Vec<NetFault>,
}

impl NetFaultPlan {
    /// A plan that never injects faults (plain proxying).
    pub fn clean() -> Self {
        NetFaultPlan { faults: vec![NetFault::None] }
    }

    /// A plan with an explicit fault sequence; connection `i` gets
    /// entry `i % len`.
    ///
    /// # Panics
    /// Panics if `faults` is empty.
    pub fn from_faults(faults: Vec<NetFault>) -> Self {
        assert!(!faults.is_empty(), "NetFaultPlan: fault list must be non-empty");
        NetFaultPlan { faults }
    }

    /// The canonical chaos schedule: every fault kind with seed-chosen
    /// parameters, interleaved with clean connections so mixed traffic
    /// mostly succeeds. The same seed always produces the same plan.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let faults = vec![
            NetFault::None,
            NetFault::SlowLoris {
                chunk: 1 + (rng.next_u64() % 3) as usize,
                delay_ms: 5 + rng.next_u64() % 20,
            },
            NetFault::None,
            NetFault::TornReply { after: 1 + rng.next_u64() % 40 },
            NetFault::None,
            NetFault::Abort { after: rng.next_u64() % 24 },
            NetFault::None,
            NetFault::StalledClient { delay_ms: 20 + rng.next_u64() % 60 },
        ];
        NetFaultPlan { faults }
    }

    /// The fault assigned to the `index`-th accepted connection.
    pub fn fault_for(&self, index: u64) -> NetFault {
        // from_faults/seeded/clean all guarantee a non-empty list.
        self.faults
            .get((index % self.faults.len() as u64) as usize)
            .copied()
            .unwrap_or(NetFault::None)
    }

    /// The raw fault sequence (for logging a schedule under test).
    pub fn faults(&self) -> &[NetFault] {
        &self.faults
    }
}

/// A running fault-injecting TCP proxy. Dropping the handle does not
/// stop it; call [`NetProxy::stop`].
pub struct NetProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicU64>,
    acceptor: JoinHandle<()>,
}

impl NetProxy {
    /// Bind an ephemeral local port and start proxying every accepted
    /// connection to `upstream`, applying `plan`'s fault for each
    /// connection's accept index.
    ///
    /// # Errors
    /// [`mb_common::Error::Io`] when the listen socket cannot be bound.
    pub fn start(upstream: SocketAddr, plan: NetFaultPlan) -> mb_common::Result<NetProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| mb_common::Error::Io(format!("proxy bind: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| mb_common::Error::Io(format!("proxy local_addr: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicU64::new(0));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = stream else { continue };
                    let index = accepted.fetch_add(1, Ordering::SeqCst);
                    let fault = plan.fault_for(index);
                    // Connection threads are detached; their read
                    // timeouts bound their lifetime after stop().
                    std::thread::spawn(move || proxy_connection(client, upstream, fault));
                }
            })
        };
        Ok(NetProxy { addr, stop, accepted, acceptor })
    }

    /// The proxy's listen address — point clients here.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the acceptor thread. In-flight pump
    /// threads die on their own read timeouts.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the acceptor loose from accept().
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        let _ = self.acceptor.join();
    }
}

/// Close both directions of both streams; pump threads blocked on the
/// peer then observe EOF or an error and exit.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

fn proxy_connection(client: TcpStream, upstream: SocketAddr, fault: NetFault) {
    let Ok(server) = TcpStream::connect_timeout(&upstream, Duration::from_secs(2)) else {
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let _ = client.set_read_timeout(Some(PUMP_READ_TIMEOUT));
    let _ = server.set_read_timeout(Some(PUMP_READ_TIMEOUT));
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);

    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        sever(&client, &server);
        return;
    };
    // client → server carries the request; server → client the reply.
    let up = std::thread::spawn(move || pump_request(client_r, server, fault));
    pump_reply(server_r, client, fault);
    let _ = up.join();
}

/// Forward request bytes (client → upstream), applying request-side
/// faults. Returns when the client closes, errors, or the fault severs
/// the connection.
fn pump_request(mut from: TcpStream, mut to: TcpStream, fault: NetFault) {
    let mut buf = [0u8; PUMP_BUF];
    let mut forwarded: u64 = 0;
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let Some(chunk) = buf.get(..n) else { break };
        match fault {
            NetFault::SlowLoris { chunk: step, delay_ms } => {
                // Trickle this chunk out in `step`-byte slices.
                for piece in chunk.chunks(step.max(1)) {
                    std::thread::sleep(Duration::from_millis(delay_ms));
                    if to.write_all(piece).is_err() {
                        sever(&from, &to);
                        return;
                    }
                }
            }
            NetFault::Abort { after } => {
                let room = after.saturating_sub(forwarded) as usize;
                let piece = chunk.get(..room.min(chunk.len())).unwrap_or(&[]);
                if !piece.is_empty() && to.write_all(piece).is_err() {
                    sever(&from, &to);
                    return;
                }
                forwarded += piece.len() as u64;
                if forwarded >= after {
                    // Abrupt close mid-request: the server sees the
                    // connection die while it is still reading.
                    sever(&from, &to);
                    return;
                }
            }
            _ => {
                if to.write_all(chunk).is_err() {
                    break;
                }
            }
        }
        forwarded = forwarded.saturating_add(n as u64);
    }
    // Half-close so the upstream sees request EOF but can still reply.
    let _ = to.shutdown(Shutdown::Write);
}

/// Forward reply bytes (upstream → client), applying response-side
/// faults.
fn pump_reply(mut from: TcpStream, mut to: TcpStream, fault: NetFault) {
    let mut buf = [0u8; PUMP_BUF];
    let mut forwarded: u64 = 0;
    let mut stalled = matches!(fault, NetFault::StalledClient { .. });
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let Some(chunk) = buf.get(..n) else { break };
        if stalled {
            if let NetFault::StalledClient { delay_ms } = fault {
                // The "client" refuses to drain its socket for a while.
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            stalled = false;
        }
        match fault {
            NetFault::TornReply { after } => {
                let room = after.saturating_sub(forwarded) as usize;
                let piece = chunk.get(..room.min(chunk.len())).unwrap_or(&[]);
                if !piece.is_empty() && to.write_all(piece).is_err() {
                    sever(&from, &to);
                    return;
                }
                forwarded += piece.len() as u64;
                if forwarded >= after {
                    // Tear the response: the client got only a prefix.
                    sever(&from, &to);
                    return;
                }
            }
            _ => {
                if to.write_all(chunk).is_err() {
                    break;
                }
                forwarded = forwarded.saturating_add(n as u64);
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpListener;

    /// A one-connection upstream echoing a fixed reply after reading
    /// until request EOF (or `stop` bytes).
    fn upstream_once(reply: Vec<u8>) -> (SocketAddr, JoinHandle<Vec<u8>>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut seen = Vec::new();
            let mut buf = [0u8; 256];
            loop {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => seen.extend_from_slice(&buf[..n]),
                }
                if seen.ends_with(b"\n") {
                    break; // our test "protocol": newline ends a request
                }
            }
            let _ = s.write_all(&reply);
            let _ = s.flush();
            seen
        });
        (addr, h)
    }

    #[test]
    fn seeded_plans_replay_exactly() {
        assert_eq!(NetFaultPlan::seeded(7), NetFaultPlan::seeded(7));
        assert_ne!(NetFaultPlan::seeded(7), NetFaultPlan::seeded(8));
        // Every kind appears in the canonical schedule.
        let plan = NetFaultPlan::seeded(7);
        assert!(plan.faults().iter().any(|f| matches!(f, NetFault::SlowLoris { .. })));
        assert!(plan.faults().iter().any(|f| matches!(f, NetFault::TornReply { .. })));
        assert!(plan.faults().iter().any(|f| matches!(f, NetFault::Abort { .. })));
        assert!(plan.faults().iter().any(|f| matches!(f, NetFault::StalledClient { .. })));
    }

    #[test]
    fn fault_assignment_wraps_by_index() {
        let plan =
            NetFaultPlan::from_faults(vec![NetFault::None, NetFault::TornReply { after: 3 }]);
        assert_eq!(plan.fault_for(0), NetFault::None);
        assert_eq!(plan.fault_for(1), NetFault::TornReply { after: 3 });
        assert_eq!(plan.fault_for(2), NetFault::None);
        assert_eq!(plan.fault_for(5), NetFault::TornReply { after: 3 });
    }

    #[test]
    fn clean_proxy_passes_traffic_through() {
        let (addr, upstream) = upstream_once(b"pong".to_vec());
        let proxy = NetProxy::start(addr, NetFaultPlan::clean()).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"ping\n").unwrap();
        let mut reply = Vec::new();
        c.read_to_end(&mut reply).unwrap();
        assert_eq!(reply, b"pong");
        assert_eq!(upstream.join().unwrap(), b"ping\n");
        assert_eq!(proxy.accepted(), 1);
        proxy.stop();
    }

    #[test]
    fn slow_loris_still_delivers_the_full_request() {
        let (addr, upstream) = upstream_once(b"ok".to_vec());
        let plan = NetFaultPlan::from_faults(vec![NetFault::SlowLoris { chunk: 2, delay_ms: 1 }]);
        let proxy = NetProxy::start(addr, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"dripfeed\n").unwrap();
        let mut reply = Vec::new();
        c.read_to_end(&mut reply).unwrap();
        assert_eq!(reply, b"ok");
        assert_eq!(upstream.join().unwrap(), b"dripfeed\n");
        proxy.stop();
    }

    #[test]
    fn torn_reply_delivers_only_a_prefix() {
        let full = b"0123456789abcdef".to_vec();
        let (addr, upstream) = upstream_once(full.clone());
        let plan = NetFaultPlan::from_faults(vec![NetFault::TornReply { after: 6 }]);
        let proxy = NetProxy::start(addr, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"req\n").unwrap();
        let mut reply = Vec::new();
        let _ = c.read_to_end(&mut reply); // severed mid-reply: error or EOF
        assert!(reply.len() <= 6, "tear let {} bytes through", reply.len());
        assert_eq!(&reply[..], &full[..reply.len()], "prefix only");
        let _ = upstream.join();
        proxy.stop();
    }

    #[test]
    fn abort_cuts_the_request_short() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let upstream = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
            let mut seen = Vec::new();
            let _ = s.read_to_end(&mut seen); // until the abort severs us
            seen
        });
        let plan = NetFaultPlan::from_faults(vec![NetFault::Abort { after: 4 }]);
        let proxy = NetProxy::start(addr, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        let _ = c.write_all(b"a long request body that will be cut");
        let seen = upstream.join().unwrap();
        assert!(seen.len() <= 4, "abort forwarded {} bytes", seen.len());
        proxy.stop();
    }

    #[test]
    fn stalled_client_eventually_gets_the_reply() {
        let (addr, upstream) = upstream_once(b"late but complete".to_vec());
        let plan = NetFaultPlan::from_faults(vec![NetFault::StalledClient { delay_ms: 30 }]);
        let proxy = NetProxy::start(addr, plan).unwrap();
        let mut c = TcpStream::connect(proxy.addr()).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        c.write_all(b"req\n").unwrap();
        let started = std::time::Instant::now();
        let mut reply = Vec::new();
        c.read_to_end(&mut reply).unwrap();
        assert_eq!(reply, b"late but complete");
        assert!(started.elapsed() >= Duration::from_millis(25), "stall was not applied");
        let _ = upstream.join();
        proxy.stop();
    }
}
