//! # mb-fault
//!
//! Deterministic fault injection for crash-safety testing of the
//! MetaBLINK training pipeline. Everything here plugs into the two
//! seams `mb-common` exposes:
//!
//! * [`mb_common::storage::StepBudget`] — [`KillAt`] aborts a run at an
//!   exact unit of progress, simulating the process dying there;
//!   [`TickCounter`] measures how many units a run takes, so tests can
//!   then kill at every possible point.
//! * [`mb_common::storage::Storage`] — [`FaultyStorage`] wraps any
//!   backend and injects torn writes, single-bit corruption, and
//!   transient I/O errors according to a seed-driven [`Fault`] plan.
//!
//! Every fault is deterministic: the same seed and the same plan
//! produce byte-identical corruption, so a failure found in CI replays
//! exactly from its seed. This is the fault model the `mb-params v2`
//! checkpoint format and the `mb-core` checkpoint manager are tested
//! against (see DESIGN.md).
//!
//! The fault model, precisely:
//!
//! * **Kill** ([`KillAt`]): the run stops with [`Error::Aborted`]
//!   between two units of work. State checkpointed before the kill
//!   survives; everything after is lost. Recovery: resume from the
//!   newest checkpoint and replay.
//! * **Torn write** ([`Fault::TornWrite`]): a write reports success but
//!   only a prefix of the bytes is durable — what a crash during a
//!   non-atomic write, or a lying disk cache, leaves behind. Recovery:
//!   the v2 section framing detects the truncation at load time and the
//!   manager falls back to the previous good generation.
//! * **Bit flip** ([`Fault::BitFlip`]): a write reports success but one
//!   seed-chosen bit of the stored bytes is inverted — media
//!   corruption. Recovery: the per-section CRC detects it; fall back.
//! * **Transient I/O** ([`Fault::TransientIo`]): an operation fails
//!   with [`Error::Io`] a bounded number of times, then works —
//!   NFS hiccups, `EINTR`, momentary `ENOSPC`. Recovery: bounded retry
//!   with backoff at the call site.
//!
//! The [`net`] module extends the same seed-replayable philosophy to
//! the network: a fault-injecting TCP proxy ([`net::NetProxy`]) that
//! slow-rolls requests, tears replies mid-response, aborts connections,
//! and stalls readers — the fault model mb-serve's chaos tests run
//! against.

#![warn(missing_docs)]

pub mod net;

use mb_common::storage::{StepBudget, Storage};
use mb_common::{Error, Result, Rng};
use std::path::Path;

/// A [`StepBudget`] that aborts the run at an exact point, simulating a
/// process kill between two units of work.
#[derive(Debug, Clone)]
pub struct KillAt {
    at: u64,
    ticks: u64,
}

impl KillAt {
    /// Abort on the `at`-th call to [`StepBudget::tick`] (0-based): the
    /// run performs exactly `at` units of work before dying.
    pub fn new(at: u64) -> Self {
        KillAt { at, ticks: 0 }
    }

    /// Number of successful ticks so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

impl StepBudget for KillAt {
    fn tick(&mut self) -> Result<()> {
        if self.ticks == self.at {
            return Err(Error::Aborted(format!("injected kill at step {}", self.at)));
        }
        self.ticks += 1;
        Ok(())
    }
}

/// A [`StepBudget`] that never aborts but counts ticks, used to measure
/// the total number of kill points in a run before sweeping them.
#[derive(Debug, Clone, Default)]
pub struct TickCounter {
    ticks: u64,
}

impl TickCounter {
    /// A fresh counter.
    pub fn new() -> Self {
        TickCounter::default()
    }

    /// Number of ticks observed.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }
}

impl StepBudget for TickCounter {
    fn tick(&mut self) -> Result<()> {
        self.ticks += 1;
        Ok(())
    }
}

/// One injectable storage fault. Write indices are 0-based and count
/// calls to [`Storage::write_atomic`]; operation indices count every
/// fallible storage call (read, write, remove, list) in order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The `at_write`-th write reports success but stores only a
    /// seed-chosen strict prefix of the data.
    TornWrite {
        /// Index of the write to tear.
        at_write: u64,
    },
    /// The `at_write`-th write reports success but one seed-chosen bit
    /// of the stored bytes is inverted.
    BitFlip {
        /// Index of the write to corrupt.
        at_write: u64,
    },
    /// Operations `at_op .. at_op + failures` each fail with
    /// [`Error::Io`], after which storage works normally.
    TransientIo {
        /// Index of the first failing operation.
        at_op: u64,
        /// How many consecutive operations fail.
        failures: u64,
    },
}

/// A [`Storage`] wrapper that injects the faults in its plan
/// deterministically, driven by a seed.
///
/// Corruption faults (torn writes, bit flips) report **success** to the
/// writer — the code under test believes the checkpoint is durable, and
/// only discovers the damage at load time. That is the scenario the
/// generation-fallback recovery path exists for.
#[derive(Debug, Clone)]
pub struct FaultyStorage<S> {
    inner: S,
    rng: Rng,
    faults: Vec<Fault>,
    writes: u64,
    ops: u64,
}

impl<S: Storage> FaultyStorage<S> {
    /// Wrap `inner` with an empty fault plan; `seed` drives all random
    /// choices (tear length, flipped bit).
    pub fn new(inner: S, seed: u64) -> Self {
        FaultyStorage {
            inner,
            rng: Rng::seed_from_u64(seed),
            faults: Vec::new(),
            writes: 0,
            ops: 0,
        }
    }

    /// Add a fault to the plan (builder style).
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Number of writes attempted so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of fallible operations attempted so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Access the wrapped backend (e.g. to inspect stored bytes).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Fails with [`Error::Io`] if the current op index is inside a
    /// `TransientIo` window. Must be called exactly once per operation.
    fn account_op(&mut self) -> Result<()> {
        let op = self.ops;
        self.ops += 1;
        for f in &self.faults {
            if let Fault::TransientIo { at_op, failures } = *f {
                if op >= at_op && op < at_op + failures {
                    return Err(Error::Io(format!("injected transient io error at op {op}")));
                }
            }
        }
        Ok(())
    }
}

impl<S: Storage> Storage for FaultyStorage<S> {
    fn read(&mut self, path: &Path) -> Result<Vec<u8>> {
        self.account_op()?;
        self.inner.read(path)
    }

    fn write_atomic(&mut self, path: &Path, data: &[u8]) -> Result<()> {
        self.account_op()?;
        let write = self.writes;
        self.writes += 1;
        let mut stored = data.to_vec();
        for f in &self.faults {
            match *f {
                Fault::TornWrite { at_write } if at_write == write => {
                    // Keep a strict prefix: [0, len) bytes survive.
                    let keep = if stored.is_empty() {
                        0
                    } else {
                        (self.rng.next_u64() % stored.len() as u64) as usize
                    };
                    stored.truncate(keep);
                }
                Fault::BitFlip { at_write } if at_write == write && !stored.is_empty() => {
                    let bit = (self.rng.next_u64() % (stored.len() as u64 * 8)) as usize;
                    stored[bit / 8] ^= 1 << (bit % 8);
                }
                _ => {}
            }
        }
        self.inner.write_atomic(path, &stored)
    }

    fn exists(&mut self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn remove(&mut self, path: &Path) -> Result<()> {
        self.account_op()?;
        self.inner.remove(path)
    }

    fn list(&mut self, dir: &Path) -> Result<Vec<String>> {
        self.account_op()?;
        self.inner.list(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::storage::MemStorage;

    #[test]
    fn kill_at_aborts_exactly_there() {
        let mut b = KillAt::new(3);
        assert!(b.tick().is_ok());
        assert!(b.tick().is_ok());
        assert!(b.tick().is_ok());
        let err = b.tick().unwrap_err();
        assert!(matches!(err, Error::Aborted(_)), "got {err:?}");
        assert_eq!(b.ticks(), 3);
        // Still dead on subsequent ticks.
        assert!(b.tick().is_err());
    }

    #[test]
    fn kill_at_zero_dies_immediately() {
        let mut b = KillAt::new(0);
        assert!(b.tick().is_err());
    }

    #[test]
    fn tick_counter_counts() {
        let mut c = TickCounter::new();
        for _ in 0..17 {
            c.tick().unwrap();
        }
        assert_eq!(c.ticks(), 17);
    }

    #[test]
    fn torn_write_stores_prefix_but_reports_success() {
        let mem = MemStorage::new();
        let mut s =
            FaultyStorage::new(mem.clone(), 11).with_fault(Fault::TornWrite { at_write: 1 });
        let p = Path::new("ckpt/a");
        let data = vec![7u8; 100];
        s.write_atomic(p, &data).unwrap(); // write 0: clean
        assert_eq!(mem.peek(p).unwrap(), data);
        s.write_atomic(p, &data).unwrap(); // write 1: torn, still Ok
        let stored = mem.peek(p).unwrap();
        assert!(stored.len() < data.len(), "tear kept all {} bytes", stored.len());
        assert_eq!(&stored[..], &data[..stored.len()], "tear must be a prefix");
    }

    #[test]
    fn bit_flip_inverts_exactly_one_bit() {
        let mem = MemStorage::new();
        let mut s = FaultyStorage::new(mem.clone(), 5).with_fault(Fault::BitFlip { at_write: 0 });
        let p = Path::new("x");
        let data = vec![0u8; 64];
        s.write_atomic(p, &data).unwrap();
        let stored = mem.peek(p).unwrap();
        assert_eq!(stored.len(), data.len());
        let flipped: u32 = stored.iter().zip(&data).map(|(a, b)| (a ^ b).count_ones()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn corruption_is_deterministic_in_the_seed() {
        let run = |seed: u64| {
            let mem = MemStorage::new();
            let mut s = FaultyStorage::new(mem.clone(), seed)
                .with_fault(Fault::BitFlip { at_write: 0 })
                .with_fault(Fault::TornWrite { at_write: 1 });
            s.write_atomic(Path::new("a"), &[0xAB; 200]).unwrap();
            s.write_atomic(Path::new("b"), &[0xCD; 200]).unwrap();
            (mem.peek(Path::new("a")).unwrap(), mem.peek(Path::new("b")).unwrap())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn transient_io_fails_bounded_then_recovers() {
        let mut s = FaultyStorage::new(MemStorage::new(), 1)
            .with_fault(Fault::TransientIo { at_op: 1, failures: 2 });
        let p = Path::new("x");
        s.write_atomic(p, b"v1").unwrap(); // op 0: ok
        assert!(matches!(s.write_atomic(p, b"v2"), Err(Error::Io(_)))); // op 1
        assert!(matches!(s.read(p), Err(Error::Io(_)))); // op 2
        assert_eq!(s.read(p).unwrap(), b"v1"); // op 3: recovered, v2 never landed
        assert_eq!(s.ops(), 4);
    }

    #[test]
    fn unfaulted_ops_pass_through() {
        let mut s = FaultyStorage::new(MemStorage::new(), 9);
        let d = Path::new("dir");
        s.write_atomic(&d.join("k"), b"v").unwrap();
        assert!(s.exists(&d.join("k")));
        assert_eq!(s.list(d).unwrap(), vec!["k".to_string()]);
        s.remove(&d.join("k")).unwrap();
        assert!(!s.exists(&d.join("k")));
    }
}
