//! Self-tests of the mb-check framework: shrinking terminates at a
//! known minimal counterexample, seeds are reproducible, and the macro
//! surface works end to end.

use mb_check::gen::{self, Gen};
use mb_check::{Config, Outcome};
use std::cell::RefCell;

#[test]
fn shrinks_vector_to_minimal_counterexample() {
    // Known-false property: "every vector is shorter than 5". The
    // greedy shrinker must terminate at the unique local minimum
    // [0, 0, 0, 0, 0]: shorter vectors pass, and every element shrinks
    // to the range's lower bound.
    let cfg = Config::new(64);
    let g = gen::vec_of(gen::u32_in(0..100), 0..30);
    let outcome = mb_check::run(&cfg, "selftest::short_vecs", &g, |xs| {
        mb_check::prop_assert!(xs.len() < 5);
        Ok(())
    });
    match outcome {
        Outcome::Failed { minimal, shrink_steps, .. } => {
            assert_eq!(minimal, vec![0u32; 5], "not the local minimum");
            assert!(shrink_steps < cfg.max_shrink_steps, "shrink budget exhausted");
        }
        Outcome::Passed { .. } => panic!("known-false property passed"),
    }
}

#[test]
fn shrinks_integer_to_boundary() {
    // "x < 50" fails exactly on [50, 1000); the minimum is 50.
    let cfg = Config::new(64);
    let g = (gen::u64_in(0..1000),);
    let outcome = mb_check::run(&cfg, "selftest::int_boundary", &g, |&(x,)| {
        mb_check::prop_assert!(x < 50);
        Ok(())
    });
    match outcome {
        Outcome::Failed { minimal, .. } => assert_eq!(minimal.0, 50),
        Outcome::Passed { .. } => panic!("known-false property passed"),
    }
}

#[test]
fn shrinking_handles_panicking_properties() {
    // Panics count as failures and shrink like assertion failures.
    let cfg = Config::new(64);
    let g = (gen::usize_in(0..100),);
    let outcome = mb_check::run(&cfg, "selftest::panics", &g, |&(x,)| {
        assert!(x < 10, "boom");
        Ok(())
    });
    match outcome {
        Outcome::Failed { minimal, error, .. } => {
            assert_eq!(minimal.0, 10);
            assert!(error.contains("panicked"), "error was: {error}");
        }
        Outcome::Passed { .. } => panic!("known-false property passed"),
    }
}

#[test]
fn identical_seed_produces_identical_cases() {
    let collect_with = |seed: u64| {
        let seen: RefCell<Vec<(u64, Vec<f64>, String)>> = RefCell::new(Vec::new());
        let cfg = Config { cases: 32, seed, max_shrink_steps: 0 };
        let g = (
            gen::u64_any(),
            gen::vec_of(gen::f64_in(-3.0..3.0), 0..8),
            gen::lowercase_string(1..=6),
        );
        let outcome = mb_check::run(&cfg, "selftest::determinism", &g, |v| {
            seen.borrow_mut().push(v.clone());
            Ok(())
        });
        assert!(matches!(outcome, Outcome::Passed { cases: 32 }));
        seen.into_inner()
    };
    let a = collect_with(0xDEAD_BEEF);
    let b = collect_with(0xDEAD_BEEF);
    let c = collect_with(0xBEEF_DEAD);
    assert_eq!(a, b, "same seed must generate the same cases");
    assert_ne!(a, c, "different seeds should generate different cases");
}

#[test]
fn reported_seed_replays_the_failure() {
    // The seed in a failure report regenerates the exact same original
    // input — this is what `MB_CHECK_SEED=<seed>` relies on.
    let cfg = Config::new(128);
    let g = gen::vec_of(gen::u32_in(0..50), 0..20);
    let prop = |xs: &Vec<u32>| -> Result<(), String> {
        mb_check::prop_assert!(xs.iter().sum::<u32>() < 60);
        Ok(())
    };
    match mb_check::run(&cfg, "selftest::replay", &g, prop) {
        Outcome::Failed { seed, original, .. } => {
            let mut rng = mb_common::Rng::seed_from_u64(seed);
            let regenerated = g.generate(&mut rng);
            assert_eq!(regenerated, original);
            assert!(prop(&regenerated).is_err(), "replayed input must still fail");
        }
        Outcome::Passed { .. } => panic!("expected at least one failing case"),
    }
}

#[test]
fn string_generators_respect_length_and_alphabet() {
    let cfg = Config::new(256);
    let g = (gen::lowercase_string(2..=7), gen::charset_string("abc_.", 1..=4));
    let outcome = mb_check::run(&cfg, "selftest::strings", &g, |(w, s)| {
        let n = w.chars().count();
        mb_check::prop_assert!((2..=7).contains(&n), "bad length {n}");
        mb_check::prop_assert!(w.chars().all(|c| c.is_ascii_lowercase()));
        mb_check::prop_assert!(s.chars().all(|c| "abc_.".contains(c)));
        Ok(())
    });
    assert!(matches!(outcome, Outcome::Passed { .. }));
}

// The macro surface, used exactly as the ported suites use it.
mb_check::check! {
    #![config(cases = 64)]

    fn macro_defined_property_runs(
        x in gen::u64_in(0..1000),
        mut xs in gen::vec_of(gen::u32_in(0..10), 0..6),
    ) {
        xs.push(x as u32);
        mb_check::prop_assert!(!xs.is_empty());
        mb_check::prop_assert_eq!(xs.last().copied(), Some(x as u32));
    }
}
