//! # mb-check
//!
//! A small, dependency-free property-testing framework on top of
//! [`mb_common::Rng`], replacing `proptest` so the workspace builds
//! with no network access.
//!
//! Each property runs a fixed number of randomized cases. Every case
//! has its own printable 64-bit seed; on failure the input is greedily
//! shrunk to a local minimum and the report shows both the original and
//! the minimal counterexample plus the exact seed, so
//! `MB_CHECK_SEED=0x... cargo test <name>` replays just that case.
//!
//! ```
//! mb_check::check! {
//!     #![config(cases = 64)]
//!     fn addition_commutes(a in mb_check::gen::u64_in(0..1000), b in mb_check::gen::u64_in(0..1000)) {
//!         mb_check::prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```
//!
//! Environment knobs:
//! - `MB_CHECK_SEED=<u64 or 0xHEX>` — replay a single case by seed.
//! - `MB_CHECK_CASES=<n>` — override the per-property case count.

pub mod gen;

pub use gen::Gen;
use mb_common::Rng;

/// Per-property configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of randomized cases to run.
    pub cases: u64,
    /// Base seed. `0` (the default) derives a stable seed from the
    /// property name, so runs are deterministic but differ per property.
    pub seed: u64,
    /// Upper bound on shrink attempts after a failure.
    pub max_shrink_steps: u64,
}

impl Config {
    /// A configuration running `cases` randomized cases.
    pub fn new(cases: u64) -> Self {
        Config { cases, seed: 0, max_shrink_steps: 4096 }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::new(64)
    }
}

/// The result of running a property (see [`run`]).
#[derive(Debug, Clone)]
pub enum Outcome<T> {
    /// All cases passed.
    Passed {
        /// Number of cases executed.
        cases: u64,
    },
    /// A case failed; the input was shrunk to a local minimum.
    Failed {
        /// Index of the failing case (0-based).
        case: u64,
        /// The case seed — replayable via `MB_CHECK_SEED`.
        seed: u64,
        /// The originally generated failing input.
        original: T,
        /// The shrunk (locally minimal) failing input.
        minimal: T,
        /// Number of shrink attempts that produced `minimal`.
        shrink_steps: u64,
        /// The failure message of the minimal counterexample.
        error: String,
    },
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derive the seed of case `i` from the property's base seed.
fn case_seed(base: u64, i: u64) -> u64 {
    // SplitMix64-style mix so consecutive case indices decorrelate.
    let mut z = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn parse_seed(s: &str) -> Option<u64> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Run `prop` once, converting panics into failure messages so that
/// "never panics" properties shrink like any other.
fn run_prop<T, F>(prop: &F, value: &T) -> Result<(), String>
where
    F: Fn(&T) -> Result<(), String>,
{
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prop(value))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "panic with non-string payload".to_string()
            };
            Err(format!("panicked: {msg}"))
        }
    }
}

/// Run a property and return the [`Outcome`] instead of panicking.
///
/// This is the engine behind [`for_all_named`]; tests of the framework
/// itself use it to inspect shrinking behaviour.
pub fn run<G, F>(cfg: &Config, name: &str, generator: &G, prop: F) -> Outcome<G::Value>
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let cases =
        std::env::var("MB_CHECK_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(cfg.cases);
    if let Some(seed) = std::env::var("MB_CHECK_SEED").ok().and_then(|v| parse_seed(&v)) {
        return run_case(cfg, generator, &prop, 0, seed);
    }
    let base = if cfg.seed != 0 { cfg.seed } else { fnv1a(name) };
    for i in 0..cases {
        let outcome = run_case(cfg, generator, &prop, i, case_seed(base, i));
        if matches!(outcome, Outcome::Failed { .. }) {
            return outcome;
        }
    }
    Outcome::Passed { cases }
}

fn run_case<G, F>(cfg: &Config, generator: &G, prop: &F, case: u64, seed: u64) -> Outcome<G::Value>
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    let mut rng = Rng::seed_from_u64(seed);
    let original = generator.generate(&mut rng);
    let error = match run_prop(prop, &original) {
        Ok(()) => return Outcome::Passed { cases: 1 },
        Err(e) => e,
    };
    // Greedy shrink: take the first failing candidate, repeat until no
    // candidate fails (a local minimum) or the step budget runs out.
    // Panic messages from candidate runs are suppressed meanwhile.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut minimal = original.clone();
    let mut minimal_error = error;
    let mut steps = 0u64;
    'outer: while steps < cfg.max_shrink_steps {
        for cand in generator.shrink(&minimal) {
            steps += 1;
            if let Err(e) = run_prop(prop, &cand) {
                minimal = cand;
                minimal_error = e;
                continue 'outer;
            }
            if steps >= cfg.max_shrink_steps {
                break 'outer;
            }
        }
        break;
    }
    std::panic::set_hook(quiet);
    Outcome::Failed { case, seed, original, minimal, shrink_steps: steps, error: minimal_error }
}

fn truncate_debug<T: std::fmt::Debug>(v: &T) -> String {
    let mut s = format!("{v:?}");
    const LIMIT: usize = 2000;
    if s.chars().count() > LIMIT {
        s = s.chars().take(LIMIT).collect();
        s.push_str(" …(truncated)");
    }
    s
}

/// Run a named property, panicking with a reproducible report on failure.
///
/// The [`check!`] macro expands to calls of this function.
pub fn for_all_named<G, F>(cfg: &Config, name: &str, generator: &G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    match run(cfg, name, generator, prop) {
        Outcome::Passed { .. } => {}
        Outcome::Failed { case, seed, original, minimal, shrink_steps, error } => {
            panic!(
                "[mb-check] property '{name}' failed at case {case} (seed {seed:#018X})\n\
                 minimal counterexample (after {shrink_steps} shrink steps):\n  {}\n\
                 error: {error}\n\
                 original input:\n  {}\n\
                 replay this case with: MB_CHECK_SEED={seed:#X} cargo test {short}",
                truncate_debug(&minimal),
                truncate_debug(&original),
                short = name.rsplit("::").next().unwrap_or(name),
            );
        }
    }
}

/// Run an anonymous property (see [`for_all_named`]).
pub fn for_all<G, F>(cfg: &Config, generator: G, prop: F)
where
    G: Gen,
    F: Fn(&G::Value) -> Result<(), String>,
{
    for_all_named(cfg, "property", &generator, prop);
}

/// Assert a condition inside a property, recording the expression (and
/// an optional formatted message) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property, showing both values on failure.
///
/// Operands are taken by reference, so neither side is moved.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err(format!(
                "assertion failed: {} == {}\n    left:  {:?}\n    right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err(format!(
                "assertion failed: {} == {} — {}\n    left:  {:?}\n    right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}

/// Define `#[test]` property functions, proptest-style.
///
/// ```ignore
/// mb_check::check! {
///     #![config(cases = 128)]
///     fn my_property(x in gen::u64_any(), xs in gen::vec_of(gen::f64_in(0.0..1.0), 0..50)) {
///         prop_assert!(xs.len() < 50);
///     }
/// }
/// ```
#[macro_export]
macro_rules! check {
    ( #![config(cases = $cases:expr)] $($rest:tt)* ) => {
        $crate::__check_impl! { ($cases) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__check_impl! { (64) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __check_impl {
    ( ($cases:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:pat_param in $generator:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __cfg = $crate::Config::new($cases);
                let __gen = ( $( $generator, )+ );
                $crate::for_all_named(
                    &__cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    &__gen,
                    |__value| {
                        let ( $( $arg, )+ ) = ::std::clone::Clone::clone(__value);
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
}
