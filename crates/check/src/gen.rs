//! Composable value generators with greedy shrinking.
//!
//! A [`Gen`] produces random values from an [`Rng`] and, on failure,
//! proposes *smaller* candidate values via [`Gen::shrink`]. Shrinking is
//! best-effort and type-directed: integers move toward the lower bound,
//! floats toward zero, sequences get shorter, characters move toward the
//! first character of their alphabet. Combinators built with [`Gen::map`]
//! do not shrink (the mapping is not invertible).

use mb_common::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of random test inputs.
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Produce one value from the generator.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose strictly "smaller" candidate values, most aggressive
    /// first. Every candidate must itself be a value the generator
    /// could have produced. The default proposes nothing.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform generated values with `f`. The result does not shrink.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// See [`Gen::map`].
#[derive(Clone)]
pub struct Map<G, F> {
    inner: G,
    f: F,
}

impl<G, U, F> Gen for Map<G, F>
where
    G: Gen,
    U: Clone + Debug,
    F: Fn(G::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut Rng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A sequence-length specification with inclusive bounds.
///
/// Converts from `a..b` (exclusive high, proptest-style), `a..=b`, and
/// a bare `usize` (exact length).
#[derive(Clone, Copy, Debug)]
pub struct Len {
    lo: usize,
    hi: usize,
}

impl Len {
    fn pick(&self, rng: &mut Rng) -> usize {
        self.lo + rng.below(self.hi - self.lo + 1)
    }
}

impl From<Range<usize>> for Len {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty length range {r:?}");
        Len { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for Len {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.end() >= r.start(), "empty length range {r:?}");
        Len { lo: *r.start(), hi: *r.end() }
    }
}

impl From<usize> for Len {
    fn from(n: usize) -> Self {
        Len { lo: n, hi: n }
    }
}

macro_rules! int_gen {
    ($fn_name:ident, $ty_name:ident, $t:ty) => {
        /// Uniform integers in `[range.start, range.end)`, shrinking
        /// toward the lower bound.
        pub fn $fn_name(range: Range<$t>) -> $ty_name {
            assert!(range.end > range.start, "empty range {range:?}");
            $ty_name { lo: range.start, hi: range.end - 1 }
        }

        #[doc = concat!("See [`", stringify!($fn_name), "`].")]
        #[derive(Clone, Copy, Debug)]
        pub struct $ty_name {
            lo: $t,
            hi: $t,
        }

        impl Gen for $ty_name {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                let span = (self.hi - self.lo) as u64;
                assert!(span < u64::MAX, "range too wide; use u64_any");
                self.lo + rng.below((span + 1) as usize) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                let mut out = Vec::new();
                if v == self.lo {
                    return out;
                }
                out.push(self.lo);
                let mid = self.lo + (v - self.lo) / 2;
                if mid != self.lo && mid != v {
                    out.push(mid);
                }
                if v - 1 != self.lo && v - 1 != mid {
                    out.push(v - 1);
                }
                out
            }
        }
    };
}

int_gen!(u32_in, U32In, u32);
int_gen!(u64_in, U64In, u64);
int_gen!(usize_in, UsizeIn, usize);

/// Uniform over the whole `u64` range, shrinking toward zero.
pub fn u64_any() -> AnyU64 {
    AnyU64
}

/// See [`u64_any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyU64;

impl Gen for AnyU64 {
    type Value = u64;

    fn generate(&self, rng: &mut Rng) -> u64 {
        rng.next_u64()
    }

    fn shrink(&self, value: &u64) -> Vec<u64> {
        let v = *value;
        let mut out = Vec::new();
        if v == 0 {
            return out;
        }
        out.push(0);
        if v >> 1 != 0 {
            out.push(v >> 1);
        }
        if v - 1 != 0 && v - 1 != v >> 1 {
            out.push(v - 1);
        }
        out
    }
}

/// Uniform floats in `[range.start, range.end)`, shrinking toward zero
/// (if in range), the lower bound, and rounder values.
pub fn f64_in(range: Range<f64>) -> F64In {
    assert!(range.end > range.start, "empty range {range:?}");
    assert!(range.start.is_finite() && range.end.is_finite());
    F64In { lo: range.start, hi: range.end }
}

/// See [`f64_in`].
#[derive(Clone, Copy, Debug)]
pub struct F64In {
    lo: f64,
    hi: f64,
}

impl Gen for F64In {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        rng.range_f64(self.lo, self.hi)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let in_range = |x: f64| (self.lo..self.hi).contains(&x) && x != v;
        let mut out = Vec::new();
        for cand in [0.0, self.lo, v / 2.0, v.trunc()] {
            if in_range(cand) && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

/// Normal (wide-exponent) floats of either sign, or exactly zero —
/// the serialisation round-trip workhorse. Shrinks toward zero.
pub fn f64_normal_or_zero() -> F64NormalOrZero {
    F64NormalOrZero
}

/// See [`f64_normal_or_zero`].
#[derive(Clone, Copy, Debug)]
pub struct F64NormalOrZero;

impl Gen for F64NormalOrZero {
    type Value = f64;

    fn generate(&self, rng: &mut Rng) -> f64 {
        if rng.below(8) == 0 {
            return 0.0;
        }
        let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
        let exponent = rng.range_f64(-300.0, 300.0);
        let mantissa = rng.range_f64(1.0, 10.0);
        let v = sign * mantissa * 10f64.powf(exponent);
        if v.is_normal() {
            v
        } else {
            sign * mantissa
        }
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        let v = *value;
        let mut out = Vec::new();
        if v == 0.0 {
            return out;
        }
        out.push(0.0);
        for cand in [v / 2.0, v.trunc()] {
            if cand.is_normal() && cand != v && !out.contains(&cand) {
                out.push(cand);
            }
        }
        out
    }
}

/// Uniform characters in the inclusive code-point range `[lo, hi]`
/// (surrogates skipped), shrinking toward `lo`.
pub fn char_in(lo: char, hi: char) -> CharIn {
    assert!(lo <= hi);
    CharIn { lo: lo as u32, hi: hi as u32 }
}

/// Lowercase ASCII letters.
pub fn lowercase_char() -> CharIn {
    char_in('a', 'z')
}

/// See [`char_in`].
#[derive(Clone, Copy, Debug)]
pub struct CharIn {
    lo: u32,
    hi: u32,
}

impl Gen for CharIn {
    type Value = char;

    fn generate(&self, rng: &mut Rng) -> char {
        loop {
            let code = self.lo + rng.below((self.hi - self.lo + 1) as usize) as u32;
            if let Some(c) = char::from_u32(code) {
                return c;
            }
        }
    }

    fn shrink(&self, value: &char) -> Vec<char> {
        let v = *value as u32;
        let mut out = Vec::new();
        for cand in [self.lo, self.lo + (v.saturating_sub(self.lo)) / 2] {
            if cand != v {
                if let Some(c) = char::from_u32(cand) {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
            }
        }
        out
    }
}

/// Arbitrary Unicode scalar values, weighted so that ASCII dominates
/// but multi-byte, combining, and astral-plane characters (the classic
/// tokenizer breakers) still appear. Shrinks toward `'a'`.
pub fn any_char() -> AnyChar {
    AnyChar
}

/// See [`any_char`].
#[derive(Clone, Copy, Debug)]
pub struct AnyChar;

impl Gen for AnyChar {
    type Value = char;

    fn generate(&self, rng: &mut Rng) -> char {
        let (lo, hi) = match rng.below(16) {
            0..=7 => (0x20, 0x7E),      // printable ASCII
            8 | 9 => (0x00, 0x1F),      // controls (tab, newline, ...)
            10 | 11 => (0x80, 0x24F),   // Latin supplements / accents
            12 | 13 => (0x250, 0xD7FF), // general BMP
            _ => (0x1_0000, 0x2_FFFF),  // astral plane (math symbols, emoji)
        };
        loop {
            let code = lo + rng.below((hi - lo + 1) as usize) as u32;
            if let Some(c) = char::from_u32(code) {
                return c;
            }
        }
    }

    fn shrink(&self, value: &char) -> Vec<char> {
        let v = *value;
        let mut out = Vec::new();
        for cand in ['a', ' '] {
            if cand != v {
                out.push(cand);
            }
        }
        if (v as u32) > 0x7F {
            out.push('?');
        }
        out
    }
}

/// A character drawn uniformly from an explicit alphabet, shrinking
/// toward the alphabet's first character.
pub fn charset_char(alphabet: &str) -> CharsetChar {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "empty alphabet");
    CharsetChar { chars }
}

/// See [`charset_char`].
#[derive(Clone, Debug)]
pub struct CharsetChar {
    chars: Vec<char>,
}

impl Gen for CharsetChar {
    type Value = char;

    fn generate(&self, rng: &mut Rng) -> char {
        self.chars[rng.below(self.chars.len())]
    }

    fn shrink(&self, value: &char) -> Vec<char> {
        if *value != self.chars[0] {
            vec![self.chars[0]]
        } else {
            Vec::new()
        }
    }
}

/// A string of characters from `chars` with length in `len`.
pub fn string_of<C>(chars: C, len: impl Into<Len>) -> StringGen<C>
where
    C: Gen<Value = char>,
{
    StringGen { chars, len: len.into() }
}

/// `[a-z]{len}` — the lowercase word generator.
pub fn lowercase_string(len: impl Into<Len>) -> StringGen<CharIn> {
    string_of(lowercase_char(), len)
}

/// `.{len}` — arbitrary Unicode strings (see [`any_char`]).
pub fn any_string(len: impl Into<Len>) -> StringGen<AnyChar> {
    string_of(any_char(), len)
}

/// A string over an explicit alphabet (see [`charset_char`]).
pub fn charset_string(alphabet: &str, len: impl Into<Len>) -> StringGen<CharsetChar> {
    string_of(charset_char(alphabet), len)
}

/// See [`string_of`].
#[derive(Clone, Debug)]
pub struct StringGen<C> {
    chars: C,
    len: Len,
}

impl<C> Gen for StringGen<C>
where
    C: Gen<Value = char>,
{
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.chars.generate(rng)).collect()
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let items: Vec<char> = value.chars().collect();
        shrink_seq(&items, self.len.lo, |c| self.chars.shrink(c))
            .into_iter()
            .map(|cs| cs.into_iter().collect())
            .collect()
    }
}

/// A vector of values from `item` with length in `len`.
pub fn vec_of<G: Gen>(item: G, len: impl Into<Len>) -> VecGen<G> {
    VecGen { item, len: len.into() }
}

/// See [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    item: G,
    len: Len,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<G::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.item.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        shrink_seq(value, self.len.lo, |v| self.item.shrink(v))
    }
}

/// Shared sequence shrinker: aggressive truncations first, then
/// single-element removals, then element-wise shrinks.
fn shrink_seq<T: Clone>(
    items: &[T],
    min_len: usize,
    shrink_item: impl Fn(&T) -> Vec<T>,
) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let n = items.len();
    if n > min_len {
        out.push(items[..min_len].to_vec());
        let half = min_len + (n - min_len) / 2;
        if half != min_len && half != n {
            out.push(items[..half].to_vec());
        }
        for i in 0..n {
            let mut v = items.to_vec();
            v.remove(i);
            out.push(v);
        }
    }
    for (i, item) in items.iter().enumerate() {
        for cand in shrink_item(item) {
            let mut v = items.to_vec();
            v[i] = cand;
            out.push(v);
        }
    }
    out
}

macro_rules! tuple_gen {
    ($( $G:ident : $idx:tt ),+) => {
        impl<$($G: Gen),+> Gen for ($($G,)+) {
            type Value = ($($G::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ( $( self.$idx.generate(rng), )+ )
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut c = value.clone();
                        c.$idx = cand;
                        out.push(c);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A:0);
tuple_gen!(A:0, B:1);
tuple_gen!(A:0, B:1, C:2);
tuple_gen!(A:0, B:1, C:2, D:3);
tuple_gen!(A:0, B:1, C:2, D:3, E:4);
tuple_gen!(A:0, B:1, C:2, D:3, E:4, F:5);
