//! Property-based tests of the text substrate.

use mb_check::gen::{self, StringGen, VecGen};
use mb_check::{prop_assert, prop_assert_eq};
use mb_text::edit::levenshtein;
use mb_text::overlap::{classify, OverlapCategory};
use mb_text::rouge::{rouge_1, rouge_l};
use mb_text::tokenizer::{detokenize, tokenize};
use mb_text::vocab::VocabBuilder;

fn word() -> StringGen<gen::CharIn> {
    gen::lowercase_string(1..=8)
}

fn words(max: usize) -> VecGen<StringGen<gen::CharIn>> {
    gen::vec_of(word(), 1..max)
}

mb_check::check! {
    #![config(cases = 128)]

    fn tokenize_detokenize_round_trip(ws in words(8)) {
        let text = ws.join(" ");
        let toks = tokenize(&text);
        prop_assert_eq!(&toks, &ws);
        prop_assert_eq!(tokenize(&detokenize(&toks)), toks);
    }

    fn tokenize_never_panics_and_is_lowercase(s in gen::any_string(0..=120)) {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            // Lowercasing is idempotent (some chars, e.g. mathematical
            // capitals, have no lowercase mapping and stay as-is).
            prop_assert_eq!(t.to_lowercase(), t);
        }
    }

    fn levenshtein_is_a_metric(
        a in gen::lowercase_string(0..=10),
        b in gen::lowercase_string(0..=10),
        c in gen::lowercase_string(0..=10),
    ) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by the longer string.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    fn rouge_scores_are_bounded_and_reflexive(a in words(6), b in words(6)) {
        let ta = a.join(" ");
        let tb = b.join(" ");
        for s in [rouge_1(&ta, &tb), rouge_l(&ta, &tb)] {
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f1));
        }
        prop_assert!((rouge_1(&ta, &ta).f1 - 1.0).abs() < 1e-12);
        // Unigram ROUGE F1 is symmetric.
        let ab = rouge_1(&ta, &tb).f1;
        let ba = rouge_1(&tb, &ta).f1;
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    fn overlap_classification_is_total_and_consistent(m in words(4), t in words(4)) {
        let mention = m.join(" ");
        let title = t.join(" ");
        let cat = classify(&mention, &title);
        if tokenize(&mention) == tokenize(&title) {
            prop_assert_eq!(cat, OverlapCategory::HighOverlap);
        }
        if cat == OverlapCategory::HighOverlap {
            prop_assert_eq!(tokenize(&mention), tokenize(&title));
        }
    }

    fn vocab_encode_ids_are_in_range(docs in gen::vec_of(words(10), 1..6)) {
        let mut b = VocabBuilder::new();
        for d in &docs {
            b.add_text(&d.join(" "));
        }
        let v = b.build(1);
        for d in &docs {
            for id in v.encode(&d.join(" ")) {
                prop_assert!((id as usize) < v.len());
                // Everything was added with min_count 1, so no UNKs.
                prop_assert!(id != mb_text::vocab::UNK);
            }
        }
        // A token never seen maps to UNK.
        prop_assert_eq!(v.id("zzzneverseenzzz"), mb_text::vocab::UNK);
    }
}

/// Regression corpus converted from the retired
/// `proptest_text.proptest-regressions` file: inputs proptest once
/// shrank a failure to. mb-check reports printable seeds instead of a
/// seed file, so these live on as explicit unit tests.
mod regressions {
    use super::*;

    /// `cc a8fed…` shrank to `s = "𝓐"` (U+1D4D0 MATHEMATICAL BOLD
    /// SCRIPT CAPITAL A): an astral-plane alphanumeric character with
    /// no lowercase mapping, which once broke the "tokens are
    /// lowercase" invariant of `tokenize_never_panics_and_is_lowercase`.
    #[test]
    fn mathematical_script_capital_a_stays_intact() {
        let s = "\u{1D4D0}";
        for t in tokenize(s) {
            assert!(!t.is_empty());
            assert!(t.chars().all(|c| c.is_alphanumeric()));
            // No lowercase mapping: lowercasing must be a no-op, and
            // tokenize must not have mangled the character.
            assert_eq!(t.to_lowercase(), t);
        }
        // The character is alphanumeric, so it must survive as a token.
        assert_eq!(tokenize(s), vec!["\u{1D4D0}".to_string()]);
    }

    /// Found by mb-check while porting this suite (replay seed
    /// 0x13DD069BF4E5D380, shrunk to `"İ"`): U+0130 lowercases to
    /// `"i\u{307}"` and the combining mark used to leak into the token,
    /// breaking the all-alphanumeric invariant.
    #[test]
    fn latin_capital_i_with_dot_above_lowercases_cleanly() {
        assert_eq!(tokenize("İ"), vec!["i".to_string()]);
        for t in tokenize("İ") {
            assert!(t.chars().all(|c| c.is_alphanumeric()));
            assert_eq!(t.to_lowercase(), t);
        }
    }
}
