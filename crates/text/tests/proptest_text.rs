//! Property-based tests of the text substrate.

use mb_text::edit::levenshtein;
use mb_text::overlap::{classify, OverlapCategory};
use mb_text::rouge::{rouge_1, rouge_l};
use mb_text::tokenizer::{detokenize, tokenize};
use mb_text::vocab::VocabBuilder;
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-z]{1,8}"
}

fn words(max: usize) -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(word(), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tokenize_detokenize_round_trip(ws in words(8)) {
        let text = ws.join(" ");
        let toks = tokenize(&text);
        prop_assert_eq!(&toks, &ws);
        prop_assert_eq!(tokenize(&detokenize(&toks)), toks);
    }

    #[test]
    fn tokenize_never_panics_and_is_lowercase(s in ".{0,120}") {
        for t in tokenize(&s) {
            prop_assert!(!t.is_empty());
            prop_assert!(t.chars().all(|c| c.is_alphanumeric()));
            // Lowercasing is idempotent (some chars, e.g. mathematical
            // capitals, have no lowercase mapping and stay as-is).
            prop_assert_eq!(t.to_lowercase(), t);
        }
    }

    #[test]
    fn levenshtein_is_a_metric(a in "[a-z]{0,10}", b in "[a-z]{0,10}", c in "[a-z]{0,10}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by the longer string.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn rouge_scores_are_bounded_and_reflexive(a in words(6), b in words(6)) {
        let ta = a.join(" ");
        let tb = b.join(" ");
        for s in [rouge_1(&ta, &tb), rouge_l(&ta, &tb)] {
            prop_assert!((0.0..=1.0).contains(&s.precision));
            prop_assert!((0.0..=1.0).contains(&s.recall));
            prop_assert!((0.0..=1.0).contains(&s.f1));
        }
        prop_assert!((rouge_1(&ta, &ta).f1 - 1.0).abs() < 1e-12);
        // Unigram ROUGE F1 is symmetric.
        let ab = rouge_1(&ta, &tb).f1;
        let ba = rouge_1(&tb, &ta).f1;
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn overlap_classification_is_total_and_consistent(m in words(4), t in words(4)) {
        let mention = m.join(" ");
        let title = t.join(" ");
        let cat = classify(&mention, &title);
        if tokenize(&mention) == tokenize(&title) {
            prop_assert_eq!(cat, OverlapCategory::HighOverlap);
        }
        if cat == OverlapCategory::HighOverlap {
            prop_assert_eq!(tokenize(&mention), tokenize(&title));
        }
    }

    #[test]
    fn vocab_encode_ids_are_in_range(docs in proptest::collection::vec(words(10), 1..6)) {
        let mut b = VocabBuilder::new();
        for d in &docs {
            b.add_text(&d.join(" "));
        }
        let v = b.build(1);
        for d in &docs {
            for id in v.encode(&d.join(" ")) {
                prop_assert!((id as usize) < v.len());
                // Everything was added with min_count 1, so no UNKs.
                prop_assert!(id != mb_text::vocab::UNK);
            }
        }
        // A token never seen maps to UNK.
        prop_assert_eq!(v.id("zzzneverseenzzz"), mb_text::vocab::UNK);
    }
}
