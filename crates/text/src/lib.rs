//! # mb-text
//!
//! Text-processing substrate for metablink-rs: tokenization, vocabulary
//! interning, n-grams, TF-IDF statistics, ROUGE metrics (used to
//! reproduce Table XI), Levenshtein edit distance, and the paper's four
//! mention–title overlap categories (Section VI-A).

#![warn(missing_docs)]

pub mod edit;
pub mod ngram;
pub mod overlap;
pub mod rouge;
pub mod stopwords;
pub mod tfidf;
pub mod tokenizer;
pub mod vocab;

pub use overlap::OverlapCategory;
pub use tokenizer::tokenize;
pub use vocab::Vocab;
