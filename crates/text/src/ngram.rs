//! N-gram extraction over token sequences.

/// All contiguous `n`-grams of a token slice, as joined strings.
///
/// Returns an empty vector when `n == 0` or the sequence is shorter
/// than `n`.
pub fn ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

/// Multiset intersection size of two n-gram lists — the numerator of
/// ROUGE-N.
pub fn overlap_count(a: &[String], b: &[String]) -> usize {
    use std::collections::HashMap;
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for g in a {
        *counts.entry(g.as_str()).or_insert(0) += 1;
    }
    let mut hits = 0;
    for g in b {
        if let Some(c) = counts.get_mut(g.as_str()) {
            if *c > 0 {
                *c -= 1;
                hits += 1;
            }
        }
    }
    hits
}

/// Character n-grams of a single token (used by the datagen lexicon to
/// keep generated words pronounceable is *not* done here — this is for
/// similarity features).
pub fn char_ngrams(token: &str, n: usize) -> Vec<String> {
    let chars: Vec<char> = token.chars().collect();
    if n == 0 || chars.len() < n {
        return Vec::new();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn unigrams_and_bigrams() {
        let t = toks("a b c");
        assert_eq!(ngrams(&t, 1), vec!["a", "b", "c"]);
        assert_eq!(ngrams(&t, 2), vec!["a b", "b c"]);
        assert_eq!(ngrams(&t, 3), vec!["a b c"]);
        assert!(ngrams(&t, 4).is_empty());
        assert!(ngrams(&t, 0).is_empty());
    }

    #[test]
    fn overlap_respects_multiplicity() {
        let a = toks("the the cat");
        let b = toks("the the the dog");
        assert_eq!(overlap_count(&a, &b), 2);
        assert_eq!(overlap_count(&b, &a), 2);
    }

    #[test]
    fn overlap_disjoint_is_zero() {
        assert_eq!(overlap_count(&toks("a b"), &toks("c d")), 0);
        assert_eq!(overlap_count(&[], &toks("a")), 0);
    }

    #[test]
    fn char_ngrams_basic() {
        assert_eq!(char_ngrams("abc", 2), vec!["ab", "bc"]);
        assert!(char_ngrams("a", 2).is_empty());
    }
}
