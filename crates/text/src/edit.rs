//! Levenshtein edit distance (character-level), used by the seed filter
//! ("correct spelling" heuristic) and the error-analysis harness.

/// Character-level Levenshtein distance between two strings.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised edit similarity in `[0, 1]`: `1 − d/max(|a|, |b|)`;
/// 1.0 for two empty strings.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let denom = la.max(lb);
    if denom == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_distances() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn symmetry_and_triangle() {
        let words = ["dragon", "dragoon", "wagon", ""];
        for a in words {
            for b in words {
                assert_eq!(levenshtein(a, b), levenshtein(b, a));
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("dragon", "dragoon");
        assert!(s > 0.8 && s < 1.0);
    }

    #[test]
    fn unicode_is_char_based() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }
}
