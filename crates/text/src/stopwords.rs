//! A small English stopword list shared by TF-IDF and the rewriter's
//! salience features. Deterministic and compiled in; the synthetic
//! corpus uses the same function words, so the list transfers.

/// Function words and generic wiki-genre connective verbs excluded
/// from salience scoring (kept sorted for binary search).
pub const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "and",
    "appeared",
    "are",
    "as",
    "associated",
    "at",
    "be",
    "been",
    "belongs",
    "but",
    "by",
    "during",
    "encountered",
    "faced",
    "first",
    "for",
    "from",
    "had",
    "has",
    "have",
    "he",
    "held",
    "her",
    "his",
    "in",
    "into",
    "is",
    "it",
    "its",
    "known",
    "near",
    "of",
    "on",
    "or",
    "remembered",
    "seen",
    "shaped",
    "she",
    "that",
    "the",
    "their",
    "them",
    "they",
    "this",
    "to",
    "together",
    "turned",
    "was",
    "were",
    "which",
    "who",
    "will",
    "with",
];

/// True if `token` (already lowercased) is a stopword.
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.binary_search(&token).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOPWORDS, "STOPWORDS must stay sorted");
    }

    #[test]
    fn membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("with"));
        assert!(!is_stopword("dragon"));
        assert!(!is_stopword(""));
    }
}
