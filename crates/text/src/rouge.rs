//! ROUGE metrics.
//!
//! The paper uses ROUGE-1 F1 (Table XI) to show that T5-rewritten
//! mentions are closer to the gold mention distribution than
//! exact-match mentions. We implement ROUGE-1/ROUGE-2 (n-gram
//! precision/recall/F1) and ROUGE-L (longest common subsequence), with
//! the same definitions as the `rouge` metric the paper references.

use crate::ngram::{ngrams, overlap_count};
use crate::tokenizer::tokenize;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PrecisionRecallF1 {
    /// Matching units / candidate units.
    pub precision: f64,
    /// Matching units / reference units.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl PrecisionRecallF1 {
    fn from_counts(hits: usize, candidate_total: usize, reference_total: usize) -> Self {
        let precision =
            if candidate_total == 0 { 0.0 } else { hits as f64 / candidate_total as f64 };
        let recall = if reference_total == 0 { 0.0 } else { hits as f64 / reference_total as f64 };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        PrecisionRecallF1 { precision, recall, f1 }
    }
}

/// ROUGE-N between a candidate and a reference text.
pub fn rouge_n(candidate: &str, reference: &str, n: usize) -> PrecisionRecallF1 {
    let c = tokenize(candidate);
    let r = tokenize(reference);
    let cg = ngrams(&c, n);
    let rg = ngrams(&r, n);
    let hits = overlap_count(&rg, &cg);
    PrecisionRecallF1::from_counts(hits, cg.len(), rg.len())
}

/// ROUGE-1 (unigram overlap) — the paper's primary Table XI metric.
///
/// # Examples
///
/// ```
/// let s = mb_text::rouge::rouge_1("the cat", "the cat sat");
/// assert!((s.precision - 1.0).abs() < 1e-12);
/// assert!((s.recall - 2.0 / 3.0).abs() < 1e-12);
/// ```
pub fn rouge_1(candidate: &str, reference: &str) -> PrecisionRecallF1 {
    rouge_n(candidate, reference, 1)
}

/// ROUGE-2 (bigram overlap).
pub fn rouge_2(candidate: &str, reference: &str) -> PrecisionRecallF1 {
    rouge_n(candidate, reference, 2)
}

/// Length of the longest common subsequence of two token sequences.
fn lcs_len(a: &[String], b: &[String]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    // One-row DP.
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for ai in a {
        for (j, bj) in b.iter().enumerate() {
            cur[j + 1] = if ai == bj { prev[j] + 1 } else { prev[j + 1].max(cur[j]) };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// ROUGE-L (LCS-based precision/recall/F1).
pub fn rouge_l(candidate: &str, reference: &str) -> PrecisionRecallF1 {
    let c = tokenize(candidate);
    let r = tokenize(reference);
    let l = lcs_len(&c, &r);
    PrecisionRecallF1::from_counts(l, c.len(), r.len())
}

/// Mean ROUGE-1 F1 of each candidate against its *closest* reference —
/// the distribution-similarity measure used for Table XI, where
/// generated mentions are compared against a sample of golden mentions
/// from the target domain.
pub fn best_match_rouge1_f1(candidates: &[String], references: &[String]) -> f64 {
    if candidates.is_empty() || references.is_empty() {
        return 0.0;
    }
    let total: f64 = candidates
        .iter()
        .map(|c| references.iter().map(|r| rouge_1(c, r).f1).fold(0.0_f64, f64::max))
        .sum();
    total / candidates.len() as f64
}

/// Mean ROUGE-1 F1 over candidate/reference pairs — used for Table XI,
/// where each generated mention is compared against the gold mentions
/// of the *same entity* (how the domain actually refers to it). Returns
/// 0.0 for no pairs.
pub fn paired_rouge1_f1(pairs: &[(&str, &str)]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(|(c, r)| rouge_1(c, r).f1).sum::<f64>() / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::util::approx_eq;

    #[test]
    fn identical_texts_score_one() {
        let s = "the fourth episode";
        let r = rouge_1(s, s);
        assert_eq!(r.precision, 1.0);
        assert_eq!(r.recall, 1.0);
        assert_eq!(r.f1, 1.0);
        assert_eq!(rouge_2(s, s).f1, 1.0);
        assert_eq!(rouge_l(s, s).f1, 1.0);
    }

    #[test]
    fn disjoint_texts_score_zero() {
        let r = rouge_1("alpha beta", "gamma delta");
        assert_eq!(r.f1, 0.0);
        assert_eq!(rouge_l("alpha beta", "gamma delta").f1, 0.0);
    }

    #[test]
    fn known_partial_overlap() {
        // candidate: "the cat", reference: "the cat sat"
        // P = 2/2, R = 2/3, F1 = 2*1*(2/3)/(1+2/3) = 0.8
        let r = rouge_1("the cat", "the cat sat");
        assert!(approx_eq(r.precision, 1.0, 1e-12));
        assert!(approx_eq(r.recall, 2.0 / 3.0, 1e-12));
        assert!(approx_eq(r.f1, 0.8, 1e-12));
    }

    #[test]
    fn empty_inputs_are_zero_not_nan() {
        for (c, r) in [("", "a"), ("a", ""), ("", "")] {
            let s = rouge_1(c, r);
            assert!(s.f1.is_finite());
            assert_eq!(s.f1, 0.0);
        }
    }

    #[test]
    fn rouge_is_case_and_punct_insensitive() {
        let a = rouge_1("The CAT!", "the cat");
        assert_eq!(a.f1, 1.0);
    }

    #[test]
    fn lcs_handles_reordering() {
        // "a b c" vs "c b a": LCS length 1 token ("a" or "b" or "c").
        let r = rouge_l("a b c", "c b a");
        assert!(approx_eq(r.precision, 1.0 / 3.0, 1e-12));
        // But unigram ROUGE ignores order entirely.
        assert_eq!(rouge_1("a b c", "c b a").f1, 1.0);
    }

    #[test]
    fn bounds_hold() {
        for (c, r) in [("a b c d", "b d e"), ("x", "x y z w"), ("m n o p q", "p q")] {
            for s in [rouge_1(c, r), rouge_2(c, r), rouge_l(c, r)] {
                assert!((0.0..=1.0).contains(&s.precision));
                assert!((0.0..=1.0).contains(&s.recall));
                assert!((0.0..=1.0).contains(&s.f1));
                assert!(s.f1 <= s.precision.max(s.recall) + 1e-12);
            }
        }
    }

    #[test]
    fn paired_rouge_averages() {
        let pairs = vec![("a b", "a b"), ("x", "y")];
        assert!(approx_eq(paired_rouge1_f1(&pairs), 0.5, 1e-12));
        assert_eq!(paired_rouge1_f1(&[]), 0.0);
    }

    #[test]
    fn best_match_picks_closest_reference() {
        let cands = vec!["the red dragon".to_string()];
        let refs = vec!["blue wizard".to_string(), "red dragon lair".to_string()];
        let got = best_match_rouge1_f1(&cands, &refs);
        let direct = rouge_1("the red dragon", "red dragon lair").f1;
        assert!(approx_eq(got, direct, 1e-12));
        assert_eq!(best_match_rouge1_f1(&[], &refs), 0.0);
        assert_eq!(best_match_rouge1_f1(&cands, &[]), 0.0);
    }
}
