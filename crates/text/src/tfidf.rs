//! Corpus-level TF-IDF statistics.
//!
//! The mention rewriter (the T5 substitute in `mb-nlg`) scores candidate
//! summary tokens by, among other features, their TF-IDF salience in the
//! entity description relative to the domain corpus. The *unsupervised
//! denoising adaptation* that upgrades `syn` data to `syn*` is exactly a
//! re-estimation of these statistics on unlabeled target-domain text.

use crate::stopwords::is_stopword;
use crate::tokenizer::tokenize;
use std::collections::HashMap;

/// Document-frequency statistics over a corpus.
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    doc_freq: HashMap<String, u64>,
    num_docs: u64,
}

impl TfIdf {
    /// Empty statistics (every idf falls back to the max).
    pub fn new() -> Self {
        TfIdf::default()
    }

    /// Fit from an iterator of documents.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a str>) -> Self {
        let mut s = TfIdf::new();
        for d in docs {
            s.add_document(d);
        }
        s
    }

    /// Add one document's token set to the statistics.
    pub fn add_document(&mut self, doc: &str) {
        self.num_docs += 1;
        let mut seen = std::collections::BTreeSet::new();
        for t in tokenize(doc) {
            if seen.insert(t.clone()) {
                *self.doc_freq.entry(t).or_insert(0) += 1;
            }
        }
    }

    /// Merge another corpus' statistics into this one (used by the
    /// target-domain adaptation step: source stats + target stats).
    pub fn merge(&mut self, other: &TfIdf) {
        self.num_docs += other.num_docs;
        for (t, c) in &other.doc_freq {
            *self.doc_freq.entry(t.clone()).or_insert(0) += c;
        }
    }

    /// Number of documents fitted.
    pub fn num_docs(&self) -> u64 {
        self.num_docs
    }

    /// Smoothed inverse document frequency:
    /// `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        ((1.0 + self.num_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Document frequency of a token.
    pub fn df(&self, token: &str) -> u64 {
        self.doc_freq.get(token).copied().unwrap_or(0)
    }

    /// TF-IDF weights of each distinct non-stopword token of `doc`,
    /// sorted descending. TF is raw count within the document.
    pub fn weights(&self, doc: &str) -> Vec<(String, f64)> {
        let mut tf: HashMap<String, u64> = HashMap::new();
        for t in tokenize(doc) {
            if !is_stopword(&t) {
                *tf.entry(t).or_insert(0) += 1;
            }
        }
        let mut out: Vec<(String, f64)> = tf
            .into_iter()
            .map(|(t, c)| {
                let w = c as f64 * self.idf(&t);
                (t, w)
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_decreases_with_frequency() {
        let s = TfIdf::fit(["the dragon", "the wizard", "the castle"]);
        assert!(s.idf("the") < s.idf("dragon"));
        assert!(s.idf("dragon") <= s.idf("neverseen"));
        assert_eq!(s.df("the"), 3);
        assert_eq!(s.df("dragon"), 1);
    }

    #[test]
    fn df_counts_documents_not_occurrences() {
        let s = TfIdf::fit(["dragon dragon dragon"]);
        assert_eq!(s.df("dragon"), 1);
    }

    #[test]
    fn weights_exclude_stopwords_and_sort() {
        let s = TfIdf::fit(["the dragon sleeps", "a dragon", "castle walls"]);
        let w = s.weights("the dragon guards the castle castle");
        assert!(w.iter().all(|(t, _)| t != "the"));
        // "castle" appears twice in-doc, "dragon" once and is more common
        // in corpus, so castle ranks first.
        assert_eq!(w[0].0, "castle");
        for pair in w.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = TfIdf::fit(["dragon"]);
        let b = TfIdf::fit(["dragon", "wizard"]);
        a.merge(&b);
        assert_eq!(a.num_docs(), 3);
        assert_eq!(a.df("dragon"), 2);
        assert_eq!(a.df("wizard"), 1);
    }

    #[test]
    fn empty_stats_are_finite() {
        let s = TfIdf::new();
        assert!(s.idf("anything").is_finite());
        assert!(s.weights("some doc").iter().all(|(_, w)| w.is_finite()));
    }
}
