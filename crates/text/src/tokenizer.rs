//! Lowercasing word tokenizer.
//!
//! Splits on anything that is not alphanumeric, lowercases ASCII, and
//! keeps digit runs as tokens. Parenthesised disambiguation phrases —
//! `"SORA (satellite)"` — survive as separate tokens, which the overlap
//! classifier and the self-match seed miner rely on.

/// Tokenize text into lowercase alphanumeric tokens.
///
/// # Examples
/// ```
/// use mb_text::tokenize;
/// assert_eq!(tokenize("The Curse-of the GOLDEN Master!"),
///            vec!["the", "curse", "of", "the", "golden", "master"]);
/// assert_eq!(tokenize("SORA (satellite)"), vec!["sora", "satellite"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            // Lowercasing can expand to several chars, not all of them
            // alphanumeric ('İ' → "i\u{307}"); keep only those that
            // preserve the all-alphanumeric token invariant.
            for lower in ch.to_lowercase() {
                if lower.is_alphanumeric() {
                    current.push(lower);
                }
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Join tokens back into a canonical single-space string.
pub fn detokenize(tokens: &[String]) -> String {
    tokens.join(" ")
}

/// Tokenize and keep only tokens of at least `min_len` characters.
pub fn tokenize_min_len(text: &str, min_len: usize) -> Vec<String> {
    tokenize(text).into_iter().filter(|t| t.chars().count() >= min_len).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        assert_eq!(tokenize("Hello, World"), vec!["hello", "world"]);
        assert_eq!(tokenize("a-b_c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn keeps_digits() {
        assert_eq!(tokenize("season 3 episode 4"), vec!["season", "3", "episode", "4"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! --- ???").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Übermensch Café"), vec!["übermensch", "café"]);
    }

    #[test]
    fn lowercase_expansion_drops_combining_marks() {
        // 'İ' lowercases to "i" + U+0307 COMBINING DOT ABOVE; the
        // combining mark is not alphanumeric and must not leak into
        // the token (found by mb-check).
        assert_eq!(tokenize("İstanbul"), vec!["istanbul"]);
    }

    #[test]
    fn detokenize_round_trip_on_canonical_text() {
        let text = "the fourth episode";
        assert_eq!(detokenize(&tokenize(text)), text);
    }

    #[test]
    fn min_len_filter() {
        assert_eq!(tokenize_min_len("a an the cat", 3), vec!["the", "cat"]);
    }
}
