//! Vocabulary interning.
//!
//! Maps tokens to dense `u32` ids for the embedding tables. Id 0 is
//! always `<unk>`; unknown tokens at encode time map there, which is how
//! the encoders behave on out-of-domain words (the paper's premise is
//! exactly that target domains contain unseen vocabulary).

use std::collections::HashMap;

/// Reserved id for unknown tokens.
pub const UNK: u32 = 0;

/// A frozen token → id mapping built from corpus counts.
#[derive(Debug, Clone, Default)]
pub struct Vocab {
    token_to_id: HashMap<String, u32>,
    id_to_token: Vec<String>,
}

/// Incremental builder counting token frequencies before freezing.
#[derive(Debug, Clone, Default)]
pub struct VocabBuilder {
    counts: HashMap<String, u64>,
}

impl VocabBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        VocabBuilder::default()
    }

    /// Count one token occurrence.
    pub fn add(&mut self, token: &str) {
        *self.counts.entry(token.to_string()).or_insert(0) += 1;
    }

    /// Count every token in a pre-tokenized sequence.
    pub fn add_tokens(&mut self, tokens: &[String]) {
        for t in tokens {
            self.add(t);
        }
    }

    /// Count every token of a raw text.
    pub fn add_text(&mut self, text: &str) {
        for t in crate::tokenizer::tokenize(text) {
            *self.counts.entry(t).or_insert(0) += 1;
        }
    }

    /// Freeze into a [`Vocab`], keeping tokens with at least `min_count`
    /// occurrences. Ordering is by descending count then lexicographic,
    /// which makes the vocabulary (and thus every downstream model)
    /// deterministic.
    pub fn build(self, min_count: u64) -> Vocab {
        let mut entries: Vec<(String, u64)> =
            self.counts.into_iter().filter(|(_, c)| *c >= min_count).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut vocab = Vocab {
            token_to_id: HashMap::with_capacity(entries.len() + 1),
            id_to_token: Vec::with_capacity(entries.len() + 1),
        };
        vocab.push("<unk>");
        for (token, _) in entries {
            vocab.push(&token);
        }
        vocab
    }
}

impl Vocab {
    fn push(&mut self, token: &str) {
        let id = self.id_to_token.len() as u32;
        self.id_to_token.push(token.to_string());
        self.token_to_id.insert(token.to_string(), id);
    }

    /// Vocabulary size including `<unk>`.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True only for a freshly-defaulted vocab with no `<unk>` entry.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.is_empty()
    }

    /// The id of a token, or [`UNK`].
    pub fn id(&self, token: &str) -> u32 {
        self.token_to_id.get(token).copied().unwrap_or(UNK)
    }

    /// True if the token is in-vocabulary.
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// The token string for an id.
    ///
    /// # Panics
    /// Panics on out-of-range ids.
    pub fn token(&self, id: u32) -> &str {
        &self.id_to_token[id as usize]
    }

    /// Encode a raw text into ids (unknowns map to [`UNK`]).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        crate::tokenizer::tokenize(text).iter().map(|t| self.id(t)).collect()
    }

    /// Encode pre-tokenized tokens into ids.
    pub fn encode_tokens(&self, tokens: &[String]) -> Vec<u32> {
        tokens.iter().map(|t| self.id(t)).collect()
    }

    /// Fraction of tokens in `text` that are out-of-vocabulary — a cheap
    /// domain-gap proxy used by the seed filter.
    pub fn oov_rate(&self, text: &str) -> f64 {
        let ids = self.encode(text);
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter().filter(|&&i| i == UNK).count() as f64 / ids.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocab {
        let mut b = VocabBuilder::new();
        b.add_text("the cat sat on the mat the cat");
        b.build(1)
    }

    #[test]
    fn unk_is_id_zero() {
        let v = sample();
        assert_eq!(v.id("<unk>"), UNK);
        assert_eq!(v.token(UNK), "<unk>");
        assert_eq!(v.id("zebra"), UNK);
    }

    #[test]
    fn frequency_then_lexicographic_order() {
        let v = sample();
        // "the" (3) then "cat" (2) then {mat, on, sat} alphabetical.
        assert_eq!(v.token(1), "the");
        assert_eq!(v.token(2), "cat");
        assert_eq!(v.token(3), "mat");
        assert_eq!(v.token(4), "on");
        assert_eq!(v.token(5), "sat");
        assert_eq!(v.len(), 6);
    }

    #[test]
    fn min_count_filters() {
        let mut b = VocabBuilder::new();
        b.add_text("aaa aaa bbb");
        let v = b.build(2);
        assert!(v.contains("aaa"));
        assert!(!v.contains("bbb"));
    }

    #[test]
    fn encode_maps_unknowns() {
        let v = sample();
        let ids = v.encode("the dog");
        assert_eq!(ids, vec![v.id("the"), UNK]);
    }

    #[test]
    fn oov_rate_bounds() {
        let v = sample();
        assert_eq!(v.oov_rate(""), 0.0);
        assert_eq!(v.oov_rate("the cat"), 0.0);
        assert_eq!(v.oov_rate("zebra quagga"), 1.0);
        let half = v.oov_rate("the zebra");
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deterministic_across_builds() {
        let v1 = sample();
        let v2 = sample();
        for id in 0..v1.len() as u32 {
            assert_eq!(v1.token(id), v2.token(id));
        }
    }
}
