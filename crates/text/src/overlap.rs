//! The paper's four mention–title overlap categories (Section VI-A).
//!
//! Based on the string overlap between a mention and its gold entity's
//! title, every sample falls into exactly one of:
//!
//! * **High Overlap** — mention text equals title text.
//! * **Multiple Categories** — title is the mention followed by a
//!   disambiguation phrase, e.g. mention `"SORA"` vs title
//!   `"SORA (satellite)"`.
//! * **Ambiguous Substring** — mention is a proper substring of the
//!   title (but not the disambiguation pattern above).
//! * **Low Overlap** — none of the above; the majority category in the
//!   Zeshel test domains, and the reason pure name matching fails.

use crate::tokenizer::tokenize;

/// The paper's four categories, in decreasing surface overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OverlapCategory {
    /// Mention text equals title text.
    HighOverlap,
    /// Title = mention + parenthesised disambiguation phrase.
    MultipleCategories,
    /// Mention is a proper substring of the title.
    AmbiguousSubstring,
    /// No containment relation.
    LowOverlap,
}

impl OverlapCategory {
    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OverlapCategory::HighOverlap => "High Overlap",
            OverlapCategory::MultipleCategories => "Multiple Categories",
            OverlapCategory::AmbiguousSubstring => "Ambiguous Substring",
            OverlapCategory::LowOverlap => "Low Overlap",
        }
    }

    /// All categories, for stratified reporting.
    pub fn all() -> [OverlapCategory; 4] {
        [
            OverlapCategory::HighOverlap,
            OverlapCategory::MultipleCategories,
            OverlapCategory::AmbiguousSubstring,
            OverlapCategory::LowOverlap,
        ]
    }
}

/// The title's base text before any parenthesised disambiguation phrase,
/// or `None` if the title has no such phrase.
pub fn title_base(title: &str) -> Option<&str> {
    let open = title.find('(')?;
    // Require the parenthetical to close and to be at the end.
    let rest = title[open..].trim_end();
    if !rest.ends_with(')') {
        return None;
    }
    let base = title[..open].trim();
    if base.is_empty() {
        None
    } else {
        Some(base)
    }
}

/// Classify a (mention, title) pair into its overlap category.
///
/// Comparison is on the canonical tokenized form, so case and
/// punctuation differences do not matter.
pub fn classify(mention: &str, title: &str) -> OverlapCategory {
    let m = tokenize(mention);
    let t = tokenize(title);
    if m.is_empty() || t.is_empty() {
        return OverlapCategory::LowOverlap;
    }
    if m == t {
        return OverlapCategory::HighOverlap;
    }
    if let Some(base) = title_base(title) {
        if tokenize(base) == m {
            return OverlapCategory::MultipleCategories;
        }
    }
    // Proper contiguous token-subsequence containment.
    if m.len() < t.len() && t.windows(m.len()).any(|w| w == m.as_slice()) {
        return OverlapCategory::AmbiguousSubstring;
    }
    OverlapCategory::LowOverlap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_overlap() {
        assert_eq!(classify("The Curse", "the curse"), OverlapCategory::HighOverlap);
        assert_eq!(classify("Taku", "Taku"), OverlapCategory::HighOverlap);
    }

    #[test]
    fn multiple_categories() {
        assert_eq!(classify("SORA", "SORA (satellite)"), OverlapCategory::MultipleCategories);
        assert_eq!(
            classify("satellite", "Satellite (series)"),
            OverlapCategory::MultipleCategories
        );
    }

    #[test]
    fn ambiguous_substring() {
        assert_eq!(classify("Hanasaki", "Mr. Hanasaki"), OverlapCategory::AmbiguousSubstring);
        assert_eq!(
            classify("golden master", "the curse of the golden master"),
            OverlapCategory::AmbiguousSubstring
        );
    }

    #[test]
    fn low_overlap() {
        assert_eq!(
            classify("the fourth episode", "The Curse of the Golden Master"),
            OverlapCategory::LowOverlap
        );
        // Non-contiguous subsequence is NOT a substring.
        assert_eq!(classify("curse master", "curse of the master"), OverlapCategory::LowOverlap);
    }

    #[test]
    fn empty_inputs_are_low_overlap() {
        assert_eq!(classify("", "title"), OverlapCategory::LowOverlap);
        assert_eq!(classify("mention", ""), OverlapCategory::LowOverlap);
    }

    #[test]
    fn title_base_extraction() {
        assert_eq!(title_base("SORA (satellite)"), Some("SORA"));
        assert_eq!(title_base("Foo Bar (x y)"), Some("Foo Bar"));
        assert_eq!(title_base("No Parens"), None);
        assert_eq!(title_base("(only parens)"), None);
        assert_eq!(title_base("Trailing (open"), None);
    }

    #[test]
    fn disambiguation_beats_substring() {
        // Mention equals the base: must be MultipleCategories even though
        // it is also a substring.
        assert_eq!(classify("sora", "SORA (satellite)"), OverlapCategory::MultipleCategories);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            OverlapCategory::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 4);
    }
}
