//! The paper's baselines: Name Matching (Riedel et al.) and DL4EL
//! (Le & Titov). BLINK is not a separate implementation — it is the
//! two-stage linker trained *without* meta-reweighting (see
//! `crate::pipeline`).

use mb_common::Rng;
use mb_datagen::LinkedMention;
use mb_encoders::biencoder::BiEncoder;
use mb_encoders::input::TrainPair;
use mb_kb::{DomainId, EntityId, KnowledgeBase};
use mb_tensor::optim::{Adam, Optimizer};
use mb_tensor::params::GradVec;
use mb_tensor::Tape;

/// Name Matching: link a mention to the entity whose title equals its
/// surface (restricted to the target dictionary). Ambiguous matches
/// take the first hit; failures link nothing.
pub fn name_matching_predict(
    kb: &KnowledgeBase,
    domain: DomainId,
    mention: &LinkedMention,
) -> Option<EntityId> {
    kb.by_title(&mention.surface).iter().copied().find(|&id| kb.entity(id).domain == domain)
}

/// Unnormalised accuracy (%) of Name Matching over gold mentions.
pub fn name_matching_accuracy(
    kb: &KnowledgeBase,
    domain: DomainId,
    mentions: &[LinkedMention],
) -> f64 {
    if mentions.is_empty() {
        return 0.0;
    }
    let correct =
        mentions.iter().filter(|m| name_matching_predict(kb, domain, m) == Some(m.entity)).count();
    100.0 * correct as f64 / mentions.len() as f64
}

/// DL4EL-style denoising configuration.
#[derive(Debug, Clone, Copy)]
pub struct Dl4elConfig {
    /// Assumed noise ratio ρ: the fraction of each batch treated as
    /// noise and masked out.
    pub noise_ratio: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for Dl4elConfig {
    fn default() -> Self {
        Dl4elConfig { noise_ratio: 0.15, epochs: 8, batch_size: 32, lr: 5e-3, seed: 0 }
    }
}

/// Train a bi-encoder with DL4EL-style in-batch denoising.
///
/// Le & Titov model per-example noise indicators constrained by an
/// assumed noise ratio ρ, pushing the model to keep the cleanest
/// `1 − ρ` of each batch. We implement the hard-EM reading of that
/// constraint: on every batch, the `⌈ρ·n⌉` highest-loss examples are
/// masked out and the remainder are weighted uniformly. (The paper
/// applies DL4EL to the bi-encoder only, because the cross-encoder's
/// batch size of 1 leaves nothing to select within a batch; we follow
/// that.) As the paper observes, synthetic data has no shallow "bad
/// data" signal, so this baseline tracks plain BLINK closely.
pub fn train_biencoder_dl4el(
    model: &mut BiEncoder,
    pairs: &[TrainPair],
    cfg: &Dl4elConfig,
) -> Vec<f64> {
    let mut epoch_losses = Vec::new();
    if pairs.len() < 2 {
        return epoch_losses;
    }
    let mut opt = Adam::new(cfg.lr);
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    for _ in 0..cfg.epochs {
        rng.shuffle(&mut order);
        let mut losses = Vec::new();
        for chunk in order.chunks(cfg.batch_size.max(2)) {
            if chunk.len() < 2 {
                continue;
            }
            let batch: Vec<TrainPair> = chunk.iter().map(|&i| pairs[i].clone()).collect();
            let mut tape = Tape::new();
            let fwd = model.forward_losses(&mut tape, &batch);
            let per = tape.value(fwd.losses).data().to_vec();
            // Hard-EM selection: drop the ⌈ρ n⌉ worst.
            let n = per.len();
            let drop = ((cfg.noise_ratio * n as f64).ceil() as usize).min(n.saturating_sub(1));
            let order_desc = mb_common::util::argsort_desc(&per);
            let mut weights = vec![1.0 / (n - drop) as f64; n];
            for &bad in order_desc.iter().take(drop) {
                weights[bad] = 0.0;
            }
            let weighted = tape.weighted_sum(fwd.losses, weights);
            let loss_value = tape.value(weighted).item();
            let grads = tape.backward(weighted);
            let gv: GradVec = model.params().collect_grads(&fwd.vars, &grads);
            opt.step(model.params_mut(), &gv);
            losses.push(loss_value);
        }
        epoch_losses.push(mb_common::util::mean(&losses));
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::mentions::generate_mentions;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::biencoder::BiEncoderConfig;
    use mb_encoders::input::{build_vocab, InputConfig};
    use mb_text::OverlapCategory;

    fn setup() -> (World, Vec<LinkedMention>) {
        let world = World::generate(WorldConfig::tiny(47));
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(12);
        let ms = generate_mentions(&world, &domain, 300, &mut rng);
        (world, ms.mentions)
    }

    #[test]
    fn name_matching_wins_on_high_overlap_only() {
        let (world, mentions) = setup();
        let domain = world.domain("TargetX").id;
        let high: Vec<LinkedMention> = mentions
            .iter()
            .filter(|m| m.category == OverlapCategory::HighOverlap)
            .cloned()
            .collect();
        let low: Vec<LinkedMention> = mentions
            .iter()
            .filter(|m| m.category == OverlapCategory::LowOverlap)
            .cloned()
            .collect();
        let acc_high = name_matching_accuracy(world.kb(), domain, &high);
        let acc_low = name_matching_accuracy(world.kb(), domain, &low);
        assert!(acc_high > 90.0, "high-overlap accuracy {acc_high}");
        assert!(acc_low < 5.0, "low-overlap accuracy {acc_low}");
    }

    #[test]
    fn name_matching_overall_is_weak() {
        let (world, mentions) = setup();
        let domain = world.domain("TargetX").id;
        let acc = name_matching_accuracy(world.kb(), domain, &mentions);
        // Low Overlap is the majority category, so overall accuracy is
        // bounded well below 50 (paper: 8–20%).
        assert!(acc < 45.0, "name matching too strong: {acc}");
        assert!(acc > 3.0, "name matching implausibly weak: {acc}");
    }

    #[test]
    fn name_matching_empty_is_zero() {
        let (world, _) = setup();
        let domain = world.domain("TargetX").id;
        assert_eq!(name_matching_accuracy(world.kb(), domain, &[]), 0.0);
    }

    #[test]
    fn dl4el_trains_and_reduces_loss() {
        let (world, mentions) = setup();
        let vocab = build_vocab(world.kb(), [], 1);
        let icfg = InputConfig::default();
        let pairs: Vec<TrainPair> = mentions
            .iter()
            .take(80)
            .map(|m| TrainPair::from_mention(&vocab, &icfg, world.kb(), m))
            .collect();
        let mut model = BiEncoder::new(
            &vocab,
            BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
            &mut Rng::seed_from_u64(1),
        );
        let losses = train_biencoder_dl4el(
            &mut model,
            &pairs,
            &Dl4elConfig { epochs: 6, batch_size: 16, lr: 0.01, ..Default::default() },
        );
        assert_eq!(losses.len(), 6);
        assert!(losses.last().unwrap() < losses.first().unwrap());
        assert!(!model.params().has_non_finite());
    }

    #[test]
    fn dl4el_handles_tiny_input() {
        let (world, mentions) = setup();
        let vocab = build_vocab(world.kb(), [], 1);
        let icfg = InputConfig::default();
        let pairs: Vec<TrainPair> = mentions
            .iter()
            .take(1)
            .map(|m| TrainPair::from_mention(&vocab, &icfg, world.kb(), m))
            .collect();
        let mut model = BiEncoder::new(
            &vocab,
            BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() },
            &mut Rng::seed_from_u64(1),
        );
        let losses = train_biencoder_dl4el(&mut model, &pairs, &Dl4elConfig::default());
        assert!(losses.is_empty());
    }
}
