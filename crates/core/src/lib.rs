//! # mb-core
//!
//! MetaBLINK itself: the meta-learning reweighting of synthetic data
//! (Algorithm 1), the full training framework (Algorithm 2), the
//! two-stage linker, seed-set construction for the few-shot and
//! zero-shot settings, and the paper's three baselines (Name Matching,
//! BLINK, DL4EL).

#![warn(missing_docs)]

pub mod baselines;
pub mod checkpoint;
pub mod coherence;
pub mod linker;
pub mod nil;
pub mod pipeline;
pub mod reweight;
pub mod seed;

pub use checkpoint::{CheckpointConfig, CheckpointManager};
pub use linker::{LinkerConfig, TwoStageLinker};
pub use pipeline::{DataSource, MetaBlinkConfig, TrainedLinker};
pub use reweight::{meta_example_weights, MetaConfig, MetaStats};
