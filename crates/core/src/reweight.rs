//! Learning to reweight synthetic data (Algorithm 1).
//!
//! The optimisation is the bilevel objective of Eq. 7. Following Ren et
//! al. (and the paper's Eqs. 9–14), each training step:
//!
//! 1. samples a synthetic batch of size `n` and a seed batch of size `m`;
//! 2. initialises the example weights at zero, so the meta-forward
//!    pseudo-update (Eq. 9) leaves the parameters at φ;
//! 3. computes the meta-backward derivative (Eq. 12), which at `w = 0`
//!    reduces **exactly** to per-example gradient dot products:
//!    `−∂l_g/∂w_j = α ⟨∇_φ l_g(φ̂), ∇_φ l_j(φ)⟩` — a synthetic example
//!    is upweighted iff its gradient points the same way as the seed
//!    set's gradient;
//! 4. clips negatives and normalises (Eqs. 13–14, with the δ guard for
//!    an all-zero batch);
//! 5. takes the real optimiser step on the weighted loss (Eq. 15).
//!
//! The dot-product form needs only first-order gradients, which is why
//! this reproduction does not require the second-order autodiff that
//! gates GPU frameworks (see DESIGN.md §4); `tests` verify the form
//! against finite differences of the true bilevel objective.

use crate::checkpoint::{
    stats_from_checkpoint, stats_to_checkpoint, CheckpointManager, STAGE_KEY, STEP_KEY,
};
use mb_common::{Error, Result, Rng};
use mb_encoders::biencoder::BiEncoder;
use mb_encoders::crossencoder::{CandidateSet, CrossEncoder};
use mb_encoders::input::TrainPair;
use mb_tensor::checkpoint::Checkpoint;
use mb_tensor::optim::Optimizer;
use mb_tensor::params::GradVec;
use mb_tensor::Tape;

/// Hyperparameters of the meta-training loop.
#[derive(Debug, Clone, Copy)]
pub struct MetaConfig {
    /// Number of meta steps (T in Algorithm 1).
    pub steps: usize,
    /// Synthetic batch size n.
    pub syn_batch: usize,
    /// Seed batch size m.
    pub seed_batch: usize,
    /// Outer learning rate.
    pub lr: f64,
    /// Sampling seed.
    pub seed: u64,
    /// Weight threshold above which an example counts as "selected"
    /// for the Figure 4 measurement (a uniform weight is `1/n`).
    pub select_threshold_factor: f64,
    /// Anchor coefficient λ: every meta step's update is
    /// `Σ wⱼ ∇lⱼ + λ ∇l_g`, mixing the (already computed) seed-batch
    /// gradient into the weighted synthetic update. The seed is labeled
    /// data, so using it as direct supervision alongside its
    /// meta-supervision role stabilises the refinement phase. 0
    /// recovers the verbatim Algorithm 1.
    pub seed_mix: f64,
    /// Normalise each example gradient to unit length before the
    /// meta-backward dot product, so a synthetic example's weight
    /// reflects the *direction* agreement with the seed gradient and
    /// not its loss magnitude. Raw Eq. 12 (false) systematically
    /// upweights high-loss — often mislabeled — examples on this
    /// substrate; the normalised form restores the intended selection
    /// behaviour (Figure 4). Ablatable.
    pub normalize_example_grads: bool,
    /// Compute the meta-backward dot products over the shared dense
    /// parameters only (excluding the token-embedding table). Embedding
    /// gradients are sparse — two examples with disjoint tokens have
    /// orthogonal embedding gradients by construction, so including
    /// them only injects noise into the weights. This is the standard
    /// "final/shared layers only" practice for gradient-similarity
    /// reweighting. Ablatable.
    pub shared_params_only: bool,
    /// Workers for the per-example gradient fan-out (the backward
    /// passes of Eq. 12 are independent given the shared forward).
    /// Results are bit-identical for any value (DESIGN.md §11).
    pub threads: mb_par::Threads,
}

impl Default for MetaConfig {
    fn default() -> Self {
        MetaConfig {
            steps: 300,
            syn_batch: 24,
            seed_batch: 16,
            lr: 5e-3,
            seed: 0,
            select_threshold_factor: 0.5,
            seed_mix: 0.3,
            normalize_example_grads: true,
            shared_params_only: true,
            threads: mb_par::Threads::single(),
        }
    }
}

/// Eqs. 12–14: meta weights from per-example and seed gradients.
///
/// `example_grads[j]` must be `∇_φ l_j(φ)`; `seed_grad` must be
/// `∇_φ l_g(φ̂)` (equal to φ at zero initial weights). Returns weights
/// that are non-negative and sum to 1, or all zeros when no example
/// aligns with the seed gradient (the δ guard).
/// # Examples
///
/// ```
/// use mb_core::meta_example_weights;
/// use mb_tensor::params::GradVec;
/// use mb_tensor::Tensor;
///
/// let g = |v: &[f64]| GradVec::from_tensors(vec![Tensor::vector(v)]);
/// let seed = g(&[1.0, 0.0]);
/// // Aligned example gets all the weight; anti-aligned is clipped to 0.
/// let w = meta_example_weights(&[g(&[2.0, 0.0]), g(&[-1.0, 0.0])], &seed);
/// assert_eq!(w, vec![1.0, 0.0]);
/// ```
pub fn meta_example_weights(example_grads: &[GradVec], seed_grad: &GradVec) -> Vec<f64> {
    meta_example_weights_opts(example_grads, seed_grad, false)
}

/// [`meta_example_weights`] with optional per-example gradient
/// normalisation (see [`MetaConfig::normalize_example_grads`]).
pub fn meta_example_weights_opts(
    example_grads: &[GradVec],
    seed_grad: &GradVec,
    normalize: bool,
) -> Vec<f64> {
    meta_example_weights_masked(example_grads, seed_grad, normalize, &|_| true)
}

/// [`meta_example_weights_opts`] restricted to parameters selected by
/// `keep` (see [`MetaConfig::shared_params_only`]).
pub fn meta_example_weights_masked(
    example_grads: &[GradVec],
    seed_grad: &GradVec,
    normalize: bool,
    keep: &dyn Fn(usize) -> bool,
) -> Vec<f64> {
    let clipped: Vec<f64> = example_grads
        .iter()
        .map(|g| {
            let dot = seed_grad.masked_dot(g, keep);
            let dot = if normalize {
                let n = g.masked_norm(keep);
                if n > 0.0 {
                    dot / n
                } else {
                    0.0
                }
            } else {
                dot
            };
            dot.max(0.0)
        })
        .collect();
    let total: f64 = clipped.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return vec![0.0; example_grads.len()];
    }
    clipped.into_iter().map(|w| w / total).collect()
}

/// Selection statistics accumulated over a meta-training run, keyed by
/// the index of each synthetic example in the input slice. Used for the
/// Figure 4 selection-ratio measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaStats {
    /// Per-example: how many times the example appeared in a sampled
    /// synthetic batch.
    pub sampled: Vec<usize>,
    /// Per-example: how many of those times its weight exceeded the
    /// selection threshold.
    pub selected: Vec<usize>,
    /// Mean weighted loss per step.
    pub step_losses: Vec<f64>,
    /// Number of steps where the δ guard fired (all weights zero).
    pub zero_weight_steps: usize,
}

impl MetaStats {
    fn new(n: usize) -> Self {
        MetaStats {
            sampled: vec![0; n],
            selected: vec![0; n],
            step_losses: Vec::new(),
            zero_weight_steps: 0,
        }
    }

    /// Selection ratio of one example (`NaN` if never sampled).
    pub fn selection_ratio(&self, idx: usize) -> f64 {
        if self.sampled[idx] == 0 {
            f64::NAN
        } else {
            self.selected[idx] as f64 / self.sampled[idx] as f64
        }
    }

    /// Mean selection ratio over a subset of example indices, ignoring
    /// never-sampled examples.
    pub fn mean_selection_ratio(&self, indices: impl IntoIterator<Item = usize>) -> f64 {
        let ratios: Vec<f64> =
            indices.into_iter().map(|i| self.selection_ratio(i)).filter(|r| !r.is_nan()).collect();
        mb_common::util::mean(&ratios)
    }
}

/// Per-example losses and gradients of a bi-encoder synthetic batch.
///
/// One forward tape, then one backward per example through a `gather`
/// on the loss vector — each yields `∇_φ l_j(φ)` with the in-batch
/// negatives of Eq. 6 held fixed.
///
/// The in-batch negatives couple every example's *loss* to the whole
/// batch, so the batch cannot be sharded — but given the shared
/// forward, the per-example backward sweeps are independent. All
/// gather nodes are recorded up front (they need `&mut Tape`); the
/// backward passes (`&Tape`) then fan out across workers, each
/// producing exactly the tensors the serial loop would.
fn biencoder_example_grads(
    model: &BiEncoder,
    batch: &[TrainPair],
    threads: mb_par::Threads,
) -> Vec<(f64, GradVec)> {
    let mut tape = Tape::new();
    let fwd = model.forward_losses(&mut tape, batch);
    let gathers: Vec<mb_tensor::Var> =
        (0..batch.len()).map(|j| tape.gather(fwd.losses, j)).collect();
    mb_par::par_map(threads, &gathers, |_, &lj| {
        let value = tape.value(lj).item();
        let grads = tape.backward(lj);
        (value, model.params().collect_grads(&fwd.vars, &grads))
    })
}

/// One meta step of Algorithm 1 on the bi-encoder. Returns
/// `(weights, sampled synthetic indices, weighted loss)`.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's explicit inputs
pub fn biencoder_meta_step(
    model: &mut BiEncoder,
    syn: &[TrainPair],
    seed_set: &[TrainPair],
    opt: &mut dyn Optimizer,
    syn_batch: usize,
    seed_batch: usize,
    seed_mix: f64,
    normalize: bool,
    shared_only: bool,
    threads: mb_par::Threads,
    rng: &mut Rng,
) -> (Vec<f64>, Vec<usize>, f64) {
    assert!(syn.len() >= 2, "meta step needs at least two synthetic examples");
    assert!(!seed_set.is_empty(), "meta step needs a non-empty seed set");
    let syn_idx = rng.sample_indices(syn.len(), syn_batch.max(2));
    let seed_idx = rng.sample_indices(seed_set.len(), seed_batch.max(1));
    let syn_batch_data: Vec<TrainPair> = syn_idx.iter().map(|&i| syn[i].clone()).collect();
    let seed_batch_data: Vec<TrainPair> = seed_idx.iter().map(|&i| seed_set[i].clone()).collect();

    // Lines 4–6: w = 0 ⇒ φ̂ = φ. Per-example synthetic grads at φ.
    let example = biencoder_example_grads(model, &syn_batch_data, threads);
    // Line 7–8: seed loss gradient at φ̂ (= φ).
    let (_, seed_grad) = model.batch_grad(&seed_batch_data);
    // Line 9: weights.
    let grads_only: Vec<GradVec> = example.iter().map(|(_, g)| g.clone()).collect();
    let emb_index = model.embedding_param_index();
    let keep = move |i: usize| !shared_only || i != emb_index;
    let weights = meta_example_weights_masked(&grads_only, &seed_grad, normalize, &keep);
    // Lines 10–12: weighted update, reusing the per-example grads:
    // ∇(Σ wⱼ lⱼ) = Σ wⱼ ∇lⱼ.
    let mut update = GradVec::zeros_like(model.params());
    let mut weighted_loss = 0.0;
    for ((lj, gj), &wj) in example.iter().zip(&weights) {
        if wj > 0.0 {
            update.axpy(wj, gj);
            weighted_loss += wj * lj;
        }
    }
    if seed_mix > 0.0 {
        update.axpy(seed_mix, &seed_grad);
    }
    opt.step(model.params_mut(), &update);
    (weights, syn_idx, weighted_loss)
}

/// Checkpointing context for the resumable meta trainers: the manager,
/// which pipeline stage this trainer occupies, the key its model state
/// saves under, and (when restarting) the checkpoint being resumed.
pub struct MetaResume<'a> {
    /// Manager owning storage, budget, and the stage-boundary base.
    pub mgr: &'a mut CheckpointManager,
    /// Stage-cursor value identifying this trainer's pipeline stage.
    pub stage: u64,
    /// Key under which this model's params/optimizer/RNG state is
    /// saved in checkpoints (`"bi"` or `"cross"`).
    pub model_key: &'a str,
    /// Checkpoint to resume from. Only honoured when it carries a
    /// mid-stage step cursor; a stage-boundary checkpoint starts the
    /// stage from the beginning.
    pub resume: Option<&'a Checkpoint>,
}

/// Fold one meta step's outputs into the accumulated stats.
fn record_step(stats: &mut MetaStats, cfg: &MetaConfig, weights: &[f64], idx: &[usize], loss: f64) {
    let threshold = cfg.select_threshold_factor / weights.len() as f64;
    if weights.iter().all(|&w| w == 0.0) {
        stats.zero_weight_steps += 1;
    }
    for (&i, &w) in idx.iter().zip(weights) {
        stats.sampled[i] += 1;
        if w > threshold {
            stats.selected[i] += 1;
        }
    }
    stats.step_losses.push(loss);
}

/// Restore mid-stage state (step cursor, optimizer, RNG, stats) from a
/// checkpoint into the trainer's locals. Returns the step to resume
/// from (0 when the checkpoint is a stage boundary).
fn restore_mid_stage(
    ctl: &MetaResume<'_>,
    syn_len: usize,
    opt: &mut dyn Optimizer,
    rng: &mut Rng,
    stats: &mut MetaStats,
) -> Result<usize> {
    let Some(ck) = ctl.resume else { return Ok(0) };
    let Some(step_s) = ck.meta.get(STEP_KEY) else { return Ok(0) };
    let start: usize = step_s
        .parse()
        .map_err(|e| Error::Checkpoint(format!("bad step cursor {step_s:?}: {e}")))?;
    let key = ctl.model_key;
    let os = ck.optim.get(key).ok_or_else(|| {
        Error::Checkpoint(format!("mid-stage checkpoint lacks optimizer state {key:?}"))
    })?;
    opt.restore(os.clone())?;
    let rs = ck.rng.get(key).ok_or_else(|| {
        Error::Checkpoint(format!("mid-stage checkpoint lacks RNG state {key:?}"))
    })?;
    *rng = Rng::from_state(*rs);
    if let Some(s) = stats_from_checkpoint(key, ck) {
        if s.sampled.len() != syn_len {
            return Err(Error::Checkpoint(format!(
                "checkpoint stats cover {} synthetic examples, run has {syn_len}",
                s.sampled.len()
            )));
        }
        *stats = s;
    }
    Ok(start)
}

/// Save a mid-stage checkpoint: the stage-boundary base patched with
/// the live model/optimizer/RNG state and the accumulated stats.
fn save_mid_stage(
    ctl: &mut MetaResume<'_>,
    params: &mb_tensor::Params,
    opt: &dyn Optimizer,
    rng: &Rng,
    stats: &MetaStats,
    done: usize,
) -> Result<()> {
    let mut ck = ctl.mgr.base().clone();
    ck.params.insert(ctl.model_key.to_string(), params.clone());
    ck.optim.insert(ctl.model_key.to_string(), opt.state());
    ck.rng.insert(ctl.model_key.to_string(), rng.state());
    stats_to_checkpoint(ctl.model_key, stats, &mut ck);
    ck.meta.insert(STAGE_KEY.to_string(), ctl.stage.to_string());
    ck.meta.insert(STEP_KEY.to_string(), done.to_string());
    ctl.mgr.save(ck)
}

/// Run Algorithm 1 on the bi-encoder for `cfg.steps` steps.
pub fn train_biencoder_meta(
    model: &mut BiEncoder,
    syn: &[TrainPair],
    seed_set: &[TrainPair],
    opt: &mut dyn Optimizer,
    cfg: &MetaConfig,
) -> MetaStats {
    run_biencoder_meta(model, syn, seed_set, opt, cfg, None)
        .expect("meta training without a checkpoint manager is infallible")
}

/// [`train_biencoder_meta`] with crash-safe checkpointing: ticks the
/// manager's budget once per meta step, saves every
/// `every_n_steps`, and resumes bit-identically from a mid-stage
/// checkpoint (step cursor + optimizer moments + RNG stream + stats).
///
/// # Errors
/// [`Error::Aborted`] from an injected kill, [`Error::Io`] from
/// storage after retries, [`Error::Checkpoint`] on unusable resume
/// state.
pub fn train_biencoder_meta_resumable(
    model: &mut BiEncoder,
    syn: &[TrainPair],
    seed_set: &[TrainPair],
    opt: &mut dyn Optimizer,
    cfg: &MetaConfig,
    ctl: &mut MetaResume<'_>,
) -> Result<MetaStats> {
    run_biencoder_meta(model, syn, seed_set, opt, cfg, Some(ctl))
}

fn run_biencoder_meta(
    model: &mut BiEncoder,
    syn: &[TrainPair],
    seed_set: &[TrainPair],
    opt: &mut dyn Optimizer,
    cfg: &MetaConfig,
    mut ctl: Option<&mut MetaResume<'_>>,
) -> Result<MetaStats> {
    let mut stats = MetaStats::new(syn.len());
    if syn.len() < 2 || seed_set.is_empty() {
        return Ok(stats);
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut start = 0;
    if let Some(c) = ctl.as_deref_mut() {
        start = restore_mid_stage(c, syn.len(), opt, &mut rng, &mut stats)?;
    }
    for step in start..cfg.steps {
        if let Some(c) = ctl.as_deref_mut() {
            c.mgr.tick()?;
        }
        let (weights, idx, loss) = biencoder_meta_step(
            model,
            syn,
            seed_set,
            opt,
            cfg.syn_batch,
            cfg.seed_batch,
            cfg.seed_mix,
            cfg.normalize_example_grads,
            cfg.shared_params_only,
            cfg.threads,
            &mut rng,
        );
        record_step(&mut stats, cfg, &weights, &idx, loss);
        let done = step + 1;
        if let Some(c) = ctl.as_deref_mut() {
            let every = c.mgr.every_n_steps();
            if every > 0 && done % every == 0 && done < cfg.steps {
                save_mid_stage(c, model.params(), opt, &rng, &stats, done)?;
            }
        }
    }
    Ok(stats)
}

/// Per-example gradients for cross-encoder candidate sets (each set is
/// its own tape; the paper trains the cross-encoder at batch size 1).
/// Embarrassingly parallel: one forward+backward tape per set, results
/// reassembled in batch order.
fn crossencoder_example_grads(
    model: &CrossEncoder,
    batch: &[&CandidateSet],
    threads: mb_par::Threads,
) -> Vec<(f64, GradVec)> {
    mb_par::par_map(threads, batch, |_, s| model.example_grad(s))
}

/// One meta step of Algorithm 1 on the cross-encoder.
#[allow(clippy::too_many_arguments)] // mirrors Algorithm 1's explicit inputs
pub fn crossencoder_meta_step(
    model: &mut CrossEncoder,
    syn: &[CandidateSet],
    seed_set: &[CandidateSet],
    opt: &mut dyn Optimizer,
    syn_batch: usize,
    seed_batch: usize,
    seed_mix: f64,
    normalize: bool,
    shared_only: bool,
    threads: mb_par::Threads,
    rng: &mut Rng,
) -> (Vec<f64>, Vec<usize>, f64) {
    assert!(!syn.is_empty(), "meta step needs synthetic examples");
    assert!(!seed_set.is_empty(), "meta step needs a non-empty seed set");
    let syn_idx = rng.sample_indices(syn.len(), syn_batch.max(1));
    let seed_idx = rng.sample_indices(seed_set.len(), seed_batch.max(1));
    let syn_refs: Vec<&CandidateSet> = syn_idx.iter().map(|&i| &syn[i]).collect();

    let example = crossencoder_example_grads(model, &syn_refs, threads);
    // Seed gradient: mean over the seed batch. Per-example grads fan
    // out; the mean is folded serially in sample order, so the
    // accumulation order matches the serial loop exactly.
    let seed_examples =
        mb_par::par_map(threads, &seed_idx, |_, &i| model.example_grad(&seed_set[i]));
    let mut seed_grad = GradVec::zeros_like(model.params());
    let inv = 1.0 / seed_idx.len() as f64;
    for (_, g) in &seed_examples {
        seed_grad.axpy(inv, g);
    }
    let grads_only: Vec<GradVec> = example.iter().map(|(_, g)| g.clone()).collect();
    let emb_index = model.embedding_param_index();
    let keep = move |i: usize| !shared_only || i != emb_index;
    let weights = meta_example_weights_masked(&grads_only, &seed_grad, normalize, &keep);
    let mut update = GradVec::zeros_like(model.params());
    let mut weighted_loss = 0.0;
    for ((lj, gj), &wj) in example.iter().zip(&weights) {
        if wj > 0.0 {
            update.axpy(wj, gj);
            weighted_loss += wj * lj;
        }
    }
    if seed_mix > 0.0 {
        update.axpy(seed_mix, &seed_grad);
    }
    opt.step(model.params_mut(), &update);
    (weights, syn_idx, weighted_loss)
}

/// Run Algorithm 1 on the cross-encoder for `cfg.steps` steps.
pub fn train_crossencoder_meta(
    model: &mut CrossEncoder,
    syn: &[CandidateSet],
    seed_set: &[CandidateSet],
    opt: &mut dyn Optimizer,
    cfg: &MetaConfig,
) -> MetaStats {
    run_crossencoder_meta(model, syn, seed_set, opt, cfg, None)
        .expect("meta training without a checkpoint manager is infallible")
}

/// [`train_crossencoder_meta`] with crash-safe checkpointing; see
/// [`train_biencoder_meta_resumable`] for the contract.
///
/// # Errors
/// [`Error::Aborted`] from an injected kill, [`Error::Io`] from
/// storage after retries, [`Error::Checkpoint`] on unusable resume
/// state.
pub fn train_crossencoder_meta_resumable(
    model: &mut CrossEncoder,
    syn: &[CandidateSet],
    seed_set: &[CandidateSet],
    opt: &mut dyn Optimizer,
    cfg: &MetaConfig,
    ctl: &mut MetaResume<'_>,
) -> Result<MetaStats> {
    run_crossencoder_meta(model, syn, seed_set, opt, cfg, Some(ctl))
}

fn run_crossencoder_meta(
    model: &mut CrossEncoder,
    syn: &[CandidateSet],
    seed_set: &[CandidateSet],
    opt: &mut dyn Optimizer,
    cfg: &MetaConfig,
    mut ctl: Option<&mut MetaResume<'_>>,
) -> Result<MetaStats> {
    let mut stats = MetaStats::new(syn.len());
    if syn.is_empty() || seed_set.is_empty() {
        return Ok(stats);
    }
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut start = 0;
    if let Some(c) = ctl.as_deref_mut() {
        start = restore_mid_stage(c, syn.len(), opt, &mut rng, &mut stats)?;
    }
    for step in start..cfg.steps {
        if let Some(c) = ctl.as_deref_mut() {
            c.mgr.tick()?;
        }
        let (weights, idx, loss) = crossencoder_meta_step(
            model,
            syn,
            seed_set,
            opt,
            cfg.syn_batch,
            cfg.seed_batch,
            cfg.seed_mix,
            cfg.normalize_example_grads,
            cfg.shared_params_only,
            cfg.threads,
            &mut rng,
        );
        record_step(&mut stats, cfg, &weights, &idx, loss);
        let done = step + 1;
        if let Some(c) = ctl.as_deref_mut() {
            let every = c.mgr.every_n_steps();
            if every > 0 && done % every == 0 && done < cfg.steps {
                save_mid_stage(c, model.params(), opt, &rng, &stats, done)?;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::biencoder::BiEncoderConfig;
    use mb_encoders::input::{build_vocab, InputConfig};
    use mb_tensor::optim::Sgd;
    use mb_tensor::Tensor;

    fn setup_pairs(seed: u64, n: usize) -> (BiEncoder, Vec<TrainPair>) {
        let world = World::generate(WorldConfig::tiny(41));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(seed);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, n, &mut rng);
        let cfg = InputConfig::default();
        let pairs = ms
            .mentions
            .iter()
            .map(|m| TrainPair::from_mention(&vocab, &cfg, world.kb(), m))
            .collect();
        let bi_cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let model = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(seed + 1));
        (model, pairs)
    }

    #[test]
    fn weights_are_normalized_and_nonnegative() {
        let (model, pairs) = setup_pairs(1, 12);
        let grads = biencoder_example_grads(&model, &pairs[..6], mb_par::Threads::single());
        let gv: Vec<GradVec> = grads.into_iter().map(|(_, g)| g).collect();
        let (_, seed_grad) = model.batch_grad(&pairs[6..12]);
        let w = meta_example_weights(&gv, &seed_grad);
        assert_eq!(w.len(), 6);
        assert!(w.iter().all(|&x| x >= 0.0));
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12 || sum == 0.0);
    }

    #[test]
    fn delta_guard_yields_all_zero() {
        // Seed gradient orthogonal-by-construction: zero gradient.
        let (model, pairs) = setup_pairs(2, 8);
        let grads = biencoder_example_grads(&model, &pairs[..4], mb_par::Threads::single());
        let gv: Vec<GradVec> = grads.into_iter().map(|(_, g)| g).collect();
        let zero = GradVec::zeros_like(model.params());
        let w = meta_example_weights(&gv, &zero);
        assert!(w.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn per_example_grads_sum_to_batch_grad() {
        let (model, pairs) = setup_pairs(3, 8);
        let batch = &pairs[..5];
        let per = biencoder_example_grads(&model, batch, mb_par::Threads::single());
        let (_, batch_grad) = model.batch_grad(batch);
        // batch_grad is the gradient of the MEAN loss.
        let mut summed = GradVec::zeros_like(model.params());
        for (_, g) in &per {
            summed.axpy(1.0 / batch.len() as f64, g);
        }
        let mut diff = summed.clone();
        diff.axpy(-1.0, &batch_grad);
        assert!(diff.norm() < 1e-10, "sum of per-example grads != batch grad: {}", diff.norm());
    }

    /// The central correctness test: the analytic meta-derivative
    /// (gradient dot product) must match the finite-difference
    /// derivative of the true bilevel objective
    /// `w ↦ l_g(φ − α ∇_φ Σ_j w_j l_j(φ))` at `w = 0`.
    #[test]
    fn meta_gradient_matches_finite_differences_of_bilevel_objective() {
        let (model, pairs) = setup_pairs(4, 12);
        let syn = &pairs[..4];
        let seed_set = &pairs[4..10];
        let alpha = 0.05;

        let per = biencoder_example_grads(&model, syn, mb_par::Threads::single());
        let (_, seed_grad_at_phi) = model.batch_grad(seed_set);

        // Analytic: ∂l_g/∂w_j |_{w=0} = −α ⟨∇l_g(φ), ∇l_j(φ)⟩.
        let analytic: Vec<f64> =
            per.iter().map(|(_, g)| -alpha * seed_grad_at_phi.dot(g)).collect();

        // Numeric: perturb w_j, apply the inner SGD step, evaluate l_g.
        let eps = 1e-4;
        let bilevel = |w: &[f64]| -> f64 {
            // φ̂(w) = φ − α Σ w_j ∇l_j(φ)
            let mut phi_hat = model.params().clone();
            for (wj, (_, gj)) in w.iter().zip(&per) {
                phi_hat.axpy(-alpha * wj, gj);
            }
            let mut m2 = model.clone();
            m2.set_params(phi_hat);
            m2.batch_loss(seed_set)
        };
        for j in 0..syn.len() {
            let mut wp = vec![0.0; syn.len()];
            wp[j] = eps;
            let mut wm = vec![0.0; syn.len()];
            wm[j] = -eps;
            let numeric = (bilevel(&wp) - bilevel(&wm)) / (2.0 * eps);
            let scale = 1.0_f64.max(numeric.abs()).max(analytic[j].abs());
            assert!(
                (numeric - analytic[j]).abs() / scale < 1e-3,
                "example {j}: analytic {} vs numeric {numeric}",
                analytic[j]
            );
        }
    }

    #[test]
    fn meta_training_runs_and_records_stats() {
        let (mut model, pairs) = setup_pairs(5, 40);
        let syn = &pairs[..30];
        let seed_set = &pairs[30..];
        let mut opt = Sgd::new(0.05);
        let cfg =
            MetaConfig { steps: 20, syn_batch: 8, seed_batch: 6, seed: 3, ..Default::default() };
        let stats = train_biencoder_meta(&mut model, syn, seed_set, &mut opt, &cfg);
        assert_eq!(stats.step_losses.len(), 20);
        assert_eq!(stats.sampled.len(), 30);
        assert!(stats.sampled.iter().sum::<usize>() == 20 * 8);
        assert!(stats.selected.iter().sum::<usize>() <= stats.sampled.iter().sum::<usize>());
        assert!(!model.params().has_non_finite());
    }

    #[test]
    fn meta_downweights_mislabeled_examples() {
        let (good_ratio, bad_ratio) = discrimination_ratios(6);
        assert!(
            good_ratio > bad_ratio + 0.05,
            "good {good_ratio:.3} vs bad {bad_ratio:.3} — meta-learning failed to discriminate"
        );
    }

    /// Figure-4-shaped setup: half the synthetic pairs are relinked to
    /// rotated (wrong) entities; returns (good, bad) mean selection
    /// ratios after meta training.
    fn discrimination_ratios(seed: u64) -> (f64, f64) {
        let (mut model, pairs) = setup_pairs(seed, 120);
        let seed_set: Vec<TrainPair> = pairs[80..120].to_vec();
        let good: Vec<TrainPair> = pairs[..40].to_vec();
        let mut bad: Vec<TrainPair> = pairs[40..80].to_vec();
        let rotated: Vec<(Vec<u32>, Vec<u32>)> =
            bad.iter().map(|p| (p.entity.clone(), p.title.clone())).collect();
        for (i, p) in bad.iter_mut().enumerate() {
            let (e, t) = rotated[(i + 13) % rotated.len()].clone();
            p.entity = e;
            p.title = t;
        }
        let mut syn = good.clone();
        syn.extend(bad);
        // Pre-train on the seed set so encoder gradients carry semantic
        // signal (Algorithm 2 trains on source domains first).
        let mut pre =
            mb_encoders::train::TrainConfig { epochs: 20, batch_size: 16, lr: 0.01, seed: 5 };
        pre.epochs = 20;
        mb_encoders::train::train_biencoder(&mut model, &seed_set, &pre);
        let mut opt = Sgd::new(0.01);
        let cfg =
            MetaConfig { steps: 250, syn_batch: 12, seed_batch: 16, seed: 9, ..Default::default() };
        let stats = train_biencoder_meta(&mut model, &syn, &seed_set, &mut opt, &cfg);
        (stats.mean_selection_ratio(0..40), stats.mean_selection_ratio(40..80))
    }

    #[test]
    fn degenerate_inputs_return_empty_stats() {
        let (mut model, pairs) = setup_pairs(7, 8);
        let mut opt = Sgd::new(0.1);
        let cfg = MetaConfig { steps: 5, ..Default::default() };
        let s1 = train_biencoder_meta(&mut model, &pairs[..1], &pairs[4..], &mut opt, &cfg);
        assert!(s1.step_losses.is_empty());
        let s2 = train_biencoder_meta(&mut model, &pairs[..4], &[], &mut opt, &cfg);
        assert!(s2.step_losses.is_empty());
    }

    #[test]
    fn weights_shapes_follow_gradvec_contract() {
        // meta_example_weights on handcrafted gradients.
        let mk = |v: &[f64]| GradVec::from_tensors(vec![Tensor::vector(v)]);
        let seed_g = mk(&[1.0, 0.0]);
        let w =
            meta_example_weights(&[mk(&[2.0, 0.0]), mk(&[-1.0, 0.0]), mk(&[2.0, 5.0])], &seed_g);
        // Dots: 2, -1→0, 2 ⇒ normalized [0.5, 0, 0.5].
        assert!((w[0] - 0.5).abs() < 1e-12);
        assert_eq!(w[1], 0.0);
        assert!((w[2] - 0.5).abs() < 1e-12);
    }
}
