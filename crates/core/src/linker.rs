//! The two-stage linker: dense candidate generation + cross-encoder
//! re-ranking, with the paper's two-stage evaluation protocol
//! (recall@k for stage one, normalised accuracy for stage two,
//! unnormalised accuracy for the whole system).
//!
//! [`TwoStageLinker::link_batch`] is the single inference code path:
//! evaluation iterates it chunk-wise and the `mb-serve` micro-batching
//! engine calls it per drained batch, so serving results are
//! definitionally bit-identical to offline evaluation.

use mb_common::LruCache;
use mb_datagen::LinkedMention;
use mb_encoders::biencoder::BiEncoder;
use mb_encoders::crossencoder::{CandidateSet, CrossEncoder};
use mb_encoders::frozen::{FrozenBiEncoder, FrozenCrossEncoder};
use mb_encoders::input::{entity_bag, mention_bag, surface_bag, title_bag, InputConfig, TrainPair};
use mb_encoders::retrieval::{CandidateSource, DenseIndex, QuantizedIndex};
use mb_kb::{EntityId, KnowledgeBase};
use mb_tensor::QuantMode;
use mb_text::Vocab;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Linker-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct LinkerConfig {
    /// Candidates retrieved by the bi-encoder stage (paper: 64).
    pub k: usize,
    /// Input truncation.
    pub input: InputConfig,
    /// Worker threads for the batch inference hot paths (embedding,
    /// retrieval, re-ranking). Partitioning is by fixed chunk size, so
    /// outputs are bit-identical for every value.
    pub threads: mb_par::Threads,
    /// Embedding-table storage for the frozen inference path.
    /// [`QuantMode::Exact`] (the default) is bit-identical to the tape
    /// forward; `F16`/`Int8` trade bounded score error for a smaller
    /// resident model (see `mb_tensor::quant`).
    pub quant: QuantMode,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            k: 64,
            input: InputConfig::default(),
            threads: mb_par::Threads::single(),
            quant: QuantMode::Exact,
        }
    }
}

/// Two-stage evaluation numbers (percentages, 0–100).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkMetrics {
    /// Stage-one recall@k.
    pub recall_at_k: f64,
    /// Normalised accuracy: accuracy over mentions whose gold entity
    /// was retrieved.
    pub normalized_acc: f64,
    /// Unnormalised accuracy = recall × normalised accuracy (measured
    /// directly as end-to-end accuracy).
    pub unnormalized_acc: f64,
    /// Number of evaluated mentions.
    pub count: usize,
}

/// Memoized mention embeddings, keyed by the featurized token bag.
/// Values are exact bi-encoder output rows, so cached lookups stay
/// bit-identical to recomputation.
pub type EmbedCache = LruCache<Vec<u32>, Vec<f64>>;

/// Full two-stage output for one mention.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkResult {
    /// Stage-one candidates `(entity, bi-encoder score)`, best first.
    pub retrieved: Vec<(EntityId, f64)>,
    /// Stage-two (cross-encoder) scores aligned with `retrieved`.
    pub rerank_scores: Vec<f64>,
    /// The re-ranked best entity; `None` when retrieval was empty.
    pub predicted: Option<EntityId>,
}

/// A trained two-stage linker over a fixed candidate dictionary.
pub struct TwoStageLinker<'a> {
    /// The bi-encoder (stage one).
    pub bi: &'a BiEncoder,
    /// The cross-encoder (stage two).
    pub cross: &'a CrossEncoder,
    /// Shared vocabulary.
    pub vocab: &'a Vocab,
    /// Knowledge base.
    pub kb: &'a KnowledgeBase,
    /// Configuration.
    pub cfg: LinkerConfig,
    index: Arc<DenseIndex>,
    qindex: Option<Arc<QuantizedIndex>>,
    /// Approximate retrieval backend (e.g. an IVF index over a sharded
    /// store); when set it answers stage one instead of the exact
    /// indexes.
    ann: Option<Arc<dyn CandidateSource>>,
    frozen_bi: FrozenBiEncoder,
    frozen_cross: FrozenCrossEncoder,
}

impl<'a> TwoStageLinker<'a> {
    /// Build the linker, embedding the candidate dictionary
    /// (`entities`) with the bi-encoder. Freezes both encoders for the
    /// tape-free inference path (under `cfg.quant` this also quantizes
    /// the embedding tables and the index, once).
    ///
    /// # Panics
    /// Panics when `entities` references an id outside `kb` — callers
    /// handling untrusted dictionaries use [`TwoStageLinker::try_new`].
    pub fn new(
        bi: &'a BiEncoder,
        cross: &'a CrossEncoder,
        vocab: &'a Vocab,
        kb: &'a KnowledgeBase,
        entities: &[EntityId],
        cfg: LinkerConfig,
    ) -> Self {
        Self::try_new(bi, cross, vocab, kb, entities, cfg).expect("valid candidate dictionary")
    }

    /// Fallible [`TwoStageLinker::new`]: the typed-error path for
    /// dictionaries that arrive from outside the process (checkpoint
    /// sidecars, stores, CLI arguments).
    ///
    /// # Errors
    /// [`mb_common::Error::NotFound`] when `entities` references an id
    /// outside `kb`.
    pub fn try_new(
        bi: &'a BiEncoder,
        cross: &'a CrossEncoder,
        vocab: &'a Vocab,
        kb: &'a KnowledgeBase,
        entities: &[EntityId],
        cfg: LinkerConfig,
    ) -> mb_common::Result<Self> {
        let index = Arc::new(DenseIndex::try_build(bi, vocab, &cfg.input, kb, entities)?);
        let qindex = QuantizedIndex::from_dense(&index, cfg.quant).map(Arc::new);
        let frozen_bi = bi.freeze(cfg.quant);
        let frozen_cross = cross.freeze(cfg.quant);
        Ok(TwoStageLinker {
            bi,
            cross,
            vocab,
            kb,
            cfg,
            index,
            qindex,
            ann: None,
            frozen_bi,
            frozen_cross,
        })
    }

    /// Assemble a linker around a **precomputed** entity index — the
    /// serving constructor: the server embeds its dictionary once at
    /// startup and then builds a (cheap, borrowing) linker per batch.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when the index vectors do
    /// not match the bi-encoder's output dimension;
    /// [`mb_common::Error::NotFound`] when the index references an
    /// entity id outside `kb`.
    pub fn with_index(
        bi: &'a BiEncoder,
        cross: &'a CrossEncoder,
        vocab: &'a Vocab,
        kb: &'a KnowledgeBase,
        cfg: LinkerConfig,
        index: DenseIndex,
    ) -> mb_common::Result<Self> {
        let frozen_bi = bi.freeze(cfg.quant);
        let frozen_cross = cross.freeze(cfg.quant);
        Self::with_frozen(bi, cross, vocab, kb, cfg, Arc::new(index), None, frozen_bi, frozen_cross)
    }

    /// Assemble a linker around **pre-frozen** shared state — the
    /// per-worker serving constructor. Every argument that carries
    /// model weight (`index`, `qindex`, `frozen_bi`, `frozen_cross`)
    /// is an `Arc`-backed handle, so calling this per worker (or per
    /// batch) shares one frozen model process-wide instead of cloning
    /// parameters. When `cfg.quant` is not [`QuantMode::Exact`] and no
    /// `qindex` is supplied, the index is quantized here (once per
    /// call — pass a shared one to avoid that).
    ///
    /// # Errors
    /// Same validation as [`TwoStageLinker::with_index`].
    #[allow(clippy::too_many_arguments)] // the point is threading shared handles through
    pub fn with_frozen(
        bi: &'a BiEncoder,
        cross: &'a CrossEncoder,
        vocab: &'a Vocab,
        kb: &'a KnowledgeBase,
        cfg: LinkerConfig,
        index: Arc<DenseIndex>,
        qindex: Option<Arc<QuantizedIndex>>,
        frozen_bi: FrozenBiEncoder,
        frozen_cross: FrozenCrossEncoder,
    ) -> mb_common::Result<Self> {
        if !index.is_empty() && index.dim() != bi.config().out_dim {
            return Err(mb_common::Error::shape(
                "TwoStageLinker::with_index",
                format!("index dim {}", bi.config().out_dim),
                format!("index dim {}", index.dim()),
            ));
        }
        if let Some(&bad) = index.ids().iter().find(|id| id.0 as usize >= kb.len()) {
            return Err(mb_common::Error::NotFound(format!(
                "indexed entity {} outside knowledge base of {} entities",
                bad.0,
                kb.len()
            )));
        }
        let qindex = qindex.or_else(|| QuantizedIndex::from_dense(&index, cfg.quant).map(Arc::new));
        Ok(TwoStageLinker {
            bi,
            cross,
            vocab,
            kb,
            cfg,
            index,
            qindex,
            ann: None,
            frozen_bi,
            frozen_cross,
        })
    }

    /// Attach an approximate retrieval backend; stage one then queries
    /// it instead of the exact indexes. The backend must agree with the
    /// bi-encoder dimension and stay inside the knowledge base.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] on a dimension mismatch;
    /// [`mb_common::Error::NotFound`] when the backend's id range
    /// exceeds `kb`.
    pub fn with_ann(mut self, ann: Arc<dyn CandidateSource>) -> mb_common::Result<Self> {
        if !ann.is_empty() && ann.dim() != self.bi.config().out_dim {
            return Err(mb_common::Error::shape(
                "TwoStageLinker::with_ann",
                format!("index dim {}", self.bi.config().out_dim),
                format!("index dim {}", ann.dim()),
            ));
        }
        if let Some(max) = ann.max_id() {
            if max.0 as usize >= self.kb.len() {
                return Err(mb_common::Error::NotFound(format!(
                    "ann entity {} outside knowledge base of {} entities",
                    max.0,
                    self.kb.len()
                )));
            }
        }
        self.ann = Some(ann);
        Ok(self)
    }

    /// Stage one: retrieve the top-k candidates for a mention.
    pub fn candidates(&self, mention: &LinkedMention) -> Vec<(EntityId, f64)> {
        let bag = mention_bag(self.vocab, &self.cfg.input, mention);
        let q = self.frozen_bi.embed_mentions_batch(&[bag]);
        self.retrieve(q.row(0))
    }

    /// Top-k for stage one: the approximate backend when attached,
    /// else the quantized index when one is active, else the exact
    /// index.
    fn retrieve(&self, query: &[f64]) -> Vec<(EntityId, f64)> {
        if let Some(ann) = &self.ann {
            return ann.top_k(query, self.cfg.k);
        }
        match &self.qindex {
            Some(qi) => qi.top_k(query, self.cfg.k),
            None => self.index.top_k(query, self.cfg.k),
        }
    }

    /// Fused stage one for a whole batch: one `top_k_batch` call on
    /// the same backend [`TwoStageLinker::retrieve`] would pick, so
    /// row `i` is bit-identical to `retrieve(queries.row(i))`.
    fn retrieve_batch(
        &self,
        queries: &mb_tensor::Tensor,
    ) -> mb_common::Result<Vec<Vec<(EntityId, f64)>>> {
        if let Some(ann) = &self.ann {
            return ann.top_k_batch(queries, self.cfg.k, self.cfg.threads);
        }
        match &self.qindex {
            Some(qi) => qi.top_k_batch(queries, self.cfg.k, self.cfg.threads),
            None => self.index.top_k_batch(queries, self.cfg.k, self.cfg.threads),
        }
    }

    /// Build a cross-encoder candidate set for a mention from retrieved
    /// candidates, marking the gold index when present.
    pub fn candidate_set(
        &self,
        mention: &LinkedMention,
        retrieved: &[(EntityId, f64)],
    ) -> CandidateSet {
        let pair = TrainPair {
            mention: mention_bag(self.vocab, &self.cfg.input, mention),
            surface: surface_bag(self.vocab, mention),
            entity: Vec::new(),
            title: Vec::new(),
            gold: mention.entity,
        };
        let gold_index = retrieved.iter().position(|(id, _)| *id == mention.entity);
        let cands: Vec<(Vec<u32>, Vec<u32>)> = retrieved
            .iter()
            .map(|(id, _)| {
                let e = self.kb.entity(*id);
                (entity_bag(self.vocab, &self.cfg.input, e), title_bag(self.vocab, e))
            })
            .collect();
        CandidateSet::new(&pair, cands, gold_index)
    }

    /// Full two-stage prediction: the re-ranked best entity, or `None`
    /// when retrieval returns nothing (or inference fails).
    pub fn predict(&self, mention: &LinkedMention) -> Option<EntityId> {
        self.link(mention).ok().and_then(|r| r.predicted)
    }

    /// Full two-stage inference for one mention (a one-element
    /// [`TwoStageLinker::link_batch`]).
    ///
    /// # Errors
    /// Propagates [`TwoStageLinker::link_batch`] errors;
    /// [`mb_common::Error::Internal`] if the batch path violates its
    /// one-result-per-mention contract (a bug, reported as a typed
    /// error so the serving path stays panic-free).
    pub fn link(&self, mention: &LinkedMention) -> mb_common::Result<LinkResult> {
        match self.link_batch(std::slice::from_ref(mention))?.pop() {
            Some(result) => Ok(result),
            None => Err(mb_common::Error::Internal(
                "link_batch returned no result for a one-mention batch".to_string(),
            )),
        }
    }

    /// Batched two-stage inference — the shared serving/evaluation
    /// code path.
    ///
    /// The whole batch runs through **one** fused bi-encoder forward
    /// (duplicate mention bags are embedded once), **one** fused
    /// multi-query retrieval call, and **one** fused cross-encoder
    /// forward over all candidate sets. Every op involved is
    /// row-independent, so element `i` is bit-identical to
    /// `link(&mentions[i])`.
    ///
    /// # Errors
    /// [`mb_common::Error::ShapeMismatch`] when the retrieval backend
    /// rejects the query matrix — unreachable for a linker whose
    /// index/ann passed construction validation.
    pub fn link_batch(&self, mentions: &[LinkedMention]) -> mb_common::Result<Vec<LinkResult>> {
        self.link_batch_cached(mentions, None)
    }

    /// [`TwoStageLinker::link_batch`] with an optional mention-embedding
    /// cache. Cache values are exact bi-encoder rows, so cached and
    /// uncached results are identical; the serving layer uses this to
    /// skip stage-one forwards for repeated (mention, context) inputs.
    ///
    /// # Errors
    /// Same as [`TwoStageLinker::link_batch`].
    pub fn link_batch_cached(
        &self,
        mentions: &[LinkedMention],
        mut cache: Option<&mut EmbedCache>,
    ) -> mb_common::Result<Vec<LinkResult>> {
        if mentions.is_empty() {
            return Ok(Vec::new());
        }
        let bags: Vec<Vec<u32>> =
            mentions.iter().map(|m| mention_bag(self.vocab, &self.cfg.input, m)).collect();
        // Resolve embeddings: cache hits first, then one fused forward
        // over the distinct misses.
        let mut rows: Vec<Option<Vec<f64>>> = vec![None; bags.len()];
        if let Some(cache) = cache.as_deref_mut() {
            for (row, bag) in rows.iter_mut().zip(&bags) {
                *row = cache.get(bag).cloned();
            }
        }
        let mut need: Vec<Vec<u32>> = Vec::new();
        // BTreeMap so the cache-fill loop below iterates in sorted key
        // order — HashMap iteration is per-process random and would make
        // LRU insertion/eviction order (cache state) non-replayable.
        let mut slot: BTreeMap<&[u32], usize> = BTreeMap::new();
        for (row, bag) in rows.iter().zip(&bags) {
            if row.is_none() && !slot.contains_key(bag.as_slice()) {
                slot.insert(bag.as_slice(), need.len());
                need.push(bag.clone());
            }
        }
        let fresh = (!need.is_empty())
            .then(|| self.frozen_bi.embed_mentions_batch_with(&need, self.cfg.threads));
        if let (Some(cache), Some(fresh)) = (cache, &fresh) {
            for (bag, &j) in &slot {
                cache.put(bag.to_vec(), fresh.row(j).to_vec());
            }
        }
        // Fold the fresh rows back into `rows`: every miss bag has a
        // slot, so after this loop every mention has a resolved
        // embedding and the fan-out below is panic-free.
        if let Some(fresh) = &fresh {
            for (row, bag) in rows.iter_mut().zip(&bags) {
                if row.is_none() {
                    if let Some(&j) = slot.get(bag.as_slice()) {
                        *row = Some(fresh.row(j).to_vec());
                    }
                }
            }
        }
        // Stage one, fused: pack the resolved embeddings into one
        // `[n, out_dim]` matrix and issue a single multi-query
        // retrieval call — the backend streams its centroid table /
        // entity rows once per query block instead of once per query
        // (DESIGN.md §16), and is bit-identical to per-query `top_k`.
        let dim = self.bi.config().out_dim;
        let mut qdata = vec![0.0f64; mentions.len() * dim];
        for (i, row) in rows.iter().enumerate() {
            if let Some(r) = row {
                for (dst, &src) in qdata[i * dim..(i + 1) * dim].iter_mut().zip(r) {
                    *dst = src;
                }
            }
        }
        let queries = mb_tensor::Tensor::from_vec(vec![mentions.len(), dim], qdata);
        let retrieved = self.retrieve_batch(&queries)?;
        // Candidate-set assembly fans out over mention index (each
        // mention's work reads only shared immutable state); stage two
        // is one cross-encoder pass over every candidate set. Results
        // come back in mention order.
        let sets: Vec<CandidateSet> =
            mb_par::par_map_range(self.cfg.threads, mentions.len(), |i| {
                self.candidate_set(&mentions[i], &retrieved[i])
            });
        let scores = self.frozen_cross.score_batch_with(&sets, self.cfg.threads);
        Ok(retrieved
            .into_iter()
            .zip(scores)
            .map(|(retrieved, rerank_scores)| {
                let predicted = mb_common::util::argmax(&rerank_scores).map(|i| retrieved[i].0);
                LinkResult { retrieved, rerank_scores, predicted }
            })
            .collect())
    }

    /// Raw integer tallies `(recalled, correct_given_recalled,
    /// correct)` for one evaluation chunk. Integer counts merge exactly
    /// under any sharding, unlike percentage metrics.
    fn tally(&self, chunk: &[LinkedMention]) -> (usize, usize, usize) {
        let mut recalled = 0usize;
        let mut correct_given_recalled = 0usize;
        let mut correct = 0usize;
        // A retrieval shape error is unreachable here: the index (or
        // ann backend) was validated against the bi-encoder dimension
        // at construction. Under `evaluate_parallel` this panic is
        // contained as a typed `Error::Worker` at the fork point.
        let results = self.link_batch(chunk).expect("construction-validated linker");
        for (m, r) in chunk.iter().zip(results) {
            let gold_in = r.retrieved.iter().any(|(id, _)| *id == m.entity);
            if gold_in {
                recalled += 1;
            }
            if r.predicted == Some(m.entity) {
                correct += 1;
                if gold_in {
                    correct_given_recalled += 1;
                }
            }
        }
        (recalled, correct_given_recalled, correct)
    }

    /// Assemble the paper's percentage metrics from summed tallies.
    fn metrics_from_counts(
        n_mentions: usize,
        recalled: usize,
        correct_given_recalled: usize,
        correct: usize,
    ) -> LinkMetrics {
        let n = n_mentions.max(1) as f64;
        LinkMetrics {
            recall_at_k: 100.0 * recalled as f64 / n,
            normalized_acc: if recalled == 0 {
                0.0
            } else {
                100.0 * correct_given_recalled as f64 / recalled as f64
            },
            unnormalized_acc: 100.0 * correct as f64 / n,
            count: n_mentions,
        }
    }

    /// Evaluation chunk size. Chunked so one fused cross-encoder
    /// forward stays bounded in memory however large the test set is;
    /// chunking
    /// cannot change results (every op is row-independent). Fixed by
    /// data, never derived from a worker count, so serial and parallel
    /// evaluation see identical chunk boundaries.
    const EVAL_CHUNK: usize = 32;

    /// Evaluate on gold mentions with the paper's protocol.
    pub fn evaluate(&self, mentions: &[LinkedMention]) -> LinkMetrics {
        let mut recalled = 0usize;
        let mut correct_given_recalled = 0usize;
        let mut correct = 0usize;
        for chunk in mentions.chunks(Self::EVAL_CHUNK) {
            let (r, cg, c) = self.tally(chunk);
            recalled += r;
            correct_given_recalled += cg;
            correct += c;
        }
        Self::metrics_from_counts(mentions.len(), recalled, correct_given_recalled, correct)
    }

    /// Parallel [`TwoStageLinker::evaluate`]: fans the fixed
    /// [`Self::EVAL_CHUNK`]-sized evaluation chunks out over `threads`
    /// workers via [`mb_par::try_par_chunks`]. Because chunk boundaries
    /// are thread-count-independent and the merge sums integer tallies,
    /// the result is **bit-identical** to the serial path for every
    /// thread count (a unit test checks this).
    ///
    /// # Errors
    /// [`mb_common::Error::Worker`] when an evaluation shard panics;
    /// the panic is contained at the fork point instead of tearing down
    /// the caller.
    pub fn evaluate_parallel(
        &self,
        mentions: &[LinkedMention],
        threads: mb_par::Threads,
    ) -> mb_common::Result<LinkMetrics> {
        let tallies = mb_par::try_par_chunks(threads, mentions, Self::EVAL_CHUNK, |_, chunk| {
            self.tally(chunk)
        })?;
        let mut recalled = 0usize;
        let mut correct_given_recalled = 0usize;
        let mut correct = 0usize;
        for (r, cg, c) in tallies {
            recalled += r;
            correct_given_recalled += cg;
            correct += c;
        }
        Ok(Self::metrics_from_counts(mentions.len(), recalled, correct_given_recalled, correct))
    }

    /// The underlying dense index (for diagnostics/benches).
    pub fn index(&self) -> &DenseIndex {
        &self.index
    }

    /// Shared handle to the exact index, for handing to
    /// [`TwoStageLinker::with_frozen`] peers without re-embedding.
    pub fn index_shared(&self) -> Arc<DenseIndex> {
        Arc::clone(&self.index)
    }

    /// Shared handle to the quantized index, when `cfg.quant` is not
    /// [`QuantMode::Exact`].
    pub fn quantized_index(&self) -> Option<Arc<QuantizedIndex>> {
        self.qindex.clone()
    }

    /// The frozen bi-encoder handle this linker scores with.
    pub fn frozen_bi(&self) -> &FrozenBiEncoder {
        &self.frozen_bi
    }

    /// The frozen cross-encoder handle this linker scores with.
    pub fn frozen_cross(&self) -> &FrozenCrossEncoder {
        &self.frozen_cross
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::Rng;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::biencoder::BiEncoderConfig;
    use mb_encoders::crossencoder::CrossEncoderConfig;
    use mb_encoders::input::build_vocab;
    use mb_encoders::train::{train_biencoder, train_crossencoder, TrainConfig};

    struct Fixture {
        world: World,
        vocab: Vocab,
        bi: BiEncoder,
        cross: CrossEncoder,
        train: Vec<LinkedMention>,
        test: Vec<LinkedMention>,
    }

    fn fixture() -> Fixture {
        let world = World::generate(WorldConfig::tiny(43));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(8);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 220, &mut rng);
        let (train, test) = ms.mentions.split_at(150);
        let icfg = InputConfig::default();
        let pairs: Vec<TrainPair> =
            train.iter().map(|m| TrainPair::from_mention(&vocab, &icfg, world.kb(), m)).collect();
        let mut bi = BiEncoder::new(
            &vocab,
            BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
            &mut Rng::seed_from_u64(1),
        );
        train_biencoder(
            &mut bi,
            &pairs,
            &TrainConfig { epochs: 10, batch_size: 24, lr: 0.01, seed: 2 },
        );
        // Cross-encoder trained on bi-encoder candidates.
        let mut cross = CrossEncoder::new(
            &vocab,
            CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
            &mut Rng::seed_from_u64(3),
        );
        {
            let linker = TwoStageLinker::new(
                &bi,
                &cross,
                &vocab,
                world.kb(),
                world.kb().domain_entities(domain.id),
                LinkerConfig { k: 16, input: icfg, ..LinkerConfig::default() },
            );
            let sets: Vec<CandidateSet> = train
                .iter()
                .filter_map(|m| {
                    let retrieved = linker.candidates(m);
                    let set = linker.candidate_set(m, &retrieved);
                    set.gold_index.map(|_| set)
                })
                .collect();
            let mut c2 = cross.clone();
            train_crossencoder(
                &mut c2,
                &sets,
                &TrainConfig { epochs: 4, batch_size: 1, lr: 0.01, seed: 4 },
            );
            cross = c2;
        }
        Fixture { world, vocab, bi, cross, train: train.to_vec(), test: test.to_vec() }
    }

    #[test]
    fn trained_linker_beats_chance_and_metrics_are_consistent() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            f.world.kb().domain_entities(domain.id),
            LinkerConfig { k: 16, ..LinkerConfig::default() },
        );
        let m = linker.evaluate(&f.test);
        assert_eq!(m.count, f.test.len());
        // 16 of 90 entities retrieved: random recall ≈ 18%; trained
        // recall must be far above.
        assert!(m.recall_at_k > 50.0, "recall {}", m.recall_at_k);
        // U.Acc ≈ R × N.Acc (both are over the same test set).
        let product = m.recall_at_k / 100.0 * m.normalized_acc / 100.0 * 100.0;
        assert!(
            (m.unnormalized_acc - product).abs() < 1.0,
            "U {} vs R*N {product}",
            m.unnormalized_acc
        );
        // And beats random ranking of candidates (1/16 of recall).
        assert!(m.unnormalized_acc > 10.0, "U.Acc {}", m.unnormalized_acc);
    }

    #[test]
    fn train_metrics_exceed_test_metrics() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            f.world.kb().domain_entities(domain.id),
            LinkerConfig { k: 16, ..LinkerConfig::default() },
        );
        let tr = linker.evaluate(&f.train);
        let te = linker.evaluate(&f.test);
        assert!(tr.unnormalized_acc + 5.0 >= te.unnormalized_acc);
    }

    #[test]
    fn predict_returns_candidate_from_dictionary() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let dict = f.world.kb().domain_entities(domain.id);
        let linker = TwoStageLinker::new(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            dict,
            LinkerConfig { k: 8, ..LinkerConfig::default() },
        );
        for m in f.test.iter().take(10) {
            let p = linker.predict(m).expect("non-empty dictionary");
            assert!(dict.contains(&p));
        }
    }

    #[test]
    fn link_batch_is_bit_identical_to_sequential_link() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            f.world.kb().domain_entities(domain.id),
            LinkerConfig { k: 8, ..LinkerConfig::default() },
        );
        let mentions = &f.test[..24];
        let singles: Vec<LinkResult> =
            mentions.iter().map(|m| linker.link(m).expect("link")).collect();
        for size in [1usize, 2, 7, 24] {
            let mut batched = Vec::new();
            for chunk in mentions.chunks(size) {
                batched.extend(linker.link_batch(chunk).expect("link"));
            }
            // PartialEq on LinkResult compares f64 scores exactly:
            // this is the bit-identity guarantee serving relies on.
            assert_eq!(batched, singles, "batch size {size}");
        }
    }

    #[test]
    fn cached_link_batch_matches_uncached() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            f.world.kb().domain_entities(domain.id),
            LinkerConfig { k: 8, ..LinkerConfig::default() },
        );
        // Repeat mentions so the second pass is all cache hits.
        let mut mentions: Vec<LinkedMention> = f.test[..10].to_vec();
        mentions.extend_from_slice(&f.test[..10]);
        let uncached = linker.link_batch(&mentions).expect("link");
        let mut cache = EmbedCache::new(64);
        let first = linker.link_batch_cached(&mentions, Some(&mut cache)).expect("link");
        let second = linker.link_batch_cached(&mentions, Some(&mut cache)).expect("link");
        assert_eq!(first, uncached);
        assert_eq!(second, uncached);
        assert!(cache.hits() >= 10, "duplicate mentions should hit: {} hits", cache.hits());
    }

    #[test]
    fn with_index_validates_dimensions_and_ids() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let dict = f.world.kb().domain_entities(domain.id);
        let cfg = LinkerConfig { k: 8, ..LinkerConfig::default() };
        let index = DenseIndex::build(&f.bi, &f.vocab, &cfg.input, f.world.kb(), dict);
        let linker =
            TwoStageLinker::with_index(&f.bi, &f.cross, &f.vocab, f.world.kb(), cfg, index)
                .expect("well-formed index");
        let direct = TwoStageLinker::new(&f.bi, &f.cross, &f.vocab, f.world.kb(), dict, cfg);
        assert_eq!(
            linker.link_batch(&f.test[..4]).expect("link"),
            direct.link_batch(&f.test[..4]).expect("link")
        );
        // Wrong dimensionality is rejected.
        let bad_dim = DenseIndex::from_vectors(
            mb_tensor::Tensor::zeros([1, f.bi.config().out_dim + 1]),
            vec![dict[0]],
        );
        assert!(TwoStageLinker::with_index(&f.bi, &f.cross, &f.vocab, f.world.kb(), cfg, bad_dim)
            .is_err());
        // Out-of-range entity ids are rejected.
        let bad_id = DenseIndex::from_vectors(
            mb_tensor::Tensor::zeros([1, f.bi.config().out_dim]),
            vec![EntityId(f.world.kb().len() as u32)],
        );
        assert!(TwoStageLinker::with_index(&f.bi, &f.cross, &f.vocab, f.world.kb(), cfg, bad_id)
            .is_err());
    }

    #[test]
    fn parallel_evaluation_matches_serial() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            f.world.kb().domain_entities(domain.id),
            LinkerConfig { k: 16, ..LinkerConfig::default() },
        );
        let serial = linker.evaluate(&f.test);
        for threads in [1, 2, 3, 7] {
            let parallel = linker
                .evaluate_parallel(&f.test, mb_par::Threads::new(threads))
                .expect("no shard panics");
            // Integer tallies over thread-count-independent chunks
            // merge exactly: the metrics are bit-identical, not just
            // close.
            assert_eq!(serial.recall_at_k.to_bits(), parallel.recall_at_k.to_bits());
            assert_eq!(serial.normalized_acc.to_bits(), parallel.normalized_acc.to_bits());
            assert_eq!(serial.unnormalized_acc.to_bits(), parallel.unnormalized_acc.to_bits());
            assert_eq!(serial.count, parallel.count);
        }
    }

    #[test]
    fn with_frozen_shares_one_model_and_matches() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let dict = f.world.kb().domain_entities(domain.id);
        let cfg = LinkerConfig { k: 8, ..LinkerConfig::default() };
        let owner = TwoStageLinker::new(&f.bi, &f.cross, &f.vocab, f.world.kb(), dict, cfg);
        // A "worker" linker assembled purely from shared handles: no
        // re-embedding, no re-freezing, no parameter clones.
        let worker = TwoStageLinker::with_frozen(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            cfg,
            owner.index_shared(),
            owner.quantized_index(),
            owner.frozen_bi().clone(),
            owner.frozen_cross().clone(),
        )
        .expect("shared state is consistent");
        assert!(worker.frozen_bi().shares_storage(owner.frozen_bi()));
        assert!(worker.frozen_cross().shares_storage(owner.frozen_cross()));
        assert_eq!(
            worker.link_batch(&f.test[..16]).expect("link"),
            owner.link_batch(&f.test[..16]).expect("link")
        );
    }

    #[test]
    fn quantized_linker_agrees_with_exact_predictions() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let dict = f.world.kb().domain_entities(domain.id);
        let base = LinkerConfig { k: 16, ..LinkerConfig::default() };
        let exact = TwoStageLinker::new(&f.bi, &f.cross, &f.vocab, f.world.kb(), dict, base);
        let want: Vec<_> =
            exact.link_batch(&f.test).expect("link").into_iter().map(|r| r.predicted).collect();
        for quant in [QuantMode::F16, QuantMode::Int8] {
            let cfg = LinkerConfig { quant, ..base };
            let q = TwoStageLinker::new(&f.bi, &f.cross, &f.vocab, f.world.kb(), dict, cfg);
            let got: Vec<_> =
                q.link_batch(&f.test).expect("link").into_iter().map(|r| r.predicted).collect();
            let agree = want.iter().zip(&got).filter(|(a, b)| a == b).count();
            // Quantization noise may flip genuine near-ties, but top-1
            // decisions must overwhelmingly survive.
            assert!(
                agree * 100 >= want.len() * 95,
                "{quant:?}: only {agree}/{} predictions agree with exact",
                want.len()
            );
        }
    }

    #[test]
    fn empty_evaluation_is_zeroed() {
        let f = fixture();
        let domain = f.world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &f.bi,
            &f.cross,
            &f.vocab,
            f.world.kb(),
            f.world.kb().domain_entities(domain.id),
            LinkerConfig::default(),
        );
        let m = linker.evaluate(&[]);
        assert_eq!(m.count, 0);
        assert_eq!(m.unnormalized_acc, 0.0);
    }
}
