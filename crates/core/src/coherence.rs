//! Document-level global coherence — another of the paper's named
//! future-work extensions (Section VIII): when several mentions occur
//! in one document, their linked entities should be mutually related.
//!
//! Implementation: a light joint re-scoring pass. Each mention keeps
//! its top-k re-ranked candidates; candidates then receive a coherence
//! bonus proportional to their relatedness (KB triples + same-domain
//! keyword overlap) with the *current* best candidates of the other
//! mentions, iterated a few rounds (a mean-field / ICA-style update,
//! the standard recipe from Ratinov et al.'s global linkers).

use crate::linker::TwoStageLinker;
use mb_datagen::LinkedMention;
use mb_kb::{EntityId, KnowledgeBase};
use std::collections::BTreeSet;

/// Configuration of the coherence pass.
#[derive(Debug, Clone, Copy)]
pub struct CoherenceConfig {
    /// Candidates kept per mention after re-ranking.
    pub top_k: usize,
    /// Weight of the coherence bonus relative to the cross-encoder
    /// score (which is softmax-normalised per mention first).
    pub lambda: f64,
    /// Mean-field iterations.
    pub rounds: usize,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig { top_k: 8, lambda: 0.5, rounds: 2 }
    }
}

/// Pairwise entity relatedness in `[0, 1]`: 1 for a KB triple between
/// the entities (either direction), otherwise a keyword-free structural
/// fallback of shared title tokens, else 0.
pub fn relatedness(kb: &KnowledgeBase, a: EntityId, b: EntityId) -> f64 {
    if a == b {
        return 1.0;
    }
    if kb.neighbors(a).iter().any(|(_, t)| *t == b) || kb.neighbors(b).iter().any(|(_, t)| *t == a)
    {
        return 1.0;
    }
    // Weak signal: shared non-trivial title tokens.
    let ta: BTreeSet<String> = mb_text::tokenize(&kb.entity(a).title).into_iter().collect();
    let tb: BTreeSet<String> = mb_text::tokenize(&kb.entity(b).title).into_iter().collect();
    let inter = ta.intersection(&tb).count();
    if inter > 0 {
        0.3
    } else {
        0.0
    }
}

/// Jointly link all mentions of one document.
///
/// Returns one predicted entity per mention (same order). Mentions with
/// empty candidate sets yield `None`.
pub fn link_document(
    linker: &TwoStageLinker<'_>,
    mentions: &[LinkedMention],
    cfg: &CoherenceConfig,
) -> Vec<Option<EntityId>> {
    // Stage 1+2 per mention: top-k candidates with normalised scores.
    let mut candidates: Vec<Vec<(EntityId, f64)>> = Vec::with_capacity(mentions.len());
    for m in mentions {
        let retrieved = linker.candidates(m);
        if retrieved.is_empty() {
            candidates.push(Vec::new());
            continue;
        }
        let set = linker.candidate_set(m, &retrieved);
        let scores = linker.cross.score(&set);
        let probs = mb_common::util::softmax(&scores);
        let mut scored: Vec<(EntityId, f64)> =
            retrieved.iter().map(|(id, _)| *id).zip(probs).collect();
        scored.sort_by(|a, b| b.1.total_cmp(&a.1));
        scored.truncate(cfg.top_k);
        candidates.push(scored);
    }

    // Initialise with the local best.
    let mut current: Vec<Option<EntityId>> =
        candidates.iter().map(|c| c.first().map(|(id, _)| *id)).collect();

    // Mean-field refinement.
    for _ in 0..cfg.rounds {
        for i in 0..mentions.len() {
            if candidates[i].is_empty() {
                continue;
            }
            let mut best = (None, f64::NEG_INFINITY);
            for &(cand, local) in &candidates[i] {
                let mut bonus = 0.0;
                let mut others = 0usize;
                for (j, cur) in current.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    if let Some(other) = cur {
                        bonus += relatedness(linker.kb, cand, *other);
                        others += 1;
                    }
                }
                let coherence = if others > 0 { bonus / others as f64 } else { 0.0 };
                let total = local + cfg.lambda * coherence;
                if total > best.1 {
                    best = (Some(cand), total);
                }
            }
            current[i] = best.0;
        }
    }
    current
}

/// Accuracy of joint linking vs independent linking on grouped
/// documents (each group is a document's mention list). Returns
/// `(independent_correct, coherent_correct, total)`.
pub fn compare_on_documents(
    linker: &TwoStageLinker<'_>,
    documents: &[Vec<LinkedMention>],
    cfg: &CoherenceConfig,
) -> (usize, usize, usize) {
    let mut independent = 0;
    let mut coherent = 0;
    let mut total = 0;
    for doc in documents {
        let joint = link_document(linker, doc, cfg);
        for (m, j) in doc.iter().zip(joint) {
            total += 1;
            if linker.predict(m) == Some(m.entity) {
                independent += 1;
            }
            if j == Some(m.entity) {
                coherent += 1;
            }
        }
    }
    (independent, coherent, total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::LinkerConfig;
    use crate::pipeline::{train, DataSource, MetaBlinkConfig, Method, TargetTask};
    use mb_common::Rng;
    use mb_datagen::mentions::{generate_mentions, generate_one};
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::input::build_vocab;

    fn fixture() -> (World, mb_text::Vocab, crate::pipeline::TrainedLinker) {
        let world = World::generate(WorldConfig::tiny(73));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(5);
        let ms = generate_mentions(&world, &domain, 150, &mut rng);
        let empty =
            mb_nlg::SynDataset { domain: domain.name.clone(), exact: vec![], rewritten: vec![] };
        let task = TargetTask {
            world: &world,
            vocab: &vocab,
            domain: world.domain("TargetX"),
            syn: &empty,
            syn_star: &empty,
            seed: &ms.mentions,
            general: &[],
        };
        let model = train(&task, Method::Blink, DataSource::Seed, &MetaBlinkConfig::fast_test());
        (world.clone(), vocab, model)
    }

    #[test]
    fn relatedness_is_reflexive_and_uses_triples() {
        let world = World::generate(WorldConfig::tiny(73));
        let kb = world.kb();
        let domain = world.domain("TargetX");
        let ids = kb.domain_entities(domain.id);
        let a = ids[0];
        assert_eq!(relatedness(kb, a, a), 1.0);
        // Related entities from metadata are triple-linked.
        if let Some(&rel) = world.meta(a).related.first() {
            assert_eq!(relatedness(kb, a, rel), 1.0);
        }
    }

    #[test]
    fn coherence_never_crashes_and_respects_candidates() {
        let (world, vocab, model) = fixture();
        let domain = world.domain("TargetX");
        let dict = world.kb().domain_entities(domain.id);
        let linker = TwoStageLinker::new(
            &model.bi,
            &model.cross,
            &vocab,
            world.kb(),
            dict,
            LinkerConfig { k: 12, ..model.linker_cfg },
        );
        // A "document": several mentions of related entities.
        let mut rng = Rng::seed_from_u64(9);
        let anchor = dict[3];
        let mut doc = vec![generate_one(&world, domain, anchor, &mut rng)];
        for &rel in &world.meta(anchor).related {
            doc.push(generate_one(&world, domain, rel, &mut rng));
        }
        let out = link_document(&linker, &doc, &CoherenceConfig::default());
        assert_eq!(out.len(), doc.len());
        for o in out.into_iter().flatten() {
            assert!(dict.contains(&o));
        }
        // Empty documents are fine.
        assert!(link_document(&linker, &[], &CoherenceConfig::default()).is_empty());
    }

    #[test]
    fn coherence_does_not_hurt_on_related_documents() {
        let (world, vocab, model) = fixture();
        let domain = world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &model.bi,
            &model.cross,
            &vocab,
            world.kb(),
            world.kb().domain_entities(domain.id),
            LinkerConfig { k: 12, ..model.linker_cfg },
        );
        // Documents of mentions about an entity and its relations.
        let mut rng = Rng::seed_from_u64(11);
        let dict = world.kb().domain_entities(domain.id);
        let documents: Vec<Vec<LinkedMention>> = (0..15)
            .map(|k| {
                let anchor = dict[k * 3 % dict.len()];
                let mut doc = vec![generate_one(&world, domain, anchor, &mut rng)];
                for &rel in &world.meta(anchor).related {
                    doc.push(generate_one(&world, domain, rel, &mut rng));
                }
                doc
            })
            .collect();
        let (indep, coh, total) =
            compare_on_documents(&linker, &documents, &CoherenceConfig::default());
        assert!(total > 15);
        // Coherence must not lose more than a whisker vs independent.
        assert!(
            coh + 2 >= indep,
            "coherence {coh}/{total} much worse than independent {indep}/{total}"
        );
    }
}
