//! MetaBLINK training framework (Algorithm 2) and the BLINK / DL4EL
//! training paths, parameterised by data source so every row of
//! Tables V–IX is one call.
//!
//! Step 1 (exact matching) and step 2 (rewriting) of Algorithm 2 live
//! in `mb-nlg`; this module consumes their output and runs step 3 —
//! training the two-stage linker, with or without the meta-learning
//! reweighting of Algorithm 1.

use crate::baselines::{train_biencoder_dl4el, Dl4elConfig};
use crate::linker::{LinkMetrics, LinkerConfig, TwoStageLinker};
use crate::reweight::{train_biencoder_meta, train_crossencoder_meta, MetaConfig, MetaStats};
use mb_common::Rng;
use mb_datagen::world::{DomainInfo, World};
use mb_datagen::LinkedMention;
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CandidateSet, CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::{InputConfig, TrainPair};
use mb_encoders::train::{train_biencoder, train_crossencoder, TrainConfig};
use mb_nlg::SynDataset;
use mb_tensor::optim::Adam;
use mb_text::Vocab;

/// Which labeled data trains the linker — one per table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Seed only.
    Seed,
    /// Exact-match synthetic data only (Table X row 1).
    ExactMatch,
    /// Rewritten synthetic data (syn).
    Syn,
    /// Rewritten synthetic data from the adapted rewriter (syn*).
    SynStar,
    /// syn + seed.
    SynSeed,
    /// syn* + seed.
    SynStarSeed,
    /// General-domain (source) data only — the zero-shot BLINK
    /// baseline of Table VII.
    General,
    /// General-domain (source) data + seed (Table IX).
    GeneralSeed,
    /// General + syn + seed (Table IX).
    GeneralSynSeed,
    /// General + syn* + seed (Table IX).
    GeneralSynStarSeed,
}

impl DataSource {
    /// Human-readable label matching the paper's "Data" column.
    pub fn label(self) -> &'static str {
        match self {
            DataSource::Seed => "Seed",
            DataSource::ExactMatch => "Exact Match",
            DataSource::Syn => "Syn",
            DataSource::SynStar => "Syn*",
            DataSource::SynSeed => "Syn+Seed",
            DataSource::SynStarSeed => "Syn*+Seed",
            DataSource::General => "General",
            DataSource::GeneralSeed => "General+Seed",
            DataSource::GeneralSynSeed => "General+Syn+Seed",
            DataSource::GeneralSynStarSeed => "General+Syn*+Seed",
        }
    }

    fn uses_seed(self) -> bool {
        !matches!(
            self,
            DataSource::ExactMatch | DataSource::Syn | DataSource::SynStar | DataSource::General
        )
    }

    fn uses_general(self) -> bool {
        matches!(
            self,
            DataSource::General
                | DataSource::GeneralSeed
                | DataSource::GeneralSynSeed
                | DataSource::GeneralSynStarSeed
        )
    }

    fn synthetic_kind(self) -> Option<SynKind> {
        match self {
            DataSource::ExactMatch => Some(SynKind::Exact),
            DataSource::Syn | DataSource::SynSeed | DataSource::GeneralSynSeed => {
                Some(SynKind::Syn)
            }
            DataSource::SynStar | DataSource::SynStarSeed | DataSource::GeneralSynStarSeed => {
                Some(SynKind::SynStar)
            }
            DataSource::Seed | DataSource::General | DataSource::GeneralSeed => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SynKind {
    Exact,
    Syn,
    SynStar,
}

/// Training method — one per table row group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Plain two-stage training (Wu et al.).
    Blink,
    /// DL4EL in-batch denoising on the bi-encoder (Le & Titov).
    Dl4el,
    /// Meta-learning reweighting (this paper).
    MetaBlink,
}

impl Method {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Blink => "BLINK",
            Method::Dl4el => "DL4EL",
            Method::MetaBlink => "MetaBLINK",
        }
    }
}

/// Everything needed to train/evaluate on one target domain.
pub struct TargetTask<'a> {
    /// The world.
    pub world: &'a World,
    /// Shared vocabulary.
    pub vocab: &'a Vocab,
    /// The target domain.
    pub domain: &'a DomainInfo,
    /// Synthetic data from the source-trained rewriter (syn) — also
    /// carries the exact-match pairs.
    pub syn: &'a SynDataset,
    /// Synthetic data from the target-adapted rewriter (syn*).
    pub syn_star: &'a SynDataset,
    /// The seed set (few-shot split or zero-shot mined).
    pub seed: &'a [LinkedMention],
    /// Pooled source-domain gold mentions ("General").
    pub general: &'a [LinkedMention],
}

/// Full configuration for one training run.
#[derive(Debug, Clone, Copy)]
pub struct MetaBlinkConfig {
    /// Linker/eval settings (k, truncation).
    pub linker: LinkerConfig,
    /// Bi-encoder architecture.
    pub bi: BiEncoderConfig,
    /// Cross-encoder architecture.
    pub cross: CrossEncoderConfig,
    /// Plain bi-encoder training settings.
    pub bi_train: TrainConfig,
    /// Plain cross-encoder training settings.
    pub cross_train: TrainConfig,
    /// Meta-training settings for the bi-encoder.
    pub bi_meta: MetaConfig,
    /// Meta-training settings for the cross-encoder.
    pub cross_meta: MetaConfig,
    /// DL4EL settings (noise ratio etc.).
    pub dl4el: Dl4elConfig,
    /// Candidates per set when building cross-encoder training data
    /// (the paper uses the bi-encoder's 64; smaller is cheaper).
    pub k_train_candidates: usize,
    /// Cap on cross-encoder training sets (cost control).
    pub cross_train_cap: usize,
    /// Fraction of meta steps that also take a plain gradient step on
    /// the seed batch (the seed is labeled data, not only
    /// meta-supervision). 0 disables.
    pub seed_supervision_mix: f64,
    /// Warm-start MetaBLINK with plain BLINK training before the
    /// meta-reweighted phase (see the ablation bench).
    pub warm_start: bool,
    /// Master seed for model init and sampling.
    pub seed: u64,
}

impl Default for MetaBlinkConfig {
    fn default() -> Self {
        MetaBlinkConfig {
            linker: LinkerConfig::default(),
            bi: BiEncoderConfig::default(),
            cross: CrossEncoderConfig::default(),
            bi_train: TrainConfig { epochs: 8, batch_size: 32, lr: 5e-3, seed: 1 },
            cross_train: TrainConfig { epochs: 2, batch_size: 1, lr: 5e-3, seed: 2 },
            bi_meta: MetaConfig {
                steps: 400,
                syn_batch: 24,
                seed_batch: 16,
                lr: 1e-3,
                seed: 3,
                ..Default::default()
            },
            cross_meta: MetaConfig {
                steps: 250,
                syn_batch: 8,
                seed_batch: 6,
                lr: 1e-3,
                seed: 4,
                ..Default::default()
            },
            dl4el: Dl4elConfig::default(),
            k_train_candidates: 16,
            cross_train_cap: 600,
            seed_supervision_mix: 0.3,
            warm_start: true,
            seed: 0,
        }
    }
}

impl MetaBlinkConfig {
    /// A fast, small configuration for tests.
    pub fn fast_test() -> Self {
        MetaBlinkConfig {
            bi: BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
            cross: CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
            bi_train: TrainConfig { epochs: 4, batch_size: 16, lr: 0.01, seed: 1 },
            cross_train: TrainConfig { epochs: 1, batch_size: 1, lr: 0.01, seed: 2 },
            bi_meta: MetaConfig {
                steps: 60,
                syn_batch: 12,
                seed_batch: 8,
                lr: 0.01,
                seed: 3,
                ..Default::default()
            },
            cross_meta: MetaConfig {
                steps: 40,
                syn_batch: 6,
                seed_batch: 4,
                lr: 0.01,
                seed: 4,
                ..Default::default()
            },
            k_train_candidates: 8,
            cross_train_cap: 120,
            linker: LinkerConfig { k: 16, input: InputConfig::default() },
            ..Default::default()
        }
    }
}

/// A trained two-stage model plus meta-training diagnostics.
pub struct TrainedLinker {
    /// The trained bi-encoder.
    pub bi: BiEncoder,
    /// The trained cross-encoder.
    pub cross: CrossEncoder,
    /// Linker configuration used in training (and default for eval).
    pub linker_cfg: LinkerConfig,
    /// Bi-encoder meta statistics (meta method only).
    pub bi_meta_stats: Option<MetaStats>,
    /// Cross-encoder meta statistics (meta method only).
    pub cross_meta_stats: Option<MetaStats>,
    /// Indices into the synthetic slice used for meta stats (aligned
    /// with `bi_meta_stats.sampled`).
    pub syn_len: usize,
}

impl TrainedLinker {
    /// Evaluate on mentions against the target dictionary.
    pub fn evaluate(&self, task: &TargetTask<'_>, mentions: &[LinkedMention]) -> LinkMetrics {
        let dict = task.world.kb().domain_entities(task.domain.id);
        let linker = TwoStageLinker::new(
            &self.bi,
            &self.cross,
            task.vocab,
            task.world.kb(),
            dict,
            self.linker_cfg,
        );
        linker.evaluate(mentions)
    }
}

/// Collect the synthetic mentions of the configured kind.
fn synthetic_mentions<'t>(task: &'t TargetTask<'_>, kind: SynKind) -> Vec<&'t LinkedMention> {
    match kind {
        SynKind::Exact => task.syn.exact.iter().map(|p| &p.mention).collect(),
        SynKind::Syn => task.syn.rewritten.iter().map(|p| &p.mention).collect(),
        SynKind::SynStar => task.syn_star.rewritten.iter().map(|p| &p.mention).collect(),
    }
}

fn featurize(
    task: &TargetTask<'_>,
    cfg: &MetaBlinkConfig,
    mentions: &[&LinkedMention],
) -> Vec<TrainPair> {
    mentions
        .iter()
        .map(|m| TrainPair::from_mention(task.vocab, &cfg.linker.input, task.world.kb(), m))
        .collect()
}

/// Train a linker with the given method and data source (Algorithm 2
/// step 3 and the baseline equivalents).
pub fn train(
    task: &TargetTask<'_>,
    method: Method,
    source: DataSource,
    cfg: &MetaBlinkConfig,
) -> TrainedLinker {
    let rng = Rng::seed_from_u64(cfg.seed);
    let mut bi = BiEncoder::new(task.vocab, cfg.bi, &mut rng.split(1));
    let mut cross = CrossEncoder::new(task.vocab, cfg.cross, &mut rng.split(2));

    // ---------------- Assemble data ----------------
    let syn_mentions: Vec<&LinkedMention> =
        source.synthetic_kind().map(|k| synthetic_mentions(task, k)).unwrap_or_default();
    let seed_mentions: Vec<&LinkedMention> =
        if source.uses_seed() { task.seed.iter().collect() } else { Vec::new() };
    let general_mentions: Vec<&LinkedMention> =
        if source.uses_general() { task.general.iter().collect() } else { Vec::new() };
    let syn_pairs = featurize(task, cfg, &syn_mentions);
    let seed_pairs = featurize(task, cfg, &seed_mentions);
    let general_pairs = featurize(task, cfg, &general_mentions);

    // For meta methods: the reweighted pool is synthetic (+ general,
    // which the meta mechanism may also weight); the seed is the
    // meta-supervision. For plain methods everything is concatenated.
    let mut weighted_pool = syn_pairs.clone();
    weighted_pool.extend(general_pairs.iter().cloned());
    let mut concat = weighted_pool.clone();
    concat.extend(seed_pairs.iter().cloned());

    // ---------------- Stage one: bi-encoder ----------------
    let use_meta =
        method == Method::MetaBlink && !seed_pairs.is_empty() && weighted_pool.len() >= 2;
    let bi_meta_stats = match (method, use_meta) {
        (Method::MetaBlink, true) => {
            // Warm start exactly like BLINK (the paper builds MetaBLINK
            // on BLINK and keeps its hyper-parameters), then refine
            // with the meta-reweighted phase of Algorithm 1, which
            // downweights the noisy synthetic pairs.
            if cfg.warm_start {
                train_biencoder(&mut bi, &concat, &cfg.bi_train);
            }
            let mut opt = Adam::new(cfg.bi_meta.lr);
            let stats =
                train_biencoder_meta(&mut bi, &weighted_pool, &seed_pairs, &mut opt, &cfg.bi_meta);
            // Seed supervision mix: a few plain epochs on the seed.
            if cfg.seed_supervision_mix > 0.0 && !seed_pairs.is_empty() {
                let epochs =
                    ((cfg.bi_train.epochs as f64) * cfg.seed_supervision_mix).ceil() as usize;
                let tc = TrainConfig { epochs, ..cfg.bi_train };
                train_biencoder(&mut bi, &seed_pairs, &tc);
            }
            Some(stats)
        }
        _ => {
            if method == Method::Dl4el {
                train_biencoder_dl4el(&mut bi, &concat, &cfg.dl4el);
            } else {
                train_biencoder(&mut bi, &concat, &cfg.bi_train);
            }
            None
        }
    };

    // ---------------- Stage two: cross-encoder ----------------
    // Candidate sets come from the *trained* bi-encoder, retrieved from
    // each mention's own domain dictionary: the target dictionary for
    // synthetic/seed mentions, the source dictionaries for general
    // mentions — matching the paper, where the cross-encoder trains on
    // the candidate sets of whatever labeled data it is given.
    let build_sets = |mentions: &[&LinkedMention], cap: usize| -> Vec<CandidateSet> {
        use std::collections::HashMap;
        let mut linkers: HashMap<mb_kb::DomainId, TwoStageLinker<'_>> = HashMap::new();
        let mut out = Vec::new();
        for m in mentions.iter().take(cap) {
            let domain = task.world.kb().entity(m.entity).domain;
            let linker = linkers.entry(domain).or_insert_with(|| {
                TwoStageLinker::new(
                    &bi,
                    &cross,
                    task.vocab,
                    task.world.kb(),
                    task.world.kb().domain_entities(domain),
                    LinkerConfig { k: cfg.k_train_candidates, input: cfg.linker.input },
                )
            });
            let retrieved = linker.candidates(m);
            let set = linker.candidate_set(m, &retrieved);
            if set.gold_index.is_some() {
                out.push(set);
            }
        }
        out
    };
    let syn_sets =
        build_sets(&weighted_pool_mentions(&syn_mentions, &general_mentions), cfg.cross_train_cap);
    let seed_sets = build_sets(&seed_mentions, cfg.cross_train_cap);

    let cross_meta_stats = if use_meta && !syn_sets.is_empty() && !seed_sets.is_empty() {
        // Warm start like BLINK, then meta-refine (as stage one).
        if cfg.warm_start {
            let mut warm = syn_sets.clone();
            warm.extend(seed_sets.iter().cloned());
            train_crossencoder(&mut cross, &warm, &cfg.cross_train);
        }
        let mut opt = Adam::new(cfg.cross_meta.lr);
        let stats =
            train_crossencoder_meta(&mut cross, &syn_sets, &seed_sets, &mut opt, &cfg.cross_meta);
        if cfg.seed_supervision_mix > 0.0 {
            train_crossencoder(
                &mut cross,
                &seed_sets,
                &TrainConfig { epochs: 1, ..cfg.cross_train },
            );
        }
        Some(stats)
    } else {
        let mut all_sets = syn_sets;
        all_sets.extend(seed_sets);
        train_crossencoder(&mut cross, &all_sets, &cfg.cross_train);
        None
    };

    TrainedLinker {
        bi,
        cross,
        linker_cfg: cfg.linker,
        bi_meta_stats,
        cross_meta_stats,
        syn_len: weighted_pool.len(),
    }
}

fn weighted_pool_mentions<'t>(
    syn: &[&'t LinkedMention],
    general: &[&'t LinkedMention],
) -> Vec<&'t LinkedMention> {
    let mut v: Vec<&LinkedMention> = syn.to_vec();
    v.extend(general.iter().copied());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::world::DomainRole;
    use mb_datagen::{Dataset, DatasetConfig};
    use mb_encoders::input::build_vocab;
    use mb_nlg::generate::{generate_syn, train_source_rewriter};
    use mb_nlg::rewriter::RewriterConfig;

    struct Fixture {
        ds: Dataset,
        vocab: Vocab,
        syn: SynDataset,
        syn_star: SynDataset,
        general: Vec<LinkedMention>,
    }

    fn fixture() -> Fixture {
        let ds = Dataset::generate(DatasetConfig::tiny(59));
        let vocab = build_vocab(ds.world().kb(), [], 1);
        let mut rng = Rng::seed_from_u64(7);
        let source_mentions: Vec<(String, Vec<LinkedMention>)> = ds
            .world()
            .domains_with_role(DomainRole::Train)
            .iter()
            .map(|d| (d.name.clone(), ds.mentions(&d.name).mentions.clone()))
            .collect();
        let rw = train_source_rewriter(
            ds.world(),
            &source_mentions,
            RewriterConfig::default(),
            &mut rng,
        );
        let domain = ds.world().domain("TargetX").clone();
        let docs = mb_datagen::corpus::unlabeled_documents(ds.world(), &domain, 100, &mut rng);
        let rw_star = rw.adapt(docs.iter().map(String::as_str));
        let syn = generate_syn(ds.world(), &domain, &rw, 350, &mut Rng::seed_from_u64(8));
        let syn_star = generate_syn(ds.world(), &domain, &rw_star, 350, &mut Rng::seed_from_u64(8));
        let general: Vec<LinkedMention> =
            source_mentions.iter().flat_map(|(_, ms)| ms.iter().cloned()).collect();
        Fixture { ds, vocab, syn, syn_star, general }
    }

    fn task<'a>(f: &'a Fixture) -> TargetTask<'a> {
        TargetTask {
            world: f.ds.world(),
            vocab: &f.vocab,
            domain: f.ds.world().domain("TargetX"),
            syn: &f.syn,
            syn_star: &f.syn_star,
            seed: &f.ds.split("TargetX").seed,
            general: &f.general,
        }
    }

    #[test]
    fn blink_trains_on_each_source_without_panicking() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        for source in [DataSource::Seed, DataSource::Syn, DataSource::SynSeed] {
            let model = train(&t, Method::Blink, source, &cfg);
            let m = model.evaluate(&t, &f.ds.split("TargetX").test[..30]);
            assert!(m.recall_at_k >= 0.0 && m.recall_at_k <= 100.0);
            assert!(!model.bi.params().has_non_finite());
        }
    }

    #[test]
    fn metablink_produces_meta_stats_and_beats_nothing_burning() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        let model = train(&t, Method::MetaBlink, DataSource::SynSeed, &cfg);
        let stats = model.bi_meta_stats.as_ref().expect("meta stats");
        assert!(!stats.step_losses.is_empty());
        assert_eq!(stats.sampled.len(), model.syn_len);
        let m = model.evaluate(&t, &f.ds.split("TargetX").test[..30]);
        assert!(m.unnormalized_acc >= 0.0);
    }

    #[test]
    fn dl4el_trains() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        let model = train(&t, Method::Dl4el, DataSource::SynSeed, &cfg);
        assert!(model.bi_meta_stats.is_none());
        assert!(!model.bi.params().has_non_finite());
    }

    #[test]
    fn general_source_includes_out_of_domain_pairs() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        let model = train(&t, Method::MetaBlink, DataSource::GeneralSynSeed, &cfg);
        assert!(model.syn_len > f.syn.rewritten.len(), "general pairs missing from pool");
    }

    #[test]
    fn source_labels_cover_paper_rows() {
        assert_eq!(DataSource::SynStarSeed.label(), "Syn*+Seed");
        assert_eq!(Method::MetaBlink.label(), "MetaBLINK");
        assert!(DataSource::Seed.uses_seed());
        assert!(!DataSource::Syn.uses_seed());
        assert!(DataSource::GeneralSynSeed.uses_general());
    }
}
