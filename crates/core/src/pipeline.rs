//! MetaBLINK training framework (Algorithm 2) and the BLINK / DL4EL
//! training paths, parameterised by data source so every row of
//! Tables V–IX is one call.
//!
//! Step 1 (exact matching) and step 2 (rewriting) of Algorithm 2 live
//! in `mb-nlg`; this module consumes their output and runs step 3 —
//! training the two-stage linker, with or without the meta-learning
//! reweighting of Algorithm 1.

use crate::baselines::{train_biencoder_dl4el, Dl4elConfig};
use crate::checkpoint::{stats_from_checkpoint, stats_to_checkpoint, CheckpointManager, STAGE_KEY};
use crate::linker::{LinkMetrics, LinkerConfig, TwoStageLinker};
use crate::reweight::{
    train_biencoder_meta, train_biencoder_meta_resumable, train_crossencoder_meta,
    train_crossencoder_meta_resumable, MetaConfig, MetaResume, MetaStats,
};
use mb_common::storage::{NoBudget, StepBudget};
use mb_common::{Error, Result, Rng};
use mb_datagen::world::{DomainInfo, World};
use mb_datagen::LinkedMention;
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CandidateSet, CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::TrainPair;
use mb_encoders::train::{try_train_biencoder, try_train_crossencoder, TrainConfig};
use mb_nlg::SynDataset;
use mb_tensor::checkpoint::Checkpoint;
use mb_tensor::optim::Adam;
use mb_text::Vocab;

/// Checkpoint key for the bi-encoder's state.
pub const BI_KEY: &str = "bi";
/// Checkpoint key for the cross-encoder's state.
pub const CROSS_KEY: &str = "cross";

/// Which labeled data trains the linker — one per table row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataSource {
    /// Seed only.
    Seed,
    /// Exact-match synthetic data only (Table X row 1).
    ExactMatch,
    /// Rewritten synthetic data (syn).
    Syn,
    /// Rewritten synthetic data from the adapted rewriter (syn*).
    SynStar,
    /// syn + seed.
    SynSeed,
    /// syn* + seed.
    SynStarSeed,
    /// General-domain (source) data only — the zero-shot BLINK
    /// baseline of Table VII.
    General,
    /// General-domain (source) data + seed (Table IX).
    GeneralSeed,
    /// General + syn + seed (Table IX).
    GeneralSynSeed,
    /// General + syn* + seed (Table IX).
    GeneralSynStarSeed,
}

impl DataSource {
    /// Human-readable label matching the paper's "Data" column.
    pub fn label(self) -> &'static str {
        match self {
            DataSource::Seed => "Seed",
            DataSource::ExactMatch => "Exact Match",
            DataSource::Syn => "Syn",
            DataSource::SynStar => "Syn*",
            DataSource::SynSeed => "Syn+Seed",
            DataSource::SynStarSeed => "Syn*+Seed",
            DataSource::General => "General",
            DataSource::GeneralSeed => "General+Seed",
            DataSource::GeneralSynSeed => "General+Syn+Seed",
            DataSource::GeneralSynStarSeed => "General+Syn*+Seed",
        }
    }

    fn uses_seed(self) -> bool {
        !matches!(
            self,
            DataSource::ExactMatch | DataSource::Syn | DataSource::SynStar | DataSource::General
        )
    }

    fn uses_general(self) -> bool {
        matches!(
            self,
            DataSource::General
                | DataSource::GeneralSeed
                | DataSource::GeneralSynSeed
                | DataSource::GeneralSynStarSeed
        )
    }

    fn synthetic_kind(self) -> Option<SynKind> {
        match self {
            DataSource::ExactMatch => Some(SynKind::Exact),
            DataSource::Syn | DataSource::SynSeed | DataSource::GeneralSynSeed => {
                Some(SynKind::Syn)
            }
            DataSource::SynStar | DataSource::SynStarSeed | DataSource::GeneralSynStarSeed => {
                Some(SynKind::SynStar)
            }
            DataSource::Seed | DataSource::General | DataSource::GeneralSeed => None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SynKind {
    Exact,
    Syn,
    SynStar,
}

/// Training method — one per table row group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Plain two-stage training (Wu et al.).
    Blink,
    /// DL4EL in-batch denoising on the bi-encoder (Le & Titov).
    Dl4el,
    /// Meta-learning reweighting (this paper).
    MetaBlink,
}

impl Method {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Method::Blink => "BLINK",
            Method::Dl4el => "DL4EL",
            Method::MetaBlink => "MetaBLINK",
        }
    }
}

/// Everything needed to train/evaluate on one target domain.
pub struct TargetTask<'a> {
    /// The world.
    pub world: &'a World,
    /// Shared vocabulary.
    pub vocab: &'a Vocab,
    /// The target domain.
    pub domain: &'a DomainInfo,
    /// Synthetic data from the source-trained rewriter (syn) — also
    /// carries the exact-match pairs.
    pub syn: &'a SynDataset,
    /// Synthetic data from the target-adapted rewriter (syn*).
    pub syn_star: &'a SynDataset,
    /// The seed set (few-shot split or zero-shot mined).
    pub seed: &'a [LinkedMention],
    /// Pooled source-domain gold mentions ("General").
    pub general: &'a [LinkedMention],
}

/// Full configuration for one training run.
#[derive(Debug, Clone, Copy)]
pub struct MetaBlinkConfig {
    /// Linker/eval settings (k, truncation).
    pub linker: LinkerConfig,
    /// Bi-encoder architecture.
    pub bi: BiEncoderConfig,
    /// Cross-encoder architecture.
    pub cross: CrossEncoderConfig,
    /// Plain bi-encoder training settings.
    pub bi_train: TrainConfig,
    /// Plain cross-encoder training settings.
    pub cross_train: TrainConfig,
    /// Meta-training settings for the bi-encoder.
    pub bi_meta: MetaConfig,
    /// Meta-training settings for the cross-encoder.
    pub cross_meta: MetaConfig,
    /// DL4EL settings (noise ratio etc.).
    pub dl4el: Dl4elConfig,
    /// Candidates per set when building cross-encoder training data
    /// (the paper uses the bi-encoder's 64; smaller is cheaper).
    pub k_train_candidates: usize,
    /// Cap on cross-encoder training sets (cost control).
    pub cross_train_cap: usize,
    /// Fraction of meta steps that also take a plain gradient step on
    /// the seed batch (the seed is labeled data, not only
    /// meta-supervision). 0 disables.
    pub seed_supervision_mix: f64,
    /// Warm-start MetaBLINK with plain BLINK training before the
    /// meta-reweighted phase (see the ablation bench).
    pub warm_start: bool,
    /// Master seed for model init and sampling.
    pub seed: u64,
}

impl Default for MetaBlinkConfig {
    fn default() -> Self {
        MetaBlinkConfig {
            linker: LinkerConfig::default(),
            bi: BiEncoderConfig::default(),
            cross: CrossEncoderConfig::default(),
            bi_train: TrainConfig { epochs: 8, batch_size: 32, lr: 5e-3, seed: 1 },
            cross_train: TrainConfig { epochs: 2, batch_size: 1, lr: 5e-3, seed: 2 },
            bi_meta: MetaConfig {
                steps: 400,
                syn_batch: 24,
                seed_batch: 16,
                lr: 1e-3,
                seed: 3,
                ..Default::default()
            },
            cross_meta: MetaConfig {
                steps: 250,
                syn_batch: 8,
                seed_batch: 6,
                lr: 1e-3,
                seed: 4,
                ..Default::default()
            },
            dl4el: Dl4elConfig::default(),
            k_train_candidates: 16,
            cross_train_cap: 600,
            seed_supervision_mix: 0.3,
            warm_start: true,
            seed: 0,
        }
    }
}

impl MetaBlinkConfig {
    /// Set the worker-thread count on every parallel stage at once
    /// (linker inference, bi-encoder meta-training, cross-encoder
    /// meta-training). Thread counts never change results — every
    /// parallel path partitions by data, not by worker count — so this
    /// is purely a throughput knob, plumbed from the binary edge (CLI
    /// flag / `MB_THREADS`) rather than read ambiently in the library.
    pub fn set_threads(&mut self, threads: mb_par::Threads) {
        self.linker.threads = threads;
        self.bi_meta.threads = threads;
        self.cross_meta.threads = threads;
    }

    /// A fast, small configuration for tests.
    pub fn fast_test() -> Self {
        MetaBlinkConfig {
            bi: BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
            cross: CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
            bi_train: TrainConfig { epochs: 4, batch_size: 16, lr: 0.01, seed: 1 },
            cross_train: TrainConfig { epochs: 1, batch_size: 1, lr: 0.01, seed: 2 },
            bi_meta: MetaConfig {
                steps: 60,
                syn_batch: 12,
                seed_batch: 8,
                lr: 0.01,
                seed: 3,
                ..Default::default()
            },
            cross_meta: MetaConfig {
                steps: 40,
                syn_batch: 6,
                seed_batch: 4,
                lr: 0.01,
                seed: 4,
                ..Default::default()
            },
            k_train_candidates: 8,
            cross_train_cap: 120,
            linker: LinkerConfig { k: 16, ..LinkerConfig::default() },
            ..Default::default()
        }
    }
}

/// A trained two-stage model plus meta-training diagnostics.
pub struct TrainedLinker {
    /// The trained bi-encoder.
    pub bi: BiEncoder,
    /// The trained cross-encoder.
    pub cross: CrossEncoder,
    /// Linker configuration used in training (and default for eval).
    pub linker_cfg: LinkerConfig,
    /// Bi-encoder meta statistics (meta method only).
    pub bi_meta_stats: Option<MetaStats>,
    /// Cross-encoder meta statistics (meta method only).
    pub cross_meta_stats: Option<MetaStats>,
    /// Indices into the synthetic slice used for meta stats (aligned
    /// with `bi_meta_stats.sampled`).
    pub syn_len: usize,
}

impl TrainedLinker {
    /// Evaluate on mentions against the target dictionary.
    pub fn evaluate(&self, task: &TargetTask<'_>, mentions: &[LinkedMention]) -> LinkMetrics {
        let dict = task.world.kb().domain_entities(task.domain.id);
        let linker = TwoStageLinker::new(
            &self.bi,
            &self.cross,
            task.vocab,
            task.world.kb(),
            dict,
            self.linker_cfg,
        );
        linker.evaluate(mentions)
    }
}

/// Collect the synthetic mentions of the configured kind.
fn synthetic_mentions<'t>(task: &'t TargetTask<'_>, kind: SynKind) -> Vec<&'t LinkedMention> {
    match kind {
        SynKind::Exact => task.syn.exact.iter().map(|p| &p.mention).collect(),
        SynKind::Syn => task.syn.rewritten.iter().map(|p| &p.mention).collect(),
        SynKind::SynStar => task.syn_star.rewritten.iter().map(|p| &p.mention).collect(),
    }
}

fn featurize(
    task: &TargetTask<'_>,
    cfg: &MetaBlinkConfig,
    mentions: &[&LinkedMention],
) -> Vec<TrainPair> {
    mentions
        .iter()
        .map(|m| TrainPair::from_mention(task.vocab, &cfg.linker.input, task.world.kb(), m))
        .collect()
}

/// Train a linker with the given method and data source (Algorithm 2
/// step 3 and the baseline equivalents).
pub fn train(
    task: &TargetTask<'_>,
    method: Method,
    source: DataSource,
    cfg: &MetaBlinkConfig,
) -> TrainedLinker {
    train_impl(task, method, source, cfg, None)
        .expect("training without a checkpoint manager is infallible")
}

/// [`train`] with crash-safe checkpointing through `mgr`.
///
/// A fresh run saves a checkpoint at every stage boundary (bi-encoder
/// warm-up / meta phase / seed mix, cross-encoder warm-up / meta phase
/// / seed mix) and every `every_n_steps` meta steps. On restart over
/// the same checkpoint directory, [`CheckpointManager::begin`] finds
/// the newest intact checkpoint, training fast-forwards past finished
/// stages, and the result is bit-identical to an uninterrupted run:
/// mid-stage checkpoints capture the optimizer moments and the RNG
/// stream, and everything between two checkpoints is deterministic
/// replay from the seed.
///
/// # Errors
/// [`Error::Aborted`] when the manager's step budget kills the run,
/// [`Error::Io`] when storage keeps failing past the retry budget, and
/// [`Error::Checkpoint`] when no stored generation is usable.
pub fn train_resumable(
    task: &TargetTask<'_>,
    method: Method,
    source: DataSource,
    cfg: &MetaBlinkConfig,
    mgr: &mut CheckpointManager,
) -> Result<TrainedLinker> {
    train_impl(task, method, source, cfg, Some(mgr))
}

/// Pick the step budget: the manager's (fault-injectable) or none.
fn budget_of<'a>(
    mgr: &'a mut Option<&mut CheckpointManager>,
    none: &'a mut NoBudget,
) -> &'a mut dyn StepBudget {
    match mgr {
        Some(m) => m.budget_mut(),
        None => none,
    }
}

/// Save a stage-boundary checkpoint: both models' params, any meta
/// stats so far, and `next_stage` as the cursor. No-op without a
/// manager.
fn save_boundary(
    mgr: &mut Option<&mut CheckpointManager>,
    next_stage: u64,
    bi: &BiEncoder,
    cross: &CrossEncoder,
    bi_stats: Option<&MetaStats>,
    cross_stats: Option<&MetaStats>,
) -> Result<()> {
    let Some(m) = mgr.as_deref_mut() else { return Ok(()) };
    let mut ck = Checkpoint::new();
    ck.params.insert(BI_KEY.to_string(), bi.params().clone());
    ck.params.insert(CROSS_KEY.to_string(), cross.params().clone());
    if let Some(s) = bi_stats {
        stats_to_checkpoint(BI_KEY, s, &mut ck);
    }
    if let Some(s) = cross_stats {
        stats_to_checkpoint(CROSS_KEY, s, &mut ck);
    }
    ck.meta.insert(STAGE_KEY.to_string(), next_stage.to_string());
    m.save_boundary(ck)
}

/// The training pipeline, staged behind a resume cursor. Stage `N`
/// runs only when the cursor (the next stage to execute, 1-based) is
/// `<= N`; each boundary checkpoint stores `N + 1`. Stage 7 means the
/// run finished — resuming it rebuilds the result without training.
fn train_impl(
    task: &TargetTask<'_>,
    method: Method,
    source: DataSource,
    cfg: &MetaBlinkConfig,
    mut mgr: Option<&mut CheckpointManager>,
) -> Result<TrainedLinker> {
    let rng = Rng::seed_from_u64(cfg.seed);
    let mut bi = BiEncoder::new(task.vocab, cfg.bi, &mut rng.split(1));
    let mut cross = CrossEncoder::new(task.vocab, cfg.cross, &mut rng.split(2));

    // ---------------- Assemble data ----------------
    let syn_mentions: Vec<&LinkedMention> =
        source.synthetic_kind().map(|k| synthetic_mentions(task, k)).unwrap_or_default();
    let seed_mentions: Vec<&LinkedMention> =
        if source.uses_seed() { task.seed.iter().collect() } else { Vec::new() };
    let general_mentions: Vec<&LinkedMention> =
        if source.uses_general() { task.general.iter().collect() } else { Vec::new() };
    let syn_pairs = featurize(task, cfg, &syn_mentions);
    let seed_pairs = featurize(task, cfg, &seed_mentions);
    let general_pairs = featurize(task, cfg, &general_mentions);

    // For meta methods: the reweighted pool is synthetic (+ general,
    // which the meta mechanism may also weight); the seed is the
    // meta-supervision. For plain methods everything is concatenated.
    let mut weighted_pool = syn_pairs.clone();
    weighted_pool.extend(general_pairs.iter().cloned());
    let mut concat = weighted_pool.clone();
    concat.extend(seed_pairs.iter().cloned());

    let use_meta =
        method == Method::MetaBlink && !seed_pairs.is_empty() && weighted_pool.len() >= 2;

    // ---------------- Resume ----------------
    let mut cursor: u64 = 1;
    let mut resume_ck: Option<Checkpoint> = None;
    let mut bi_meta_stats: Option<MetaStats> = None;
    let mut cross_meta_stats: Option<MetaStats> = None;
    if let Some(m) = mgr.as_deref_mut() {
        if let Some(ck) = m.begin()? {
            let stage = ck
                .meta
                .get(STAGE_KEY)
                .ok_or_else(|| Error::Checkpoint("checkpoint lacks a stage cursor".to_string()))?;
            cursor = stage
                .parse()
                .map_err(|e| Error::Checkpoint(format!("bad stage cursor {stage:?}: {e}")))?;
            if let Some(p) = ck.params.get(BI_KEY) {
                bi.set_params(p.clone());
            }
            if let Some(p) = ck.params.get(CROSS_KEY) {
                cross.set_params(p.clone());
            }
            bi_meta_stats = stats_from_checkpoint(BI_KEY, &ck);
            cross_meta_stats = stats_from_checkpoint(CROSS_KEY, &ck);
            resume_ck = Some(ck);
        }
    }
    // Mid-stage state in the resumed checkpoint only applies to the
    // stage the run died in; later visits to the same guard (and other
    // stages) must start from scratch.
    let resume_stage = cursor;
    let mut no_budget = NoBudget;

    // ---------------- Stage 1: bi-encoder warm-up ----------------
    // For MetaBLINK this is the plain BLINK warm start (the paper
    // builds MetaBLINK on BLINK and keeps its hyper-parameters); for
    // the baselines it is their entire bi-encoder training.
    if cursor <= 1 {
        if use_meta {
            if cfg.warm_start {
                try_train_biencoder(
                    &mut bi,
                    &concat,
                    &cfg.bi_train,
                    budget_of(&mut mgr, &mut no_budget),
                )?;
            }
        } else if method == Method::Dl4el {
            // No epoch seam inside DL4EL: the whole baseline is one
            // unit of work for kill-injection purposes.
            budget_of(&mut mgr, &mut no_budget).tick()?;
            train_biencoder_dl4el(&mut bi, &concat, &cfg.dl4el);
        } else {
            try_train_biencoder(
                &mut bi,
                &concat,
                &cfg.bi_train,
                budget_of(&mut mgr, &mut no_budget),
            )?;
        }
        save_boundary(&mut mgr, 2, &bi, &cross, None, None)?;
        cursor = 2;
    }

    // ---------------- Stage 2: bi-encoder meta phase ----------------
    // Algorithm 1: downweight the noisy synthetic pairs against the
    // seed's meta-gradient.
    if cursor <= 2 {
        if use_meta {
            let mut opt = Adam::new(cfg.bi_meta.lr);
            let stats = match mgr.as_deref_mut() {
                Some(m) => {
                    let mut ctl = MetaResume {
                        mgr: m,
                        stage: 2,
                        model_key: BI_KEY,
                        resume: if resume_stage == 2 { resume_ck.as_ref() } else { None },
                    };
                    train_biencoder_meta_resumable(
                        &mut bi,
                        &weighted_pool,
                        &seed_pairs,
                        &mut opt,
                        &cfg.bi_meta,
                        &mut ctl,
                    )?
                }
                None => train_biencoder_meta(
                    &mut bi,
                    &weighted_pool,
                    &seed_pairs,
                    &mut opt,
                    &cfg.bi_meta,
                ),
            };
            bi_meta_stats = Some(stats);
        }
        save_boundary(&mut mgr, 3, &bi, &cross, bi_meta_stats.as_ref(), None)?;
        cursor = 3;
    }

    // ---------------- Stage 3: bi-encoder seed mix ----------------
    // A few plain epochs on the seed (it is labeled data, not only
    // meta-supervision).
    if cursor <= 3 {
        if use_meta && cfg.seed_supervision_mix > 0.0 && !seed_pairs.is_empty() {
            let epochs = ((cfg.bi_train.epochs as f64) * cfg.seed_supervision_mix).ceil() as usize;
            let tc = TrainConfig { epochs, ..cfg.bi_train };
            try_train_biencoder(&mut bi, &seed_pairs, &tc, budget_of(&mut mgr, &mut no_budget))?;
        }
        save_boundary(&mut mgr, 4, &bi, &cross, bi_meta_stats.as_ref(), None)?;
        cursor = 4;
    }

    // ---------------- Candidate sets ----------------
    // Candidate sets come from the *trained* bi-encoder, retrieved from
    // each mention's own domain dictionary: the target dictionary for
    // synthetic/seed mentions, the source dictionaries for general
    // mentions — matching the paper, where the cross-encoder trains on
    // the candidate sets of whatever labeled data it is given.
    //
    // Retrieval reads only the frozen bi-encoder, so on resume the
    // rebuilt sets are identical to the original run's — they are
    // recomputed, not checkpointed.
    let (syn_sets, seed_sets) = if cursor <= 6 {
        let build_sets = |mentions: &[&LinkedMention], cap: usize| -> Vec<CandidateSet> {
            use std::collections::BTreeMap;
            let mut linkers: BTreeMap<mb_kb::DomainId, TwoStageLinker<'_>> = BTreeMap::new();
            let mut out = Vec::new();
            for m in mentions.iter().take(cap) {
                let domain = task.world.kb().entity(m.entity).domain;
                let linker = linkers.entry(domain).or_insert_with(|| {
                    TwoStageLinker::new(
                        &bi,
                        &cross,
                        task.vocab,
                        task.world.kb(),
                        task.world.kb().domain_entities(domain),
                        LinkerConfig { k: cfg.k_train_candidates, ..cfg.linker },
                    )
                });
                let retrieved = linker.candidates(m);
                let set = linker.candidate_set(m, &retrieved);
                if set.gold_index.is_some() {
                    out.push(set);
                }
            }
            out
        };
        (
            build_sets(
                &weighted_pool_mentions(&syn_mentions, &general_mentions),
                cfg.cross_train_cap,
            ),
            build_sets(&seed_mentions, cfg.cross_train_cap),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    let cross_meta = use_meta && !syn_sets.is_empty() && !seed_sets.is_empty();

    // ---------------- Stage 4: cross-encoder warm-up ----------------
    // For MetaBLINK: warm start like BLINK. For the baselines: their
    // entire cross-encoder training.
    if cursor <= 4 {
        if cross_meta {
            if cfg.warm_start {
                let mut warm = syn_sets.clone();
                warm.extend(seed_sets.iter().cloned());
                try_train_crossencoder(
                    &mut cross,
                    &warm,
                    &cfg.cross_train,
                    budget_of(&mut mgr, &mut no_budget),
                )?;
            }
        } else {
            let mut all_sets = syn_sets.clone();
            all_sets.extend(seed_sets.iter().cloned());
            try_train_crossencoder(
                &mut cross,
                &all_sets,
                &cfg.cross_train,
                budget_of(&mut mgr, &mut no_budget),
            )?;
        }
        save_boundary(&mut mgr, 5, &bi, &cross, bi_meta_stats.as_ref(), None)?;
        cursor = 5;
    }

    // ---------------- Stage 5: cross-encoder meta phase ----------------
    if cursor <= 5 {
        if cross_meta {
            let mut opt = Adam::new(cfg.cross_meta.lr);
            let stats = match mgr.as_deref_mut() {
                Some(m) => {
                    let mut ctl = MetaResume {
                        mgr: m,
                        stage: 5,
                        model_key: CROSS_KEY,
                        resume: if resume_stage == 5 { resume_ck.as_ref() } else { None },
                    };
                    train_crossencoder_meta_resumable(
                        &mut cross,
                        &syn_sets,
                        &seed_sets,
                        &mut opt,
                        &cfg.cross_meta,
                        &mut ctl,
                    )?
                }
                None => train_crossencoder_meta(
                    &mut cross,
                    &syn_sets,
                    &seed_sets,
                    &mut opt,
                    &cfg.cross_meta,
                ),
            };
            cross_meta_stats = Some(stats);
        }
        save_boundary(&mut mgr, 6, &bi, &cross, bi_meta_stats.as_ref(), cross_meta_stats.as_ref())?;
        cursor = 6;
    }

    // ---------------- Stage 6: cross-encoder seed mix ----------------
    if cursor <= 6 {
        if cross_meta && cfg.seed_supervision_mix > 0.0 {
            try_train_crossencoder(
                &mut cross,
                &seed_sets,
                &TrainConfig { epochs: 1, ..cfg.cross_train },
                budget_of(&mut mgr, &mut no_budget),
            )?;
        }
        save_boundary(&mut mgr, 7, &bi, &cross, bi_meta_stats.as_ref(), cross_meta_stats.as_ref())?;
    }

    Ok(TrainedLinker {
        bi,
        cross,
        linker_cfg: cfg.linker,
        bi_meta_stats,
        cross_meta_stats,
        syn_len: weighted_pool.len(),
    })
}

fn weighted_pool_mentions<'t>(
    syn: &[&'t LinkedMention],
    general: &[&'t LinkedMention],
) -> Vec<&'t LinkedMention> {
    let mut v: Vec<&LinkedMention> = syn.to_vec();
    v.extend(general.iter().copied());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::world::DomainRole;
    use mb_datagen::{Dataset, DatasetConfig};
    use mb_encoders::input::build_vocab;
    use mb_nlg::generate::{generate_syn, train_source_rewriter};
    use mb_nlg::rewriter::RewriterConfig;

    struct Fixture {
        ds: Dataset,
        vocab: Vocab,
        syn: SynDataset,
        syn_star: SynDataset,
        general: Vec<LinkedMention>,
    }

    fn fixture() -> Fixture {
        let ds = Dataset::generate(DatasetConfig::tiny(59));
        let vocab = build_vocab(ds.world().kb(), [], 1);
        let mut rng = Rng::seed_from_u64(7);
        let source_mentions: Vec<(String, Vec<LinkedMention>)> = ds
            .world()
            .domains_with_role(DomainRole::Train)
            .iter()
            .map(|d| (d.name.clone(), ds.mentions(&d.name).mentions.clone()))
            .collect();
        let rw = train_source_rewriter(
            ds.world(),
            &source_mentions,
            RewriterConfig::default(),
            &mut rng,
        );
        let domain = ds.world().domain("TargetX").clone();
        let docs = mb_datagen::corpus::unlabeled_documents(ds.world(), &domain, 100, &mut rng);
        let rw_star = rw.adapt(docs.iter().map(String::as_str));
        let syn = generate_syn(ds.world(), &domain, &rw, 350, &mut Rng::seed_from_u64(8));
        let syn_star = generate_syn(ds.world(), &domain, &rw_star, 350, &mut Rng::seed_from_u64(8));
        let general: Vec<LinkedMention> =
            source_mentions.iter().flat_map(|(_, ms)| ms.iter().cloned()).collect();
        Fixture { ds, vocab, syn, syn_star, general }
    }

    fn task<'a>(f: &'a Fixture) -> TargetTask<'a> {
        TargetTask {
            world: f.ds.world(),
            vocab: &f.vocab,
            domain: f.ds.world().domain("TargetX"),
            syn: &f.syn,
            syn_star: &f.syn_star,
            seed: &f.ds.split("TargetX").seed,
            general: &f.general,
        }
    }

    #[test]
    fn blink_trains_on_each_source_without_panicking() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        for source in [DataSource::Seed, DataSource::Syn, DataSource::SynSeed] {
            let model = train(&t, Method::Blink, source, &cfg);
            let m = model.evaluate(&t, &f.ds.split("TargetX").test[..30]);
            assert!(m.recall_at_k >= 0.0 && m.recall_at_k <= 100.0);
            assert!(!model.bi.params().has_non_finite());
        }
    }

    #[test]
    fn metablink_produces_meta_stats_and_beats_nothing_burning() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        let model = train(&t, Method::MetaBlink, DataSource::SynSeed, &cfg);
        let stats = model.bi_meta_stats.as_ref().expect("meta stats");
        assert!(!stats.step_losses.is_empty());
        assert_eq!(stats.sampled.len(), model.syn_len);
        let m = model.evaluate(&t, &f.ds.split("TargetX").test[..30]);
        assert!(m.unnormalized_acc >= 0.0);
    }

    #[test]
    fn dl4el_trains() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        let model = train(&t, Method::Dl4el, DataSource::SynSeed, &cfg);
        assert!(model.bi_meta_stats.is_none());
        assert!(!model.bi.params().has_non_finite());
    }

    #[test]
    fn general_source_includes_out_of_domain_pairs() {
        let f = fixture();
        let t = task(&f);
        let cfg = MetaBlinkConfig::fast_test();
        let model = train(&t, Method::MetaBlink, DataSource::GeneralSynSeed, &cfg);
        assert!(model.syn_len > f.syn.rewritten.len(), "general pairs missing from pool");
    }

    #[test]
    fn source_labels_cover_paper_rows() {
        assert_eq!(DataSource::SynStarSeed.label(), "Syn*+Seed");
        assert_eq!(Method::MetaBlink.label(), "MetaBLINK");
        assert!(DataSource::Seed.uses_seed());
        assert!(!DataSource::Syn.uses_seed());
        assert!(DataSource::GeneralSynSeed.uses_general());
    }
}
