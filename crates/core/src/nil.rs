//! NIL prediction — one of the paper's named future-work extensions
//! (Section VIII): recognising mentions whose entity is *not* in the
//! knowledge base instead of force-linking them.
//!
//! The standard two-stage recipe is implemented: a mention is predicted
//! NIL when the re-ranked top score falls below a threshold calibrated
//! on held-out data. The calibration picks the threshold that maximises
//! linking F1 on a development set containing both linkable and NIL
//! mentions.

use crate::linker::TwoStageLinker;
use mb_datagen::LinkedMention;
use mb_kb::EntityId;

/// A linking decision with NIL awareness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NilDecision {
    /// Linked to an entity with the given (cross-encoder) score.
    Linked(EntityId, f64),
    /// Predicted out-of-KB.
    Nil,
}

/// A NIL-aware linker wrapping a trained two-stage linker.
pub struct NilAwareLinker<'a> {
    linker: &'a TwoStageLinker<'a>,
    threshold: f64,
}

/// Evaluation counts for NIL-aware linking.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NilMetrics {
    /// Linkable mentions correctly linked to their gold entity.
    pub correct_links: usize,
    /// Linkable mentions linked to a wrong entity.
    pub wrong_links: usize,
    /// Linkable mentions wrongly predicted NIL (missed links).
    pub missed_links: usize,
    /// NIL mentions correctly predicted NIL.
    pub correct_nil: usize,
    /// NIL mentions wrongly linked to some entity.
    pub false_links: usize,
}

impl NilMetrics {
    /// Precision of emitted links: correct / (correct + wrong + false).
    pub fn precision(&self) -> f64 {
        let emitted = self.correct_links + self.wrong_links + self.false_links;
        if emitted == 0 {
            0.0
        } else {
            self.correct_links as f64 / emitted as f64
        }
    }

    /// Recall over linkable mentions.
    pub fn recall(&self) -> f64 {
        let linkable = self.correct_links + self.wrong_links + self.missed_links;
        if linkable == 0 {
            0.0
        } else {
            self.correct_links as f64 / linkable as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// NIL detection accuracy (over NIL mentions only).
    pub fn nil_accuracy(&self) -> f64 {
        let nils = self.correct_nil + self.false_links;
        if nils == 0 {
            0.0
        } else {
            self.correct_nil as f64 / nils as f64
        }
    }
}

impl<'a> NilAwareLinker<'a> {
    /// Wrap a linker with a fixed score threshold.
    pub fn with_threshold(linker: &'a TwoStageLinker<'a>, threshold: f64) -> Self {
        NilAwareLinker { linker, threshold }
    }

    /// Calibrate the threshold on a development set: `dev_linkable`
    /// must have in-KB golds; `dev_nil` are mentions known to be
    /// out-of-KB (their `entity` field is ignored). Scans the observed
    /// score range for the F1-maximising threshold.
    pub fn calibrate(
        linker: &'a TwoStageLinker<'a>,
        dev_linkable: &[LinkedMention],
        dev_nil: &[LinkedMention],
        grid: usize,
    ) -> Self {
        // Collect (top score, correctness, is_nil) triples once.
        let mut observations: Vec<(f64, bool, bool)> = Vec::new();
        for (mentions, is_nil) in [(dev_linkable, false), (dev_nil, true)] {
            for m in mentions {
                if let Some((score, id)) = top_scored(linker, m) {
                    observations.push((score, !is_nil && id == m.entity, is_nil));
                }
            }
        }
        if observations.is_empty() {
            return NilAwareLinker { linker, threshold: f64::NEG_INFINITY };
        }
        let lo = observations.iter().map(|o| o.0).fold(f64::INFINITY, f64::min);
        let hi = observations.iter().map(|o| o.0).fold(f64::NEG_INFINITY, f64::max);
        let mut best = (f64::NEG_INFINITY, -1.0);
        for g in 0..=grid.max(1) {
            let t = lo + (hi - lo) * g as f64 / grid.max(1) as f64;
            let mut m = NilMetrics::default();
            for &(score, correct, is_nil) in &observations {
                let links = score >= t;
                match (links, is_nil, correct) {
                    (true, false, true) => m.correct_links += 1,
                    (true, false, false) => m.wrong_links += 1,
                    (false, false, _) => m.missed_links += 1,
                    (true, true, _) => m.false_links += 1,
                    (false, true, _) => m.correct_nil += 1,
                }
            }
            if m.f1() > best.1 {
                best = (t, m.f1());
            }
        }
        NilAwareLinker { linker, threshold: best.0 }
    }

    /// The calibrated threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// NIL-aware prediction.
    pub fn predict(&self, mention: &LinkedMention) -> NilDecision {
        match top_scored(self.linker, mention) {
            Some((score, id)) if score >= self.threshold => NilDecision::Linked(id, score),
            _ => NilDecision::Nil,
        }
    }

    /// Evaluate on a mixed test set.
    pub fn evaluate(&self, linkable: &[LinkedMention], nil: &[LinkedMention]) -> NilMetrics {
        let mut m = NilMetrics::default();
        for mention in linkable {
            match self.predict(mention) {
                NilDecision::Linked(id, _) if id == mention.entity => m.correct_links += 1,
                NilDecision::Linked(_, _) => m.wrong_links += 1,
                NilDecision::Nil => m.missed_links += 1,
            }
        }
        for mention in nil {
            match self.predict(mention) {
                NilDecision::Linked(_, _) => m.false_links += 1,
                NilDecision::Nil => m.correct_nil += 1,
            }
        }
        m
    }
}

/// Top cross-encoder score and entity for a mention.
fn top_scored(linker: &TwoStageLinker<'_>, mention: &LinkedMention) -> Option<(f64, EntityId)> {
    let retrieved = linker.candidates(mention);
    if retrieved.is_empty() {
        return None;
    }
    let set = linker.candidate_set(mention, &retrieved);
    let scores = linker.cross.score(&set);
    let best = mb_common::util::argmax(&scores)?;
    Some((scores[best], retrieved[best].0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::LinkerConfig;
    use crate::pipeline::{train, DataSource, MetaBlinkConfig, Method};
    use mb_common::Rng;
    use mb_datagen::mentions::generate_mentions;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::input::build_vocab;

    /// Build a trained linker over TargetX plus a pool of "NIL"
    /// mentions: mentions whose gold entity is in a *different* domain
    /// (so they are genuinely out of the dictionary).
    fn fixture() -> (
        World,
        mb_text::Vocab,
        crate::pipeline::TrainedLinker,
        Vec<LinkedMention>,
        Vec<LinkedMention>,
    ) {
        let world = World::generate(WorldConfig::tiny(71));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(4);
        let ms = generate_mentions(&world, &domain, 200, &mut rng);
        // NIL pool: mentions from SrcA, evaluated against TargetX's KB.
        let src = world.domain("SrcA").clone();
        let nil = generate_mentions(&world, &src, 80, &mut rng).mentions;
        // Train quickly on half the in-domain mentions via the pipeline
        // (Seed source with a custom seed set).
        let (train_half, rest) = ms.mentions.split_at(120);
        let ctx_like_syn =
            mb_nlg::SynDataset { domain: domain.name.clone(), exact: vec![], rewritten: vec![] };
        let task = crate::pipeline::TargetTask {
            world: &world,
            vocab: &vocab,
            domain: world.domain("TargetX"),
            syn: &ctx_like_syn,
            syn_star: &ctx_like_syn,
            seed: train_half,
            general: &[],
        };
        let model = train(&task, Method::Blink, DataSource::Seed, &MetaBlinkConfig::fast_test());
        (world.clone(), vocab, model, rest.to_vec(), nil)
    }

    #[test]
    fn calibrated_linker_beats_never_nil_on_mixed_f1() {
        let (world, vocab, model, test, nil) = fixture();
        let domain = world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &model.bi,
            &model.cross,
            &vocab,
            world.kb(),
            world.kb().domain_entities(domain.id),
            LinkerConfig { k: 16, ..model.linker_cfg },
        );
        let (dev_link, test_link) = test.split_at(test.len() / 2);
        let (dev_nil, test_nil) = nil.split_at(nil.len() / 2);
        let calibrated = NilAwareLinker::calibrate(&linker, dev_link, dev_nil, 40);
        let never_nil = NilAwareLinker::with_threshold(&linker, f64::NEG_INFINITY);
        let m_cal = calibrated.evaluate(test_link, test_nil);
        let m_never = never_nil.evaluate(test_link, test_nil);
        // The never-NIL policy false-links every NIL mention.
        assert_eq!(m_never.correct_nil, 0);
        assert_eq!(m_never.false_links, test_nil.len());
        assert!(
            m_cal.f1() + 1e-9 >= m_never.f1(),
            "calibrated F1 {:.3} < never-NIL F1 {:.3}",
            m_cal.f1(),
            m_never.f1()
        );
        // And it actually detects some NILs.
        assert!(m_cal.correct_nil > 0, "calibrated linker never predicts NIL");
    }

    #[test]
    fn metrics_identities() {
        let m = NilMetrics {
            correct_links: 6,
            wrong_links: 2,
            missed_links: 2,
            correct_nil: 5,
            false_links: 5,
        };
        assert!((m.precision() - 6.0 / 13.0).abs() < 1e-12);
        assert!((m.recall() - 0.6).abs() < 1e-12);
        assert!((m.nil_accuracy() - 0.5).abs() < 1e-12);
        assert!(m.f1() > 0.0 && m.f1() < 1.0);
        let zero = NilMetrics::default();
        assert_eq!(zero.f1(), 0.0);
        assert_eq!(zero.precision(), 0.0);
    }

    #[test]
    fn extreme_thresholds_behave() {
        let (world, vocab, model, test, nil) = fixture();
        let domain = world.domain("TargetX");
        let linker = TwoStageLinker::new(
            &model.bi,
            &model.cross,
            &vocab,
            world.kb(),
            world.kb().domain_entities(domain.id),
            LinkerConfig { k: 8, ..model.linker_cfg },
        );
        let always_nil = NilAwareLinker::with_threshold(&linker, f64::INFINITY);
        let m = always_nil.evaluate(&test, &nil);
        assert_eq!(m.correct_links + m.wrong_links + m.false_links, 0);
        assert_eq!(m.correct_nil, nil.len());
        assert_eq!(m.missed_links, test.len());
    }
}
