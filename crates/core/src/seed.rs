//! Seed-set construction.
//!
//! Under the **few-shot** setting the seed is simply the 50 labeled
//! in-domain samples split off the dataset (Table IV). Under the
//! **zero-shot** setting no labels exist, so the paper mines a seed
//! heuristically (Section VI-C): (1) filtering the synthetic data by
//! quality rules, and (2) *self-match* — for entities whose title
//! carries a disambiguation phrase, finding the base name inside the
//! entity's own description and using that occurrence as a labeled
//! mention.

use mb_datagen::LinkedMention;
use mb_kb::KnowledgeBase;
use mb_nlg::{SynPair, SynSource};
use mb_text::overlap::{classify, title_base};
use mb_text::tokenizer::tokenize;
use mb_text::{OverlapCategory, Vocab};

/// Quality rules for filtering synthetic pairs into seed candidates.
#[derive(Debug, Clone, Copy)]
pub struct SeedFilterConfig {
    /// Maximum out-of-vocabulary rate of the mention surface
    /// ("correct spelling" analogue).
    pub max_oov: f64,
    /// Minimum surface token count (very short mentions are
    /// uninformative).
    pub min_tokens: usize,
    /// Require no overlap between mention and entity title (avoids
    /// reinforcing the surface shortcut).
    pub require_low_overlap: bool,
}

impl Default for SeedFilterConfig {
    fn default() -> Self {
        SeedFilterConfig { max_oov: 0.0, min_tokens: 2, require_low_overlap: true }
    }
}

/// Strategy 1: filter synthetic pairs by quality rules.
pub fn filter_seed_candidates(
    kb: &KnowledgeBase,
    vocab: &Vocab,
    syn: &[SynPair],
    cfg: &SeedFilterConfig,
) -> Vec<LinkedMention> {
    syn.iter()
        .filter(|p| p.source == SynSource::Rewritten)
        .filter(|p| {
            let m = &p.mention;
            let toks = tokenize(&m.surface);
            if toks.len() < cfg.min_tokens {
                return false;
            }
            if vocab.oov_rate(&m.surface) > cfg.max_oov {
                return false;
            }
            if cfg.require_low_overlap {
                let title = &kb.entity(m.entity).title;
                if classify(&m.surface, title) != OverlapCategory::LowOverlap {
                    return false;
                }
            }
            true
        })
        .map(|p| p.mention.clone())
        .collect()
}

/// Strategy 2: self-match. For every entity whose title has a
/// disambiguation phrase, look for the base name inside the entity's
/// own description; the surrounding sentence becomes a labeled mention
/// of the Multiple Categories type (which is common in the real data
/// but rare in synthetic data — the vacancy this strategy fills).
pub fn self_match_seeds(kb: &KnowledgeBase, entities: &[mb_kb::EntityId]) -> Vec<LinkedMention> {
    let mut out = Vec::new();
    for &id in entities {
        let e = kb.entity(id);
        let Some(base) = title_base(&e.title) else { continue };
        let base_tokens = tokenize(base);
        if base_tokens.is_empty() {
            continue;
        }
        // Find the base token sequence in the description (canonical
        // token space), then recover a char span in the raw text by
        // locating the base case-insensitively.
        let desc = &e.description;
        let lower = desc.to_lowercase();
        let needle = base.to_lowercase();
        if let Some(pos) = lower.find(&needle) {
            let left = desc[..pos].to_string();
            let surface = desc[pos..pos + needle.len()].to_string();
            let right = desc[pos + needle.len()..].to_string();
            let category = classify(&surface, &e.title);
            out.push(LinkedMention { left, surface, right, entity: id, category });
        }
    }
    out
}

/// Assemble a zero-shot seed set of (up to) `size` mentions: self-match
/// seeds first (they are exact by construction), then filtered
/// synthetic pairs.
pub fn mine_zero_shot_seed(
    kb: &KnowledgeBase,
    vocab: &Vocab,
    entities: &[mb_kb::EntityId],
    syn: &[SynPair],
    cfg: &SeedFilterConfig,
    size: usize,
) -> Vec<LinkedMention> {
    let mut seed = self_match_seeds(kb, entities);
    seed.truncate(size);
    if seed.len() < size {
        let mut filtered = filter_seed_candidates(kb, vocab, syn, cfg);
        filtered.truncate(size - seed.len());
        seed.extend(filtered);
    }
    seed
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::Rng;
    use mb_datagen::mentions::generate_mentions;
    use mb_datagen::world::DomainRole;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::input::build_vocab;
    use mb_nlg::generate::{generate_syn, train_source_rewriter};
    use mb_nlg::rewriter::RewriterConfig;

    fn setup() -> (World, Vocab, Vec<SynPair>) {
        let world = World::generate(WorldConfig::tiny(53));
        let vocab = build_vocab(world.kb(), [], 1);
        let mut rng = Rng::seed_from_u64(3);
        let source_mentions: Vec<(String, Vec<LinkedMention>)> = world
            .domains_with_role(DomainRole::Train)
            .iter()
            .map(|d| {
                let ms = generate_mentions(&world, d, 100, &mut rng);
                (d.name.clone(), ms.mentions)
            })
            .collect();
        let rw =
            train_source_rewriter(&world, &source_mentions, RewriterConfig::default(), &mut rng);
        let domain = world.domain("TargetX").clone();
        let syn = generate_syn(&world, &domain, &rw, 400, &mut rng);
        (world, vocab, syn.rewritten)
    }

    #[test]
    fn filtered_candidates_obey_rules() {
        let (world, vocab, syn) = setup();
        let cfg = SeedFilterConfig::default();
        let seeds = filter_seed_candidates(world.kb(), &vocab, &syn, &cfg);
        for s in &seeds {
            assert!(tokenize(&s.surface).len() >= 2);
            assert_eq!(vocab.oov_rate(&s.surface), 0.0);
            let title = &world.kb().entity(s.entity).title;
            assert_eq!(classify(&s.surface, title), OverlapCategory::LowOverlap);
        }
    }

    #[test]
    fn self_match_yields_multiple_categories_mentions() {
        let (world, _, _) = setup();
        let domain = world.domain("TargetX");
        let ids = world.kb().domain_entities(domain.id);
        let seeds = self_match_seeds(world.kb(), ids);
        assert!(!seeds.is_empty(), "no self-match seeds found");
        for s in &seeds {
            // Surface is the title base, so against the disambiguated
            // title it classifies as Multiple Categories.
            assert_eq!(s.category, OverlapCategory::MultipleCategories);
            // The reconstructed context must splice back together.
            let full = s.text();
            assert_eq!(full, world.kb().entity(s.entity).description);
        }
    }

    #[test]
    fn mined_seed_respects_size_and_prefers_self_match() {
        let (world, vocab, syn) = setup();
        let domain = world.domain("TargetX");
        let ids = world.kb().domain_entities(domain.id);
        let seed =
            mine_zero_shot_seed(world.kb(), &vocab, ids, &syn, &SeedFilterConfig::default(), 25);
        assert!(seed.len() <= 25);
        assert!(!seed.is_empty());
        // All labels must be in-domain.
        for s in &seed {
            assert_eq!(world.kb().entity(s.entity).domain, domain.id);
        }
    }

    #[test]
    fn mined_seed_is_mostly_correctly_labeled() {
        // The point of the heuristics: mined labels should be far
        // cleaner than raw synthetic data.
        let (world, vocab, syn) = setup();
        let domain = world.domain("TargetX");
        let ids = world.kb().domain_entities(domain.id);
        let seed =
            mine_zero_shot_seed(world.kb(), &vocab, ids, &syn, &SeedFilterConfig::default(), 40);
        // Self-match seeds are correct by construction; filtered ones
        // inherit syn noise. Overall correctness must be high. We can
        // check self-match portion exactly.
        let self_matched =
            seed.iter().filter(|s| s.category == OverlapCategory::MultipleCategories).count();
        assert!(self_matched > 0);
    }
}
