//! Crash-safe checkpoint management for the training pipeline.
//!
//! The [`CheckpointManager`] owns the storage backend, the crash-
//! injection [`StepBudget`], and a rolling window of checkpoint
//! *generations* (`ckpt-000001.mbc`, `ckpt-000002.mbc`, …) inside one
//! directory. The pipeline saves a full snapshot at every stage
//! boundary and a patched snapshot every
//! [`CheckpointConfig::every_n_steps`] meta steps; on restart,
//! [`CheckpointManager::begin`] loads the newest generation that passes
//! the `mb-params v2` integrity checks, transparently falling back over
//! corrupted or unreadable generations.
//!
//! Recovery policy, by error class:
//!
//! * [`Error::Io`] — treated as transient; retried up to
//!   [`CheckpointConfig::max_retries`] times with linear backoff before
//!   giving up.
//! * [`Error::Checkpoint`] / [`Error::Parse`] on load — the generation
//!   is corrupt (torn write, bit flip); fall back to the previous
//!   generation and count it in [`CheckpointManager::fallbacks`].
//!   If *every* present generation is corrupt, `begin` returns
//!   [`Error::Checkpoint`] rather than silently retraining from
//!   scratch — losing all checkpoints at once is not a state this
//!   code should paper over.
//! * [`Error::Aborted`] — an injected kill; always propagated.

use mb_common::storage::{DiskStorage, NoBudget, StepBudget, Storage};
use mb_common::{Error, Result};
use mb_tensor::checkpoint::Checkpoint;
use std::path::PathBuf;

use crate::reweight::MetaStats;

/// Checkpointing policy.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding the checkpoint generations.
    pub dir: PathBuf,
    /// Save a mid-stage checkpoint every this many meta steps
    /// (0 disables mid-stage saves; stage boundaries always save).
    pub every_n_steps: usize,
    /// Number of newest generations to retain (older ones are pruned
    /// best-effort after each save). Keep at least 2 so corruption of
    /// the newest generation can fall back.
    pub keep: usize,
    /// How many times a transiently failing storage operation is
    /// retried before the error propagates.
    pub max_retries: u32,
    /// Base backoff between retries, in milliseconds (attempt `k`
    /// sleeps `k * backoff_ms`). 0 disables sleeping (tests).
    pub backoff_ms: u64,
}

impl CheckpointConfig {
    /// Defaults (save every 10 meta steps, keep 3 generations, 3
    /// retries with 20 ms backoff) in `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every_n_steps: 10,
            keep: 3,
            max_retries: 3,
            backoff_ms: 20,
        }
    }
}

/// Owns checkpoint persistence for one training run. See the module
/// docs for the recovery policy.
pub struct CheckpointManager {
    cfg: CheckpointConfig,
    storage: Box<dyn Storage>,
    budget: Box<dyn StepBudget>,
    /// Last stage-boundary snapshot; mid-stage saves patch a clone of
    /// this so every generation on disk is a *complete* snapshot.
    base: Checkpoint,
    next_gen: u64,
    fallbacks: u64,
    saves: u64,
}

impl CheckpointManager {
    /// A manager writing real files via [`DiskStorage`], never aborted
    /// by a budget.
    pub fn on_disk(cfg: CheckpointConfig) -> Self {
        CheckpointManager::with_parts(cfg, Box::new(DiskStorage::new()), Box::new(NoBudget))
    }

    /// A manager over explicit storage and budget implementations —
    /// the constructor fault-injection tests use.
    pub fn with_parts(
        cfg: CheckpointConfig,
        storage: Box<dyn Storage>,
        budget: Box<dyn StepBudget>,
    ) -> Self {
        CheckpointManager {
            cfg,
            storage,
            budget,
            base: Checkpoint::new(),
            next_gen: 1,
            fallbacks: 0,
            saves: 0,
        }
    }

    /// The configured mid-stage save cadence.
    pub fn every_n_steps(&self) -> usize {
        self.cfg.every_n_steps
    }

    /// How many corrupt/unreadable generations [`Self::begin`] skipped.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// How many checkpoints this manager has written.
    pub fn saves(&self) -> u64 {
        self.saves
    }

    /// The crash-injection seam, for threading into trainers.
    pub fn budget_mut(&mut self) -> &mut dyn StepBudget {
        self.budget.as_mut()
    }

    /// Account one unit of training progress.
    ///
    /// # Errors
    /// Whatever the budget returns — conventionally [`Error::Aborted`]
    /// on an injected kill.
    pub fn tick(&mut self) -> Result<()> {
        self.budget.tick()
    }

    /// The last stage-boundary snapshot (empty before the first one).
    pub fn base(&self) -> &Checkpoint {
        &self.base
    }

    fn gen_path(&self, generation: u64) -> PathBuf {
        self.cfg.dir.join(format!("ckpt-{generation:06}.mbc"))
    }

    fn parse_gen(name: &str) -> Option<u64> {
        let rest = name.strip_prefix("ckpt-")?.strip_suffix(".mbc")?;
        if rest.len() != 6 || !rest.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        rest.parse().ok()
    }

    /// Run a storage operation, retrying [`Error::Io`] with bounded
    /// linear backoff.
    fn with_retry<T>(&mut self, mut op: impl FnMut(&mut dyn Storage) -> Result<T>) -> Result<T> {
        let mut attempt: u32 = 0;
        loop {
            match op(self.storage.as_mut()) {
                Err(Error::Io(_)) if attempt < self.cfg.max_retries => {
                    attempt += 1;
                    if self.cfg.backoff_ms > 0 {
                        std::thread::sleep(std::time::Duration::from_millis(
                            self.cfg.backoff_ms * attempt as u64,
                        ));
                    }
                }
                other => return other,
            }
        }
    }

    /// Scan the checkpoint directory and load the newest generation
    /// that passes integrity checks, falling back over corrupt ones.
    /// Returns `None` when no generation exists (fresh run). Also
    /// primes [`Self::base`] with the loaded snapshot.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] if generations exist but every one is
    /// corrupt; [`Error::Io`] if the directory itself is unreadable
    /// after retries.
    pub fn begin(&mut self) -> Result<Option<Checkpoint>> {
        let dir = self.cfg.dir.clone();
        let names = self.with_retry(|s| s.list(&dir))?;
        let mut gens: Vec<u64> = names.iter().filter_map(|n| Self::parse_gen(n)).collect();
        gens.sort_unstable();
        self.next_gen = gens.last().map_or(1, |g| g + 1);
        for &g in gens.iter().rev() {
            let path = self.gen_path(g);
            let loaded =
                self.with_retry(|s| s.read(&path)).and_then(|b| Checkpoint::from_bytes(&b));
            match loaded {
                Ok(ck) => {
                    self.base = ck.clone();
                    return Ok(Some(ck));
                }
                Err(Error::Aborted(msg)) => return Err(Error::Aborted(msg)),
                Err(_) => self.fallbacks += 1, // corrupt or unreadable: fall back
            }
        }
        if !gens.is_empty() {
            return Err(Error::Checkpoint(format!(
                "all {} checkpoint generation(s) in {} are corrupt",
                gens.len(),
                dir.display()
            )));
        }
        Ok(None)
    }

    /// Save a stage-boundary snapshot: records it as the new [`base`]
    /// (the template mid-stage saves patch) and writes a generation.
    ///
    /// [`base`]: Self::base
    ///
    /// # Errors
    /// Serialization errors, or [`Error::Io`] after retries.
    pub fn save_boundary(&mut self, ck: Checkpoint) -> Result<()> {
        self.base = ck.clone();
        self.save(ck)
    }

    /// Write `ck` as the next generation and prune old generations
    /// (best-effort) down to [`CheckpointConfig::keep`].
    ///
    /// # Errors
    /// Serialization errors, or [`Error::Io`] after retries.
    pub fn save(&mut self, ck: Checkpoint) -> Result<()> {
        let bytes = ck.to_bytes()?;
        let path = self.gen_path(self.next_gen);
        self.with_retry(|s| s.write_atomic(&path, &bytes))?;
        self.next_gen += 1;
        self.saves += 1;
        self.prune();
        Ok(())
    }

    /// Remove generations beyond the retention window. Best-effort: a
    /// failed removal never fails training, it just leaves extra files.
    fn prune(&mut self) {
        let dir = self.cfg.dir.clone();
        let Ok(names) = self.storage.list(&dir) else { return };
        let mut gens: Vec<u64> = names.iter().filter_map(|n| Self::parse_gen(n)).collect();
        gens.sort_unstable();
        let keep = self.cfg.keep.max(1);
        if gens.len() <= keep {
            return;
        }
        for &g in &gens[..gens.len() - keep] {
            let path = self.gen_path(g);
            let _ = self.storage.remove(&path);
        }
    }
}

/// Store a [`MetaStats`] into checkpoint vectors under `prefix`.
pub fn stats_to_checkpoint(prefix: &str, stats: &MetaStats, ck: &mut Checkpoint) {
    ck.vectors
        .insert(format!("{prefix}_sampled"), stats.sampled.iter().map(|&x| x as f64).collect());
    ck.vectors
        .insert(format!("{prefix}_selected"), stats.selected.iter().map(|&x| x as f64).collect());
    ck.vectors.insert(format!("{prefix}_step_losses"), stats.step_losses.clone());
    ck.meta.insert(format!("{prefix}_zero_weight_steps"), stats.zero_weight_steps.to_string());
}

/// Recover a [`MetaStats`] stored by [`stats_to_checkpoint`]; `None`
/// when the checkpoint has no stats under `prefix`.
pub fn stats_from_checkpoint(prefix: &str, ck: &Checkpoint) -> Option<MetaStats> {
    let sampled = ck.vectors.get(&format!("{prefix}_sampled"))?;
    let selected = ck.vectors.get(&format!("{prefix}_selected"))?;
    let step_losses = ck.vectors.get(&format!("{prefix}_step_losses"))?;
    let zero = ck
        .meta
        .get(&format!("{prefix}_zero_weight_steps"))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Some(MetaStats {
        sampled: sampled.iter().map(|&x| x as usize).collect(),
        selected: selected.iter().map(|&x| x as usize).collect(),
        step_losses: step_losses.clone(),
        zero_weight_steps: zero,
    })
}

/// The stage-cursor key in checkpoint metadata: the next pipeline
/// stage to execute (see `pipeline::train_resumable` for the stage
/// numbering).
pub const STAGE_KEY: &str = "stage";

/// The in-stage meta-step key: how many meta steps of the stage named
/// by [`STAGE_KEY`] had completed when the checkpoint was taken.
pub const STEP_KEY: &str = "step";

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::storage::MemStorage;
    use std::path::Path;

    fn ck_with(tag: &str) -> Checkpoint {
        let mut ck = Checkpoint::new();
        ck.meta.insert("tag".into(), tag.into());
        ck
    }

    fn mem_manager(mem: &MemStorage, keep: usize) -> CheckpointManager {
        let cfg = CheckpointConfig {
            every_n_steps: 5,
            keep,
            backoff_ms: 0,
            ..CheckpointConfig::new("ckpts")
        };
        CheckpointManager::with_parts(cfg, Box::new(mem.clone()), Box::new(NoBudget))
    }

    #[test]
    fn fresh_directory_begins_empty_and_saves_generations() {
        let mem = MemStorage::new();
        let mut mgr = mem_manager(&mem, 3);
        assert!(mgr.begin().unwrap().is_none());
        mgr.save_boundary(ck_with("a")).unwrap();
        mgr.save(ck_with("b")).unwrap();
        assert_eq!(mgr.saves(), 2);
        // A restarted manager resumes from the newest generation.
        let mut mgr2 = mem_manager(&mem, 3);
        let resumed = mgr2.begin().unwrap().expect("resume");
        assert_eq!(resumed.meta["tag"], "b");
        assert_eq!(mgr2.fallbacks(), 0);
        // base primed from the resumed checkpoint.
        assert_eq!(mgr2.base().meta["tag"], "b");
    }

    #[test]
    fn pruning_keeps_the_newest_generations() {
        let mem = MemStorage::new();
        let mut mgr = mem_manager(&mem, 2);
        for tag in ["a", "b", "c", "d"] {
            mgr.save(ck_with(tag)).unwrap();
        }
        let mut store = mem.clone();
        let names = store.list(Path::new("ckpts")).unwrap();
        assert_eq!(names, vec!["ckpt-000003.mbc".to_string(), "ckpt-000004.mbc".to_string()]);
    }

    #[test]
    fn corrupt_newest_generation_falls_back() {
        let mem = MemStorage::new();
        let mut mgr = mem_manager(&mem, 3);
        mgr.save(ck_with("good")).unwrap();
        mgr.save(ck_with("newer")).unwrap();
        // Corrupt the newest generation behind the manager's back.
        let newest = Path::new("ckpts").join("ckpt-000002.mbc");
        let mut bytes = mem.peek(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        mem.poke(&newest, bytes);
        let mut mgr2 = mem_manager(&mem, 3);
        let resumed = mgr2.begin().unwrap().expect("fallback resume");
        assert_eq!(resumed.meta["tag"], "good");
        assert_eq!(mgr2.fallbacks(), 1);
        // New saves do not overwrite the corrupted generation's slot.
        mgr2.save(ck_with("after")).unwrap();
        assert!(mem.peek(&Path::new("ckpts").join("ckpt-000003.mbc")).is_some());
    }

    #[test]
    fn all_generations_corrupt_is_an_error() {
        let mem = MemStorage::new();
        let mut mgr = mem_manager(&mem, 3);
        mgr.save(ck_with("only")).unwrap();
        let p = Path::new("ckpts").join("ckpt-000001.mbc");
        mem.poke(&p, b"garbage".to_vec());
        let mut mgr2 = mem_manager(&mem, 3);
        let err = mgr2.begin().unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)), "got {err:?}");
        assert_eq!(mgr2.fallbacks(), 1);
    }

    #[test]
    fn stats_round_trip_through_checkpoint() {
        let stats = MetaStats {
            sampled: vec![3, 0, 7],
            selected: vec![1, 0, 7],
            step_losses: vec![0.5, 1.0 / 3.0],
            zero_weight_steps: 2,
        };
        let mut ck = Checkpoint::new();
        stats_to_checkpoint("bi", &stats, &mut ck);
        let ck = Checkpoint::from_bytes(&ck.to_bytes().unwrap()).unwrap();
        let back = stats_from_checkpoint("bi", &ck).unwrap();
        assert_eq!(back.sampled, stats.sampled);
        assert_eq!(back.selected, stats.selected);
        assert_eq!(back.step_losses, stats.step_losses);
        assert_eq!(back.zero_weight_steps, 2);
        assert!(stats_from_checkpoint("cross", &ck).is_none());
    }

    #[test]
    fn transient_io_is_retried() {
        // A storage that fails the first two writes with Error::Io.
        struct Flaky {
            inner: MemStorage,
            fails_left: u32,
        }
        impl Storage for Flaky {
            fn read(&mut self, path: &Path) -> Result<Vec<u8>> {
                self.inner.read(path)
            }
            fn write_atomic(&mut self, path: &Path, data: &[u8]) -> Result<()> {
                if self.fails_left > 0 {
                    self.fails_left -= 1;
                    return Err(Error::Io("flaky".into()));
                }
                self.inner.write_atomic(path, data)
            }
            fn exists(&mut self, path: &Path) -> bool {
                self.inner.exists(path)
            }
            fn remove(&mut self, path: &Path) -> Result<()> {
                self.inner.remove(path)
            }
            fn list(&mut self, dir: &Path) -> Result<Vec<String>> {
                self.inner.list(dir)
            }
        }
        let mem = MemStorage::new();
        let cfg =
            CheckpointConfig { backoff_ms: 0, max_retries: 3, ..CheckpointConfig::new("ckpts") };
        let mut mgr = CheckpointManager::with_parts(
            cfg.clone(),
            Box::new(Flaky { inner: mem.clone(), fails_left: 2 }),
            Box::new(NoBudget),
        );
        mgr.save(ck_with("x")).unwrap();
        assert!(mem.peek(&Path::new("ckpts").join("ckpt-000001.mbc")).is_some());
        // More failures than retries: the error propagates.
        let mut mgr2 = CheckpointManager::with_parts(
            cfg,
            Box::new(Flaky { inner: MemStorage::new(), fails_left: 10 }),
            Box::new(NoBudget),
        );
        assert!(matches!(mgr2.save(ck_with("y")), Err(Error::Io(_))));
    }
}
