//! Property tests of the batched inference path: for ANY subset of
//! mentions, ANY chunking, and ANY cache state, `link_batch` must be
//! element-wise bit-identical to sequential `link` calls. This is the
//! contract `mb-serve` relies on — micro-batching must never change
//! model outputs.

use mb_check::{gen, prop_assert_eq};
use mb_common::Rng;
use mb_core::linker::{EmbedCache, LinkResult, LinkerConfig, TwoStageLinker};
use mb_core::pipeline::{train, DataSource, MetaBlinkConfig, Method};
use mb_datagen::LinkedMention;
use mb_datagen::{World, WorldConfig};
use mb_encoders::biencoder::BiEncoder;
use mb_encoders::crossencoder::CrossEncoder;
use mb_encoders::input::build_vocab;

use mb_text::Vocab;
use std::sync::OnceLock;

struct Fixture {
    world: World,
    vocab: Vocab,
    bi: BiEncoder,
    cross: CrossEncoder,
    mentions: Vec<LinkedMention>,
}

/// Built once for the whole suite; randomly initialized encoders are
/// enough — the identity property holds for any parameters.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny(17));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(5);
        let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 48, &mut rng);
        let bi = BiEncoder::new(
            &vocab,
            mb_encoders::biencoder::BiEncoderConfig {
                emb_dim: 12,
                hidden: 12,
                out_dim: 12,
                ..Default::default()
            },
            &mut Rng::seed_from_u64(1),
        );
        let cross = CrossEncoder::new(
            &vocab,
            mb_encoders::crossencoder::CrossEncoderConfig {
                emb_dim: 12,
                hidden: 12,
                ..Default::default()
            },
            &mut Rng::seed_from_u64(2),
        );
        Fixture { vocab, bi, cross, mentions: ms.mentions, world }
    })
}

fn linker(f: &Fixture) -> TwoStageLinker<'_> {
    let domain = f.world.domain("TargetX");
    TwoStageLinker::new(
        &f.bi,
        &f.cross,
        &f.vocab,
        f.world.kb(),
        f.world.kb().domain_entities(domain.id),
        LinkerConfig { k: 6, ..LinkerConfig::default() },
    )
}

mb_check::check! {
    #![config(cases = 16)]

    fn link_batch_matches_sequential_for_any_batch(
        picks in gen::vec_of(gen::usize_in(0..48), 1..14),
        chunk in gen::usize_in(1..15),
    ) {
        let f = fixture();
        let l = linker(f);
        let batch: Vec<LinkedMention> =
            picks.iter().map(|&i| f.mentions[i].clone()).collect();
        let sequential: Vec<LinkResult> =
            batch.iter().map(|m| l.link(m).expect("link")).collect();
        let mut chunked = Vec::new();
        for c in batch.chunks(chunk) {
            chunked.extend(l.link_batch(c).expect("link"));
        }
        // PartialEq on LinkResult compares every f64 exactly: batching
        // and chunking must be bit-transparent.
        prop_assert_eq!(chunked, sequential);
    }

    fn cache_state_never_changes_results(
        picks in gen::vec_of(gen::usize_in(0..48), 1..12),
        capacity in gen::usize_in(1..10),
    ) {
        let f = fixture();
        let l = linker(f);
        let batch: Vec<LinkedMention> =
            picks.iter().map(|&i| f.mentions[i].clone()).collect();
        let uncached = l.link_batch(&batch).expect("link");
        // A tiny capacity forces evictions mid-batch across repeats.
        let mut cache = EmbedCache::new(capacity);
        for _ in 0..3 {
            let cached = l.link_batch_cached(&batch, Some(&mut cache)).expect("link");
            prop_assert_eq!(&cached, &uncached);
        }
    }
}

/// The end-to-end anchor: a *trained* model evaluated through the
/// batched path produces the same metrics as before the refactor
/// (evaluate() now iterates link_batch internally; this pins the
/// trained path too, not just random parameters).
#[test]
fn trained_model_evaluation_is_stable_under_batching() {
    let world = World::generate(WorldConfig::tiny(29));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(11);
    let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 120, &mut rng);
    let (seed, test) = ms.mentions.split_at(60);
    let syn = mb_nlg::SynDataset {
        domain: domain.name.clone(),
        exact: Vec::new(),
        rewritten: Vec::new(),
    };
    let task = mb_core::pipeline::TargetTask {
        world: &world,
        vocab: &vocab,
        domain: &domain,
        syn: &syn,
        syn_star: &syn,
        seed,
        general: &[],
    };
    let model = train(&task, Method::Blink, DataSource::Seed, &MetaBlinkConfig::fast_test());
    let linker = TwoStageLinker::new(
        &model.bi,
        &model.cross,
        &vocab,
        world.kb(),
        world.kb().domain_entities(domain.id),
        model.linker_cfg,
    );
    let via_eval = linker.evaluate(test);
    // Recompute the same metrics one mention at a time.
    let mut recalled = 0usize;
    let mut correct = 0usize;
    for m in test {
        let r = linker.link(m).expect("link");
        if r.retrieved.iter().any(|(id, _)| *id == m.entity) {
            recalled += 1;
        }
        if r.predicted == Some(m.entity) {
            correct += 1;
        }
    }
    let n = test.len() as f64;
    assert!((via_eval.recall_at_k - 100.0 * recalled as f64 / n).abs() < 1e-12);
    assert!((via_eval.unnormalized_acc - 100.0 * correct as f64 / n).abs() < 1e-12);
}
