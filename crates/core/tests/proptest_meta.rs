//! Property-based tests of the meta-weight computation (Eqs. 12–14).

use mb_check::gen::{self, F64In, VecGen};
use mb_check::{prop_assert, prop_assert_eq};
use mb_core::reweight::{meta_example_weights, meta_example_weights_opts};
use mb_tensor::params::GradVec;
use mb_tensor::Tensor;

fn gradvec(data: Vec<f64>) -> GradVec {
    GradVec::from_tensors(vec![Tensor::from_vec(vec![data.len()], data)])
}

fn grads(n: usize, d: usize) -> VecGen<VecGen<F64In>> {
    gen::vec_of(gen::vec_of(gen::f64_in(-5.0..5.0), d), 1..n)
}

mb_check::check! {
    #![config(cases = 128)]

    fn weights_are_a_subprobability_distribution(
        gs in grads(10, 6),
        seed in gen::vec_of(gen::f64_in(-5.0..5.0), 6),
    ) {
        let example: Vec<GradVec> = gs.into_iter().map(gradvec).collect();
        let seed_grad = gradvec(seed);
        for normalize in [false, true] {
            let w = meta_example_weights_opts(&example, &seed_grad, normalize);
            prop_assert_eq!(w.len(), example.len());
            prop_assert!(w.iter().all(|&x| x >= 0.0));
            let total: f64 = w.iter().sum();
            // Eq. 14 with the δ guard: exactly 1 or exactly 0.
            prop_assert!((total - 1.0).abs() < 1e-9 || total == 0.0, "total {total}");
        }
    }

    fn anti_aligned_examples_get_zero_weight(seed in gen::vec_of(gen::f64_in(0.1..5.0), 6)) {
        let seed_grad = gradvec(seed.clone());
        let aligned = gradvec(seed.clone());
        let anti = gradvec(seed.iter().map(|x| -x).collect());
        let w = meta_example_weights(&[aligned, anti], &seed_grad);
        prop_assert!(w[0] > 0.99);
        prop_assert_eq!(w[1], 0.0);
    }

    fn weights_invariant_to_positive_seed_scaling(
        gs in grads(8, 5),
        seed in gen::vec_of(gen::f64_in(-5.0..5.0), 5),
        k in gen::f64_in(0.01..100.0),
    ) {
        // Normalisation (Eq. 14) cancels any positive rescaling of the
        // seed gradient.
        let example: Vec<GradVec> = gs.into_iter().map(gradvec).collect();
        let s1 = gradvec(seed.clone());
        let s2 = gradvec(seed.iter().map(|x| x * k).collect());
        let w1 = meta_example_weights(&example, &s1);
        let w2 = meta_example_weights(&example, &s2);
        for (a, b) in w1.iter().zip(&w2) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    fn normalized_weights_invariant_to_example_scaling(
        seed in gen::vec_of(gen::f64_in(-5.0..5.0), 5),
        example in gen::vec_of(gen::f64_in(-5.0..5.0), 5),
        k in gen::f64_in(0.01..100.0),
    ) {
        // With normalize=true, rescaling one example's gradient must not
        // change the weights (the magnitude confound is removed).
        let seed_grad = gradvec(seed);
        let e1 = gradvec(example.clone());
        let e2 = gradvec(example.iter().map(|x| x * k).collect());
        let other = gradvec(vec![1.0, 0.5, -0.3, 0.2, 0.9]);
        let w1 = meta_example_weights_opts(&[e1, other.clone()], &seed_grad, true);
        let w2 = meta_example_weights_opts(&[e2, other], &seed_grad, true);
        for (a, b) in w1.iter().zip(&w2) {
            prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    fn zero_seed_gradient_triggers_delta_guard(gs in grads(6, 4)) {
        let example: Vec<GradVec> = gs.into_iter().map(gradvec).collect();
        let zero = gradvec(vec![0.0; 4]);
        let w = meta_example_weights(&example, &zero);
        prop_assert!(w.iter().all(|&x| x == 0.0));
    }
}
