//! Kill/resume equivalence for the training pipeline: killing a run at
//! any step and resuming from its checkpoints must reproduce the
//! uninterrupted run bit for bit.
//!
//! The cheap test below sweeps a handful of kill points and runs in the
//! default suite; the exhaustive sweep over *every* kill point is
//! `#[ignore]`d (debug builds are too slow for it) and runs in release
//! as the CI fault-injection smoke stage:
//! `cargo test --release -p mb-core --test resume -- --include-ignored`.

use mb_common::storage::{MemStorage, NoBudget};
use mb_common::{Error, Rng};
use mb_core::checkpoint::{CheckpointConfig, CheckpointManager};
use mb_core::pipeline::{
    train, train_resumable, DataSource, MetaBlinkConfig, Method, TargetTask, TrainedLinker,
};
use mb_datagen::world::DomainRole;
use mb_datagen::{Dataset, DatasetConfig, LinkedMention};
use mb_encoders::input::build_vocab;
use mb_fault::KillAt;
use mb_nlg::generate::{generate_syn, train_source_rewriter};
use mb_nlg::rewriter::RewriterConfig;
use mb_nlg::SynDataset;
use mb_text::Vocab;
use std::path::PathBuf;

struct Fixture {
    ds: Dataset,
    vocab: Vocab,
    syn: SynDataset,
}

fn fixture() -> Fixture {
    let ds = Dataset::generate(DatasetConfig::tiny(59));
    let vocab = build_vocab(ds.world().kb(), [], 1);
    let mut rng = Rng::seed_from_u64(7);
    let source_mentions: Vec<(String, Vec<LinkedMention>)> = ds
        .world()
        .domains_with_role(DomainRole::Train)
        .iter()
        .map(|d| (d.name.clone(), ds.mentions(&d.name).mentions.clone()))
        .collect();
    let rw =
        train_source_rewriter(ds.world(), &source_mentions, RewriterConfig::default(), &mut rng);
    let domain = ds.world().domain("TargetX").clone();
    let syn = generate_syn(ds.world(), &domain, &rw, 150, &mut Rng::seed_from_u64(8));
    Fixture { ds, vocab, syn }
}

fn task(f: &Fixture) -> TargetTask<'_> {
    TargetTask {
        world: f.ds.world(),
        vocab: &f.vocab,
        domain: f.ds.world().domain("TargetX"),
        syn: &f.syn,
        syn_star: &f.syn,
        seed: &f.ds.split("TargetX").seed,
        general: &[],
    }
}

/// Small but complete: warm-up, meta phase with mid-stage checkpoints
/// (steps > every_n_steps), and seed mix all execute for both encoders.
fn test_cfg() -> MetaBlinkConfig {
    let mut cfg = MetaBlinkConfig::fast_test();
    cfg.bi_train.epochs = 2;
    cfg.bi_meta.steps = 12;
    cfg.bi_meta.syn_batch = 8;
    cfg.bi_meta.seed_batch = 6;
    cfg.cross_meta.steps = 8;
    cfg.cross_meta.syn_batch = 4;
    cfg.cross_train_cap = 60;
    cfg
}

fn ck_cfg() -> CheckpointConfig {
    let mut cfg = CheckpointConfig::new(PathBuf::from("ckpts"));
    cfg.every_n_steps = 5;
    cfg
}

fn mem_manager(
    mem: &MemStorage,
    budget: Box<dyn mb_common::storage::StepBudget>,
) -> CheckpointManager {
    CheckpointManager::with_parts(ck_cfg(), Box::new(mem.clone()), budget)
}

/// Bit-exact equality of two trained linkers: every parameter of both
/// encoders compared via `f64::to_bits`, plus the meta diagnostics.
fn assert_bit_identical(a: &TrainedLinker, b: &TrainedLinker, ctx: &str) {
    for (model, pa, pb) in
        [("bi", a.bi.params(), b.bi.params()), ("cross", a.cross.params(), b.cross.params())]
    {
        for ((na, ta), (nb, tb)) in pa.iter().zip(pb.iter()) {
            assert_eq!(na, nb, "{ctx}: {model} param name mismatch");
            let same = ta.data().len() == tb.data().len()
                && ta.data().iter().zip(tb.data()).all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "{ctx}: {model} param {na:?} differs");
        }
    }
    assert_eq!(a.bi_meta_stats, b.bi_meta_stats, "{ctx}: bi meta stats differ");
    assert_eq!(a.cross_meta_stats, b.cross_meta_stats, "{ctx}: cross meta stats differ");
    assert_eq!(a.syn_len, b.syn_len, "{ctx}: syn_len differs");
}

/// Kill a run at tick `kill_at`, then resume over the same storage and
/// return the finished result.
fn kill_and_resume(f: &Fixture, cfg: &MetaBlinkConfig, kill_at: u64) -> TrainedLinker {
    let t = task(f);
    let mem = MemStorage::new();
    let mut dying = mem_manager(&mem, Box::new(KillAt::new(kill_at)));
    let err = train_resumable(&t, Method::MetaBlink, DataSource::SynSeed, cfg, &mut dying)
        .err()
        .unwrap_or_else(|| panic!("run with kill at {kill_at} should have died"));
    assert!(matches!(err, Error::Aborted(_)), "kill at {kill_at}: got {err:?}");
    let mut resumed = mem_manager(&mem, Box::new(NoBudget));
    train_resumable(&t, Method::MetaBlink, DataSource::SynSeed, cfg, &mut resumed)
        .unwrap_or_else(|e| panic!("resume after kill at {kill_at} failed: {e}"))
}

#[test]
fn uninterrupted_checkpointed_run_matches_plain_train() {
    let f = fixture();
    let t = task(&f);
    let cfg = test_cfg();
    let plain = train(&t, Method::MetaBlink, DataSource::SynSeed, &cfg);
    let mem = MemStorage::new();
    let mut mgr = mem_manager(&mem, Box::new(NoBudget));
    let managed = train_resumable(&t, Method::MetaBlink, DataSource::SynSeed, &cfg, &mut mgr)
        .expect("uninterrupted managed run");
    assert!(mgr.saves() >= 6, "expected boundary + mid-stage saves, got {}", mgr.saves());
    assert_bit_identical(&plain, &managed, "plain vs managed");
}

#[test]
fn resume_after_kill_is_bit_identical_sampled() {
    let f = fixture();
    let t = task(&f);
    let cfg = test_cfg();
    let baseline = train(&t, Method::MetaBlink, DataSource::SynSeed, &cfg);
    // Early (before any checkpoint), mid bi-meta, between stages, and
    // mid cross-meta kill points; the exhaustive sweep is the ignored
    // release-mode test below.
    for kill_at in [0, 7, 16, 21] {
        let resumed = kill_and_resume(&f, &cfg, kill_at);
        assert_bit_identical(&baseline, &resumed, &format!("kill at {kill_at}"));
    }
}

#[test]
#[ignore = "exhaustive sweep; run in release via scripts/ci.sh fault stage"]
fn resume_after_kill_at_every_step_is_bit_identical() {
    let f = fixture();
    let t = task(&f);
    let cfg = test_cfg();
    let baseline = train(&t, Method::MetaBlink, DataSource::SynSeed, &cfg);

    // Sweep every kill point. The loop needs no precomputed tick
    // total: KillAt::new(n) aborts the run for every real kill point,
    // and the first n at which the run completes is one past the last.
    let mut n = 0;
    loop {
        let memn = MemStorage::new();
        let mut dying = CheckpointManager::with_parts(
            ck_cfg(),
            Box::new(memn.clone()),
            Box::new(KillAt::new(n)),
        );
        match train_resumable(&t, Method::MetaBlink, DataSource::SynSeed, &cfg, &mut dying) {
            Err(e) => {
                assert!(matches!(e, Error::Aborted(_)), "kill at {n}: got {e:?}");
                let mut resumed = CheckpointManager::with_parts(
                    ck_cfg(),
                    Box::new(memn.clone()),
                    Box::new(NoBudget),
                );
                let done =
                    train_resumable(&t, Method::MetaBlink, DataSource::SynSeed, &cfg, &mut resumed)
                        .unwrap_or_else(|e| panic!("resume after kill at {n} failed: {e}"));
                assert_bit_identical(&baseline, &done, &format!("kill at {n}"));
                n += 1;
            }
            Ok(done) => {
                // KillAt::new(n) never fired: n is one past the last
                // kill point, the sweep is complete.
                assert_bit_identical(&baseline, &done, "past-the-end kill");
                assert!(n > 20, "suspiciously few kill points: {n}");
                break;
            }
        }
    }
}
