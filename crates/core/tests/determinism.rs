//! Replay-by-seed regression tests pinning the determinism sweep.
//!
//! The mb-lint `det-hash` rule bans `HashMap`/`HashSet` from the
//! modelling crates because their iteration order is randomized per
//! instance. The concrete bug class it guards against lived in
//! `TwoStageLinker::link_batch_cached`: the distinct-miss slot map was
//! iterated to fill the embedding LRU, so two identical runs produced
//! identical *results* but different cache recency order — and from
//! there, different eviction decisions, different hit/miss counters,
//! and a non-replayable serving cache. These tests run the same batch
//! stream twice from scratch and require the full observable state —
//! results, cache keys in recency order, hit/miss counters — to be
//! bit-identical.

use mb_common::Rng;
use mb_core::linker::{EmbedCache, LinkerConfig, TwoStageLinker};
use mb_datagen::{LinkedMention, World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::build_vocab;

struct Fixture {
    world: World,
    vocab: mb_text::Vocab,
    bi: BiEncoder,
    cross: CrossEncoder,
    mentions: Vec<LinkedMention>,
}

/// An untrained (randomly initialized) model: replayability does not
/// depend on training, and skipping it keeps the test fast.
fn fixture() -> Fixture {
    let world = World::generate(WorldConfig::tiny(91));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(4);
    let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 48, &mut rng);
    let bi = BiEncoder::new(
        &vocab,
        BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
        &mut Rng::seed_from_u64(1),
    );
    let cross = CrossEncoder::new(
        &vocab,
        CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
        &mut Rng::seed_from_u64(2),
    );
    Fixture { world, vocab, bi, cross, mentions: ms.mentions }
}

/// Run the mention stream through `link_batch_cached` in chunks with a
/// fresh small cache, returning everything an observer could see.
fn replay(f: &Fixture, cache_capacity: usize) -> (Vec<String>, Vec<Vec<u32>>, u64, u64) {
    let domain = f.world.domain("TargetX");
    let dict = f.world.kb().domain_entities(domain.id);
    let linker = TwoStageLinker::new(
        &f.bi,
        &f.cross,
        &f.vocab,
        f.world.kb(),
        dict,
        LinkerConfig { k: 8, ..LinkerConfig::default() },
    );
    let mut cache = EmbedCache::new(cache_capacity);
    let mut rendered = Vec::new();
    for chunk in f.mentions.chunks(12) {
        for r in linker.link_batch_cached(chunk, Some(&mut cache)).expect("link") {
            rendered.push(format!("{:?}", (r.predicted, r.retrieved, r.rerank_scores)));
        }
    }
    let keys: Vec<Vec<u32>> = cache.keys_by_recency().into_iter().cloned().collect();
    (rendered, keys, cache.hits(), cache.misses())
}

#[test]
fn two_runs_are_bit_identical_including_cache_state() {
    let f = fixture();
    // Capacity below the distinct-mention count so eviction order is
    // exercised, not just insertion order.
    let a = replay(&f, 16);
    let b = replay(&f, 16);
    assert_eq!(a.0, b.0, "link results must replay bit-identically");
    assert_eq!(a.1, b.1, "cache recency order must replay identically");
    assert_eq!((a.2, a.3), (b.2, b.3), "hit/miss counters must replay identically");
    // Sanity: the run actually exercised the cache.
    assert!(a.3 > 0, "expected cache misses");
    assert_eq!(a.1.len(), 16, "cache should be full (evictions happened)");
}

#[test]
fn cached_and_uncached_results_agree() {
    let f = fixture();
    let cached = replay(&f, 16).0;
    let uncached = replay(&f, 0).0;
    assert_eq!(cached, uncached, "the cache must never change results");
}
