//! Cross-thread-count determinism suite: every parallel path added by
//! mb-par must produce **bit-identical** results for threads 1, 2, and
//! 4 — linker outputs, meta-learned example weights, and trained
//! parameters. Partitioning is always by data (fixed chunk sizes, MC
//! row bands), never by worker count, so a thread count can change
//! wall-clock time but nothing observable.

use mb_common::Rng;
use mb_core::linker::{LinkerConfig, TwoStageLinker};
use mb_core::reweight::{biencoder_meta_step, crossencoder_meta_step};
use mb_datagen::{LinkedMention, World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CandidateSet, CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::{build_vocab, InputConfig, TrainPair};
use mb_par::Threads;
use mb_tensor::optim::Sgd;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

struct Fixture {
    world: World,
    vocab: mb_text::Vocab,
    bi: BiEncoder,
    cross: CrossEncoder,
    mentions: Vec<LinkedMention>,
    pairs: Vec<TrainPair>,
}

fn fixture() -> Fixture {
    let world = World::generate(WorldConfig::tiny(23));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(11);
    let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 96, &mut rng);
    let icfg = InputConfig::default();
    let pairs: Vec<TrainPair> =
        ms.mentions.iter().map(|m| TrainPair::from_mention(&vocab, &icfg, world.kb(), m)).collect();
    let bi = BiEncoder::new(
        &vocab,
        BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
        &mut Rng::seed_from_u64(1),
    );
    let cross = CrossEncoder::new(
        &vocab,
        CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
        &mut Rng::seed_from_u64(2),
    );
    Fixture { world, vocab, bi, cross, mentions: ms.mentions, pairs }
}

fn param_bits(params: &mb_tensor::Params) -> Vec<u64> {
    params.iter().flat_map(|(_, t)| t.data().iter().map(|v| v.to_bits())).collect()
}

fn f64_bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Full two-stage linker outputs (retrieval scores, rerank scores,
/// predictions) rendered to bit patterns.
fn link_outputs(f: &Fixture, threads: Threads) -> Vec<(Option<u32>, Vec<u64>, Vec<u64>)> {
    let domain = f.world.domain("TargetX");
    let linker = TwoStageLinker::new(
        &f.bi,
        &f.cross,
        &f.vocab,
        f.world.kb(),
        f.world.kb().domain_entities(domain.id),
        LinkerConfig { k: 8, threads, ..LinkerConfig::default() },
    );
    linker
        .link_batch(&f.mentions)
        .expect("link")
        .into_iter()
        .map(|r| {
            let retrieved: Vec<u64> = r.retrieved.iter().map(|(_, s)| s.to_bits()).collect();
            (r.predicted.map(|id| id.0), retrieved, f64_bits(&r.rerank_scores))
        })
        .collect()
}

#[test]
fn linker_outputs_are_bit_identical_across_thread_counts() {
    let f = fixture();
    let baseline = link_outputs(&f, Threads::single());
    for t in THREAD_COUNTS {
        assert_eq!(baseline, link_outputs(&f, Threads::new(t)), "threads={t}");
    }
}

#[test]
fn evaluation_metrics_are_bit_identical_across_thread_counts() {
    let f = fixture();
    let domain = f.world.domain("TargetX");
    let linker = TwoStageLinker::new(
        &f.bi,
        &f.cross,
        &f.vocab,
        f.world.kb(),
        f.world.kb().domain_entities(domain.id),
        LinkerConfig { k: 8, ..LinkerConfig::default() },
    );
    let serial = linker.evaluate(&f.mentions);
    for t in THREAD_COUNTS {
        let par = linker.evaluate_parallel(&f.mentions, Threads::new(t)).expect("no panics");
        assert_eq!(serial.recall_at_k.to_bits(), par.recall_at_k.to_bits(), "threads={t}");
        assert_eq!(serial.normalized_acc.to_bits(), par.normalized_acc.to_bits(), "threads={t}");
        assert_eq!(
            serial.unnormalized_acc.to_bits(),
            par.unnormalized_acc.to_bits(),
            "threads={t}"
        );
        assert_eq!(serial.count, par.count, "threads={t}");
    }
}

/// One bi-encoder meta step from a fresh model; returns (example
/// weights, selected indices, meta loss, trained parameter bits).
fn bi_meta(f: &Fixture, threads: Threads) -> (Vec<u64>, Vec<usize>, u64, Vec<u64>) {
    let mut m = f.bi.clone();
    let mut opt = Sgd::new(1e-3);
    let mut rng = Rng::seed_from_u64(7);
    let (w, idx, loss) = biencoder_meta_step(
        &mut m,
        &f.pairs[..64],
        &f.pairs[64..96],
        &mut opt,
        16,
        8,
        0.3,
        true,
        true,
        threads,
        &mut rng,
    );
    (f64_bits(&w), idx, loss.to_bits(), param_bits(m.params()))
}

#[test]
fn biencoder_meta_step_is_bit_identical_across_thread_counts() {
    let f = fixture();
    let baseline = bi_meta(&f, Threads::single());
    for t in THREAD_COUNTS {
        assert_eq!(baseline, bi_meta(&f, Threads::new(t)), "threads={t}");
    }
}

/// One cross-encoder meta step from a fresh model over real candidate
/// sets produced by the linker.
fn cross_meta(f: &Fixture, sets: &[CandidateSet], threads: Threads) -> (Vec<u64>, u64, Vec<u64>) {
    let mut m = f.cross.clone();
    let mut opt = Sgd::new(1e-3);
    let mut rng = Rng::seed_from_u64(9);
    let (w, _, loss) = crossencoder_meta_step(
        &mut m,
        &sets[..12],
        &sets[12..18],
        &mut opt,
        6,
        4,
        0.3,
        true,
        true,
        threads,
        &mut rng,
    );
    (f64_bits(&w), loss.to_bits(), param_bits(m.params()))
}

#[test]
fn crossencoder_meta_step_is_bit_identical_across_thread_counts() {
    let f = fixture();
    let domain = f.world.domain("TargetX");
    let linker = TwoStageLinker::new(
        &f.bi,
        &f.cross,
        &f.vocab,
        f.world.kb(),
        f.world.kb().domain_entities(domain.id),
        LinkerConfig { k: 8, ..LinkerConfig::default() },
    );
    // Training requires gold to be retrieved; keep only such sets.
    let sets: Vec<CandidateSet> = f
        .mentions
        .iter()
        .map(|m| {
            let retrieved = linker.candidates(m);
            linker.candidate_set(m, &retrieved)
        })
        .filter(|s| s.gold_index.is_some())
        .take(18)
        .collect();
    assert!(sets.len() >= 18, "fixture retrieved gold for only {} mentions", sets.len());
    let baseline = cross_meta(&f, &sets, Threads::single());
    for t in THREAD_COUNTS {
        assert_eq!(baseline, cross_meta(&f, &sets, Threads::new(t)), "threads={t}");
    }
}

/// Several consecutive meta steps: parameter trajectories (not just one
/// step) must agree, so thread-dependent state cannot creep in through
/// the optimizer or the sampler.
#[test]
fn trained_parameters_are_bit_identical_across_thread_counts() {
    let f = fixture();
    let train = |threads: Threads| {
        let mut m = f.bi.clone();
        let mut opt = Sgd::new(1e-3);
        let mut rng = Rng::seed_from_u64(13);
        for _ in 0..4 {
            biencoder_meta_step(
                &mut m,
                &f.pairs[..64],
                &f.pairs[64..96],
                &mut opt,
                12,
                8,
                0.3,
                true,
                true,
                threads,
                &mut rng,
            );
        }
        param_bits(m.params())
    };
    let baseline = train(Threads::single());
    for t in THREAD_COUNTS {
        assert_eq!(baseline, train(Threads::new(t)), "threads={t}");
    }
}
