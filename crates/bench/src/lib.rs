//! # mb-bench
//!
//! Experiment harnesses: one bench target per table/figure of the
//! paper (printing paper-shaped tables and writing
//! `target/experiments/*.txt` + `*.json`), plus micro-benchmarks on
//! the in-repo timing harness in [`harness`] — no criterion, so the
//! whole workspace builds with no network access.
//!
//! This library crate holds the shared configuration so every harness
//! measures the same models at the same scale.

pub mod gate;
pub mod harness;

use mb_core::pipeline::MetaBlinkConfig;
use mb_core::reweight::MetaConfig;
use mb_core::LinkerConfig;
use mb_encoders::biencoder::BiEncoderConfig;
use mb_encoders::crossencoder::CrossEncoderConfig;

use mb_encoders::train::TrainConfig;
use mb_eval::ContextConfig;

/// The context scale every table harness uses (see DESIGN.md §5):
/// train/dev entities ÷40, test entities ÷10, test mentions ÷4.
pub fn bench_context_config(seed: u64) -> ContextConfig {
    ContextConfig::bench_default(seed)
}

/// The model/training configuration every table harness uses.
pub fn bench_model_config(seed: u64) -> MetaBlinkConfig {
    MetaBlinkConfig {
        linker: LinkerConfig { k: 64, ..LinkerConfig::default() },
        bi: BiEncoderConfig { emb_dim: 32, hidden: 32, out_dim: 32, ..Default::default() },
        cross: CrossEncoderConfig { emb_dim: 32, hidden: 32, ..Default::default() },
        bi_train: TrainConfig { epochs: 10, batch_size: 32, lr: 5e-3, seed: seed ^ 1 },
        cross_train: TrainConfig { epochs: 2, batch_size: 1, lr: 5e-3, seed: seed ^ 2 },
        bi_meta: MetaConfig {
            steps: 400,
            syn_batch: 24,
            seed_batch: 16,
            lr: 1e-3,
            seed: seed ^ 3,
            ..Default::default()
        },
        cross_meta: MetaConfig {
            steps: 250,
            syn_batch: 8,
            seed_batch: 6,
            lr: 1e-3,
            seed: seed ^ 4,
            ..Default::default()
        },
        k_train_candidates: 16,
        cross_train_cap: 500,
        seed,
        ..Default::default()
    }
}

use mb_core::linker::LinkMetrics;
use mb_core::pipeline::{train, DataSource, Method};
use mb_eval::{Aggregate, ExperimentContext};

/// Aggregated two-stage metrics of one table row (over model seeds).
pub struct RowResult {
    /// Training method.
    pub method: Method,
    /// Data source.
    pub source: DataSource,
    /// Recall@k aggregate.
    pub recall: Aggregate,
    /// Normalised accuracy aggregate.
    pub normalized: Aggregate,
    /// Unnormalised accuracy aggregate.
    pub unnormalized: Aggregate,
}

/// Train and evaluate one (method, source) row on a domain's few-shot
/// test split, aggregating over model seeds.
pub fn run_row(
    ctx: &ExperimentContext,
    domain: &str,
    method: Method,
    source: DataSource,
    seeds: &[u64],
) -> RowResult {
    let task = ctx.task(domain);
    let test = &ctx.dataset.split(domain).test;
    let metrics: Vec<LinkMetrics> = seeds
        .iter()
        .map(|&s| {
            let cfg = bench_model_config(s);
            train(&task, method, source, &cfg).evaluate(&task, test)
        })
        .collect();
    aggregate_rows(method, source, &metrics)
}

/// Aggregate prepared metrics into a row.
pub fn aggregate_rows(method: Method, source: DataSource, metrics: &[LinkMetrics]) -> RowResult {
    let pick = |f: fn(&LinkMetrics) -> f64| -> Aggregate {
        Aggregate::of(&metrics.iter().map(f).collect::<Vec<_>>())
    };
    RowResult {
        method,
        source,
        recall: pick(|m| m.recall_at_k),
        normalized: pick(|m| m.normalized_acc),
        unnormalized: pick(|m| m.unnormalized_acc),
    }
}

/// Model seeds used by the aggregated table harnesses.
pub const BENCH_SEEDS: &[u64] = &[42, 43, 44];

/// Model seeds for the heavier transfer experiments.
pub const BENCH_SEEDS_LIGHT: &[u64] = &[42, 43];
