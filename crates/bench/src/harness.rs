//! Criterion-free timing harness.
//!
//! A benchmark warms up, estimates the per-iteration cost, then takes a
//! fixed number of timed samples (each a batch of iterations so that
//! sub-microsecond workloads are measurable). Summary statistics —
//! median, p95, mean, standard deviation — are printed as a paper-style
//! table and persisted as machine-readable JSON under
//! `target/experiments/`, next to the `.txt` tables the experiment
//! harnesses write.

use mb_eval::{output_dir, Table};
use std::time::{Duration, Instant};

/// Timing-loop configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Wall-clock budget for the warmup/estimation phase.
    pub warmup: Duration,
    /// Number of timed samples to take.
    pub samples: usize,
    /// Minimum wall-clock time per sample; iterations are batched to
    /// reach it, so `Instant` overhead stays negligible.
    pub min_sample_time: Duration,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup: Duration::from_millis(200),
            samples: 30,
            min_sample_time: Duration::from_millis(5),
        }
    }
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`group/case` by convention).
    pub name: String,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time.
    pub p95_ns: f64,
    /// Mean per-iteration time.
    pub mean_ns: f64,
    /// Population standard deviation across samples.
    pub stddev_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Optional throughput denominator: units processed per iteration
    /// with a label, e.g. `(1024.0, "B")` for a 1 KiB input.
    pub units: Option<(f64, &'static str)>,
}

impl Measurement {
    /// Units processed per second at the median, if units were declared.
    pub fn throughput(&self) -> Option<f64> {
        self.units.map(|(n, _)| n * 1e9 / self.median_ns)
    }
}

/// Render nanoseconds with an adaptive unit.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// A collection of benchmarks that reports as one table + one JSON file.
#[derive(Debug, Default)]
pub struct Harness {
    cfg: BenchConfig,
    results: Vec<Measurement>,
}

impl Harness {
    /// A harness with the default [`BenchConfig`].
    pub fn new() -> Self {
        Harness { cfg: BenchConfig::default(), results: Vec::new() }
    }

    /// A harness with an explicit configuration.
    pub fn with_config(cfg: BenchConfig) -> Self {
        Harness { cfg, results: Vec::new() }
    }

    /// Time `f`, recording the measurement under `name`.
    pub fn bench<F: FnMut()>(&mut self, name: &str, f: F) -> &Measurement {
        self.bench_impl(name, None, f)
    }

    /// Time `f`, which processes `units` of `unit_label` per iteration
    /// (enables throughput reporting).
    pub fn bench_units<F: FnMut()>(
        &mut self,
        name: &str,
        units: f64,
        unit_label: &'static str,
        f: F,
    ) -> &Measurement {
        self.bench_impl(name, Some((units, unit_label)), f)
    }

    /// Time two workloads under one interleaved sampling schedule:
    /// every sample round times one batch of `a`, then one batch of
    /// `b`, so a machine-noise burst lands on both sides of the
    /// comparison instead of on whichever bench happened to be
    /// sampling. Use when the acceptance metric is the *ratio* of the
    /// two medians (the fused-vs-serial retrieval benches); each
    /// workload keeps its own per-iteration batching, and the two
    /// measurements are recorded exactly as two [`Harness::bench_units`]
    /// calls would record them.
    #[allow(clippy::too_many_arguments)]
    pub fn bench_pair_units<A: FnMut(), B: FnMut()>(
        &mut self,
        name_a: &str,
        units_a: f64,
        mut a: A,
        name_b: &str,
        units_b: f64,
        mut b: B,
        unit_label: &'static str,
    ) {
        let iters_a = self.estimate_iters(&mut a);
        let iters_b = self.estimate_iters(&mut b);
        let mut ns_a: Vec<f64> = Vec::with_capacity(self.cfg.samples);
        let mut ns_b: Vec<f64> = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let t = Instant::now();
            for _ in 0..iters_a {
                a();
            }
            ns_a.push(t.elapsed().as_nanos() as f64 / iters_a as f64);
            let t = Instant::now();
            for _ in 0..iters_b {
                b();
            }
            ns_b.push(t.elapsed().as_nanos() as f64 / iters_b as f64);
        }
        self.record(name_a, Some((units_a, unit_label)), iters_a, ns_a);
        self.record(name_b, Some((units_b, unit_label)), iters_b, ns_b);
    }

    /// Warmup: run until the budget elapses, then derive how many
    /// iterations one timed sample needs to reach `min_sample_time`.
    fn estimate_iters<F: FnMut()>(&self, f: &mut F) -> u64 {
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.cfg.warmup || warmup_iters == 0 {
            f();
            warmup_iters += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
        ((self.cfg.min_sample_time.as_nanos() as f64 / est_ns).ceil() as u64).max(1)
    }

    fn bench_impl<F: FnMut()>(
        &mut self,
        name: &str,
        units: Option<(f64, &'static str)>,
        mut f: F,
    ) -> &Measurement {
        let iters_per_sample = self.estimate_iters(&mut f);
        let mut sample_ns: Vec<f64> = Vec::with_capacity(self.cfg.samples);
        for _ in 0..self.cfg.samples {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            sample_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        self.record(name, units, iters_per_sample, sample_ns)
    }

    /// Summarize one bench's raw samples and append the measurement.
    fn record(
        &mut self,
        name: &str,
        units: Option<(f64, &'static str)>,
        iters_per_sample: u64,
        mut sample_ns: Vec<f64>,
    ) -> &Measurement {
        sample_ns.sort_by(|a, b| a.total_cmp(b));
        let n = sample_ns.len();
        let mean = sample_ns.iter().sum::<f64>() / n as f64;
        let var = sample_ns.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sample_ns[n / 2]
        } else {
            (sample_ns[n / 2 - 1] + sample_ns[n / 2]) / 2.0
        };
        let p95 = sample_ns[((n as f64 * 0.95).ceil() as usize).clamp(1, n) - 1];
        let m = Measurement {
            name: name.to_string(),
            iters_per_sample,
            samples: n,
            median_ns: median,
            p95_ns: p95,
            mean_ns: mean,
            stddev_ns: var.sqrt(),
            min_ns: sample_ns[0],
            max_ns: sample_ns[n - 1],
            units,
        };
        eprintln!(
            "  {:<40} median {:>10}  p95 {:>10}",
            m.name,
            fmt_ns(m.median_ns),
            fmt_ns(m.p95_ns)
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// All measurements taken so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// [`Harness::report`] with an extra pre-rendered JSON value
    /// attached under a top-level `"summary"` key — for benches whose
    /// acceptance metric is a derived quantity (a speedup ratio, a
    /// memory shrink) rather than a single measurement.
    pub fn report_with_summary(&self, title: &str, name: &str, summary: &str) {
        self.emit_table_to(title, name);
        let mut json = self.to_json(name);
        json.pop(); // strip the closing '}' to splice the summary in
        json.push_str(&format!(",\"summary\":{summary}}}"));
        write_json(name, &json);
    }

    /// Print the summary table and write `<name>.txt` + `<name>.json`
    /// under `target/experiments/`.
    pub fn report(&self, title: &str, name: &str) {
        self.emit_table_to(title, name);
        write_json(name, &self.to_json(name));
    }

    fn emit_table_to(&self, title: &str, name: &str) {
        let mut t = Table::new(
            title,
            &["Benchmark", "Median", "p95", "Mean", "Stddev", "Iters/sample", "Throughput"],
        );
        for m in &self.results {
            let thr = match (m.throughput(), m.units) {
                (Some(rate), Some((_, label))) => format!("{}/s", fmt_quantity(rate, label)),
                _ => "-".to_string(),
            };
            t.row(&[
                m.name.clone(),
                fmt_ns(m.median_ns),
                fmt_ns(m.p95_ns),
                fmt_ns(m.mean_ns),
                fmt_ns(m.stddev_ns),
                m.iters_per_sample.to_string(),
                thr,
            ]);
        }
        t.note(&format!("{} samples per benchmark; times are per iteration", self.cfg.samples));
        t.emit(name);
    }

    fn to_json(&self, name: &str) -> String {
        let mut entries = Vec::with_capacity(self.results.len());
        for m in &self.results {
            let units = match m.units {
                Some((n, label)) => format!(
                    ",\"units_per_iter\":{},\"unit\":{},\"throughput_per_s\":{}",
                    json_f64(n),
                    json_string(label),
                    json_f64(m.throughput().unwrap_or(0.0)),
                ),
                None => String::new(),
            };
            entries.push(format!(
                "{{\"name\":{},\"iters_per_sample\":{},\"samples\":{},\
                 \"median_ns\":{},\"p95_ns\":{},\"mean_ns\":{},\"stddev_ns\":{},\
                 \"min_ns\":{},\"max_ns\":{}{units}}}",
                json_string(&m.name),
                m.iters_per_sample,
                m.samples,
                json_f64(m.median_ns),
                json_f64(m.p95_ns),
                json_f64(m.mean_ns),
                json_f64(m.stddev_ns),
                json_f64(m.min_ns),
                json_f64(m.max_ns),
            ));
        }
        format!(
            "{{\"kind\":\"bench\",\"file\":{},\"results\":[{}]}}",
            json_string(name),
            entries.join(",")
        )
    }
}

/// Emit a paper table through [`Table::emit`] (stdout + `.txt`) and as
/// machine-readable `<name>.json` alongside it.
pub fn emit_table(t: &Table, name: &str) {
    t.emit(name);
    let headers = json_string_array(t.headers());
    let rows: Vec<String> = t.rows().iter().map(|r| json_string_array(r)).collect();
    let json = format!(
        "{{\"kind\":\"table\",\"file\":{},\"title\":{},\"headers\":{},\"rows\":[{}],\"notes\":{}}}",
        json_string(name),
        json_string(t.title()),
        headers,
        rows.join(","),
        json_string_array(t.notes()),
    );
    write_json(name, &json);
}

/// Write a JSON payload to `target/experiments/<name>.json`.
///
/// Like [`Table::emit`], IO failures warn on stderr instead of aborting.
pub fn write_json(name: &str, payload: &str) {
    let dir = output_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    // Write-temp + fsync + rename, so a crash mid-report never leaves a
    // torn half-JSON behind a previous good result.
    if let Err(e) = mb_common::storage::atomic_write(&path, payload.as_bytes()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

fn fmt_quantity(x: f64, label: &str) -> String {
    if x >= 1e9 {
        format!("{:.2} G{label}", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2} M{label}", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2} k{label}", x / 1e3)
    } else {
        format!("{x:.2} {label}")
    }
}

/// Escape a string for a JSON document.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| json_string(s)).collect();
    format!("[{}]", cells.join(","))
}

/// Format a float as a JSON number (JSON has no NaN/Inf — clamp to 0).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_trivial_workload() {
        let mut h = Harness::with_config(BenchConfig {
            warmup: Duration::from_millis(5),
            samples: 7,
            min_sample_time: Duration::from_micros(200),
        });
        let mut acc = 0u64;
        let m = h
            .bench("noop/add", || {
                acc = acc.wrapping_add(std::hint::black_box(1));
            })
            .clone();
        assert_eq!(m.samples, 7);
        assert!(m.iters_per_sample >= 1);
        assert!(m.median_ns > 0.0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        assert!(m.p95_ns >= m.median_ns);
    }

    #[test]
    fn paired_sampling_records_both_sides() {
        let mut h = Harness::with_config(BenchConfig {
            warmup: Duration::from_millis(2),
            samples: 5,
            min_sample_time: Duration::from_micros(100),
        });
        let (mut a, mut b) = (0u64, 0u64);
        h.bench_pair_units(
            "pair/a",
            1.0,
            || a = a.wrapping_add(std::hint::black_box(1)),
            "pair/b",
            2.0,
            || b = b.wrapping_add(std::hint::black_box(2)),
            "op",
        );
        let names: Vec<&str> = h.results().iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, ["pair/a", "pair/b"]);
        for m in h.results() {
            assert_eq!(m.samples, 5);
            assert!(m.median_ns > 0.0);
            assert!(m.units.is_some());
        }
    }

    #[test]
    fn json_escaping_is_sound() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("µs — fine"), "\"µs — fine\"");
        assert_eq!(json_f64(f64::NAN), "0");
    }

    #[test]
    fn bench_json_has_expected_fields() {
        let mut h = Harness::with_config(BenchConfig {
            warmup: Duration::from_millis(1),
            samples: 3,
            min_sample_time: Duration::from_micros(50),
        });
        h.bench_units("t/x", 64.0, "elem", || {
            std::hint::black_box(2u64.pow(10));
        });
        let json = h.to_json("unit_test_bench");
        for needle in [
            "\"kind\":\"bench\"",
            "\"name\":\"t/x\"",
            "\"median_ns\":",
            "\"p95_ns\":",
            "\"stddev_ns\":",
            "\"throughput_per_s\":",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
