//! Serving-path inference benchmark: the tape forward (which clones
//! every parameter tensor per batch via `Params::inject`) against the
//! tape-free frozen forward and its f16/int8 quantized variants, at the
//! serving batch size. Verifies frozen/tape bit-identity before timing,
//! measures the embedding-table memory shrink, and computes quantized
//! top-1 agreement on a trained tiny-world eval set. Writes
//! `target/experiments/BENCH_inference.{txt,json}`; the JSON carries a
//! `summary` object with the acceptance metrics, and the medians feed
//! the bench-regression CI gate (`scripts/bench_gate.sh`).

use mb_bench::harness::Harness;
use mb_common::Rng;
use mb_core::linker::{LinkerConfig, TwoStageLinker};
use mb_datagen::mentions::generate_mentions;
use mb_datagen::{World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CandidateSet, CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::{
    build_vocab, entity_bag, mention_bag, surface_bag, title_bag, InputConfig, TrainPair,
};
use mb_encoders::train::{train_biencoder, train_crossencoder, TrainConfig};
use mb_tensor::QuantMode;
use std::hint::black_box;

/// The serving batch size the acceptance criterion is pinned at.
const BATCH: usize = 8;
/// Candidates per mention in the re-ranking benches.
const K: usize = 16;

fn main() {
    // --- Throughput: production-scale vocabulary (32k tokens,
    // BERT-sized), untrained weights (timings do not depend on
    // training). The padded vocab makes the embedding tables the bulk
    // of what each tape forward clones, as in a real deployment.
    let world = World::generate(WorldConfig::tiny(17));
    let filler: Vec<String> = (0..32768).map(|i| format!("tok{i}")).collect();
    let extra = filler.join(" ");
    let vocab = build_vocab(world.kb(), [extra.as_str()], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(7);
    let mentions = generate_mentions(&world, &domain, 64, &mut rng).mentions;
    let bi = BiEncoder::new(
        &vocab,
        BiEncoderConfig { emb_dim: 64, hidden: 64, out_dim: 64, ..Default::default() },
        &mut Rng::seed_from_u64(1),
    );
    let cross = CrossEncoder::new(
        &vocab,
        CrossEncoderConfig { emb_dim: 64, hidden: 64, ..Default::default() },
        &mut Rng::seed_from_u64(2),
    );
    let icfg = InputConfig::default();
    let bags: Vec<Vec<u32>> =
        mentions.iter().take(BATCH).map(|m| mention_bag(&vocab, &icfg, m)).collect();
    let dict = world.kb().domain_entities(domain.id);
    let sets: Vec<CandidateSet> = mentions
        .iter()
        .take(BATCH)
        .enumerate()
        .map(|(i, m)| {
            let pair = TrainPair {
                mention: mention_bag(&vocab, &icfg, m),
                surface: surface_bag(&vocab, m),
                entity: Vec::new(),
                title: Vec::new(),
                gold: m.entity,
            };
            let mut r = Rng::seed_from_u64(100 + i as u64);
            let cands: Vec<(Vec<u32>, Vec<u32>)> = (0..K)
                .map(|_| {
                    let e = world.kb().entity(*r.choose(dict));
                    (entity_bag(&vocab, &icfg, e), title_bag(&vocab, e))
                })
                .collect();
            CandidateSet::new(&pair, cands, Some(0))
        })
        .collect();

    let frozen_bi = bi.freeze(QuantMode::Exact);
    let frozen_cross = cross.freeze(QuantMode::Exact);
    let f16_bi = bi.freeze(QuantMode::F16);
    let i8_bi = bi.freeze(QuantMode::Int8);

    // The frozen forward must be *bit-identical* to the tape forward —
    // check before timing, like bench_kernels does.
    let want = bi.embed_mentions_batch(&bags);
    let got = frozen_bi.embed_mentions_batch(&bags);
    assert_eq!(want.data(), got.data(), "frozen bi-encoder diverged from the tape forward");
    let want_scores = cross.score_batch(&sets);
    let got_scores = frozen_cross.score_batch(&sets);
    assert_eq!(want_scores, got_scores, "frozen cross-encoder diverged from the tape forward");

    let mut h = Harness::new();
    h.bench_units(&format!("inference/embed/tape/batch{BATCH}"), BATCH as f64, "mention", || {
        black_box(bi.embed_mentions_batch(black_box(&bags)));
    });
    h.bench_units(&format!("inference/embed/frozen/batch{BATCH}"), BATCH as f64, "mention", || {
        black_box(frozen_bi.embed_mentions_batch(black_box(&bags)));
    });
    h.bench_units(&format!("inference/embed/f16/batch{BATCH}"), BATCH as f64, "mention", || {
        black_box(f16_bi.embed_mentions_batch(black_box(&bags)));
    });
    h.bench_units(&format!("inference/embed/int8/batch{BATCH}"), BATCH as f64, "mention", || {
        black_box(i8_bi.embed_mentions_batch(black_box(&bags)));
    });
    h.bench_units(&format!("inference/rerank/tape/batch{BATCH}"), BATCH as f64, "set", || {
        black_box(cross.score_batch(black_box(&sets)));
    });
    h.bench_units(&format!("inference/rerank/frozen/batch{BATCH}"), BATCH as f64, "set", || {
        black_box(frozen_cross.score_batch(black_box(&sets)));
    });

    let median = |name: &str| {
        h.results()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.median_ns)
            .unwrap_or_else(|| panic!("no measurement named {name}"))
    };
    let embed_speedup = median(&format!("inference/embed/tape/batch{BATCH}"))
        / median(&format!("inference/embed/frozen/batch{BATCH}"));
    let rerank_speedup = median(&format!("inference/rerank/tape/batch{BATCH}"))
        / median(&format!("inference/rerank/frozen/batch{BATCH}"));
    let forward_speedup = (median(&format!("inference/embed/tape/batch{BATCH}"))
        + median(&format!("inference/rerank/tape/batch{BATCH}")))
        / (median(&format!("inference/embed/frozen/batch{BATCH}"))
            + median(&format!("inference/rerank/frozen/batch{BATCH}")));

    // Embedding-table residency across modes (bi + cross tables; the
    // tables dominate model size at production vocab scale).
    let bytes_f64 = frozen_bi.table_bytes() + frozen_cross.table_bytes();
    let bytes_f16 = f16_bi.table_bytes() + cross.freeze(QuantMode::F16).table_bytes();
    let bytes_i8 = i8_bi.table_bytes() + cross.freeze(QuantMode::Int8).table_bytes();

    // --- Quantized top-1 agreement on a *trained* model: near-tie
    // decisions only mean something once the scores carry signal.
    let (agree_f16, agree_i8, n_eval) = quantized_agreement();

    let summary = format!(
        "{{\"batch\":{BATCH},\"k\":{K},\
         \"embed_speedup\":{embed_speedup:.2},\
         \"rerank_speedup\":{rerank_speedup:.2},\
         \"forward_speedup\":{forward_speedup:.2},\
         \"table_bytes_f64\":{bytes_f64},\
         \"table_bytes_f16\":{bytes_f16},\
         \"table_bytes_int8\":{bytes_i8},\
         \"memory_shrink_f16\":{:.2},\
         \"memory_shrink_int8\":{:.2},\
         \"top1_agreement_f16\":{agree_f16:.2},\
         \"top1_agreement_int8\":{agree_i8:.2},\
         \"agreement_eval_mentions\":{n_eval}}}",
        bytes_f64 as f64 / bytes_f16 as f64,
        bytes_f64 as f64 / bytes_i8 as f64,
    );
    h.report_with_summary(
        "Serving-path inference: tape vs tape-free vs quantized",
        "BENCH_inference",
        &summary,
    );

    println!("\nacceptance metrics (batch {BATCH}):");
    println!("  forward speedup (tape / frozen):   {forward_speedup:.2}x");
    println!("    embed stage:                     {embed_speedup:.2}x");
    println!("    rerank stage:                    {rerank_speedup:.2}x");
    println!(
        "  table memory: f64 {bytes_f64} B, f16 {bytes_f16} B ({:.2}x), int8 {bytes_i8} B ({:.2}x)",
        bytes_f64 as f64 / bytes_f16 as f64,
        bytes_f64 as f64 / bytes_i8 as f64,
    );
    println!("  top-1 agreement over {n_eval} mentions: f16 {agree_f16:.2}%, int8 {agree_i8:.2}%");
}

/// Train the tiny-world fixture (the same recipe as mb-core's linker
/// tests) and measure how often the quantized linkers reproduce the
/// exact linker's top-1 prediction on held-out mentions.
fn quantized_agreement() -> (f64, f64, usize) {
    let world = World::generate(WorldConfig::tiny(43));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(8);
    let ms = generate_mentions(&world, &domain, 520, &mut rng);
    let (train, test) = ms.mentions.split_at(150);
    let icfg = InputConfig::default();
    let pairs: Vec<TrainPair> =
        train.iter().map(|m| TrainPair::from_mention(&vocab, &icfg, world.kb(), m)).collect();
    let mut bi = BiEncoder::new(
        &vocab,
        BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
        &mut Rng::seed_from_u64(1),
    );
    train_biencoder(
        &mut bi,
        &pairs,
        &TrainConfig { epochs: 10, batch_size: 24, lr: 0.01, seed: 2 },
    );
    let mut cross = CrossEncoder::new(
        &vocab,
        CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
        &mut Rng::seed_from_u64(3),
    );
    let dict = world.kb().domain_entities(domain.id);
    let base = LinkerConfig { k: 16, input: icfg, ..LinkerConfig::default() };
    {
        let linker = TwoStageLinker::new(&bi, &cross, &vocab, world.kb(), dict, base);
        let sets: Vec<CandidateSet> = train
            .iter()
            .filter_map(|m| {
                let retrieved = linker.candidates(m);
                let set = linker.candidate_set(m, &retrieved);
                set.gold_index.map(|_| set)
            })
            .collect();
        let mut c2 = cross.clone();
        train_crossencoder(
            &mut c2,
            &sets,
            &TrainConfig { epochs: 4, batch_size: 1, lr: 0.01, seed: 4 },
        );
        cross = c2;
    }
    let exact = TwoStageLinker::new(&bi, &cross, &vocab, world.kb(), dict, base);
    let want: Vec<_> =
        exact.link_batch(test).expect("link").into_iter().map(|r| r.predicted).collect();
    let agreement = |quant: QuantMode| -> f64 {
        let cfg = LinkerConfig { quant, ..base };
        let linker = TwoStageLinker::new(&bi, &cross, &vocab, world.kb(), dict, cfg);
        let got: Vec<_> =
            linker.link_batch(test).expect("link").into_iter().map(|r| r.predicted).collect();
        let agree = want.iter().zip(&got).filter(|(a, b)| a == b).count();
        100.0 * agree as f64 / want.len().max(1) as f64
    };
    (agreement(QuantMode::F16), agreement(QuantMode::Int8), test.len())
}
