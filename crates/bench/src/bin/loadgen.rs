//! `loadgen` — load generator for the `mb-serve` HTTP server, emitting
//! the `BENCH_serve.json` throughput/latency report.
//!
//! Three modes:
//!
//! - **Self-contained** (`--self-contained`): builds a tiny synthetic
//!   world + model in-process, serves it twice over localhost — once
//!   with `max_batch 1` and once with the batched configuration — and
//!   reports the throughput ratio. This is the reproducible source of
//!   `target/experiments/BENCH_serve.json`.
//! - **Open-loop** (`--open-loop`): serves the same in-process model
//!   once and sweeps a ladder of *offered* QPS rungs (`--qps`), pacing
//!   arrivals by the clock instead of waiting for responses — the
//!   closed-loop mode cannot overload the server by construction, an
//!   open loop can. Produces the p50/p99-vs-offered-QPS curve
//!   (`"open_loop"` in `BENCH_serve.json`) plus the gate-format
//!   `BENCH_serve_openloop.json` consumed by `scripts/bench_gate.sh`.
//!   Requests carry a `deadline_ms` budget so past-saturation rungs
//!   degrade to fast 503 + `Retry-After` shedding, which the run
//!   records separately from served latencies.
//! - **External** (`--addr HOST:PORT` or `--addr-file PATH`): drives an
//!   already-running server (the CI `serve-smoke` stage). `--strict`
//!   exits non-zero unless every response was 2xx, `--check-metrics`
//!   requires a non-empty `/metrics`, and `--shutdown` ends the run
//!   with a graceful `POST /admin/shutdown`.
//!
//! ```sh
//! cargo run --release -p mb-bench --bin loadgen -- --self-contained
//! cargo run --release -p mb-bench --bin loadgen -- --open-loop \
//!     --qps 40,160,640,2500 --duration-ms 2000
//! cargo run --release -p mb-bench --bin loadgen -- --addr 127.0.0.1:7878 \
//!     --requests 200 --concurrency 8 --strict --check-metrics --shutdown
//! ```

use mb_common::Rng;
use mb_core::linker::LinkerConfig;
use mb_datagen::world::{DomainRole, DomainSpec};
use mb_datagen::{LinkedMention, World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::build_vocab;
use mb_serve::{ServeModel, Server, ServerConfig};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
loadgen — load generator for mb-serve (closed-loop and open-loop)

USAGE:
  loadgen --self-contained [--requests <n>] [--concurrency <n>]
          [--max-batch <n>] [--max-delay-us <n>]
  loadgen --open-loop [--qps <a,b,c>] [--duration-ms <n>]
          [--deadline-ms <n>] [--concurrency <n>]
          [--max-batch <n>] [--max-delay-us <n>]
  loadgen (--addr <host:port> | --addr-file <path>) [--requests <n>]
          [--concurrency <n>] [--strict] [--check-metrics] [--shutdown]

Open-loop mode paces arrivals by the wall clock (offered load), so it
can push the server past saturation; each request carries a
deadline_ms budget and past-saturation rungs are expected to shed
with fast 503 + Retry-After instead of queueing without bound. It
writes the latency-vs-offered-QPS curve into BENCH_serve.json and a
gate-format BENCH_serve_openloop.json for bench_gate.";

fn run(args: &[String]) -> Result<(), String> {
    let mut flags: HashMap<String, String> = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(key) = args[i].strip_prefix("--") else {
            return Err(format!("unexpected argument {:?}\n{USAGE}", args[i]));
        };
        let boolean = matches!(
            key,
            "self-contained" | "open-loop" | "strict" | "check-metrics" | "shutdown" | "help"
        );
        let value = if boolean {
            "true".to_string()
        } else {
            args.get(i + 1).cloned().ok_or(format!("--{key} needs a value\n{USAGE}"))?
        };
        flags.insert(key.to_string(), value);
        i += if boolean { 1 } else { 2 };
    }
    if flags.contains_key("help") {
        println!("{USAGE}");
        return Ok(());
    }
    let parse = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    };
    let concurrency = parse("concurrency", 8)?.max(1);

    if flags.contains_key("self-contained") {
        let requests = parse("requests", 400)?;
        // Default the batch limit to the offered concurrency: a batch
        // can never exceed the number of in-flight requests, and a
        // larger limit only adds linger time waiting for requests that
        // cannot arrive.
        let max_batch = parse("max-batch", concurrency)?.max(2);
        let max_delay_us = parse("max-delay-us", 2_000)? as u64;
        return self_contained(requests, concurrency, max_batch, max_delay_us);
    }

    if flags.contains_key("open-loop") {
        let max_batch = parse("max-batch", concurrency)?.max(2);
        let max_delay_us = parse("max-delay-us", 2_000)? as u64;
        let duration_ms = parse("duration-ms", 2_000)?.max(100) as u64;
        let deadline_ms = parse("deadline-ms", 1_000)?.max(1) as u64;
        let qps: Vec<usize> = flags
            .get("qps")
            .map(String::as_str)
            .unwrap_or("40,160,640,2500")
            .split(',')
            .map(|s| s.trim().parse::<usize>().map_err(|e| format!("--qps {s:?}: {e}")))
            .collect::<Result<_, _>>()?;
        if qps.is_empty() || qps.contains(&0) {
            return Err("--qps needs a comma-separated list of positive rates".to_string());
        }
        return open_loop(&qps, duration_ms, deadline_ms, concurrency, max_batch, max_delay_us);
    }

    let addr = match (flags.get("addr"), flags.get("addr-file")) {
        (Some(a), _) => a.clone(),
        (None, Some(path)) => wait_for_addr_file(path)?,
        (None, None) => {
            return Err(format!("need --addr, --addr-file, or --self-contained\n{USAGE}"))
        }
    };
    let requests = parse("requests", 200)?;
    let stats = drive(&addr, requests, concurrency, &demo_payloads())?;
    stats.print(&format!("external {addr}"));
    if flags.contains_key("check-metrics") {
        let metrics = fetch(&addr, "GET", "/metrics", b"")?;
        if metrics.1.trim().is_empty() || !metrics.1.contains("serve_requests_total") {
            return Err("metrics endpoint is empty".to_string());
        }
        eprintln!("metrics: ok ({} bytes)", metrics.1.len());
    }
    if flags.contains_key("shutdown") {
        let (status, _) = fetch(&addr, "POST", "/admin/shutdown", b"")?;
        if status != 200 {
            return Err(format!("shutdown returned {status}"));
        }
        eprintln!("shutdown: requested");
    }
    if flags.contains_key("strict") && stats.non_2xx > 0 {
        return Err(format!("{} of {} responses were not 2xx", stats.non_2xx, stats.total()));
    }
    Ok(())
}

/// Poll for the server's `--addr-file` (written after binding an
/// ephemeral port) for up to 60 s.
fn wait_for_addr_file(path: &str) -> Result<String, String> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match std::fs::read_to_string(path) {
            Ok(s) if !s.trim().is_empty() => return Ok(s.trim().to_string()),
            _ if Instant::now() > deadline => {
                return Err(format!("timed out waiting for addr file {path}"))
            }
            _ => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

// ---------------------------------------------------------------- client

struct LoadStats {
    ok_2xx: u64,
    non_2xx: u64,
    elapsed: Duration,
    /// Sorted request latencies in microseconds.
    latencies_us: Vec<u64>,
}

impl LoadStats {
    fn total(&self) -> u64 {
        self.ok_2xx + self.non_2xx
    }

    fn rps(&self) -> f64 {
        self.total() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn quantile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let idx = (q * (self.latencies_us.len() - 1) as f64).round() as usize;
        self.latencies_us[idx.min(self.latencies_us.len() - 1)]
    }

    fn print(&self, label: &str) {
        eprintln!(
            "{label}: {} requests ({} non-2xx) in {:.2?}  {:.1} req/s  p50 {}µs  p95 {}µs  p99 {}µs",
            self.total(),
            self.non_2xx,
            self.elapsed,
            self.rps(),
            self.quantile_us(0.50),
            self.quantile_us(0.95),
            self.quantile_us(0.99),
        );
    }
}

/// One keep-alive HTTP exchange on an open connection.
fn exchange(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    raw: &[u8],
) -> Result<u16, String> {
    exchange_ext(writer, reader, raw).map(|(status, _)| status)
}

/// [`exchange`], also reporting whether the response carried a
/// `Retry-After` header (every 503 from mb-serve must).
fn exchange_ext(
    writer: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    raw: &[u8],
) -> Result<(u16, bool), String> {
    writer.write_all(raw).map_err(|e| format!("send: {e}"))?;
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(format!("bad status line {status_line:?}"))?;
    let mut content_length = 0usize;
    let mut retry_after = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).map_err(|e| format!("header: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        if let Some(v) = lower.strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|e| format!("content-length: {e}"))?;
        }
        if lower.starts_with("retry-after:") {
            retry_after = true;
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| format!("body: {e}"))?;
    Ok((status, retry_after))
}

/// One request on a fresh connection (control endpoints).
fn fetch(addr: &str, method: &str, path: &str, body: &[u8]) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut raw = format!(
        "{method} {path} HTTP/1.1\r\nhost: loadgen\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body);
    writer.write_all(&raw).map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or(format!("bad status line {status_line:?}"))?;
    let mut text = String::new();
    reader.read_to_string(&mut text).map_err(|e| format!("read: {e}"))?;
    let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or(text);
    Ok((status, body))
}

/// Per-client-thread tally: (2xx count, non-2xx count, latencies µs).
type ClientTally = Result<(u64, u64, Vec<u64>), String>;

/// Closed-loop load: `concurrency` client threads, each with one
/// keep-alive connection, pulling request indices from a shared
/// counter until `requests` are done.
fn drive(
    addr: &str,
    requests: usize,
    concurrency: usize,
    payloads: &[Vec<u8>],
) -> Result<LoadStats, String> {
    assert!(!payloads.is_empty());
    let counter = AtomicU64::new(0);
    let started = Instant::now();
    let results: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let counter = &counter;
                scope.spawn(move || -> ClientTally {
                    let stream =
                        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
                    let mut reader = BufReader::new(stream);
                    let (mut ok, mut bad) = (0u64, 0u64);
                    let mut lats = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= requests {
                            return Ok((ok, bad, lats));
                        }
                        let t0 = Instant::now();
                        let status =
                            exchange(&mut writer, &mut reader, &payloads[i % payloads.len()])?;
                        lats.push(t0.elapsed().as_micros() as u64);
                        if (200..300).contains(&status) {
                            ok += 1;
                        } else {
                            bad += 1;
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise a client-thread panic with its own payload
                // instead of replacing it with a fresh one here.
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    let elapsed = started.elapsed();
    let mut ok_2xx = 0;
    let mut non_2xx = 0;
    let mut latencies_us = Vec::with_capacity(requests);
    for r in results {
        let (ok, bad, lats) = r?;
        ok_2xx += ok;
        non_2xx += bad;
        latencies_us.extend(lats);
    }
    latencies_us.sort_unstable();
    Ok(LoadStats { ok_2xx, non_2xx, elapsed, latencies_us })
}

fn link_payload(surface: &str, left: &str, right: &str) -> Vec<u8> {
    link_payload_ext(surface, left, right, None)
}

/// `/link` request bytes, optionally carrying a `deadline_ms` budget
/// (the open-loop sweep sets one so overload rungs shed instead of
/// queueing without bound).
fn link_payload_ext(surface: &str, left: &str, right: &str, deadline_ms: Option<u64>) -> Vec<u8> {
    let deadline = match deadline_ms {
        Some(ms) => format!(",\"deadline_ms\":{ms}"),
        None => String::new(),
    };
    let body = format!(
        "{{\"surface\":{},\"left\":{},\"right\":{},\"k\":3{deadline}}}",
        mb_serve::json::escape(surface),
        mb_serve::json::escape(left),
        mb_serve::json::escape(right),
    );
    let mut raw = format!(
        "POST /link HTTP/1.1\r\nhost: loadgen\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(body.as_bytes());
    raw
}

/// Fixed payloads for external servers (any text is safe: unknown
/// tokens map to UNK).
fn demo_payloads() -> Vec<Vec<u8>> {
    [
        ("the dark magician", "after the duel, ", " summoned a trap"),
        ("castle set", "the new ", " sold out in minutes"),
        ("warp drive", "engineering reported the ", " was offline"),
        ("ancient sword", "the museum displayed an ", " from the ruins"),
        ("red dragon", "a ", " appeared on the field"),
        ("space station", "the crew docked at the ", " at dawn"),
        ("trading card", "a rare ", " changed hands"),
        ("head judge", "the ", " reviewed the ruling"),
    ]
    .iter()
    .map(|(s, l, r)| link_payload(s, l, r))
    .collect()
}

// ---------------------------------------------------- self-contained bench

/// Build the benchmark model. Untrained weights are fine — serving
/// cost does not depend on parameter values — but the MODEL SIZE
/// matters: batching amortizes the per-tape parameter injection (which
/// clones every tensor, token-embedding tables included), so the bench
/// uses a realistic vocabulary rather than the test-sized tiny world.
fn bench_model() -> (ServeModel, Vec<LinkedMention>) {
    // World generation panics only when a WorldConfig exhausts the KB
    // id space; this fixed bench config is far below those caps.
    // mb-lint: allow(panic-reach) -- fixed bench config cannot exhaust the KB id space
    let world = World::generate(WorldConfig {
        seed: 1_234,
        general_vocab: 4_000,
        ambiguity_rate: 0.15,
        domains: vec![
            DomainSpec::new("SrcA", DomainRole::Train, 120, 160, 0.4),
            DomainSpec::new("TargetX", DomainRole::Test, 400, 600, 0.6),
        ],
    });
    // Pad the vocabulary to production scale (~24k types, the order of
    // a wordpiece vocab): the embedding tables are the bulk of what
    // each tape injection clones, and a test-sized vocab would
    // understate the fixed cost that batching amortises.
    let filler: Vec<String> = (0..24_000).map(|i| format!("tok{i}")).collect();
    let extra = filler.join(" ");
    let vocab = build_vocab(world.kb(), [extra.as_str()], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(7);
    let mentions = mb_datagen::mentions::generate_mentions(&world, &domain, 64, &mut rng).mentions;
    let bi = BiEncoder::new(
        &vocab,
        BiEncoderConfig { emb_dim: 64, hidden: 64, out_dim: 64, ..Default::default() },
        &mut Rng::seed_from_u64(1),
    );
    let cross = CrossEncoder::new(
        &vocab,
        CrossEncoderConfig { emb_dim: 64, hidden: 64, ..Default::default() },
        &mut Rng::seed_from_u64(2),
    );
    let model = ServeModel::new(
        vocab,
        world.kb().clone(),
        world.kb().domain_entities(domain.id).to_vec(),
        bi,
        cross,
        LinkerConfig { k: 16, ..LinkerConfig::default() },
        domain.name,
    );
    (model, mentions)
}

/// Serve `model` with the given batch limit and measure a closed loop.
fn measure_config(
    model: ServeModel,
    max_batch: usize,
    max_delay_us: u64,
    requests: usize,
    concurrency: usize,
    payloads: &[Vec<u8>],
) -> Result<LoadStats, String> {
    let cfg = ServerConfig {
        max_batch,
        max_delay_us,
        // One worker on purpose: the comparison isolates batching
        // (fused forwards), not thread-level parallelism. The cache is
        // off so every request pays the full two-stage forward.
        workers: 1,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let server = Server::start(model, cfg).map_err(|e| format!("start server: {e}"))?;
    let addr = server.addr().to_string();
    // Warm-up out of band, then the timed run.
    drive(&addr, (requests / 10).clamp(8, 64), concurrency, payloads)?;
    let stats = drive(&addr, requests, concurrency, payloads)?;
    server.shutdown();
    Ok(stats)
}

fn stats_json(s: &LoadStats, max_batch: usize) -> String {
    format!(
        "{{\"max_batch\":{max_batch},\"requests\":{},\"non_2xx\":{},\"elapsed_s\":{:.4},\"throughput_rps\":{:.2},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}}",
        s.total(),
        s.non_2xx,
        s.elapsed.as_secs_f64(),
        s.rps(),
        s.quantile_us(0.50),
        s.quantile_us(0.95),
        s.quantile_us(0.99),
    )
}

fn self_contained(
    requests: usize,
    concurrency: usize,
    max_batch: usize,
    max_delay_us: u64,
) -> Result<(), String> {
    eprintln!("building model …");
    let (model_a, mentions) = bench_model();
    eprintln!(
        "model: vocab {} tokens, {} entities in dictionary",
        model_a.vocab.len(),
        model_a.dictionary.len()
    );
    let (model_b, _) = bench_model();
    let payloads: Vec<Vec<u8>> =
        mentions.iter().map(|m| link_payload(&m.surface, &m.left, &m.right)).collect();

    eprintln!("measuring max_batch=1 (every request pays a full tape) …");
    let unbatched = measure_config(model_a, 1, 0, requests, concurrency, &payloads)?;
    unbatched.print("unbatched");
    eprintln!("measuring max_batch={max_batch} (fused forwards) …");
    let batched =
        measure_config(model_b, max_batch, max_delay_us, requests, concurrency, &payloads)?;
    batched.print("batched");

    let speedup = batched.rps() / unbatched.rps().max(1e-9);
    eprintln!("batched throughput = {speedup:.2}× unbatched");
    if unbatched.non_2xx + batched.non_2xx > 0 {
        return Err("non-2xx responses during the benchmark".to_string());
    }

    let payload = format!(
        "{{\"kind\":\"serve_bench\",\"concurrency\":{concurrency},\"workers\":1,\"cache\":\"off\",\"max_delay_us\":{max_delay_us},\"unbatched\":{},\"batched\":{},\"speedup\":{:.3}}}",
        stats_json(&unbatched, 1),
        stats_json(&batched, max_batch),
        speedup,
    );
    mb_bench::harness::write_json("BENCH_serve", &payload);
    println!("BENCH_serve: speedup {speedup:.2}× (batched {:.1} req/s vs unbatched {:.1} req/s at concurrency {concurrency})", batched.rps(), unbatched.rps());
    Ok(())
}

// ----------------------------------------------------- open-loop sweep

/// Per-rung tally of an open-loop run.
struct RungStats {
    /// Offered rate in requests per second.
    qps: usize,
    /// Arrivals scheduled (`qps × duration`).
    offered: u64,
    ok_2xx: u64,
    shed_503: u64,
    /// 503s that arrived without a `Retry-After` header (must be 0).
    shed_without_retry_after: u64,
    errors: u64,
    /// Arrivals that started more than one full schedule interval late
    /// (the client could not sustain the offered rate — the rung is
    /// past saturation, so "offered" overstates actual pressure).
    late: u64,
    elapsed: Duration,
    /// Sorted 2xx latencies in microseconds.
    latencies_us: Vec<u64>,
    /// Sorted 503 latencies in microseconds (shedding must be fast).
    shed_latencies_us: Vec<u64>,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

impl RungStats {
    fn achieved_rps(&self) -> f64 {
        self.ok_2xx as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    fn print(&self) {
        eprintln!(
            "qps {:>5}: ok {:>5}  shed {:>5}  err {:>3}  late {:>5}  achieved {:>7.1} req/s  p50 {:>6}µs  p99 {:>7}µs  shed-p99 {:>6}µs",
            self.qps,
            self.ok_2xx,
            self.shed_503,
            self.errors,
            self.late,
            self.achieved_rps(),
            quantile(&self.latencies_us, 0.50),
            quantile(&self.latencies_us, 0.99),
            quantile(&self.shed_latencies_us, 0.99),
        );
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"qps\":{},\"offered\":{},\"ok\":{},\"shed\":{},\"shed_without_retry_after\":{},\"errors\":{},\"late\":{},\"elapsed_s\":{:.4},\"achieved_rps\":{:.2},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"shed_p50_us\":{},\"shed_p99_us\":{}}}",
            self.qps,
            self.offered,
            self.ok_2xx,
            self.shed_503,
            self.shed_without_retry_after,
            self.errors,
            self.late,
            self.elapsed.as_secs_f64(),
            self.achieved_rps(),
            quantile(&self.latencies_us, 0.50),
            quantile(&self.latencies_us, 0.95),
            quantile(&self.latencies_us, 0.99),
            quantile(&self.shed_latencies_us, 0.50),
            quantile(&self.shed_latencies_us, 0.99),
        )
    }
}

/// Per-thread open-loop tally:
/// (ok, shed, shed-without-retry-after, errors, late, 2xx µs, 503 µs).
type OpenTally = Result<(u64, u64, u64, u64, u64, Vec<u64>, Vec<u64>), String>;

/// Open-loop load at a fixed offered rate: arrival `k` is due at
/// `start + k·interval` regardless of how earlier requests fared.
/// Thread `t` of `C` serves arrivals `t, t+C, …` on one keep-alive
/// connection (reconnecting on error), sleeping until each arrival is
/// due; an arrival more than one interval late is counted instead of
/// silently re-pacing, so saturation is visible in the report.
fn open_loop_drive(
    addr: &str,
    qps: usize,
    duration_ms: u64,
    concurrency: usize,
    payloads: &[Vec<u8>],
) -> Result<RungStats, String> {
    assert!(!payloads.is_empty() && qps > 0);
    let offered = (qps as u64 * duration_ms / 1_000).max(1);
    let interval = Duration::from_nanos(1_000_000_000 / qps as u64);
    // Small lead so every thread is connected before arrival 0 is due.
    let start = Instant::now() + Duration::from_millis(20);
    let results: Vec<OpenTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|t| {
                scope.spawn(move || -> OpenTally {
                    let connect = || -> Result<(TcpStream, BufReader<TcpStream>), String> {
                        let stream =
                            TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                        let writer = stream.try_clone().map_err(|e| e.to_string())?;
                        Ok((writer, BufReader::new(stream)))
                    };
                    let (mut writer, mut reader) = connect()?;
                    let (mut ok, mut shed, mut no_ra, mut errors, mut late) = (0, 0, 0, 0, 0);
                    let (mut lats, mut shed_lats) = (Vec::new(), Vec::new());
                    let mut k = t as u64;
                    while k < offered {
                        let due = start + interval * k as u32;
                        let now = Instant::now();
                        if now < due {
                            std::thread::sleep(due - now);
                        } else if now > due + interval {
                            late += 1;
                        }
                        let t0 = Instant::now();
                        let payload = &payloads[k as usize % payloads.len()];
                        match exchange_ext(&mut writer, &mut reader, payload) {
                            Ok((status, retry_after)) => {
                                let us = t0.elapsed().as_micros() as u64;
                                if (200..300).contains(&status) {
                                    ok += 1;
                                    lats.push(us);
                                } else if status == 503 {
                                    shed += 1;
                                    shed_lats.push(us);
                                    if !retry_after {
                                        no_ra += 1;
                                    }
                                } else {
                                    errors += 1;
                                }
                            }
                            Err(_) => {
                                errors += 1;
                                (writer, reader) = connect()?;
                            }
                        }
                        k += concurrency as u64;
                    }
                    Ok((ok, shed, no_ra, errors, late, lats, shed_lats))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                // Re-raise the worker's panic payload, as in drive().
                Err(p) => std::panic::resume_unwind(p),
            })
            .collect()
    });
    let elapsed = start.elapsed();
    let mut stats = RungStats {
        qps,
        offered,
        ok_2xx: 0,
        shed_503: 0,
        shed_without_retry_after: 0,
        errors: 0,
        late: 0,
        elapsed,
        latencies_us: Vec::new(),
        shed_latencies_us: Vec::new(),
    };
    for r in results {
        let (ok, shed, no_ra, errors, late, lats, shed_lats) = r?;
        stats.ok_2xx += ok;
        stats.shed_503 += shed;
        stats.shed_without_retry_after += no_ra;
        stats.errors += errors;
        stats.late += late;
        stats.latencies_us.extend(lats);
        stats.shed_latencies_us.extend(shed_lats);
    }
    stats.latencies_us.sort_unstable();
    stats.shed_latencies_us.sort_unstable();
    Ok(stats)
}

/// Merge the open-loop curve into `BENCH_serve.json` (preserving the
/// closed-loop section if a previous `--self-contained` run wrote one)
/// and write the gate-format `BENCH_serve_openloop.json`.
fn write_openloop_reports(rungs: &[RungStats], duration_ms: u64, deadline_ms: u64, conc: usize) {
    let rung_objs: Vec<String> = rungs.iter().map(RungStats::to_json).collect();
    let field = format!(
        "\"open_loop\":{{\"concurrency\":{conc},\"duration_ms\":{duration_ms},\"deadline_ms\":{deadline_ms},\"workers\":1,\"cache\":\"off\",\"rungs\":[{}]}}",
        rung_objs.join(",")
    );
    let path = mb_eval::output_dir().join("BENCH_serve.json");
    let fresh = format!("{{\"kind\":\"serve_bench\",{field}}}");
    let merged = match std::fs::read_to_string(&path) {
        Ok(text) if text.contains("\"kind\":\"serve_bench\"") => {
            // Drop a previous open_loop section, then graft the new one
            // onto the object (the writer emits single-line JSON with
            // open_loop as the final key, so a plain text splice is
            // exact, not a heuristic).
            let base = match text.find(",\"open_loop\"") {
                Some(idx) => text[..idx].to_string(),
                None => {
                    let t = text.trim_end();
                    t.strip_suffix('}').map(|s| s.trim_end().to_string()).unwrap_or_default()
                }
            };
            if base.starts_with('{') {
                format!("{base},{field}}}")
            } else {
                fresh
            }
        }
        _ => fresh,
    };
    mb_bench::harness::write_json("BENCH_serve", &merged);

    let gate_results: Vec<String> = rungs
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":\"serve/openloop/qps{}/p50\",\"median_ns\":{}}}",
                r.qps,
                quantile(&r.latencies_us, 0.50) * 1_000
            )
        })
        .collect();
    let gate = format!("{{\"kind\":\"bench\",\"results\":[{}]}}", gate_results.join(","));
    mb_bench::harness::write_json("BENCH_serve_openloop", &gate);
}

fn open_loop(
    qps: &[usize],
    duration_ms: u64,
    deadline_ms: u64,
    concurrency: usize,
    max_batch: usize,
    max_delay_us: u64,
) -> Result<(), String> {
    eprintln!("building model …");
    let (model, mentions) = bench_model();
    let payloads: Vec<Vec<u8>> = mentions
        .iter()
        .map(|m| link_payload_ext(&m.surface, &m.left, &m.right, Some(deadline_ms)))
        .collect();
    let cfg = ServerConfig {
        max_batch,
        max_delay_us,
        // Same isolation as the closed-loop bench: one worker, cache
        // off, so rungs measure the batching engine and the shedding
        // policy, not thread parallelism or cache luck.
        workers: 1,
        cache_capacity: 0,
        ..ServerConfig::default()
    };
    let server = Server::start(model, cfg).map_err(|e| format!("start server: {e}"))?;
    let addr = server.addr().to_string();
    // Warm up (fills the service-time EWMA the shedding policy uses).
    drive(&addr, 64, concurrency, &payloads)?;

    let mut rungs = Vec::new();
    for &q in qps {
        let stats = open_loop_drive(&addr, q, duration_ms, concurrency, &payloads)?;
        stats.print();
        rungs.push(stats);
        // Let the queue fully drain between rungs.
        std::thread::sleep(Duration::from_millis(100));
    }
    server.shutdown();

    let torn: u64 = rungs.iter().map(|r| r.shed_without_retry_after).sum();
    if torn > 0 {
        return Err(format!("{torn} 503 responses lacked a Retry-After header"));
    }
    let errors: u64 = rungs.iter().map(|r| r.errors).sum();
    if errors > 0 {
        return Err(format!("{errors} responses were neither 2xx nor 503"));
    }
    write_openloop_reports(&rungs, duration_ms, deadline_ms, concurrency);
    println!(
        "BENCH_serve_openloop: {} rungs, peak achieved {:.1} req/s",
        rungs.len(),
        rungs.iter().map(RungStats::achieved_rps).fold(0.0, f64::max),
    );
    Ok(())
}
