//! Shape probe — developer tool for iterating on experiment shapes.
//!
//! Runs the Table V/VI row set on a single domain at bench scale and
//! prints per-row timings. Knobs via env vars (BI_META_STEPS,
//! BI_META_LR, CROSS_META_STEPS, CROSS_META_LR, SEED_MIX,
//! POST_SEED_MIX, MODEL_SEED, WARM_START).
//!
//! ```sh
//! cargo run --release -p mb-bench --bin probe -- "Star Trek"
//! ```

use mb_core::pipeline::{train, DataSource, Method};
use mb_eval::ExperimentContext;
use std::time::Instant;

fn main() {
    let domain = std::env::args().nth(1).unwrap_or_else(|| "Lego".to_string());
    let t0 = Instant::now();
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    eprintln!("context built in {:?}", t0.elapsed());
    let mut cfg = mb_bench::bench_model_config(42);
    let env_f = |k: &str, d: f64| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
    let env_u = |k: &str, d: usize| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
    cfg.bi_meta.steps = env_u("BI_META_STEPS", cfg.bi_meta.steps);
    cfg.bi_meta.lr = env_f("BI_META_LR", cfg.bi_meta.lr);
    cfg.bi_meta.seed_mix = env_f("SEED_MIX", cfg.bi_meta.seed_mix);
    cfg.cross_meta.steps = env_u("CROSS_META_STEPS", cfg.cross_meta.steps);
    cfg.cross_meta.lr = env_f("CROSS_META_LR", cfg.cross_meta.lr);
    cfg.cross_meta.seed_mix = env_f("SEED_MIX", cfg.cross_meta.seed_mix);
    cfg.seed_supervision_mix = env_f("POST_SEED_MIX", cfg.seed_supervision_mix);
    cfg.seed = env_u("MODEL_SEED", 42) as u64;
    cfg.warm_start = env_u("WARM_START", 1) == 1;
    let task = ctx.task(&domain);
    let split = ctx.dataset.split(&domain);
    eprintln!(
        "domain {domain}: {} entities, syn {} pairs, test {}",
        ctx.dataset.world().kb().domain_entities(task.domain.id).len(),
        task.syn.rewritten.len(),
        split.test.len()
    );
    let nm = mb_core::baselines::name_matching_accuracy(
        ctx.dataset.world().kb(),
        task.domain.id,
        &split.test,
    );
    println!("NameMatching          U.Acc {nm:.2}");
    for (method, source) in [
        (Method::Blink, DataSource::Seed),
        (Method::Blink, DataSource::Syn),
        (Method::Blink, DataSource::SynSeed),
        (Method::Dl4el, DataSource::SynSeed),
        (Method::MetaBlink, DataSource::SynSeed),
        (Method::MetaBlink, DataSource::SynStarSeed),
    ] {
        let t = Instant::now();
        let model = train(&task, method, source, &cfg);
        let m = model.evaluate(&task, &split.test);
        println!(
            "{:<10} {:<12} R@64 {:>6.2}  N.Acc {:>6.2}  U.Acc {:>6.2}   ({:?})",
            method.label(),
            source.label(),
            m.recall_at_k,
            m.normalized_acc,
            m.unnormalized_acc,
            t.elapsed()
        );
    }
}
