//! Sharded-store retrieval benchmark: stream a synthetic entity world
//! into an on-disk `mb-store`, build the deterministic IVF index over
//! it, and measure build time, recall@64 against brute-force scoring of
//! the *same* quantized tables, and per-query throughput. Writes
//! `target/experiments/BENCH_retrieval.{txt,json}`; the two `retrieval/`
//! medians feed the bench-regression CI gate (`scripts/bench_gate.sh`).
//!
//! ```text
//! bench_retrieval                  # full run (20k entities, timed)
//! bench_retrieval --entities 1000000
//! bench_retrieval --smoke          # CI retrieval-smoke stage: small
//!                                  # world, recall + bit-identical
//!                                  # rebuild assertions, no timing
//! ```
//!
//! The recall sweep (`nprobe` vs recall@64 and probe cost) is printed
//! for EXPERIMENTS.md; the gated timing runs at the smallest swept
//! `nprobe` whose recall@64 clears 0.95.

use mb_bench::harness::Harness;
use mb_common::Rng;
use mb_datagen::{EntityStream, StreamConfig};
use mb_encoders::retrieval::CandidateSource;
use mb_store::{EntityStore, IvfConfig, IvfIndex, StoreBuilder, StoreConfig, StoreRecord, Threads};
use mb_tensor::quant::QuantMode;
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Queries evaluated for recall and rotated through the timing loops.
const QUERIES: usize = 64;
/// Recall depth (the serving candidate budget).
const K: usize = 64;
/// The recall@64 floor the operating point must clear.
const RECALL_FLOOR: f64 = 0.95;

struct Args {
    entities: usize,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut entities = 100_000usize;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--entities" => {
                entities = args
                    .next()
                    .ok_or("--entities needs a count")?
                    .parse()
                    .map_err(|e| format!("--entities: {e}"))?;
            }
            "--smoke" => smoke = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args { entities, smoke })
}

/// Scratch dir removed on drop (panics leave it behind under the OS
/// temp dir for inspection).
struct Scratch(PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scratch(tag: &str) -> Scratch {
    let dir = std::env::temp_dir().join(format!("mb-bench-retrieval-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    Scratch(dir)
}

/// Stream `cfg.entities` synthetic entities into a sharded store,
/// shard by shard in bounded RAM. Returns the store and the wall time.
fn build_store(dir: &Path, cfg: StreamConfig, shard_capacity: usize) -> (EntityStore, f64) {
    let start = Instant::now();
    let mut builder = StoreBuilder::create(
        dir,
        StoreConfig { shard_capacity, dim: cfg.dim, quant: QuantMode::Int8 },
    )
    .expect("store builder");
    for chunk in EntityStream::new(cfg).expect("valid stream config") {
        for e in chunk {
            builder
                .push(StoreRecord { title: e.title, description: e.description, vector: e.vector })
                .expect("push streamed entity");
        }
    }
    let store = builder.finish().expect("finish store");
    (store, start.elapsed().as_secs_f64())
}

/// Deterministic evaluation queries: entity vectors perturbed with a
/// little noise, renormalized — "find things like this known entity".
fn queries(store: &EntityStore, n: usize) -> Vec<Vec<f64>> {
    let mut rng = Rng::seed_from_u64(1234);
    let stride = (store.len() / n).max(1);
    let mut row = vec![0.0; store.dim()];
    (0..n)
        .map(|i| {
            store.dequant_row_into((i * stride) % store.len(), &mut row);
            let mut q: Vec<f64> = row.iter().map(|v| v + 0.03 * rng.gaussian()).collect();
            let norm = q.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            q.iter_mut().for_each(|x| *x /= norm);
            q
        })
        .collect()
}

/// Queries per fused retrieval call in the batch benches (the serving
/// drain size the acceptance criterion is pinned at).
const BATCH: usize = 8;

/// Serving-drain batches: popularity-skewed mention queries. Mention
/// frequency over entities is Zipf-like in entity linking, so a drain
/// of [`BATCH`] concurrent requests usually carries several mentions of
/// the same few hot entities and their probed lists overlap — the
/// traffic pattern whose list streaming the fused path amortizes. The
/// rank→entity map scatters hot ranks across entity ids (Weyl-style
/// multiplier) so "popular" never accidentally means "packed into one
/// shard or IVF list". The serial-loop comparator benches run the very
/// same batches, so the fused speedup is workload-controlled.
fn serve_batches(store: &EntityStore, n_batches: usize, rows: usize) -> Vec<mb_tensor::Tensor> {
    const POOL: usize = 1_024;
    const ZIPF_S: f64 = 1.1;
    let n = store.len();
    let dim = store.dim();
    let mut rng = Rng::seed_from_u64(4242);
    let mut cdf = Vec::with_capacity(POOL.min(n));
    let mut total = 0.0f64;
    for r in 0..POOL.min(n) {
        total += 1.0 / ((r + 1) as f64).powf(ZIPF_S);
        cdf.push(total);
    }
    let mut row = vec![0.0; dim];
    (0..n_batches)
        .map(|_| {
            let mut data = Vec::with_capacity(rows * dim);
            for _ in 0..rows {
                let u = rng.range_f64(0.0, total);
                let rank = cdf.partition_point(|&c| c < u).min(cdf.len() - 1);
                let id = rank.wrapping_mul(2_654_435_761) % n;
                store.dequant_row_into(id, &mut row);
                let mut q: Vec<f64> = row.iter().map(|v| v + 0.03 * rng.gaussian()).collect();
                let norm = q.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
                q.iter_mut().for_each(|x| *x /= norm);
                data.extend(q);
            }
            mb_tensor::Tensor::from_vec(vec![rows, dim], data)
        })
        .collect()
}

/// Pack the evaluation queries into `[BATCH, dim]` tensors for the
/// fused `top_k_batch` benches.
fn query_batches(qs: &[Vec<f64>], dim: usize) -> Vec<mb_tensor::Tensor> {
    qs.chunks(BATCH)
        .map(|chunk| {
            let data: Vec<f64> = chunk.iter().flatten().copied().collect();
            mb_tensor::Tensor::from_vec(vec![chunk.len(), dim], data)
        })
        .collect()
}

/// Assert the fused path is byte-identical to per-query retrieval —
/// ids and `to_bits` score patterns — at the given worker count.
fn assert_fused_matches_serial<S: CandidateSource>(
    what: &str,
    source: &S,
    batches: &[mb_tensor::Tensor],
    threads: Threads,
) {
    for b in batches {
        let fused = source.top_k_batch(b, K, threads).expect("fused retrieval");
        for (qi, got) in fused.iter().enumerate() {
            let want = source.top_k(b.row(qi), K);
            assert_eq!(want.len(), got.len(), "{what}: length drift");
            for (w, g) in want.iter().zip(got) {
                assert!(
                    w.0 == g.0 && w.1.to_bits() == g.1.to_bits(),
                    "{what}: fused result diverged from serial top_k"
                );
            }
        }
    }
}

/// Mean recall@K of `ann` against the exact top-K over the same tables.
fn recall_at_k(ann: &IvfIndex, exact_ids: &[Vec<u32>], qs: &[Vec<f64>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (q, truth) in qs.iter().zip(exact_ids) {
        let got = ann.top_k(q, K);
        hit += got.iter().filter(|(id, _)| truth.contains(&id.0)).count();
        total += truth.len();
    }
    hit as f64 / total.max(1) as f64
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_retrieval: {e}");
            std::process::exit(2);
        }
    };
    if args.smoke {
        smoke();
        return;
    }

    let dir = scratch("full");
    let n = args.entities;
    let stream =
        StreamConfig { entities: n, dim: 32, topics: 128, noise: 0.15, chunk: 8_192, seed: 17 };
    let shard_capacity = 8_192;
    eprintln!("streaming {n} entities into a sharded store …");
    let (store, store_s) = build_store(&dir.0, stream, shard_capacity);
    let store = Arc::new(store);
    eprintln!("  {} shards in {store_s:.2}s", store.shards().len());

    let nlist = ((n as f64).sqrt().ceil() as usize).clamp(1, 4096);
    let ivf_cfg = IvfConfig { nlist, nprobe: 1, ..IvfConfig::default() };
    eprintln!("building IVF (nlist {nlist}) …");
    let start = Instant::now();
    let mut ivf =
        IvfIndex::build(Arc::clone(&store), ivf_cfg, Threads::default()).expect("ivf build");
    let ivf_s = start.elapsed().as_secs_f64();
    eprintln!("  built in {ivf_s:.2}s");

    let exact = Arc::new(store.quantized_index().expect("store tables"));
    let qs = queries(&store, QUERIES);
    let exact_ids: Vec<Vec<u32>> =
        qs.iter().map(|q| exact.top_k(q, K).into_iter().map(|(id, _)| id.0).collect()).collect();

    // Recall sweep for the EXPERIMENTS.md table, and the operating
    // point: the smallest swept nprobe clearing the recall floor.
    let mut sweep: Vec<(usize, f64)> = Vec::new();
    let mut op_nprobe = nlist;
    println!("\nrecall sweep ({n} entities, nlist {nlist}, {QUERIES} queries):");
    println!("  nprobe  probed%  recall@{K}");
    for np in [1usize, 2, 4, 8, 16, 32, 64] {
        if np > nlist {
            break;
        }
        ivf.set_nprobe(np);
        let r = recall_at_k(&ivf, &exact_ids, &qs);
        println!("  {np:>6}  {:>6.2}%  {r:.4}", 100.0 * np as f64 / nlist as f64);
        sweep.push((np, r));
        if r >= RECALL_FLOOR && np < op_nprobe {
            op_nprobe = np;
        }
    }
    ivf.set_nprobe(op_nprobe);
    let op_recall = recall_at_k(&ivf, &exact_ids, &qs);
    assert!(
        op_recall >= RECALL_FLOOR,
        "no swept nprobe reached recall@{K} >= {RECALL_FLOOR} (best {op_recall:.4})"
    );

    // Timed comparison at the operating point: brute force over the
    // full quantized tables vs nprobe-bounded IVF probing.
    let mut h = Harness::new();
    let mut qi = 0usize;
    h.bench_units("retrieval/store_exact/top64", 1.0, "query", || {
        let q = &qs[qi % qs.len()];
        qi += 1;
        black_box(exact.top_k(black_box(q), K));
    });
    let mut qi = 0usize;
    h.bench_units("retrieval/store_ivf/top64", 1.0, "query", || {
        let q = &qs[qi % qs.len()];
        qi += 1;
        black_box(ivf.top_k(black_box(q), K));
    });

    // Fused batch-8 retrieval (DESIGN.md §16), single-worker so the
    // speedup measures the fusion itself, not parallelism. The timed
    // batches are the Zipf serving drain, and each fused bench is
    // paired with a serial loop over the *same* batches, so the fused
    // speedup compares identical work under identical cache behavior.
    // Bit-identity against serial top_k is asserted before timing, on
    // both the serving drain and the disjoint evaluation queries.
    let batches = serve_batches(&store, 8, BATCH);
    let eval_batches = query_batches(&qs, store.dim());
    for set in [&batches, &eval_batches] {
        assert_fused_matches_serial("store_ivf", &ivf, set, Threads::single());
        assert_fused_matches_serial("quant_i8", exact.as_ref(), set, Threads::single());
    }
    // Paired sampling: each fused/serial pair shares one interleaved
    // schedule, so the speedup ratio is read under the same noise.
    let (mut bi_l, mut bi_f) = (0usize, 0usize);
    h.bench_pair_units(
        &format!("retrieval/store_ivf/top64_loop{BATCH}"),
        BATCH as f64,
        || {
            let b = &batches[bi_l % batches.len()];
            bi_l += 1;
            for qi in 0..b.rows() {
                black_box(ivf.top_k(black_box(b.row(qi)), K));
            }
        },
        &format!("retrieval/store_ivf/top64_batch{BATCH}"),
        BATCH as f64,
        || {
            let b = &batches[bi_f % batches.len()];
            bi_f += 1;
            black_box(ivf.top_k_batch(black_box(b), K, Threads::single()).expect("fused"));
        },
        "query",
    );
    let (mut bi_l, mut bi_f) = (0usize, 0usize);
    h.bench_pair_units(
        &format!("retrieval/quant_i8/top64_loop{BATCH}"),
        BATCH as f64,
        || {
            let b = &batches[bi_l % batches.len()];
            bi_l += 1;
            for qi in 0..b.rows() {
                black_box(exact.top_k(black_box(b.row(qi)), K));
            }
        },
        &format!("retrieval/quant_i8/top64_batch{BATCH}"),
        BATCH as f64,
        || {
            let b = &batches[bi_f % batches.len()];
            bi_f += 1;
            black_box(exact.top_k_batch(black_box(b), K, Threads::single()).expect("fused"));
        },
        "query",
    );

    // IVF batch-size sweep (1/8/32) for the EXPERIMENTS.md fused-QPS
    // table; batch 8 reuses the acceptance pair above.
    for bs in [1usize, 32] {
        let sweep_batches = serve_batches(&store, 8, bs);
        assert_fused_matches_serial("store_ivf", &ivf, &sweep_batches, Threads::single());
        let (mut bl, mut bf) = (0usize, 0usize);
        h.bench_pair_units(
            &format!("retrieval/store_ivf/top64_loop{bs}"),
            bs as f64,
            || {
                let b = &sweep_batches[bl % sweep_batches.len()];
                bl += 1;
                for qi in 0..b.rows() {
                    black_box(ivf.top_k(black_box(b.row(qi)), K));
                }
            },
            &format!("retrieval/store_ivf/top64_batch{bs}"),
            bs as f64,
            || {
                let b = &sweep_batches[bf % sweep_batches.len()];
                bf += 1;
                black_box(ivf.top_k_batch(black_box(b), K, Threads::single()).expect("fused"));
            },
            "query",
        );
    }

    let median = |name: &str| {
        h.results()
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.median_ns)
            .unwrap_or_else(|| panic!("no measurement named {name}"))
    };
    let exact_ns = median("retrieval/store_exact/top64");
    let ivf_ns = median("retrieval/store_ivf/top64");
    let exact_qps = 1e9 / exact_ns;
    let ivf_qps = 1e9 / ivf_ns;
    let speedup = exact_ns / ivf_ns;
    // Fused medians are per batch call; per-query = median / BATCH. The
    // fused speedups divide the serial loop over the serving batches by
    // the fused call on the same batches — same queries, same caches.
    let ivf_batch_ns = median(&format!("retrieval/store_ivf/top64_batch{BATCH}")) / BATCH as f64;
    let exact_batch_ns = median(&format!("retrieval/quant_i8/top64_batch{BATCH}")) / BATCH as f64;
    let ivf_loop_ns = median(&format!("retrieval/store_ivf/top64_loop{BATCH}")) / BATCH as f64;
    let exact_loop_ns = median(&format!("retrieval/quant_i8/top64_loop{BATCH}")) / BATCH as f64;
    let ivf_fused_speedup = ivf_loop_ns / ivf_batch_ns;
    let exact_fused_speedup = exact_loop_ns / exact_batch_ns;

    let sweep_json: Vec<String> =
        sweep.iter().map(|(np, r)| format!("{{\"nprobe\":{np},\"recall\":{r:.4}}}")).collect();
    let fused_sweep_json: Vec<String> = [1usize, BATCH, 32]
        .iter()
        .map(|&bs| {
            let l = median(&format!("retrieval/store_ivf/top64_loop{bs}")) / bs as f64;
            let f = median(&format!("retrieval/store_ivf/top64_batch{bs}")) / bs as f64;
            format!(
                "{{\"batch\":{bs},\"loop_qps\":{:.1},\"fused_qps\":{:.1},\"speedup\":{:.2}}}",
                1e9 / l,
                1e9 / f,
                l / f,
            )
        })
        .collect();
    let summary = format!(
        "{{\"entities\":{n},\"dim\":32,\"shards\":{},\
         \"store_build_s\":{store_s:.3},\"ivf_build_s\":{ivf_s:.3},\
         \"nlist\":{nlist},\"nprobe\":{op_nprobe},\
         \"recall_at_64\":{op_recall:.4},\
         \"exact_qps\":{exact_qps:.1},\"ivf_qps\":{ivf_qps:.1},\
         \"speedup\":{speedup:.2},\
         \"batch\":{BATCH},\
         \"ivf_fused_qps\":{:.1},\"exact_fused_qps\":{:.1},\
         \"ivf_fused_speedup\":{ivf_fused_speedup:.2},\
         \"exact_fused_speedup\":{exact_fused_speedup:.2},\
         \"fused_sweep\":[{}],\
         \"sweep\":[{}]}}",
        store.shards().len(),
        1e9 / ivf_batch_ns,
        1e9 / exact_batch_ns,
        fused_sweep_json.join(","),
        sweep_json.join(","),
    );
    h.report_with_summary(
        "Sharded-store retrieval: deterministic IVF vs brute force",
        "BENCH_retrieval",
        &summary,
    );

    println!("\nacceptance metrics ({n} entities):");
    println!("  store build: {store_s:.2}s ({} shards)", store.shards().len());
    println!("  ivf build:   {ivf_s:.2}s (nlist {nlist})");
    println!("  operating point: nprobe {op_nprobe}, recall@{K} {op_recall:.4}");
    println!("  qps: exact {exact_qps:.0}, ivf {ivf_qps:.0} ({speedup:.1}x)");
    println!(
        "  fused batch-{BATCH}: ivf {:.0} qps ({ivf_fused_speedup:.2}x over serial), \
         quant_i8 {:.0} qps ({exact_fused_speedup:.2}x over serial)",
        1e9 / ivf_batch_ns,
        1e9 / exact_batch_ns,
    );
}

/// CI retrieval-smoke: small streamed world, assert the recall floor
/// and that a rebuild (including at a different worker count) is
/// byte-identical. No timing — this must stay fast and stable.
fn smoke() {
    let dir = scratch("smoke");
    let stream = StreamConfig { entities: 3_000, ..StreamConfig::tiny(3_000, 5) };
    let (store, _) = build_store(&dir.0, stream, 1_024);
    let store = Arc::new(store);

    let cfg = IvfConfig { nlist: 48, nprobe: 16, ..IvfConfig::default() };
    let ivf = IvfIndex::build(Arc::clone(&store), cfg, Threads::default()).expect("ivf build");

    let exact = store.quantized_index().expect("store tables");
    let qs = queries(&store, QUERIES);
    let exact_ids: Vec<Vec<u32>> =
        qs.iter().map(|q| exact.top_k(q, K).into_iter().map(|(id, _)| id.0).collect()).collect();
    let recall = recall_at_k(&ivf, &exact_ids, &qs);
    assert!(recall >= RECALL_FLOOR, "smoke recall@{K} {recall:.4} < {RECALL_FLOOR}");

    // Deterministic rebuild: same bytes from a fresh build, at one
    // worker and at several.
    let again = IvfIndex::build(Arc::clone(&store), cfg, Threads::default()).expect("rebuild");
    assert_eq!(ivf.to_bytes(), again.to_bytes(), "rebuild is not byte-identical");
    let wide = IvfIndex::build(Arc::clone(&store), cfg, Threads::new(3)).expect("rebuild wide");
    assert_eq!(ivf.to_bytes(), wide.to_bytes(), "worker count changed the index bytes");

    // Fused batched retrieval is byte-identical to serial per-query
    // top_k at 1 and 3 workers (DESIGN.md §16), on disjoint evaluation
    // queries and on overlap-heavy serving batches.
    let batches = query_batches(&qs, store.dim());
    let drains = serve_batches(&store, 4, BATCH);
    for workers in [1usize, 3] {
        for set in [&batches, &drains] {
            assert_fused_matches_serial("store_ivf", &ivf, set, Threads::new(workers));
            assert_fused_matches_serial("quant_i8", &exact, set, Threads::new(workers));
        }
    }

    println!(
        "retrieval-smoke PASS: {} entities, {} shards, recall@{K} {recall:.4}, \
         rebuild byte-identical at 1 and 3 workers, \
         fused batch-{BATCH} byte-identical at 1 and 3 workers",
        store.len(),
        store.shards().len()
    );
}
