//! Training-throughput benchmark: one reweighting meta-epoch (a fixed
//! number of [`biencoder_meta_step`] calls) at 1/2/4 worker threads,
//! plus the parallel evaluation path, asserting along the way that the
//! learned parameters are bit-identical across thread counts. Writes
//! `target/experiments/BENCH_train.{txt,json}`.

use mb_bench::harness::{BenchConfig, Harness};
use mb_common::Rng;
use mb_core::reweight::biencoder_meta_step;
use mb_datagen::mentions::generate_mentions;
use mb_datagen::{World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::input::{build_vocab, InputConfig, TrainPair};
use mb_tensor::optim::Sgd;
use std::time::Duration;

/// Meta-steps per timed "epoch".
const STEPS: usize = 8;

fn fixture() -> (mb_text::Vocab, Vec<TrainPair>) {
    let world = World::generate(WorldConfig::tiny(7));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(3);
    let ms = generate_mentions(&world, &domain, 192, &mut rng);
    let cfg = InputConfig::default();
    let pairs =
        ms.mentions.iter().map(|m| TrainPair::from_mention(&vocab, &cfg, world.kb(), m)).collect();
    (vocab, pairs)
}

/// One meta-epoch from a fresh model; returns the trained parameters
/// flattened for the cross-thread bit-identity check.
fn meta_epoch(vocab: &mb_text::Vocab, pairs: &[TrainPair], threads: mb_par::Threads) -> Vec<u64> {
    let mut m = BiEncoder::new(vocab, BiEncoderConfig::default(), &mut Rng::seed_from_u64(1));
    let mut opt = Sgd::new(1e-3);
    let mut rng = Rng::seed_from_u64(5);
    for _ in 0..STEPS {
        biencoder_meta_step(
            &mut m,
            &pairs[..128],
            &pairs[128..160],
            &mut opt,
            16,
            16,
            0.3,
            true,
            true,
            threads,
            &mut rng,
        );
    }
    m.params().iter().flat_map(|(_, t)| t.data().iter().map(|v| v.to_bits())).collect()
}

fn main() {
    let (vocab, pairs) = fixture();
    // Meta-epochs are seconds-long; a handful of samples keeps the
    // whole run tractable while the median stays meaningful.
    let mut h = Harness::with_config(BenchConfig {
        warmup: Duration::from_millis(50),
        samples: 5,
        min_sample_time: Duration::from_millis(1),
    });
    let baseline = meta_epoch(&vocab, &pairs, mb_par::Threads::single());
    for threads in [1usize, 2, 4] {
        let t = mb_par::Threads::new(threads);
        assert_eq!(
            baseline,
            meta_epoch(&vocab, &pairs, t),
            "meta-epoch parameters diverged at {threads} threads"
        );
        h.bench_units(&format!("meta_epoch/threads={threads}"), STEPS as f64, "step", || {
            std::hint::black_box(meta_epoch(&vocab, &pairs, t));
        });
    }
    h.report("Reweighting meta-epoch by worker threads", "BENCH_train");
    let median = |name: &str| h.results().iter().find(|m| m.name == name).map(|m| m.median_ns);
    if let (Some(t1), Some(t4)) = (median("meta_epoch/threads=1"), median("meta_epoch/threads=4")) {
        println!("\nspeedup at 4 threads vs 1: {:.2}x", t1 / t4);
    }
}
