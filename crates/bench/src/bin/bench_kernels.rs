//! Matmul kernel benchmark: the cache-blocked register-tiled kernel
//! (`mb_tensor::Tensor::matmul`) against the naive triple loop
//! (`mb_tensor::kernels::matmul_reference`) at 64/256/512, plus the
//! transposed variant and the multi-threaded dispatch. Verifies
//! bit-identity before timing, then writes
//! `target/experiments/BENCH_kernels.{txt,json}`.

use mb_bench::harness::Harness;
use mb_common::Rng;
use mb_tensor::kernels::matmul_reference;
use mb_tensor::Tensor;

fn main() {
    let mut h = Harness::new();
    let mut rng = Rng::seed_from_u64(42);
    for n in [64usize, 256, 512] {
        let a = Tensor::randn(vec![n, n], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(vec![n, n], 0.0, 1.0, &mut rng);
        // The blocked kernel must be *bit-identical* to the reference
        // (it only regroups which elements are computed together, never
        // the per-element accumulation order) — check before timing.
        let want = matmul_reference(&a, &b, false);
        let got = a.matmul(&b);
        assert_eq!(want.data(), got.data(), "blocked kernel diverged from reference at {n}");

        h.bench_units(&format!("matmul/naive/{n}"), flops(n), "flop", || {
            std::hint::black_box(matmul_reference(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
                false,
            ));
        });
        h.bench_units(&format!("matmul/blocked/{n}"), flops(n), "flop", || {
            std::hint::black_box(std::hint::black_box(&a).matmul(std::hint::black_box(&b)));
        });
        h.bench_units(&format!("matmul_t/blocked/{n}"), flops(n), "flop", || {
            std::hint::black_box(std::hint::black_box(&a).matmul_t(std::hint::black_box(&b)));
        });
        for threads in [2usize, 4] {
            let t = mb_par::Threads::new(threads);
            assert_eq!(
                want.data(),
                a.matmul_with(&b, t).data(),
                "parallel dispatch diverged at {n} with {threads} threads"
            );
            h.bench_units(
                &format!("matmul/blocked/{n}/threads={threads}"),
                flops(n),
                "flop",
                || {
                    std::hint::black_box(
                        std::hint::black_box(&a).matmul_with(std::hint::black_box(&b), t),
                    );
                },
            );
        }
    }
    h.report("Matmul kernels: naive reference vs cache-blocked", "BENCH_kernels");
    speedup_summary(&h);
}

/// Multiply–add counted as two floating-point operations.
fn flops(n: usize) -> f64 {
    2.0 * (n as f64).powi(3)
}

/// Print the blocked-over-naive speedup per size (the acceptance
/// metric), computed from the recorded medians.
fn speedup_summary(h: &Harness) {
    println!("\nspeedup (naive median / blocked median):");
    for n in [64usize, 256, 512] {
        let median = |name: &str| h.results().iter().find(|m| m.name == name).map(|m| m.median_ns);
        if let (Some(naive), Some(blocked)) =
            (median(&format!("matmul/naive/{n}")), median(&format!("matmul/blocked/{n}")))
        {
            println!("  {n}x{n}: {:.2}x", naive / blocked);
        }
    }
}
