//! Bench-regression gate CLI: compare fresh bench JSON reports against
//! the committed `bench-baseline.json` and exit non-zero when any
//! metric regressed beyond the baseline's threshold.
//!
//! ```text
//! bench_gate --baseline bench-baseline.json \
//!            --current target/experiments/BENCH_kernels.json \
//!            --current target/experiments/BENCH_inference.json
//! bench_gate --update ...   # refresh the baseline from the reports
//! ```
//!
//! Metrics present on only one side print a warning but do not fail,
//! so adding or retiring a benchmark never bricks CI; refresh the
//! pinned medians with `--update` when that happens (or after an
//! intentional perf change).

use mb_bench::gate::{self, Verdict};
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut baseline_path = "bench-baseline.json".to_string();
    let mut current_paths: Vec<String> = Vec::new();
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => match args.next() {
                Some(p) => baseline_path = p,
                None => return usage("--baseline needs a path"),
            },
            "--current" => match args.next() {
                Some(p) => current_paths.push(p),
                None => return usage("--current needs a path"),
            },
            "--update" => update = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    if current_paths.is_empty() {
        current_paths = vec![
            "target/experiments/BENCH_kernels.json".to_string(),
            "target/experiments/BENCH_inference.json".to_string(),
            "target/experiments/BENCH_serve_openloop.json".to_string(),
            "target/experiments/BENCH_retrieval.json".to_string(),
        ];
    }

    let mut current: BTreeMap<String, f64> = BTreeMap::new();
    for path in &current_paths {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("bench_gate: cannot read {path}: {e}");
                eprintln!("bench_gate: run the bench bins first (see scripts/bench_gate.sh)");
                return ExitCode::FAILURE;
            }
        };
        match gate::parse_bench_medians(&bytes) {
            Ok(medians) => current.extend(medians),
            Err(e) => {
                eprintln!("bench_gate: {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if update {
        let threshold = match std::fs::read(&baseline_path) {
            Ok(bytes) => match gate::parse_baseline(&bytes) {
                Ok(base) => base.threshold,
                Err(_) => 1.25,
            },
            Err(_) => 1.25,
        };
        let rendered = gate::render_baseline(threshold, &current);
        if let Err(e) = std::fs::write(&baseline_path, rendered) {
            eprintln!("bench_gate: cannot write {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("bench_gate: wrote {} metrics to {baseline_path}", current.len());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read(&baseline_path) {
        Ok(bytes) => match gate::parse_baseline(&bytes) {
            Ok(base) => base,
            Err(e) => {
                eprintln!("bench_gate: {baseline_path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("bench_gate: cannot read {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let checks = gate::evaluate(&baseline, &current);
    let mut regressed = 0usize;
    for c in &checks {
        match c.verdict {
            Verdict::Ok => {
                if let (Some(ratio), Some(b)) = (c.ratio(), c.baseline_ns) {
                    println!(
                        "  ok        {:<44} {:>12.1} ns vs {:>12.1} ns  ({:+.1}%)",
                        c.name,
                        c.current_ns.unwrap_or(0.0),
                        b,
                        (ratio - 1.0) * 100.0
                    );
                }
            }
            Verdict::Regressed => {
                regressed += 1;
                println!(
                    "  REGRESSED {:<44} {:>12.1} ns vs {:>12.1} ns  ({:+.1}% > +{:.0}%)",
                    c.name,
                    c.current_ns.unwrap_or(0.0),
                    c.baseline_ns.unwrap_or(0.0),
                    (c.ratio().unwrap_or(1.0) - 1.0) * 100.0,
                    (baseline.threshold - 1.0) * 100.0
                );
            }
            Verdict::MissingCurrent => {
                println!("  warning   {:<44} in baseline but not measured this run", c.name);
            }
            Verdict::MissingBaseline => {
                println!(
                    "  warning   {:<44} measured but not in baseline (bench_gate --update)",
                    c.name
                );
            }
        }
    }
    if regressed > 0 {
        eprintln!(
            "bench_gate: {regressed} metric(s) regressed beyond +{:.0}% vs {baseline_path}",
            (baseline.threshold - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: {} metric(s) within +{:.0}% of {baseline_path}",
        checks.iter().filter(|c| c.verdict == Verdict::Ok).count(),
        (baseline.threshold - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("bench_gate: {err}");
    }
    eprintln!(
        "usage: bench_gate [--baseline PATH] [--current PATH]... [--update]\n\
         defaults: --baseline bench-baseline.json \
         --current target/experiments/BENCH_kernels.json \
         --current target/experiments/BENCH_inference.json \
         --current target/experiments/BENCH_serve_openloop.json"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
