//! Bench-regression gate: compare fresh bench medians against a
//! committed baseline and fail on slowdowns beyond a threshold.
//!
//! The baseline (`bench-baseline.json` at the repo root) pins the
//! median nanoseconds of the gated benchmarks plus the allowed
//! regression ratio. `scripts/bench_gate.sh` reruns the bench bins and
//! feeds their `target/experiments/*.json` output through
//! [`evaluate`]; any metric slower than `baseline × threshold` fails
//! the CI stage. Metrics present on only one side warn instead of
//! failing, so adding or retiring a benchmark does not brick CI — the
//! baseline is then refreshed with `bench_gate --update`.

use mb_serve::json::{self, Json};
use std::collections::BTreeMap;

/// A parsed baseline: allowed ratio plus `name → median_ns`.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Fail when `current > baseline × threshold` (1.25 = +25%).
    pub threshold: f64,
    /// Pinned medians, keyed by benchmark name.
    pub metrics: BTreeMap<String, f64>,
}

/// Outcome of checking one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Within the allowed ratio.
    Ok,
    /// Slower than `baseline × threshold`.
    Regressed,
    /// In the baseline but absent from the fresh run (warn only).
    MissingCurrent,
    /// Measured fresh but not pinned yet (warn only).
    MissingBaseline,
}

/// One gated metric with both sides and its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Benchmark name.
    pub name: String,
    /// Pinned median (ns), when present.
    pub baseline_ns: Option<f64>,
    /// Fresh median (ns), when present.
    pub current_ns: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

impl Check {
    /// `current / baseline` when both sides exist.
    pub fn ratio(&self) -> Option<f64> {
        match (self.current_ns, self.baseline_ns) {
            (Some(c), Some(b)) if b > 0.0 => Some(c / b),
            _ => None,
        }
    }
}

/// Parse a committed `bench-baseline.json` document.
///
/// # Errors
/// A human-readable message when the document is not the expected
/// `{"kind":"bench-baseline","threshold":…,"metrics":{…}}` shape.
pub fn parse_baseline(bytes: &[u8]) -> Result<Baseline, String> {
    let doc = json::parse(bytes)?;
    if doc.get("kind").and_then(Json::as_str) != Some("bench-baseline") {
        return Err("baseline must have \"kind\":\"bench-baseline\"".to_string());
    }
    let threshold =
        doc.get("threshold").and_then(Json::as_f64).ok_or("missing numeric \"threshold\"")?;
    if threshold.is_nan() || threshold <= 1.0 {
        return Err(format!("threshold must be > 1.0, got {threshold}"));
    }
    let Some(Json::Obj(map)) = doc.get("metrics") else {
        return Err("missing object \"metrics\"".to_string());
    };
    let mut metrics = BTreeMap::new();
    for (name, v) in map {
        let ns = v.as_f64().ok_or_else(|| format!("metric {name:?} must be a number"))?;
        metrics.insert(name.clone(), ns);
    }
    Ok(Baseline { threshold, metrics })
}

/// Extract `name → median_ns` from one bench JSON report
/// (`{"kind":"bench","results":[{"name":…,"median_ns":…},…]}`, as
/// written by [`crate::harness::Harness::report`]).
///
/// # Errors
/// A human-readable message on malformed documents.
pub fn parse_bench_medians(bytes: &[u8]) -> Result<BTreeMap<String, f64>, String> {
    let doc = json::parse(bytes)?;
    if doc.get("kind").and_then(Json::as_str) != Some("bench") {
        return Err("bench report must have \"kind\":\"bench\"".to_string());
    }
    let Some(Json::Arr(results)) = doc.get("results") else {
        return Err("missing array \"results\"".to_string());
    };
    let mut medians = BTreeMap::new();
    for entry in results {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .ok_or("result entry missing string \"name\"")?;
        let median = entry
            .get("median_ns")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("result {name:?} missing numeric \"median_ns\""))?;
        medians.insert(name.to_string(), median);
    }
    Ok(medians)
}

/// Check every metric on either side, in name order.
pub fn evaluate(baseline: &Baseline, current: &BTreeMap<String, f64>) -> Vec<Check> {
    let mut names: Vec<&String> = baseline.metrics.keys().chain(current.keys()).collect();
    names.sort();
    names.dedup();
    names
        .into_iter()
        .map(|name| {
            let baseline_ns = baseline.metrics.get(name).copied();
            let current_ns = current.get(name).copied();
            let verdict = match (baseline_ns, current_ns) {
                (Some(b), Some(c)) if c > b * baseline.threshold => Verdict::Regressed,
                (Some(_), Some(_)) => Verdict::Ok,
                (Some(_), None) => Verdict::MissingCurrent,
                (None, _) => Verdict::MissingBaseline,
            };
            Check { name: name.clone(), baseline_ns, current_ns, verdict }
        })
        .collect()
}

/// True when no check regressed (missing metrics only warn).
pub fn passes(checks: &[Check]) -> bool {
    checks.iter().all(|c| c.verdict != Verdict::Regressed)
}

/// Render a baseline document (for `bench_gate --update`); metrics are
/// emitted in name order so refreshes diff cleanly.
pub fn render_baseline(threshold: f64, metrics: &BTreeMap<String, f64>) -> String {
    let entries: Vec<String> =
        metrics.iter().map(|(name, ns)| format!("    {}: {ns:.1}", json::escape(name))).collect();
    format!(
        "{{\n  \"kind\": \"bench-baseline\",\n  \"threshold\": {threshold},\n  \"metrics\": {{\n{}\n  }}\n}}\n",
        entries.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> Baseline {
        let mut metrics = BTreeMap::new();
        metrics.insert("matmul/blocked/64".to_string(), 1000.0);
        metrics.insert("inference/embed/frozen/batch8".to_string(), 2000.0);
        Baseline { threshold: 1.25, metrics }
    }

    #[test]
    fn seeded_30_percent_slowdown_fails() {
        let base = baseline();
        let mut current = base.metrics.clone();
        // Seed a 1.3× slowdown on one metric: past the 25% budget.
        current.insert("matmul/blocked/64".to_string(), 1300.0);
        let checks = evaluate(&base, &current);
        assert!(!passes(&checks));
        let bad = checks.iter().find(|c| c.name == "matmul/blocked/64").expect("checked");
        assert_eq!(bad.verdict, Verdict::Regressed);
        assert!((bad.ratio().expect("both sides") - 1.3).abs() < 1e-12);
    }

    #[test]
    fn slowdown_within_budget_passes() {
        let base = baseline();
        let mut current = base.metrics.clone();
        current.insert("matmul/blocked/64".to_string(), 1200.0); // +20% < +25%
        current.insert("inference/embed/frozen/batch8".to_string(), 400.0); // speedups fine
        assert!(passes(&evaluate(&base, &current)));
    }

    #[test]
    fn missing_metrics_warn_but_do_not_fail() {
        let base = baseline();
        let mut current = BTreeMap::new();
        current.insert("matmul/blocked/64".to_string(), 1000.0);
        current.insert("brand/new/bench".to_string(), 5.0);
        let checks = evaluate(&base, &current);
        assert!(passes(&checks));
        let by_name = |n: &str| checks.iter().find(|c| c.name == n).expect("present").clone();
        assert_eq!(by_name("inference/embed/frozen/batch8").verdict, Verdict::MissingCurrent);
        assert_eq!(by_name("brand/new/bench").verdict, Verdict::MissingBaseline);
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let base = baseline();
        let rendered = render_baseline(base.threshold, &base.metrics);
        let parsed = parse_baseline(rendered.as_bytes()).expect("valid document");
        assert_eq!(parsed, base);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(parse_baseline(b"{}").is_err());
        assert!(parse_baseline(b"{\"kind\":\"bench-baseline\",\"threshold\":0.5,\"metrics\":{}}")
            .is_err());
        assert!(parse_bench_medians(b"{\"kind\":\"table\"}").is_err());
        assert!(parse_bench_medians(b"not json").is_err());
    }

    #[test]
    fn bench_report_medians_parse() {
        let doc = br#"{"kind":"bench","file":"BENCH_x","results":[
            {"name":"a/b","iters_per_sample":3,"samples":5,"median_ns":12.5,
             "p95_ns":14.0,"mean_ns":13.0,"stddev_ns":0.5,"min_ns":12.0,"max_ns":15.0},
            {"name":"c/d","iters_per_sample":1,"samples":5,"median_ns":7.0,
             "p95_ns":9.0,"mean_ns":8.0,"stddev_ns":1.0,"min_ns":6.0,"max_ns":10.0}]}"#;
        let medians = parse_bench_medians(doc).expect("well-formed");
        assert_eq!(medians.len(), 2);
        assert_eq!(medians["a/b"], 12.5);
        assert_eq!(medians["c/d"], 7.0);
    }
}
