//! Table IV — few-shot split sizes per test domain (50/50/rest).

use mb_eval::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let mut t = Table::new(
        "Table IV — few-shot entity linking dataset",
        &["Domain", "#Train (seed)", "#Dev", "#Test", "#Test (paper/4)"],
    );
    let paper_tests = [
        ("Forgotten Realms", 1_100usize),
        ("Lego", 1_099),
        ("Star Trek", 4_127),
        ("YuGiOh", 3_274),
    ];
    for name in ctx.test_domains() {
        let s = ctx.dataset.split(&name);
        let paper = paper_tests.iter().find(|(n, _)| *n == name).map(|(_, c)| c / 4).unwrap_or(0);
        t.row(&[
            name.clone(),
            s.seed.len().to_string(),
            s.dev.len().to_string(),
            s.test.len().to_string(),
            paper.to_string(),
        ]);
    }
    t.note("seed/dev sizes are the paper's 50/50; test counts scaled ÷4");
    mb_bench::harness::emit_table(&t, "table4_fewshot_split");
}
