//! Micro-benchmarks of the substrate hot paths: tokenizer throughput,
//! encoder forward/training steps, exact vs partitioned top-k
//! retrieval, one meta-reweight step vs a plain training step, and
//! world generation. Runs on the in-repo timing harness (`mb_bench::harness`)
//! and writes `target/experiments/micro.{txt,json}`.

use mb_bench::harness::Harness;
use mb_common::Rng;
use mb_core::reweight::biencoder_meta_step;
use mb_datagen::mentions::generate_mentions;
use mb_datagen::{World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::input::{build_vocab, InputConfig, TrainPair};
use mb_encoders::retrieval::{DenseIndex, PartitionedIndex};
use mb_tensor::optim::{Adam, Sgd};
use mb_tensor::Tensor;
use mb_text::tokenize;

fn fixture() -> (World, mb_text::Vocab, Vec<TrainPair>) {
    let world = World::generate(WorldConfig::tiny(7));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(3);
    let ms = generate_mentions(&world, &domain, 256, &mut rng);
    let cfg = InputConfig::default();
    let pairs =
        ms.mentions.iter().map(|m| TrainPair::from_mention(&vocab, &cfg, world.kb(), m)).collect();
    (world, vocab, pairs)
}

fn bench_tokenizer(h: &mut Harness) {
    let text = "The Curse of the Golden Master is the fourth episode of the third season, \
                which was aired on April 16 and featured the strongest duel of the year."
        .repeat(8);
    h.bench_units("tokenizer/tokenize_1KB", text.len() as f64, "B", || {
        std::hint::black_box(tokenize(std::hint::black_box(&text)));
    });
}

fn bench_encoder(h: &mut Harness) {
    let (_, vocab, pairs) = fixture();
    let model = BiEncoder::new(&vocab, BiEncoderConfig::default(), &mut Rng::seed_from_u64(1));
    let batch: Vec<TrainPair> = pairs[..32].to_vec();
    h.bench_units("biencoder/forward_loss_batch32", 32.0, "pair", || {
        std::hint::black_box(model.batch_loss(std::hint::black_box(&batch)));
    });
    {
        let mut m = model.clone();
        let mut opt = Adam::new(1e-3);
        h.bench_units("biencoder/train_step_batch32", 32.0, "pair", || {
            std::hint::black_box(m.train_step(std::hint::black_box(&batch), &mut opt));
        });
    }
    let bags: Vec<Vec<u32>> = pairs[..64].iter().map(|p| p.entity.clone()).collect();
    h.bench_units("biencoder/embed_entities_batch64", 64.0, "entity", || {
        std::hint::black_box(model.embed_entities(std::hint::black_box(bags.clone())));
    });
}

fn bench_meta_step(h: &mut Harness) {
    let (_, vocab, pairs) = fixture();
    // Plain step vs one meta-reweight step at the same batch size: the
    // overhead factor is the headline cost of Algorithm 1 (the paper
    // reports 2× memory; we measure time).
    for n in [8usize, 16, 24] {
        {
            let mut m =
                BiEncoder::new(&vocab, BiEncoderConfig::default(), &mut Rng::seed_from_u64(1));
            let mut opt = Sgd::new(1e-3);
            let batch: Vec<TrainPair> = pairs[..n].to_vec();
            h.bench(&format!("meta/plain_step/{n}"), || {
                std::hint::black_box(m.train_step(std::hint::black_box(&batch), &mut opt));
            });
        }
        {
            let mut m =
                BiEncoder::new(&vocab, BiEncoderConfig::default(), &mut Rng::seed_from_u64(1));
            let mut opt = Sgd::new(1e-3);
            let mut rng = Rng::seed_from_u64(5);
            h.bench(&format!("meta/meta_step/{n}"), || {
                std::hint::black_box(biencoder_meta_step(
                    &mut m,
                    &pairs[..128],
                    &pairs[128..160],
                    &mut opt,
                    n,
                    16,
                    0.3,
                    true,
                    true,
                    mb_par::Threads::single(),
                    &mut rng,
                ));
            });
        }
    }
}

fn bench_retrieval(h: &mut Harness) {
    for &n in &[1_000usize, 10_000, 50_000] {
        let mut rng = Rng::seed_from_u64(9);
        let mut vectors = Tensor::randn(vec![n, 32], 0.0, 1.0, &mut rng);
        for i in 0..n {
            let norm: f64 = vectors.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            for v in vectors.row_mut(i) {
                *v /= norm;
            }
        }
        let ids: Vec<mb_kb::EntityId> = (0..n as u32).map(mb_kb::EntityId).collect();
        let exact = DenseIndex::try_from_vectors(vectors.clone(), ids.clone())
            .expect("unit-norm bench vectors are well-formed");
        let nlist = (n as f64).sqrt() as usize;
        let ivf = PartitionedIndex::build(vectors, ids, nlist, nlist / 8 + 1, &mut rng);
        let query: Vec<f64> = (0..32).map(|_| rng.gaussian()).collect();
        h.bench_units(&format!("retrieval_top64/exact/{n}"), n as f64, "vec", || {
            std::hint::black_box(exact.top_k(std::hint::black_box(&query), 64));
        });
        h.bench_units(&format!("retrieval_top64/ivf_probe12%/{n}"), n as f64, "vec", || {
            std::hint::black_box(ivf.top_k(std::hint::black_box(&query), 64));
        });
    }
}

fn bench_worldgen(h: &mut Harness) {
    h.bench("datagen/world_tiny_250_entities", || {
        std::hint::black_box(World::generate(std::hint::black_box(WorldConfig::tiny(11))));
    });
}

fn main() {
    let mut h = Harness::new();
    bench_tokenizer(&mut h);
    bench_encoder(&mut h);
    bench_meta_step(&mut h);
    bench_retrieval(&mut h);
    bench_worldgen(&mut h);
    h.report("Micro-benchmarks — substrate hot paths", "micro");
}
