//! Criterion micro-benchmarks of the substrate hot paths: tokenizer
//! throughput, encoder forward/training steps, exact vs partitioned
//! top-k retrieval, one meta-reweight step vs a plain training step,
//! and world generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mb_common::Rng;
use mb_core::reweight::biencoder_meta_step;
use mb_datagen::mentions::generate_mentions;
use mb_datagen::{World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::input::{build_vocab, InputConfig, TrainPair};
use mb_encoders::retrieval::{DenseIndex, PartitionedIndex};
use mb_tensor::optim::{Adam, Sgd};
use mb_tensor::Tensor;
use mb_text::tokenize;

fn fixture() -> (World, mb_text::Vocab, Vec<TrainPair>) {
    let world = World::generate(WorldConfig::tiny(7));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(3);
    let ms = generate_mentions(&world, &domain, 256, &mut rng);
    let cfg = InputConfig::default();
    let pairs = ms
        .mentions
        .iter()
        .map(|m| TrainPair::from_mention(&vocab, &cfg, world.kb(), m))
        .collect();
    (world, vocab, pairs)
}

fn bench_tokenizer(c: &mut Criterion) {
    let text = "The Curse of the Golden Master is the fourth episode of the third season, \
                which was aired on April 16 and featured the strongest duel of the year."
        .repeat(8);
    let mut g = c.benchmark_group("tokenizer");
    g.throughput(Throughput::Bytes(text.len() as u64));
    g.bench_function("tokenize_1KB", |b| b.iter(|| tokenize(std::hint::black_box(&text))));
    g.finish();
}

fn bench_encoder(c: &mut Criterion) {
    let (_, vocab, pairs) = fixture();
    let model = BiEncoder::new(
        &vocab,
        BiEncoderConfig::default(),
        &mut Rng::seed_from_u64(1),
    );
    let batch: Vec<TrainPair> = pairs[..32].to_vec();
    let mut g = c.benchmark_group("biencoder");
    g.throughput(Throughput::Elements(32));
    g.bench_function("forward_loss_batch32", |b| {
        b.iter(|| model.batch_loss(std::hint::black_box(&batch)))
    });
    g.bench_function("train_step_batch32", |b| {
        let mut m = model.clone();
        let mut opt = Adam::new(1e-3);
        b.iter(|| m.train_step(std::hint::black_box(&batch), &mut opt))
    });
    g.bench_function("embed_entities_batch64", |b| {
        let bags: Vec<Vec<u32>> = pairs[..64].iter().map(|p| p.entity.clone()).collect();
        b.iter(|| model.embed_entities(std::hint::black_box(bags.clone())))
    });
    g.finish();
}

fn bench_meta_step(c: &mut Criterion) {
    let (_, vocab, pairs) = fixture();
    let mut g = c.benchmark_group("meta");
    // Plain step vs one meta-reweight step at the same batch size: the
    // overhead factor is the headline cost of Algorithm 1 (the paper
    // reports 2× memory; we measure time).
    let cfgs = [8usize, 16, 24];
    for n in cfgs {
        g.bench_with_input(BenchmarkId::new("plain_step", n), &n, |b, &n| {
            let mut m = BiEncoder::new(&vocab, BiEncoderConfig::default(), &mut Rng::seed_from_u64(1));
            let mut opt = Sgd::new(1e-3);
            let batch: Vec<TrainPair> = pairs[..n].to_vec();
            b.iter(|| m.train_step(std::hint::black_box(&batch), &mut opt))
        });
        g.bench_with_input(BenchmarkId::new("meta_step", n), &n, |b, &n| {
            let mut m = BiEncoder::new(&vocab, BiEncoderConfig::default(), &mut Rng::seed_from_u64(1));
            let mut opt = Sgd::new(1e-3);
            let mut rng = Rng::seed_from_u64(5);
            b.iter(|| {
                biencoder_meta_step(
                    &mut m,
                    &pairs[..128],
                    &pairs[128..160],
                    &mut opt,
                    n,
                    16,
                    0.3,
                    true,
                    true,
                    &mut rng,
                )
            })
        });
    }
    g.finish();
}

fn bench_retrieval(c: &mut Criterion) {
    let mut g = c.benchmark_group("retrieval_top64");
    for &n in &[1_000usize, 10_000, 50_000] {
        let mut rng = Rng::seed_from_u64(9);
        let mut vectors = Tensor::randn(vec![n, 32], 0.0, 1.0, &mut rng);
        for i in 0..n {
            let norm: f64 = vectors.row(i).iter().map(|v| v * v).sum::<f64>().sqrt();
            for v in vectors.row_mut(i) {
                *v /= norm;
            }
        }
        let ids: Vec<mb_kb::EntityId> = (0..n as u32).map(mb_kb::EntityId).collect();
        let exact = DenseIndex::from_vectors(vectors.clone(), ids.clone());
        let nlist = (n as f64).sqrt() as usize;
        let ivf = PartitionedIndex::build(vectors, ids, nlist, nlist / 8 + 1, &mut rng);
        let query: Vec<f64> = (0..32).map(|_| rng.gaussian()).collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| exact.top_k(std::hint::black_box(&query), 64))
        });
        g.bench_with_input(BenchmarkId::new("ivf_probe12%", n), &n, |b, _| {
            b.iter(|| ivf.top_k(std::hint::black_box(&query), 64))
        });
    }
    g.finish();
}

fn bench_worldgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagen");
    g.bench_function("world_tiny_250_entities", |b| {
        b.iter(|| World::generate(std::hint::black_box(WorldConfig::tiny(11))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tokenizer,
    bench_encoder,
    bench_meta_step,
    bench_retrieval,
    bench_worldgen
);
criterion_main!(benches);
