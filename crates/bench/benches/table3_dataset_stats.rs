//! Table III — benchmark dataset statistics.
//!
//! Paper: entity counts of the 16 Zeshel domains. Here: the generated
//! world's per-domain entity counts (scaled ÷40 train/dev, ÷10 test)
//! next to the paper's originals, plus the overlap-category breakdown
//! of the test domains' gold mentions (the paper's Section VI-A
//! discussion: Low Overlap dominates).

use mb_datagen::world::{DomainRole, ZESHEL_DOMAINS};
use mb_eval::{ExperimentContext, Table};
use mb_text::OverlapCategory;

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let world = ctx.dataset.world();

    let mut t = Table::new(
        "Table III — Zeshel-like dataset (generated vs paper entity counts)",
        &["Split", "Domain", "Entities (generated)", "Entities (paper)"],
    );
    for &(name, role, paper) in ZESHEL_DOMAINS {
        let d = world.domain(name);
        let split = match role {
            DomainRole::Train => "Train",
            DomainRole::Dev => "Dev",
            DomainRole::Test => "Test",
        };
        t.row(&[
            split.to_string(),
            name.to_string(),
            world.kb().domain_entities(d.id).len().to_string(),
            paper.to_string(),
        ]);
    }
    t.note("generated counts are paper counts ÷40 (train/dev) and ÷10 (test); see DESIGN.md");
    mb_bench::harness::emit_table(&t, "table3_dataset_stats");

    let mut c = Table::new(
        "Table III (b) — mention overlap categories per test domain (%)",
        &["Domain", "High Overlap", "Multiple Categories", "Ambiguous Substring", "Low Overlap"],
    );
    for name in ctx.test_domains() {
        let ms = ctx.dataset.mentions(&name);
        let counts = ms.category_counts();
        let total: usize = counts.iter().sum::<usize>().max(1);
        let pct = |i: usize| format!("{:.1}", 100.0 * counts[i] as f64 / total as f64);
        c.row(&[name.clone(), pct(0), pct(1), pct(2), pct(3)]);
    }
    let _ = OverlapCategory::all();
    c.note("Low Overlap is the majority type, as in the paper — the reason Name Matching fails");
    mb_bench::harness::emit_table(&c, "table3b_overlap_categories");
}
