//! Table X — effectiveness of mention rewriting: BLINK trained on
//! Exact Match vs Syn vs Syn* data only (no seed), reporting R@64 and
//! N.Acc per test domain.

use mb_bench::{run_row, BENCH_SEEDS_LIGHT};
use mb_core::pipeline::{DataSource, Method};
use mb_eval::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domains = ["Lego", "YuGiOh", "Forgotten Realms", "Star Trek"];
    let mut headers = vec!["Training data".to_string()];
    for d in domains {
        headers.push(format!("{d} R@64"));
        headers.push(format!("{d} N.Acc"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new("Table X — effectiveness of mention rewriting", &headers_ref);

    for source in [DataSource::ExactMatch, DataSource::Syn, DataSource::SynStar] {
        let mut cells = vec![source.label().to_string()];
        for d in domains {
            let r = run_row(&ctx, d, Method::Blink, source, BENCH_SEEDS_LIGHT);
            cells.push(r.recall.fmt());
            cells.push(r.normalized.fmt());
        }
        t.row(&cells);
        eprintln!("  done: {}", source.label());
    }
    t.note("paper shape: Syn beats Exact Match on both metrics in every domain (rewriting breaks the surface shortcut); Syn* edges Syn in most cells");
    mb_bench::harness::emit_table(&t, "table10_rewriting");
}
