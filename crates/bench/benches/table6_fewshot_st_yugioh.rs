//! Table VI — few-shot entity linking on Star Trek and YuGiOh (same
//! rows as Table V).

mod fewshot_common;

fn main() {
    fewshot_common::run_fewshot_table(
        "Table VI — U.Acc on Star Trek and YuGiOh (few-shot)",
        "table6_fewshot_st_yugioh",
        &["Star Trek", "YuGiOh"],
    );
}
