//! Shared few-shot table harness for Tables V and VI.

use mb_bench::{run_row, BENCH_SEEDS};
use mb_core::baselines::name_matching_accuracy;
use mb_core::pipeline::{DataSource, Method};
use mb_eval::{ExperimentContext, Table};

/// Run the full Table V/VI row set on the given test domains.
pub fn run_fewshot_table(title: &str, file: &str, domains: &[&str]) {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let mut headers: Vec<String> = vec!["Method".into(), "Data".into()];
    for d in domains {
        headers.push(format!("{d} R@64"));
        headers.push(format!("{d} N.Acc"));
        headers.push(format!("{d} U.Acc"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(title, &headers_ref);

    // Name Matching row (no retrieval stage).
    let mut nm_row = vec!["Name Matching".to_string(), "-".to_string()];
    for d in domains {
        let task_domain = ctx.dataset.world().domain(d);
        let acc = name_matching_accuracy(
            ctx.dataset.world().kb(),
            task_domain.id,
            &ctx.dataset.split(d).test,
        );
        nm_row.push("-".into());
        nm_row.push("-".into());
        nm_row.push(format!("{acc:.2}"));
    }
    t.row(&nm_row);

    let rows = [
        (Method::Blink, DataSource::Seed),
        (Method::Blink, DataSource::Syn),
        (Method::Blink, DataSource::SynSeed),
        (Method::Dl4el, DataSource::SynSeed),
        (Method::MetaBlink, DataSource::SynSeed),
        (Method::MetaBlink, DataSource::SynStarSeed),
    ];
    for (method, source) in rows {
        let mut cells = vec![method.label().to_string(), source.label().to_string()];
        for d in domains {
            let r = run_row(&ctx, d, method, source, BENCH_SEEDS);
            cells.push(r.recall.fmt());
            cells.push(r.normalized.fmt());
            cells.push(r.unnormalized.fmt());
        }
        t.row(&cells);
        eprintln!("  done: {} {}", method.label(), source.label());
    }
    t.note(&format!(
        "mean±std over {} model seeds; paper shape: MetaBLINK > BLINK(Syn+Seed) ~ DL4EL > BLINK(Syn) > BLINK(Seed); Name Matching weak",
        BENCH_SEEDS.len()
    ));
    mb_bench::harness::emit_table(&t, file);
}
