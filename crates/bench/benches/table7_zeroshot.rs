//! Table VII — zero-shot domain transfer: U.Acc on the four test
//! domains with *no* labeled in-domain data. The seed set is mined
//! heuristically (rule filtering + self-match, Section VI-C).
//!
//! Row correspondence with the paper (labels kept honest about what we
//! train on): paper "BLINK / -" = General; paper "BLINK / Seed" =
//! General + mined seed; paper "MetaBLINK / Syn+Seed" = General + syn +
//! mined seed (the zero-shot pipeline has the general-domain data by
//! definition of the setting).

use mb_bench::{aggregate_rows, BENCH_SEEDS_LIGHT};
use mb_core::pipeline::{train, DataSource, Method};
use mb_core::seed::{mine_zero_shot_seed, SeedFilterConfig};
use mb_eval::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domains = ctx.test_domains();
    let mut headers = vec!["Method".to_string(), "Data".to_string()];
    headers.extend(domains.iter().cloned());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Table VII — U.Acc on four domains, zero-shot transfer (mined seed)",
        &headers_ref,
    );

    let rows = [
        (Method::Blink, DataSource::General, "General"),
        (Method::Blink, DataSource::GeneralSeed, "General+Seed(mined)"),
        (Method::MetaBlink, DataSource::GeneralSynSeed, "General+Syn+Seed(mined)"),
    ];
    for (method, source, label) in rows {
        let mut cells = vec![method.label().to_string(), label.to_string()];
        for d in &domains {
            // Mine the zero-shot seed from synthetic data + self-match.
            let world = ctx.dataset.world();
            let dom = world.domain(d);
            let mined = mine_zero_shot_seed(
                world.kb(),
                &ctx.vocab,
                world.kb().domain_entities(dom.id),
                &ctx.syn_of(d).rewritten,
                &SeedFilterConfig::default(),
                50,
            );
            let task = ctx.task_with_seed(d, &mined);
            let test = &ctx.dataset.split(d).test;
            let metrics: Vec<_> = BENCH_SEEDS_LIGHT
                .iter()
                .map(|&s| {
                    let cfg = mb_bench::bench_model_config(s);
                    train(&task, method, source, &cfg).evaluate(&task, test)
                })
                .collect();
            let r = aggregate_rows(method, source, &metrics);
            cells.push(r.unnormalized.fmt());
        }
        t.row(&cells);
        eprintln!("  done: {label}");
    }
    t.note("paper shape: gains over the General baseline concentrate in the large-gap domains (Lego, YuGiOh); Forgotten Realms / Star Trek move little");
    mb_bench::harness::emit_table(&t, "table7_zeroshot");
}
