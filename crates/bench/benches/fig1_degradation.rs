//! Figure 1 — performance of a model trained with limited in-domain
//! data degrades dramatically as the training set shrinks.
//!
//! We train BLINK on {10, 25, 50, 100, 200, 400, 800} in-domain labeled
//! samples of two target domains and report U.Acc on the held-out test
//! split. The paper's point — the steep left side of the curve — is the
//! few-shot problem this whole system addresses.

use mb_core::pipeline::{train, DataSource, Method};
use mb_datagen::mentions::generate_mentions;
use mb_eval::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let cfg = mb_bench::bench_model_config(42);
    let sizes = [10usize, 25, 50, 100, 200, 400, 800];
    let domains = ["Lego", "Star Trek"];
    let mut headers = vec!["#in-domain samples".to_string()];
    headers.extend(domains.iter().map(|d| format!("{d} U.Acc")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 1 — U.Acc vs in-domain training-set size (BLINK, Seed only)",
        &headers_ref,
    );

    // One large in-domain pool per domain; prefixes give nested
    // training sets (so the curve is monotone in expectation).
    for &n in &sizes {
        let mut cells = vec![n.to_string()];
        for d in domains {
            let world = ctx.dataset.world();
            let dom = world.domain(d).clone();
            let mut rng = mb_common::Rng::seed_from_u64(0xF16 ^ dom.id.0 as u64);
            let pool = generate_mentions(world, &dom, 800, &mut rng).mentions;
            let task = ctx.task_with_seed(d, &pool[..n]);
            let test = &ctx.dataset.split(d).test;
            let m = train(&task, Method::Blink, DataSource::Seed, &cfg).evaluate(&task, test);
            cells.push(format!("{:.2}", m.unnormalized_acc));
        }
        t.row(&cells);
        eprintln!("  done: n={n}");
    }
    t.note("paper shape: steep degradation below ~100 samples — the few-shot regime");
    mb_bench::harness::emit_table(&t, "fig1_degradation");
}
