//! Table IX — zero-shot domain transfer on Lego and YuGiOh with
//! different training sources: the general-domain data and the
//! synthetic data are complementary, and combining everything wins.

use mb_bench::{aggregate_rows, BENCH_SEEDS_LIGHT};
use mb_core::pipeline::{train, DataSource, Method};
use mb_core::seed::{mine_zero_shot_seed, SeedFilterConfig};
use mb_eval::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domains = ["Lego", "YuGiOh"];
    let mut t = Table::new(
        "Table IX — U.Acc on Lego and YuGiOh with different training sources (zero-shot, mined seed)",
        &["Method", "Data", "Lego", "YuGiOh", "Avg"],
    );
    let rows = [
        (Method::Blink, DataSource::General),
        (Method::Blink, DataSource::GeneralSeed),
        (Method::MetaBlink, DataSource::SynSeed),
        (Method::MetaBlink, DataSource::GeneralSeed),
        (Method::MetaBlink, DataSource::GeneralSynSeed),
        (Method::MetaBlink, DataSource::GeneralSynStarSeed),
    ];
    for (method, source) in rows {
        let mut cells = vec![method.label().to_string(), source.label().to_string()];
        let mut means = Vec::new();
        for d in domains {
            let world = ctx.dataset.world();
            let dom = world.domain(d);
            let mined = mine_zero_shot_seed(
                world.kb(),
                &ctx.vocab,
                world.kb().domain_entities(dom.id),
                &ctx.syn_of(d).rewritten,
                &SeedFilterConfig::default(),
                50,
            );
            let task = ctx.task_with_seed(d, &mined);
            let test = &ctx.dataset.split(d).test;
            let metrics: Vec<_> = BENCH_SEEDS_LIGHT
                .iter()
                .map(|&s| {
                    let cfg = mb_bench::bench_model_config(s);
                    train(&task, method, source, &cfg).evaluate(&task, test)
                })
                .collect();
            let r = aggregate_rows(method, source, &metrics);
            means.push(r.unnormalized.mean);
            cells.push(r.unnormalized.fmt());
        }
        cells.push(format!("{:.2}", mb_common::util::mean(&means)));
        t.row(&cells);
        eprintln!("  done: {} {}", method.label(), source.label());
    }
    t.note("paper shape: jointly using general + synthetic + seed is best on average; general and synthetic each help alone");
    mb_bench::harness::emit_table(&t, "table9_transfer_sources");
}
