//! Figure 4 — effectiveness of meta-learning: inject bad training
//! pairs (mentions relinked to random entities) into the synthetic data
//! and measure the selection ratio (fraction of sampled appearances
//! with above-threshold weight) of normal vs bad data during
//! meta-training of the bi-encoder on YuGiOh.
//!
//! Paper shape: normal data selected ≈ 50% of the time, bad data ≈ 20%.

use mb_common::Rng;
use mb_core::reweight::{train_biencoder_meta, MetaConfig};
use mb_datagen::noise::inject_bad_pairs;
use mb_encoders::biencoder::BiEncoder;
use mb_encoders::input::TrainPair;
use mb_encoders::train::{train_biencoder, TrainConfig};
use mb_eval::{ExperimentContext, Table};
use mb_tensor::optim::Adam;

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domain = "YuGiOh";
    let world = ctx.dataset.world();
    let dom = world.domain(domain);
    let syn = ctx.syn_of(domain);
    let seed_mentions = &ctx.dataset.split(domain).seed;

    // Tag + corrupt: add 50% bad pairs on top of the syn data.
    let mentions: Vec<_> = syn.rewritten.iter().map(|p| p.mention.clone()).collect();
    let pool = world.kb().domain_entities(dom.id).to_vec();
    let mut rng = Rng::seed_from_u64(0xF4);
    let tagged = inject_bad_pairs(&mentions, &pool, mentions.len() / 2, &mut rng);

    let icfg = mb_bench::bench_model_config(42);
    let featurize = |m: &mb_datagen::LinkedMention| {
        TrainPair::from_mention(&ctx.vocab, &icfg.linker.input, world.kb(), m)
    };
    let pairs: Vec<TrainPair> = tagged.iter().map(|t| featurize(&t.mention)).collect();
    let seed_pairs: Vec<TrainPair> = seed_mentions.iter().map(featurize).collect();

    // Warm start on the noisy mixture (as the pipeline warm-starts on
    // its training data), keeping the seed unseen so its gradient stays
    // informative; then meta-train and record selection statistics.
    let env_u = |k: &str, d: usize| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
    let env_f = |k: &str, d: f64| std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d);
    let mut model = BiEncoder::new(&ctx.vocab, icfg.bi, &mut Rng::seed_from_u64(1));
    match env_u("WARM_MODE", 0) {
        0 => {}
        1 => {
            train_biencoder(
                &mut model,
                &pairs,
                &TrainConfig { epochs: 6, batch_size: 32, lr: 5e-3, seed: 2 },
            );
        }
        _ => {
            train_biencoder(
                &mut model,
                &pairs,
                &TrainConfig {
                    epochs: env_u("WARM_MIX_EPOCHS", 6),
                    batch_size: 32,
                    lr: 5e-3,
                    seed: 2,
                },
            );
            train_biencoder(
                &mut model,
                &seed_pairs,
                &TrainConfig {
                    epochs: env_u("WARM_SEED_EPOCHS", 10),
                    batch_size: 16,
                    lr: 5e-3,
                    seed: 3,
                },
            );
        }
    }
    let meta_cfg = MetaConfig {
        steps: env_u("META_STEPS", 800),
        syn_batch: env_u("SYN_BATCH", 16),
        seed_batch: env_u("SEED_BATCH", 50),
        lr: env_f("META_LR", 2e-3),
        seed: 3,
        select_threshold_factor: env_f("THRESH", 1.0),
        seed_mix: env_f("SEED_MIX", 0.1),
        normalize_example_grads: env_u("NORMALIZE", 1) == 1,
        shared_params_only: env_u("SHARED_ONLY", 1) == 1,
        threads: mb_par::Threads::new(env_u("THREADS", 1)),
    };
    let mut opt = Adam::new(meta_cfg.lr);
    // Burn-in phase: let the anchored meta-training learn the domain
    // structure first; selection is then measured on the second phase,
    // where the weights reflect data quality rather than random init.
    let burn = env_u("BURN_STEPS", 0);
    if burn > 0 {
        let burn_cfg = MetaConfig { steps: burn, ..meta_cfg };
        let _ = train_biencoder_meta(&mut model, &pairs, &seed_pairs, &mut opt, &burn_cfg);
    }
    let stats = train_biencoder_meta(&mut model, &pairs, &seed_pairs, &mut opt, &meta_cfg);

    let normal_idx: Vec<usize> = (0..tagged.len()).filter(|&i| !tagged[i].is_bad).collect();
    let bad_idx: Vec<usize> = (0..tagged.len()).filter(|&i| tagged[i].is_bad).collect();
    let normal = stats.mean_selection_ratio(normal_idx.iter().copied());
    let bad = stats.mean_selection_ratio(bad_idx.iter().copied());

    let mut t = Table::new(
        "Figure 4 — meta-learning selection ratio of normal vs injected bad data (bi-encoder, YuGiOh)",
        &["Data source", "#pairs", "Mean selection ratio"],
    );
    t.row(&["normal (syn)".into(), normal_idx.len().to_string(), format!("{:.3}", normal)]);
    t.row(&["bad (random entity)".into(), bad_idx.len().to_string(), format!("{:.3}", bad)]);
    t.note(&format!(
        "paper shape: normal > bad (paper: ~0.5 vs ~0.2). Observed gap {:+.3} (ratio {:.2}x); \
         the direction reproduces, the magnitude is attenuated on this substrate — see EXPERIMENTS.md. \
         zero-weight (delta-guard) steps: {}",
        normal - bad,
        normal / bad.max(1e-9),
        stats.zero_weight_steps
    ));
    mb_bench::harness::emit_table(&t, "fig4_meta_selection");
}
