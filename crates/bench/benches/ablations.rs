//! Ablations of the design choices called out in DESIGN.md §6:
//!
//! * **Loss form** — Eq. 6 as printed (gold excluded from the
//!   denominator) vs standard in-batch softmax cross-entropy.
//! * **Warm start** — MetaBLINK's BLINK warm start vs meta-training
//!   from scratch.
//! * **Seed anchoring (λ)** — the seed-gradient mix in each meta step
//!   vs verbatim Algorithm 1 (λ = 0).
//! * **Seed size** — U.Acc as the seed grows over the paper's
//!   {10, 20, ..., 100} grid.

use mb_core::pipeline::{train, DataSource, Method};
use mb_eval::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domain = "Lego";
    let task = ctx.task(domain);
    let test = &ctx.dataset.split(domain).test;

    // ---- Loss form -------------------------------------------------
    let mut t1 = Table::new(
        "Ablation — Eq. 6 (gold excluded) vs standard in-batch CE (BLINK Syn+Seed, Lego)",
        &["Loss", "R@64", "N.Acc", "U.Acc"],
    );
    for (label, exclude) in [("Eq. 6 (exclude gold)", true), ("standard in-batch CE", false)] {
        let mut cfg = mb_bench::bench_model_config(42);
        cfg.bi.exclude_gold_in_loss = exclude;
        let m = train(&task, Method::Blink, DataSource::SynSeed, &cfg).evaluate(&task, test);
        t1.row(&[
            label.to_string(),
            format!("{:.2}", m.recall_at_k),
            format!("{:.2}", m.normalized_acc),
            format!("{:.2}", m.unnormalized_acc),
        ]);
    }
    t1.note("the two forms differ by a constant shift of the softmax support; performance is expected to be close");
    mb_bench::harness::emit_table(&t1, "ablation_loss_form");

    // ---- Warm start and seed anchoring ------------------------------
    let mut t2 = Table::new(
        "Ablation — MetaBLINK warm start and seed anchoring (Syn+Seed, Lego)",
        &["Variant", "R@64", "N.Acc", "U.Acc"],
    );
    let variants: [(&str, bool, f64); 4] = [
        ("warm start + λ=0.3 (default)", true, 0.3),
        ("warm start + λ=0 (verbatim Alg. 1 refinement)", true, 0.0),
        ("from scratch + λ=0.3", false, 0.3),
        ("from scratch + λ=0 (verbatim Alg. 1)", false, 0.0),
    ];
    for (label, warm, lambda) in variants {
        let mut cfg = mb_bench::bench_model_config(42);
        cfg.warm_start = warm;
        cfg.bi_meta.seed_mix = lambda;
        cfg.cross_meta.seed_mix = lambda;
        let m = train(&task, Method::MetaBlink, DataSource::SynSeed, &cfg).evaluate(&task, test);
        t2.row(&[
            label.to_string(),
            format!("{:.2}", m.recall_at_k),
            format!("{:.2}", m.normalized_acc),
            format!("{:.2}", m.unnormalized_acc),
        ]);
        eprintln!("  done: {label}");
    }
    mb_bench::harness::emit_table(&t2, "ablation_meta_variants");

    // ---- Seed size sweep --------------------------------------------
    let mut t3 = Table::new(
        "Ablation — U.Acc vs seed size (MetaBLINK Syn+Seed, Lego)",
        &["Seed size", "U.Acc"],
    );
    let split = ctx.dataset.split(domain);
    let full_seed = &split.seed;
    for n in [10usize, 20, 30, 40, 50] {
        let seed_slice = &full_seed[..n.min(full_seed.len())];
        let task_n = ctx.task_with_seed(domain, seed_slice);
        let cfg = mb_bench::bench_model_config(42);
        let m =
            train(&task_n, Method::MetaBlink, DataSource::SynSeed, &cfg).evaluate(&task_n, test);
        t3.row(&[n.to_string(), format!("{:.2}", m.unnormalized_acc)]);
        eprintln!("  done: seed={n}");
    }
    t3.note("the paper selects the seed size among {10..100}; 50 is its default");
    mb_bench::harness::emit_table(&t3, "ablation_seed_size");
}
