//! Table V — few-shot entity linking on Forgotten Realms and Lego:
//! R@64, N.Acc, U.Acc for Name Matching, BLINK (Seed / Syn / Syn+Seed),
//! DL4EL (Syn+Seed) and MetaBLINK (Syn+Seed / Syn*+Seed), aggregated
//! over model seeds.

mod fewshot_common;

fn main() {
    fewshot_common::run_fewshot_table(
        "Table V — U.Acc on Forgotten Realms and Lego (few-shot)",
        "table5_fewshot_fr_lego",
        &["Forgotten Realms", "Lego"],
    );
}
