//! Table XI — ROUGE-1 F1 between golden mentions and each synthetic
//! data source (Exact Match / Syn / Syn*), per test domain.
//!
//! Each synthetic mention is paired with the gold mentions of the same
//! entity; the expected shape is syn* ≥ syn > exact match, showing the
//! rewriter moves generated mentions towards the gold distribution.

use mb_datagen::LinkedMention;
use mb_eval::{ExperimentContext, Table};
use mb_nlg::SynPair;
use mb_text::rouge::paired_rouge1_f1;

fn entity_pairs<'a>(syn: &'a [SynPair], gold: &'a [LinkedMention]) -> Vec<(&'a str, &'a str)> {
    let mut out = Vec::new();
    for p in syn {
        for g in gold.iter().filter(|g| g.entity == p.mention.entity) {
            out.push((p.mention.surface.as_str(), g.surface.as_str()));
        }
    }
    out
}

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let mut t = Table::new(
        "Table XI — ROUGE-1 F1 of synthetic mentions vs golden mentions (×100)",
        &["Domain", "Exact Match", "Syn", "Syn*"],
    );
    for name in ctx.test_domains() {
        let gold = &ctx.dataset.mentions(&name).mentions;
        let syn = ctx.syn_of(&name);
        let syn_star = ctx.syn_star_of(&name);
        let exact = 100.0 * paired_rouge1_f1(&entity_pairs(&syn.exact, gold));
        let s = 100.0 * paired_rouge1_f1(&entity_pairs(&syn.rewritten, gold));
        let ss = 100.0 * paired_rouge1_f1(&entity_pairs(&syn_star.rewritten, gold));
        t.row(&[name.clone(), format!("{exact:.2}"), format!("{s:.2}"), format!("{ss:.2}")]);
    }
    t.note("paper shape: syn* >= syn > exact match on every domain");
    mb_bench::harness::emit_table(&t, "table11_rouge");
}
