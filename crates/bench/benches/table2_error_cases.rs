//! Table II — qualitative error cases: the model trained on "Exact
//! Match" data takes the surface shortcut and links to an entity whose
//! *title* resembles the mention, while the model trained on rewritten
//! (syn) data reads the context and recovers the gold entity.

use mb_core::pipeline::{train, DataSource, Method, TrainedLinker};
use mb_core::{LinkerConfig, TwoStageLinker};
use mb_datagen::LinkedMention;
use mb_eval::{ExperimentContext, Table};
use mb_kb::EntityId;

fn predict(
    ctx: &ExperimentContext,
    domain: &str,
    model: &TrainedLinker,
    m: &LinkedMention,
) -> Option<EntityId> {
    let world = ctx.dataset.world();
    let dom = world.domain(domain);
    let linker = TwoStageLinker::new(
        &model.bi,
        &model.cross,
        &ctx.vocab,
        world.kb(),
        world.kb().domain_entities(dom.id),
        LinkerConfig { k: 64, ..model.linker_cfg },
    );
    linker.predict(m)
}

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domain = "YuGiOh";
    let cfg = mb_bench::bench_model_config(42);
    let task = ctx.task(domain);
    let exact_model = train(&task, Method::Blink, DataSource::ExactMatch, &cfg);
    let syn_model = train(&task, Method::Blink, DataSource::Syn, &cfg);

    let world = ctx.dataset.world();
    let mut t = Table::new(
        "Table II — errors of the Exact-Match-trained model, fixed by Syn training (YuGiOh)",
        &["Mention (in context)", "Gold entity", "Exact-Match model", "Syn model"],
    );
    let test = &ctx.dataset.split(domain).test;
    for m in test {
        if t.len() >= 6 {
            break;
        }
        let pe = predict(&ctx, domain, &exact_model, m);
        let ps = predict(&ctx, domain, &syn_model, m);
        // The interesting cases: exact-match model wrong, syn model right.
        let Some(pe_id) = pe else { continue };
        if ps == Some(m.entity) && pe_id != m.entity {
            let gold = &world.kb().entity(m.entity).title;
            let wrong = &world.kb().entity(pe_id).title;
            let mut ctx_text = m.text();
            ctx_text.truncate(70);
            t.row(&[
                format!("…{}… [{}]", ctx_text, m.surface),
                gold.clone(),
                format!("{wrong} (wrong)"),
                gold.clone(),
            ]);
        }
    }
    t.note("each row: the exact-match-trained model picks a surface-similar wrong entity; the syn-trained model uses the context keywords");
    mb_bench::harness::emit_table(&t, "table2_error_cases");
}
