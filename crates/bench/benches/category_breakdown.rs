//! Per-category accuracy breakdown (the paper's future-work analysis,
//! Section VIII): U.Acc stratified by the mention–title overlap
//! category for a surface-shortcut model (BLINK on Exact Match data)
//! versus MetaBLINK. The shortcut model's accuracy collapses on Low
//! Overlap; MetaBLINK's profile is flatter.

use mb_core::pipeline::{train, DataSource, Method};
use mb_core::{LinkerConfig, TwoStageLinker};
use mb_eval::{CategoryBreakdown, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domain = "Lego";
    let cfg = mb_bench::bench_model_config(42);
    let task = ctx.task(domain);
    let test = &ctx.dataset.split(domain).test;
    let world = ctx.dataset.world();
    let dict = world.kb().domain_entities(task.domain.id);

    for (label, file, method, source) in [
        (
            "Per-category U.Acc — BLINK trained on Exact Match only (Lego)",
            "breakdown_exact_match",
            Method::Blink,
            DataSource::ExactMatch,
        ),
        (
            "Per-category U.Acc — MetaBLINK Syn+Seed (Lego)",
            "breakdown_metablink",
            Method::MetaBlink,
            DataSource::SynSeed,
        ),
    ] {
        let model = train(&task, method, source, &cfg);
        let linker = TwoStageLinker::new(
            &model.bi,
            &model.cross,
            &ctx.vocab,
            world.kb(),
            dict,
            LinkerConfig { k: 64, ..model.linker_cfg },
        );
        let b = CategoryBreakdown::evaluate(&linker, test);
        let mut t = b.to_table(label);
        t.note(&format!("shortcut spread (max−min category U.Acc): {:.2}", b.shortcut_spread()));
        mb_bench::harness::emit_table(&t, file);
        eprintln!("  done: {label}");
    }
}
