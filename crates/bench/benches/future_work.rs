//! Future-work extensions at benchmark scale (paper Section VIII):
//! NIL prediction with a calibrated threshold, and document-level
//! joint linking with the coherence pass.

use mb_common::Rng;
use mb_core::coherence::{compare_on_documents, CoherenceConfig};
use mb_core::nil::NilAwareLinker;
use mb_core::pipeline::{train, DataSource, Method};
use mb_core::{LinkerConfig, TwoStageLinker};
use mb_datagen::mentions::{generate_mentions, generate_one};
use mb_datagen::LinkedMention;
use mb_eval::{ExperimentContext, Table};

fn main() {
    let ctx = ExperimentContext::build(mb_bench::bench_context_config(42));
    let domain = "Lego";
    let cfg = mb_bench::bench_model_config(42);
    let task = ctx.task(domain);
    let model = train(&task, Method::MetaBlink, DataSource::SynSeed, &cfg);
    let world = ctx.dataset.world();
    let dom = world.domain(domain);
    let linker = TwoStageLinker::new(
        &model.bi,
        &model.cross,
        &ctx.vocab,
        world.kb(),
        world.kb().domain_entities(dom.id),
        LinkerConfig { k: 64, ..model.linker_cfg },
    );
    let split = ctx.dataset.split(domain);

    // ---------------- NIL prediction ----------------
    let foreign = world.domain("YuGiOh").clone();
    let mut rng = Rng::seed_from_u64(0xF0);
    let nil_pool = generate_mentions(world, &foreign, 300, &mut rng).mentions;
    let (dev_nil, test_nil) = nil_pool.split_at(150);
    let calibrated = NilAwareLinker::calibrate(&linker, &split.dev, dev_nil, 60);
    let never = NilAwareLinker::with_threshold(&linker, f64::NEG_INFINITY);

    let mut t = Table::new(
        "Future work — NIL prediction on a mixed test set (Lego linkable + YuGiOh out-of-KB)",
        &["Policy", "Precision", "Recall", "F1", "NIL detection"],
    );
    for (label, nil_linker) in
        [("never-NIL (paper's assumption)", &never), ("calibrated threshold", &calibrated)]
    {
        let m = nil_linker.evaluate(&split.test, test_nil);
        t.row(&[
            label.to_string(),
            format!("{:.3}", m.precision()),
            format!("{:.3}", m.recall()),
            format!("{:.3}", m.f1()),
            format!("{:.3}", m.nil_accuracy()),
        ]);
    }
    t.note(&format!("calibrated score threshold: {:.3}", calibrated.threshold()));
    mb_bench::harness::emit_table(&t, "future_work_nil");

    // ---------------- Document coherence ----------------
    let dict = world.kb().domain_entities(dom.id);
    let mut doc_rng = Rng::seed_from_u64(0xD0C);
    let documents: Vec<Vec<LinkedMention>> = (0..60)
        .map(|k| {
            let anchor = dict[(k * 7) % dict.len()];
            let mut doc = vec![generate_one(world, dom, anchor, &mut doc_rng)];
            for &rel in &world.meta(anchor).related {
                doc.push(generate_one(world, dom, rel, &mut doc_rng));
            }
            doc
        })
        .collect();
    let (indep, coh, total) =
        compare_on_documents(&linker, &documents, &CoherenceConfig::default());
    let mut c = Table::new(
        "Future work — document-level joint linking with coherence (Lego)",
        &["Linking", "Correct", "Total", "Accuracy %"],
    );
    c.row(&[
        "independent (per mention)".to_string(),
        indep.to_string(),
        total.to_string(),
        format!("{:.2}", 100.0 * indep as f64 / total as f64),
    ]);
    c.row(&[
        "joint (coherence re-scoring)".to_string(),
        coh.to_string(),
        total.to_string(),
        format!("{:.2}", 100.0 * coh as f64 / total as f64),
    ]);
    c.note("documents mention an anchor entity plus its KB-related entities; the coherence pass re-scores candidates by relatedness to the other mentions' picks");
    mb_bench::harness::emit_table(&c, "future_work_coherence");
}
