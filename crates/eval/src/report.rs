//! Fixed-width report tables.
//!
//! Every table/figure harness renders its result through [`Table`] so
//! the output looks like the paper's tables, prints to stdout, and is
//! also persisted under `target/experiments/` for EXPERIMENTS.md.

use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "table {:?}: row with {} cells vs {} headers",
            self.title,
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Add a free-text footnote.
    pub fn note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows added so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes added so far.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// True if no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::from("|");
            for i in 0..cols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = widths[i] - cell.chars().count();
                s.push(' ');
                s.push_str(cell);
                s.push_str(&" ".repeat(pad + 1));
                s.push('|');
            }
            out.push_str(&s);
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let sep: String = {
            let mut s = String::from("|");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('|');
            }
            s
        };
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Print to stdout and persist to `target/experiments/<name>.txt`.
    ///
    /// IO failures are reported to stderr but do not abort the
    /// experiment (the stdout copy still exists).
    pub fn emit(&self, name: &str) {
        let rendered = self.render();
        println!("{rendered}");
        let dir = output_dir();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return;
        }
        let path = dir.join(format!("{name}.txt"));
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

/// Directory where experiment outputs are persisted.
///
/// Bench binaries run with the package directory as CWD, so for the
/// harnesses in `mb-bench` this resolves to
/// `crates/bench/target/experiments/`.
pub fn output_dir() -> PathBuf {
    PathBuf::from("target/experiments")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["Method", "Acc"]);
        t.row_strs(&["BLINK", "20.82"]);
        t.row_strs(&["MetaBLINK", "39.14"]);
        t.note("higher is better");
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("| Method    | Acc   |"));
        assert!(r.contains("| MetaBLINK | 39.14 |"));
        assert!(r.contains("note: higher is better"));
        // All body lines have the same width.
        let widths: std::collections::HashSet<usize> =
            r.lines().filter(|l| l.starts_with('|')).map(|l| l.chars().count()).collect();
        assert_eq!(widths.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row with")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("X", &["A", "B"]);
        t.row_strs(&["only one"]);
    }

    #[test]
    fn emit_writes_file() {
        let mut t = Table::new("EmitTest", &["A"]);
        t.row_strs(&["1"]);
        t.emit("unit_test_emit");
        let path = output_dir().join("unit_test_emit.txt");
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("EmitTest"));
        std::fs::remove_file(path).ok();
    }
}
