//! Per-category accuracy breakdown.
//!
//! The paper's future-work section says: *"We will subdivide the entity
//! mentions and make statistics on the accuracy of different categories
//! to conduct a more deeply exploration."* This module implements that
//! analysis: two-stage metrics stratified by the mention–title overlap
//! category, which exposes *where* a linker's accuracy comes from (a
//! surface matcher aces High Overlap and collapses on Low Overlap; a
//! semantic linker is flatter across categories).

use mb_core::linker::{LinkMetrics, TwoStageLinker};
use mb_datagen::LinkedMention;
use mb_text::OverlapCategory;

/// Metrics per overlap category, in [`OverlapCategory::all`] order.
#[derive(Debug, Clone)]
pub struct CategoryBreakdown {
    /// One entry per category (some may cover zero mentions).
    pub per_category: [(OverlapCategory, LinkMetrics); 4],
    /// Metrics over all mentions.
    pub overall: LinkMetrics,
}

impl CategoryBreakdown {
    /// Evaluate a linker with per-category stratification.
    pub fn evaluate(linker: &TwoStageLinker<'_>, mentions: &[LinkedMention]) -> Self {
        let overall = linker.evaluate(mentions);
        let per_category = OverlapCategory::all().map(|cat| {
            let subset: Vec<LinkedMention> =
                mentions.iter().filter(|m| m.category == cat).cloned().collect();
            (cat, linker.evaluate(&subset))
        });
        CategoryBreakdown { per_category, overall }
    }

    /// The metrics for one category.
    pub fn of(&self, cat: OverlapCategory) -> &LinkMetrics {
        &self.per_category.iter().find(|(c, _)| *c == cat).expect("all categories present").1
    }

    /// Spread between the easiest and hardest category's U.Acc —
    /// a surface-shortcut indicator (large spread = the model leans on
    /// surface overlap). Categories with no mentions are skipped.
    pub fn shortcut_spread(&self) -> f64 {
        let accs: Vec<f64> = self
            .per_category
            .iter()
            .filter(|(_, m)| m.count > 0)
            .map(|(_, m)| m.unnormalized_acc)
            .collect();
        if accs.is_empty() {
            return 0.0;
        }
        let max = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
        max - min
    }

    /// Render as a report table.
    pub fn to_table(&self, title: &str) -> crate::Table {
        let mut t = crate::Table::new(title, &["Category", "#mentions", "R@k", "N.Acc", "U.Acc"]);
        for (cat, m) in &self.per_category {
            t.row(&[
                cat.label().to_string(),
                m.count.to_string(),
                format!("{:.2}", m.recall_at_k),
                format!("{:.2}", m.normalized_acc),
                format!("{:.2}", m.unnormalized_acc),
            ]);
        }
        t.row(&[
            "(all)".to_string(),
            self.overall.count.to_string(),
            format!("{:.2}", self.overall.recall_at_k),
            format!("{:.2}", self.overall.normalized_acc),
            format!("{:.2}", self.overall.unnormalized_acc),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::Rng;
    use mb_core::pipeline::{train, DataSource, MetaBlinkConfig, Method, TargetTask};
    use mb_core::LinkerConfig;
    use mb_datagen::mentions::generate_mentions;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::input::build_vocab;

    #[test]
    fn breakdown_partitions_and_exposes_the_shortcut() {
        let world = World::generate(WorldConfig::tiny(83));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let mut rng = Rng::seed_from_u64(6);
        let ms = generate_mentions(&world, &domain, 220, &mut rng);
        let (train_ms, test_ms) = ms.mentions.split_at(150);
        let empty =
            mb_nlg::SynDataset { domain: domain.name.clone(), exact: vec![], rewritten: vec![] };
        let task = TargetTask {
            world: &world,
            vocab: &vocab,
            domain: world.domain("TargetX"),
            syn: &empty,
            syn_star: &empty,
            seed: train_ms,
            general: &[],
        };
        let model = train(&task, Method::Blink, DataSource::Seed, &MetaBlinkConfig::fast_test());
        let linker = TwoStageLinker::new(
            &model.bi,
            &model.cross,
            &vocab,
            world.kb(),
            world.kb().domain_entities(domain.id),
            LinkerConfig { k: 16, ..model.linker_cfg },
        );
        let b = CategoryBreakdown::evaluate(&linker, test_ms);

        // Partition: counts add up.
        let sum: usize = b.per_category.iter().map(|(_, m)| m.count).sum();
        assert_eq!(sum, b.overall.count);
        assert_eq!(b.overall.count, test_ms.len());

        // High Overlap should be at least as easy as Low Overlap for
        // any model with a surface channel.
        let high = b.of(OverlapCategory::HighOverlap);
        let low = b.of(OverlapCategory::LowOverlap);
        if high.count > 5 && low.count > 5 {
            assert!(
                high.unnormalized_acc + 15.0 >= low.unnormalized_acc,
                "high {:.1} vs low {:.1}",
                high.unnormalized_acc,
                low.unnormalized_acc
            );
        }
        assert!(b.shortcut_spread() >= 0.0);

        // Table renders with 5 rows + overall.
        let table = b.to_table("Breakdown");
        assert_eq!(table.len(), 5);
    }
}
