//! Shared experiment context.
//!
//! Building the benchmark is the expensive, common prefix of every
//! experiment: generate the world and mentions, build the vocabulary,
//! train the rewriter on the source domains (Eq. 1), adapt it per
//! target domain (syn*), and run the synthetic-supervision pipeline.
//! [`ExperimentContext::build`] does all of it once; each table harness
//! then asks for per-domain [`TargetTask`]s.

use mb_common::Rng;
use mb_core::pipeline::TargetTask;
use mb_datagen::corpus::unlabeled_documents;
use mb_datagen::world::DomainRole;
use mb_datagen::{Dataset, DatasetConfig, LinkedMention, WorldConfig};
use mb_encoders::input::build_vocab;
use mb_nlg::generate::{generate_syn, train_source_rewriter};
use mb_nlg::rewriter::RewriterConfig;
use mb_nlg::SynDataset;
use mb_text::Vocab;

/// Scale and seed knobs for an experiment context.
#[derive(Debug, Clone, Copy)]
pub struct ContextConfig {
    /// World seed (all randomness derives from it).
    pub seed: u64,
    /// Entity scale divisor for train/dev domains.
    pub entity_scale: usize,
    /// Entity scale divisor for test domains.
    pub test_entity_scale: usize,
    /// Mention scale divisor for test domains.
    pub mention_scale: usize,
    /// Text occurrences scanned by exact matching, as a multiple of the
    /// domain's entity count.
    pub syn_volume_factor: f64,
    /// Unlabeled target documents used for rewriter adaptation.
    pub adapt_docs: usize,
    /// Cap on the pooled "General" source-domain mentions.
    pub general_cap: usize,
}

impl ContextConfig {
    /// The benchmark scale used by the paper-table harnesses.
    pub fn bench_default(seed: u64) -> Self {
        ContextConfig {
            seed,
            entity_scale: 40,
            test_entity_scale: 10,
            mention_scale: 4,
            syn_volume_factor: 2.0,
            adapt_docs: 300,
            general_cap: 2_000,
        }
    }

    /// A small configuration for integration tests.
    pub fn small(seed: u64) -> Self {
        ContextConfig {
            seed,
            entity_scale: 320,
            test_entity_scale: 100,
            mention_scale: 8,
            syn_volume_factor: 2.0,
            adapt_docs: 80,
            general_cap: 400,
        }
    }
}

/// Everything the experiments share, built once.
pub struct ExperimentContext {
    /// The generated benchmark.
    pub dataset: Dataset,
    /// Shared vocabulary over all domains.
    pub vocab: Vocab,
    /// Per-test-domain synthetic data from the source rewriter (syn).
    pub syn: Vec<(String, SynDataset)>,
    /// Per-test-domain synthetic data from the adapted rewriter (syn*).
    pub syn_star: Vec<(String, SynDataset)>,
    /// Pooled (capped) source-domain gold mentions.
    pub general: Vec<LinkedMention>,
}

impl ExperimentContext {
    /// Build the full context. Deterministic in `cfg.seed`.
    pub fn build(cfg: ContextConfig) -> Self {
        let world_cfg = WorldConfig::zeshel_like(
            cfg.seed,
            cfg.entity_scale,
            cfg.test_entity_scale,
            cfg.mention_scale,
        );
        Self::build_with_world(cfg, world_cfg)
    }

    /// Build with an explicit world configuration (used by tests and
    /// custom-domain examples).
    pub fn build_with_world(cfg: ContextConfig, world_cfg: WorldConfig) -> Self {
        let dataset = Dataset::generate(DatasetConfig::new(world_cfg));
        let world = dataset.world();
        let mut rng = Rng::seed_from_u64(cfg.seed ^ 0xE9A1);

        // Vocabulary over all raw text (see mb-encoders::input docs).
        let mut extra_docs: Vec<String> = Vec::new();
        for d in world.domains() {
            let mut doc_rng = rng.split(0xD0C5 + d.id.0 as u64);
            extra_docs.extend(unlabeled_documents(world, d, 50, &mut doc_rng));
        }
        let vocab = build_vocab(world.kb(), extra_docs.iter().map(String::as_str), 1);

        // Rewriter on source domains.
        let source_mentions: Vec<(String, Vec<LinkedMention>)> = world
            .domains_with_role(DomainRole::Train)
            .iter()
            .map(|d| (d.name.clone(), dataset.mentions(&d.name).mentions.clone()))
            .collect();
        let rewriter =
            train_source_rewriter(world, &source_mentions, RewriterConfig::default(), &mut rng);

        // Synthetic data per test domain (syn and syn*).
        let mut syn = Vec::new();
        let mut syn_star = Vec::new();
        for d in world.domains_with_role(DomainRole::Test) {
            let volume = (world.kb().domain_entities(d.id).len() as f64 * cfg.syn_volume_factor)
                .round() as usize;
            let gen_rng = rng.split(0x0515 + d.id.0 as u64);
            let s = generate_syn(world, d, &rewriter, volume, &mut gen_rng.split(0));
            let mut adapt_rng = gen_rng.split(1);
            let docs = unlabeled_documents(world, d, cfg.adapt_docs, &mut adapt_rng);
            let adapted = rewriter.adapt(docs.iter().map(String::as_str));
            // Same occurrence stream as syn: only the rewriter differs.
            let ss = generate_syn(world, d, &adapted, volume, &mut gen_rng.split(0));
            syn.push((d.name.clone(), s));
            syn_star.push((d.name.clone(), ss));
        }

        // Pooled general data, shuffled and capped.
        let mut general: Vec<LinkedMention> =
            source_mentions.iter().flat_map(|(_, ms)| ms.iter().cloned()).collect();
        let mut pool_rng = rng.split(0x6E6E);
        pool_rng.shuffle(&mut general);
        general.truncate(cfg.general_cap);

        ExperimentContext { dataset, vocab, syn, syn_star, general }
    }

    /// The target task bundle for one test domain.
    ///
    /// # Panics
    /// Panics for non-test domains.
    pub fn task(&self, domain: &str) -> TargetTask<'_> {
        let world = self.dataset.world();
        TargetTask {
            world,
            vocab: &self.vocab,
            domain: world.domain(domain),
            syn: self.syn_of(domain),
            syn_star: self.syn_star_of(domain),
            seed: &self.dataset.split(domain).seed,
            general: &self.general,
        }
    }

    /// A task variant with a custom seed set (zero-shot mined seeds).
    pub fn task_with_seed<'a>(&'a self, domain: &str, seed: &'a [LinkedMention]) -> TargetTask<'a> {
        let world = self.dataset.world();
        TargetTask {
            world,
            vocab: &self.vocab,
            domain: world.domain(domain),
            syn: self.syn_of(domain),
            syn_star: self.syn_star_of(domain),
            seed,
            general: &self.general,
        }
    }

    /// The syn dataset of a test domain.
    pub fn syn_of(&self, domain: &str) -> &SynDataset {
        &self
            .syn
            .iter()
            .find(|(n, _)| n == domain)
            .unwrap_or_else(|| panic!("no syn data for {domain:?}"))
            .1
    }

    /// The syn* dataset of a test domain.
    pub fn syn_star_of(&self, domain: &str) -> &SynDataset {
        &self
            .syn_star
            .iter()
            .find(|(n, _)| n == domain)
            .unwrap_or_else(|| panic!("no syn* data for {domain:?}"))
            .1
    }

    /// Names of the test domains, in benchmark order.
    pub fn test_domains(&self) -> Vec<String> {
        self.dataset
            .world()
            .domains_with_role(DomainRole::Test)
            .iter()
            .map(|d| d.name.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_context_builds_all_parts() {
        let ctx = ExperimentContext::build(ContextConfig::small(3));
        assert_eq!(ctx.test_domains().len(), 4);
        for d in ctx.test_domains() {
            assert!(!ctx.syn_of(&d).rewritten.is_empty(), "no syn for {d}");
            assert!(!ctx.syn_star_of(&d).rewritten.is_empty(), "no syn* for {d}");
            let task = ctx.task(&d);
            assert_eq!(task.seed.len(), 50);
        }
        assert!(!ctx.general.is_empty());
        assert!(ctx.general.len() <= 400);
    }

    #[test]
    fn syn_and_syn_star_share_occurrences() {
        let ctx = ExperimentContext::build(ContextConfig::small(5));
        let d = &ctx.test_domains()[0];
        let a = ctx.syn_of(d);
        let b = ctx.syn_star_of(d);
        assert_eq!(a.exact.len(), b.exact.len());
        // Same contexts, potentially different rewritten surfaces.
        for (x, y) in a.rewritten.iter().zip(&b.rewritten) {
            assert_eq!(x.mention.left, y.mention.left);
            assert_eq!(x.mention.entity, y.mention.entity);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = ExperimentContext::build(ContextConfig::small(7));
        let b = ExperimentContext::build(ContextConfig::small(7));
        let d = &a.test_domains()[1];
        assert_eq!(a.syn_of(d).rewritten.len(), b.syn_of(d).rewritten.len());
        for (x, y) in a.syn_of(d).rewritten.iter().zip(&b.syn_of(d).rewritten) {
            assert_eq!(x.mention.surface, y.mention.surface);
        }
    }
}
