//! Aggregation over repeated runs (seeds).

use mb_common::util::{mean, std_dev};

/// Mean ± sample standard deviation of repeated measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aggregate {
    /// Mean value.
    pub mean: f64,
    /// Sample standard deviation (0 for n < 2).
    pub std: f64,
    /// Number of measurements.
    pub n: usize,
}

impl Aggregate {
    /// Aggregate a slice of measurements.
    pub fn of(values: &[f64]) -> Self {
        Aggregate { mean: mean(values), std: std_dev(values), n: values.len() }
    }

    /// Format as `12.34` or `12.34±0.56` when multiple seeds ran.
    pub fn fmt(&self) -> String {
        if self.n > 1 {
            format!("{:.2}±{:.2}", self.mean, self.std)
        } else {
            format!("{:.2}", self.mean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_value() {
        let a = Aggregate::of(&[42.5]);
        assert_eq!(a.mean, 42.5);
        assert_eq!(a.std, 0.0);
        assert_eq!(a.fmt(), "42.50");
    }

    #[test]
    fn multiple_values() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0]);
        assert!((a.mean - 2.0).abs() < 1e-12);
        assert!((a.std - 1.0).abs() < 1e-12);
        assert_eq!(a.fmt(), "2.00±1.00");
    }

    #[test]
    fn empty_is_zero() {
        let a = Aggregate::of(&[]);
        assert_eq!(a.mean, 0.0);
        assert_eq!(a.n, 0);
    }
}
