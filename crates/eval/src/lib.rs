//! # mb-eval
//!
//! Evaluation protocol and experiment infrastructure: the shared
//! [`ExperimentContext`] every table/figure harness builds on (world +
//! vocabulary + rewriters + synthetic datasets + general pool), plain
//! aggregation statistics over seeds, and fixed-width report tables
//! that are written both to stdout and `target/experiments/`.

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops are clearer in table layout code

pub mod breakdown;
pub mod context;
pub mod report;
pub mod stats;

pub use breakdown::CategoryBreakdown;
pub use context::{ContextConfig, ExperimentContext};
pub use report::{output_dir, Table};
pub use stats::Aggregate;
