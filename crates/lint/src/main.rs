//! `mb-lint` binary entry point; all logic lives in [`mb_lint::cli`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(mb_lint::cli::run(&args))
}
