//! Suppression comments.
//!
//! Syntax: `// mb-lint: allow(rule-a, rule-b) -- justification`
//!
//! A suppression on the same line as a finding silences it; a
//! suppression comment standing alone on its line also covers the
//! *next* line (so long justifications can sit above the code). The
//! justification after `--` is **mandatory and non-empty** — an
//! unjustified or malformed suppression is itself a finding
//! (`suppression`), and unknown rule ids are rejected so typos cannot
//! silently disable nothing.

use crate::findings::{is_known_rule, Finding};
use crate::lexer::{LineMap, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// A parsed `mb-lint: allow(…)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule ids inside `allow(…)`, in written order.
    pub rules: Vec<String>,
    /// The text after `--`, trimmed; `None` when the marker is absent.
    pub justification: Option<String>,
}

/// Parse the suppression syntax out of one comment's text, if the
/// `mb-lint:` marker is present. Returns `None` for ordinary comments
/// and `Some(Err(reason))` for a malformed suppression.
pub fn parse_allow(comment: &str) -> Option<Result<Allow, String>> {
    let rest = comment.split_once("mb-lint:")?.1;
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return Some(Err("expected `allow(<rule>, …)` after `mb-lint:`".to_string()));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Some(Err("expected `(` after `allow`".to_string()));
    };
    let Some((list, rest)) = rest.split_once(')') else {
        return Some(Err("unclosed `allow(` rule list".to_string()));
    };
    let rules: Vec<String> =
        list.split(',').map(|r| r.trim().to_string()).filter(|r| !r.is_empty()).collect();
    if rules.is_empty() {
        return Some(Err("empty `allow()` rule list".to_string()));
    }
    let justification = rest
        .trim_start()
        .strip_prefix("--")
        .map(|j| j.trim().trim_end_matches("*/").trim().to_string());
    Some(Ok(Allow { rules, justification }))
}

/// Suppressions for one file: which rules are allowed on which lines.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// line → rule ids silenced on that line.
    allowed: BTreeMap<usize, BTreeSet<String>>,
}

impl Suppressions {
    /// True if `finding` is silenced by a suppression.
    pub fn covers(&self, finding: &Finding) -> bool {
        self.allowed.get(&finding.line).is_some_and(|rules| rules.contains(finding.rule))
    }

    /// The per-line allow map as a plain sorted list, for file
    /// summaries (the taint pass uses it as its propagation-boundary
    /// and emission filter, and the lint cache persists it).
    pub fn allowed_lines(&self) -> Vec<(usize, Vec<String>)> {
        self.allowed.iter().map(|(&line, rules)| (line, rules.iter().cloned().collect())).collect()
    }
}

/// Scan a file's comment tokens for suppressions. Returns the
/// per-line allow map plus `suppression` findings for malformed,
/// unjustified, or unknown-rule comments.
pub fn collect(
    file: &str,
    src: &str,
    tokens: &[Token],
    map: &LineMap,
) -> (Suppressions, Vec<Finding>) {
    let mut sup = Suppressions::default();
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = tok.text(src);
        // Doc comments are documentation, not suppressions — they may
        // legitimately describe the suppression syntax itself.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(parsed) = parse_allow(text) else { continue };
        let (line, col) = map.line_col(src, tok.start);
        let excerpt = tok.text(src).trim().to_string();
        let mut fail = |message: String| {
            findings.push(Finding {
                rule: "suppression",
                file: file.to_string(),
                line,
                col,
                message,
                excerpt: excerpt.clone(),
            });
        };
        let allow = match parsed {
            Ok(a) => a,
            Err(reason) => {
                fail(format!("malformed suppression: {reason}"));
                continue;
            }
        };
        match &allow.justification {
            None => {
                fail(
                    "suppression lacks a justification: write `mb-lint: allow(rule) -- why`"
                        .to_string(),
                );
                continue;
            }
            Some(j) if j.is_empty() => {
                fail("suppression justification is empty".to_string());
                continue;
            }
            Some(_) => {}
        }
        let unknown: Vec<&String> = allow.rules.iter().filter(|r| !is_known_rule(r)).collect();
        if !unknown.is_empty() {
            fail(format!(
                "unknown rule id(s) in allow(): {}",
                unknown.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(", ")
            ));
            continue;
        }
        // The suppression covers its own line, and — when the comment
        // is the first non-whitespace token on its line — the next one.
        let mut lines = vec![line];
        let alone = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| map.line(t.start) == line || map.line(t.end.saturating_sub(1)) == line)
            .all(|t| t.kind == TokenKind::Whitespace);
        if alone {
            lines.push(map.line(tok.end.saturating_sub(1)) + 1);
        }
        for l in lines {
            sup.allowed.entry(l).or_default().extend(allow.rules.iter().cloned());
        }
    }
    (sup, findings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn run(src: &str) -> (Suppressions, Vec<Finding>) {
        let toks = lexer::lex(src);
        let map = LineMap::new(src);
        collect("f.rs", src, &toks, &map)
    }

    #[test]
    fn parses_rules_and_justification() {
        let a = parse_allow("// mb-lint: allow(panic-unwrap, det-hash) -- init-only path")
            .unwrap()
            .unwrap();
        assert_eq!(a.rules, vec!["panic-unwrap", "det-hash"]);
        assert_eq!(a.justification.as_deref(), Some("init-only path"));
    }

    #[test]
    fn ordinary_comments_are_ignored() {
        assert!(parse_allow("// nothing to see").is_none());
        let (_, f) = run("// a plain comment\nlet x = 1;\n");
        assert!(f.is_empty());
    }

    #[test]
    fn missing_justification_is_a_finding() {
        let (_, f) = run("let x = 1; // mb-lint: allow(panic-unwrap)\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "suppression");
        assert!(f[0].message.contains("justification"));
    }

    #[test]
    fn unknown_rule_is_a_finding() {
        let (_, f) = run("// mb-lint: allow(no-such-rule) -- because\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("no-such-rule"));
    }

    #[test]
    fn standalone_comment_covers_next_line() {
        let src = "// mb-lint: allow(det-hash) -- lookup only, never iterated\nlet m = 1;\n";
        let (sup, f) = run(src);
        assert!(f.is_empty());
        let probe = |line| Finding {
            rule: "det-hash",
            file: "f.rs".into(),
            line,
            col: 1,
            message: String::new(),
            excerpt: String::new(),
        };
        assert!(sup.covers(&probe(1)));
        assert!(sup.covers(&probe(2)));
        assert!(!sup.covers(&probe(3)));
    }

    #[test]
    fn trailing_comment_covers_only_its_line() {
        let src =
            "let a = 1;\nlet m = x; // mb-lint: allow(det-hash) -- not iterated\nlet b = 2;\n";
        let (sup, _) = run(src);
        let probe = |line| Finding {
            rule: "det-hash",
            file: "f.rs".into(),
            line,
            col: 1,
            message: String::new(),
            excerpt: String::new(),
        };
        assert!(sup.covers(&probe(2)));
        assert!(!sup.covers(&probe(3)));
    }
}
