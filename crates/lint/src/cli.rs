//! The `mb-lint` command line, shared by the standalone binary and the
//! `metablink lint` subcommand.

use crate::findings::{to_json, Finding};
use crate::{baseline, workspace};
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    update_baseline: bool,
}

const USAGE: &str = "\
mb-lint — static analysis for this workspace's panic-freedom, determinism,
and lock-discipline invariants (DESIGN.md §10).

USAGE:
  mb-lint [--root <dir>] [--baseline <file>] [--json] [--update-baseline]

  --root <dir>        workspace root (default: walk up to the [workspace] Cargo.toml)
  --baseline <file>   baseline file (default: <root>/lint-baseline.txt)
  --json              machine-readable report on stdout
  --update-baseline   rewrite the baseline from the current findings and exit 0

Exit status: 0 when every finding is baselined, 1 on any new finding,
2 on usage or I/O errors.";

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(it.next().ok_or("--root needs a value")?.into());
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a value")?.into());
            }
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    Ok(opts)
}

/// Run the linter; returns the process exit code.
pub fn run(args: &[String]) -> u8 {
    let opts = match parse(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|d| workspace::find_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("mb-lint: no [workspace] Cargo.toml found above the current directory");
            return 2;
        }
    };
    let findings = workspace::run(&root);
    let baseline_path = opts.baseline.unwrap_or_else(|| root.join(baseline::DEFAULT_FILE));

    if opts.update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&findings)) {
            eprintln!("mb-lint: cannot write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "mb-lint: baseline updated with {} finding(s) at {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }

    let baseline_keys = match baseline::load(&baseline_path) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("mb-lint: cannot read {}: {e}", baseline_path.display());
            return 2;
        }
    };
    let (new, _old, stale) = baseline::diff(&findings, &baseline_keys);

    if opts.json {
        let new_keys: std::collections::BTreeSet<String> = new.iter().map(|f| f.key()).collect();
        let flags: Vec<bool> = findings.iter().map(|f| new_keys.contains(&f.key())).collect();
        println!("{}", to_json(&findings, &flags, stale));
    } else {
        report_human(&findings, &new, stale);
    }
    u8::from(!new.is_empty())
}

fn report_human(findings: &[Finding], new: &[&Finding], stale: usize) {
    for f in findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("mb-lint: clean — no findings.");
    } else {
        println!(
            "mb-lint: {} finding(s), {} new, {} baselined.",
            findings.len(),
            new.len(),
            findings.len() - new.len()
        );
    }
    if stale > 0 {
        println!(
            "mb-lint: {stale} stale baseline entr{} no longer match — run --update-baseline",
            if stale == 1 { "y" } else { "ies" }
        );
    }
    if !new.is_empty() {
        println!("mb-lint: FAIL — new findings are denied (fix or justify with a suppression).");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&["--frobnicate".to_string()]).is_err());
    }

    #[test]
    fn flags_parse() {
        let o =
            parse(&["--root".to_string(), "/tmp/ws".to_string(), "--json".to_string()]).unwrap();
        assert!(o.json);
        assert_eq!(o.root.as_deref(), Some(std::path::Path::new("/tmp/ws")));
    }
}
