//! The `mb-lint` command line, shared by the standalone binary and the
//! `metablink lint` subcommand.

use crate::findings::{to_json, Finding};
use crate::workspace::{RunOptions, RunStats};
use crate::{baseline, explain, workspace};
use std::path::PathBuf;

/// Parsed command-line options.
#[derive(Debug, Default)]
struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    update_baseline: bool,
    explain: Option<String>,
    threads: usize,
    cache: Option<PathBuf>,
    no_cache: bool,
    timing: bool,
}

/// Default cache location, workspace-root-relative (under `target/` so
/// `cargo clean` clears it and it never lands in a commit).
const DEFAULT_CACHE: &str = "target/mb-lint/lint-cache.txt";

const USAGE: &str = "\
mb-lint — static analysis for this workspace's panic-freedom, determinism,
and lock-discipline invariants, token-level and interprocedural
(DESIGN.md §10, §15).

USAGE:
  mb-lint [--root <dir>] [--baseline <file>] [--json] [--update-baseline]
          [--threads <n>] [--cache <file> | --no-cache] [--timing]
  mb-lint --explain <rule>

  --root <dir>        workspace root (default: walk up to the [workspace] Cargo.toml)
  --baseline <file>   baseline file (default: <root>/lint-baseline.txt)
  --json              machine-readable report on stdout (byte-identical
                      cold or warm cache, and at any --threads value)
  --update-baseline   rewrite the baseline from the current findings and exit 0
  --explain <rule>    print a rule's contract, example, and suppression form
  --threads <n>       per-file analysis threads (default 1)
  --cache <file>      incremental cache file (default: <root>/target/mb-lint/lint-cache.txt)
  --no-cache          disable the incremental cache for this run
  --timing            print `files= cached= analysis_ms=` stats on stderr

Exit status: 0 when every finding is baselined, 1 on any new finding,
2 on usage errors, unreadable workspace files, or I/O errors.";

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root = Some(it.next().ok_or("--root needs a value")?.into());
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline needs a value")?.into());
            }
            "--json" => opts.json = true,
            "--update-baseline" => opts.update_baseline = true,
            "--explain" => {
                opts.explain = Some(it.next().ok_or("--explain needs a rule id")?.clone());
            }
            "--threads" => {
                let n = it.next().ok_or("--threads needs a value")?;
                opts.threads = n.parse().map_err(|_| format!("--threads: not a number: {n:?}"))?;
            }
            "--cache" => {
                opts.cache = Some(it.next().ok_or("--cache needs a value")?.into());
            }
            "--no-cache" => opts.no_cache = true,
            "--timing" => opts.timing = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other:?}\n{USAGE}")),
        }
    }
    if opts.no_cache && opts.cache.is_some() {
        return Err("--cache and --no-cache are mutually exclusive".to_string());
    }
    Ok(opts)
}

/// Run the linter; returns the process exit code.
pub fn run(args: &[String]) -> u8 {
    let opts = match parse(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    if let Some(rule) = &opts.explain {
        return match explain::explain(rule) {
            Ok(text) => {
                println!("{text}");
                0
            }
            Err(msg) => {
                eprintln!("mb-lint: {msg}");
                2
            }
        };
    }
    let root = match opts
        .root
        .or_else(|| std::env::current_dir().ok().and_then(|d| workspace::find_root(&d)))
    {
        Some(r) => r,
        None => {
            eprintln!("mb-lint: no [workspace] Cargo.toml found above the current directory");
            return 2;
        }
    };
    let cache_path = if opts.no_cache {
        None
    } else {
        Some(opts.cache.unwrap_or_else(|| root.join(DEFAULT_CACHE)))
    };
    let run_opts = RunOptions { threads: opts.threads, cache_path };
    let (findings, stats) = match workspace::run_with(&root, &run_opts) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("mb-lint: {e}");
            return 2;
        }
    };
    if opts.timing {
        report_timing(&stats);
    }
    let baseline_path = opts.baseline.unwrap_or_else(|| root.join(baseline::DEFAULT_FILE));

    if opts.update_baseline {
        if let Err(e) = std::fs::write(&baseline_path, baseline::render(&findings)) {
            eprintln!("mb-lint: cannot write {}: {e}", baseline_path.display());
            return 2;
        }
        println!(
            "mb-lint: baseline updated with {} finding(s) at {}",
            findings.len(),
            baseline_path.display()
        );
        return 0;
    }

    let baseline_keys = match baseline::load(&baseline_path) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("mb-lint: cannot read {}: {e}", baseline_path.display());
            return 2;
        }
    };
    let (new, _old, stale) = baseline::diff(&findings, &baseline_keys);

    if opts.json {
        let new_keys: std::collections::BTreeSet<String> = new.iter().map(|f| f.key()).collect();
        let flags: Vec<bool> = findings.iter().map(|f| new_keys.contains(&f.key())).collect();
        println!("{}", to_json(&findings, &flags, stale));
    } else {
        report_human(&findings, &new, stale);
    }
    u8::from(!new.is_empty())
}

/// One parseable stderr line for the CI cache check (stderr, so it
/// never perturbs the byte-identical `--json` stdout contract).
fn report_timing(stats: &RunStats) {
    eprintln!(
        "mb-lint: timing files={} cached={} analysis_ms={}",
        stats.files, stats.cached, stats.analysis_ms
    );
}

fn report_human(findings: &[Finding], new: &[&Finding], stale: usize) {
    for f in findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("mb-lint: clean — no findings.");
    } else {
        println!(
            "mb-lint: {} finding(s), {} new, {} baselined.",
            findings.len(),
            new.len(),
            findings.len() - new.len()
        );
    }
    if stale > 0 {
        println!(
            "mb-lint: {stale} stale baseline entr{} no longer match — run --update-baseline",
            if stale == 1 { "y" } else { "ies" }
        );
    }
    if !new.is_empty() {
        println!("mb-lint: FAIL — new findings are denied (fix or justify with a suppression).");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&["--frobnicate".to_string()]).is_err());
    }

    #[test]
    fn flags_parse() {
        let o =
            parse(&["--root".to_string(), "/tmp/ws".to_string(), "--json".to_string()]).unwrap();
        assert!(o.json);
        assert_eq!(o.root.as_deref(), Some(std::path::Path::new("/tmp/ws")));
    }

    #[test]
    fn cache_and_thread_flags_parse() {
        let args: Vec<String> = ["--threads", "4", "--cache", "/tmp/c.txt", "--timing"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = parse(&args).unwrap();
        assert_eq!(o.threads, 4);
        assert_eq!(o.cache.as_deref(), Some(std::path::Path::new("/tmp/c.txt")));
        assert!(o.timing);
        assert!(parse(&["--threads".to_string(), "x".to_string()]).is_err());
        assert!(parse(&["--cache".to_string(), "c".to_string(), "--no-cache".to_string()]).is_err());
    }

    #[test]
    fn explain_flag_parses() {
        let o = parse(&["--explain".to_string(), "panic-reach".to_string()]).unwrap();
        assert_eq!(o.explain.as_deref(), Some("panic-reach"));
        assert!(parse(&["--explain".to_string()]).is_err());
    }
}
