//! The committed findings baseline.
//!
//! Pre-existing findings live in `lint-baseline.txt` at the workspace
//! root: one [`crate::Finding::key`] per line (`rule|file|line`),
//! sorted, `#` comments allowed. CI fails on any finding *not* in the
//! baseline, so the debt can only shrink; `--update-baseline` rewrites
//! the file from the current state. The goal state — where this
//! workspace lives — is an **empty** baseline.

use crate::findings::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Default baseline file name, resolved against the workspace root.
pub const DEFAULT_FILE: &str = "lint-baseline.txt";

/// Load baseline keys; a missing file is an empty baseline.
pub fn load(path: &Path) -> std::io::Result<BTreeSet<String>> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(BTreeSet::new()),
        Err(e) => return Err(e),
    };
    Ok(text
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect())
}

/// Serialise `findings` as baseline content.
pub fn render(findings: &[Finding]) -> String {
    let keys: BTreeSet<String> = findings.iter().map(Finding::key).collect();
    let mut out = String::from(
        "# mb-lint baseline: pre-existing findings tolerated by CI.\n\
         # One `rule|file|line` key per line. Shrink me to empty; never grow me\n\
         # (fix the finding or suppress it with a justification instead).\n",
    );
    for k in keys {
        out.push_str(&k);
        out.push('\n');
    }
    out
}

/// Split `findings` into (new, baselined) by membership in `baseline`,
/// and report how many baseline keys no longer match anything (stale).
pub fn diff<'f>(
    findings: &'f [Finding],
    baseline: &BTreeSet<String>,
) -> (Vec<&'f Finding>, Vec<&'f Finding>, usize) {
    let mut new = Vec::new();
    let mut old = Vec::new();
    let mut seen = BTreeSet::new();
    for f in findings {
        let k = f.key();
        if baseline.contains(&k) {
            seen.insert(k);
            old.push(f);
        } else {
            new.push(f);
        }
    }
    let stale = baseline.len() - seen.len();
    (new, old, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, line: usize) -> Finding {
        Finding {
            rule,
            file: "a.rs".into(),
            line,
            col: 1,
            message: "m".into(),
            excerpt: "e".into(),
        }
    }

    #[test]
    fn diff_partitions_and_counts_stale() {
        let findings = vec![finding("det-hash", 1), finding("det-hash", 2)];
        let baseline: BTreeSet<String> =
            ["det-hash|a.rs|2".to_string(), "det-hash|gone.rs|9".to_string()].into();
        let (new, old, stale) = diff(&findings, &baseline);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 1);
        assert_eq!(old.len(), 1);
        assert_eq!(stale, 1);
    }

    #[test]
    fn render_round_trips_through_load() {
        let findings = vec![finding("det-hash", 3), finding("indexing", 3)];
        let text = render(&findings);
        let dir = std::env::temp_dir().join("mb_lint_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.txt");
        std::fs::write(&path, text).unwrap();
        let keys = load(&path).unwrap();
        assert_eq!(keys.len(), 2);
        assert!(keys.contains("det-hash|a.rs|3"));
        let (new, _, stale) = diff(&findings, &keys);
        assert!(new.is_empty());
        assert_eq!(stale, 0);
    }

    #[test]
    fn missing_file_is_empty() {
        assert!(load(Path::new("/nonexistent/lint-baseline.txt")).unwrap().is_empty());
    }
}
