//! A small, total lexer for Rust source text.
//!
//! The analyzer only needs token *boundaries* — where strings,
//! comments, identifiers, and punctuation start and end — so this is a
//! scanner, not a parser. It is **total**: any input (including
//! unterminated literals) produces a token stream, and concatenating
//! the token slices always reproduces the source byte-for-byte. That
//! round-trip property is what the mb-check suite pins.
//!
//! Handled precisely because rule matching depends on them:
//! - line comments and **nested** block comments;
//! - string literals with escapes, byte strings (`b"…"`), C strings
//!   (`c"…"`), and raw (byte) strings with any number of `#`s;
//! - char literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\''`) and `'_`;
//! - raw identifiers (`r#match`);
//! - numbers with type suffixes, radix prefixes, and exponents.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// A run of whitespace.
    Whitespace,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting respected; unterminated runs to EOF.
    BlockComment,
    /// An identifier, keyword, or raw identifier.
    Ident,
    /// A lifetime such as `'a` or `'_`.
    Lifetime,
    /// A char literal such as `'x'` or `'\n'`.
    Char,
    /// A `"…"`, `b"…"`, or `c"…"` literal (escapes honoured).
    Str,
    /// A raw string literal `r"…"`, `r#"…"#`, `br#"…"#`, `cr"…"`.
    RawStr,
    /// A numeric literal.
    Number,
    /// A single punctuation character.
    Punct,
}

/// One lexed token: a kind plus the byte span `[start, end)` in the
/// source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The source slice this token covers.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Character cursor over the source with byte positions.
struct Cursor<'s> {
    src: &'s str,
    /// `(byte offset, char)` for every char, in order.
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    i: usize,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Self {
        Cursor { src, chars: src.char_indices().collect(), i: 0 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).map(|&(_, c)| c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.i += 1;
        Some(c)
    }

    /// Byte offset of the next char (or EOF).
    fn pos(&self) -> usize {
        self.chars.get(self.i).map_or(self.src.len(), |&(b, _)| b)
    }

    fn eat_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.i += 1;
        }
    }
}

/// Lex `src` into a complete, gap-free token stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while cur.peek(0).is_some() {
        let start = cur.pos();
        let kind = next_kind(&mut cur);
        out.push(Token { kind, start, end: cur.pos() });
    }
    out
}

fn next_kind(cur: &mut Cursor<'_>) -> TokenKind {
    let Some(c) = cur.bump() else { return TokenKind::Whitespace };
    match c {
        c if c.is_whitespace() => {
            cur.eat_while(char::is_whitespace);
            TokenKind::Whitespace
        }
        '/' if cur.peek(0) == Some('/') => {
            cur.eat_while(|c| c != '\n');
            TokenKind::LineComment
        }
        '/' if cur.peek(0) == Some('*') => {
            cur.bump();
            block_comment(cur);
            TokenKind::BlockComment
        }
        '"' => {
            string_body(cur);
            TokenKind::Str
        }
        '\'' => char_or_lifetime(cur),
        c if c.is_ascii_digit() => {
            number_body(cur);
            TokenKind::Number
        }
        c if is_ident_start(c) => ident_or_prefixed_string(cur, c),
        _ => TokenKind::Punct,
    }
}

/// Scan a (possibly nested) block comment; the leading `/*` is consumed.
fn block_comment(cur: &mut Cursor<'_>) {
    let mut depth = 1usize;
    while depth > 0 {
        match cur.bump() {
            None => return, // unterminated: runs to EOF
            Some('/') if cur.peek(0) == Some('*') => {
                cur.bump();
                depth += 1;
            }
            Some('*') if cur.peek(0) == Some('/') => {
                cur.bump();
                depth -= 1;
            }
            Some(_) => {}
        }
    }
}

/// Scan a string body after the opening `"`, honouring `\` escapes.
fn string_body(cur: &mut Cursor<'_>) {
    loop {
        match cur.bump() {
            None | Some('"') => return,
            Some('\\') => {
                cur.bump(); // the escaped char, whatever it is
            }
            Some(_) => {}
        }
    }
}

/// Scan a raw string after its `r#*"` opener; `hashes` is the number of
/// `#`s. Ends at `"` followed by `hashes` `#`s (or EOF).
fn raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    loop {
        match cur.bump() {
            None => return,
            Some('"') => {
                if (0..hashes).all(|k| cur.peek(k) == Some('#')) {
                    for _ in 0..hashes {
                        cur.bump();
                    }
                    return;
                }
            }
            Some(_) => {}
        }
    }
}

/// Disambiguate `'a'` / `'\n'` / `' '` (char) from `'a` / `'_` (lifetime).
/// The leading `'` is consumed.
fn char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    match cur.peek(0) {
        // `'\…'`: always a char literal.
        Some('\\') => {
            cur.bump();
            cur.bump(); // escaped char
            cur.eat_while(|c| c != '\''); // `\u{…}` and friends
            cur.bump(); // closing quote
            TokenKind::Char
        }
        // `'x…`: char literal iff the very next char closes it.
        Some(c) if is_ident_start(c) || c.is_ascii_digit() => {
            if cur.peek(1) == Some('\'') {
                cur.bump();
                cur.bump();
                TokenKind::Char
            } else {
                cur.eat_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        // `'(`, `' '`, `'"` …: a char literal of one punctuation char.
        Some(_) => {
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Punct, // lone trailing quote
    }
}

/// Scan a number after its first digit: radix prefixes, `_` separators,
/// suffixes, decimal point, and signed exponents.
fn number_body(cur: &mut Cursor<'_>) {
    cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    exponent_sign(cur);
    // A fractional part only if `.` is followed by a digit — leaves
    // `0..10` and `x.0.to_string()` alone.
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
        exponent_sign(cur);
    }
}

/// Consume a `+`/`-` exponent sign if the scan stopped right after `e`/`E`
/// with digits following (`1e-3`, `2.5E+10`).
fn exponent_sign(cur: &mut Cursor<'_>) {
    let prev = cur.i.checked_sub(1).and_then(|j| cur.chars.get(j)).map(|&(_, c)| c);
    if matches!(prev, Some('e' | 'E'))
        && matches!(cur.peek(0), Some('+' | '-'))
        && cur.peek(1).is_some_and(|c| c.is_ascii_digit())
    {
        cur.bump();
        cur.eat_while(|c| c.is_ascii_alphanumeric() || c == '_');
    }
}

/// Scan an identifier that may turn out to be a (raw) string prefix or
/// a raw identifier. `first` is the already-consumed first char.
fn ident_or_prefixed_string(cur: &mut Cursor<'_>, first: char) -> TokenKind {
    // Collect the rest of the identifier run.
    let ident_start = cur.i - 1;
    cur.eat_while(is_ident_continue);
    let ident: String = cur.chars[ident_start..cur.i].iter().map(|&(_, c)| c).collect();
    debug_assert!(ident.starts_with(first));
    match (ident.as_str(), cur.peek(0)) {
        // Plain-string prefixes: escapes behave like `"…"`.
        ("b" | "c", Some('"')) => {
            cur.bump();
            string_body(cur);
            TokenKind::Str
        }
        // Raw-string prefixes with zero hashes.
        ("r" | "br" | "cr", Some('"')) => {
            cur.bump();
            raw_string_body(cur, 0);
            TokenKind::RawStr
        }
        // Raw-string prefixes with `#`s — or, for `r#ident`, a raw
        // identifier.
        ("r" | "br" | "cr", Some('#')) => {
            let mut hashes = 0usize;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            match cur.peek(hashes) {
                Some('"') => {
                    for _ in 0..=hashes {
                        cur.bump(); // the `#`s and the opening quote
                    }
                    raw_string_body(cur, hashes);
                    TokenKind::RawStr
                }
                // `r#match`: raw identifier (only the `r` prefix forms one).
                Some(c) if ident == "r" && hashes == 1 && is_ident_start(c) => {
                    cur.bump(); // the `#`
                    cur.eat_while(is_ident_continue);
                    TokenKind::Ident
                }
                _ => TokenKind::Ident,
            }
        }
        _ => TokenKind::Ident,
    }
}

/// Byte-offset → 1-based `(line, column)` mapping for one file.
#[derive(Debug)]
pub struct LineMap {
    line_starts: Vec<usize>,
}

impl LineMap {
    /// Index `src`'s line starts.
    pub fn new(src: &str) -> Self {
        let mut line_starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        LineMap { line_starts }
    }

    /// 1-based line number containing byte `offset`.
    pub fn line(&self, offset: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= offset)
    }

    /// 1-based `(line, column)`; the column counts chars, so it matches
    /// what editors display.
    pub fn line_col(&self, src: &str, offset: usize) -> (usize, usize) {
        let line = self.line(offset);
        let start = self.line_starts.get(line - 1).copied().unwrap_or(0);
        let col = src.get(start..offset).map_or(1, |s| s.chars().count() + 1);
        (line, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token> {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "lexer round-trip failed");
        toks
    }

    fn kinds(src: &str) -> Vec<TokenKind> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        assert_eq!(kinds("/* a /* b */ c */ x"), vec![TokenKind::BlockComment, TokenKind::Ident]);
    }

    #[test]
    fn raw_string_swallows_quotes_and_hashes() {
        assert_eq!(
            kinds(r###"let s = r#"a "quoted" /*no comment*/ b"#;"###),
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::RawStr,
                TokenKind::Punct
            ]
        );
    }

    #[test]
    fn char_vs_lifetime() {
        assert_eq!(kinds("'a'"), vec![TokenKind::Char]);
        assert_eq!(kinds("'a"), vec![TokenKind::Lifetime]);
        assert_eq!(
            kinds("&'static str"),
            vec![TokenKind::Punct, TokenKind::Lifetime, TokenKind::Ident]
        );
        assert_eq!(kinds(r"'\''"), vec![TokenKind::Char]);
        assert_eq!(kinds(r"'\u{1F600}'"), vec![TokenKind::Char]);
        assert_eq!(kinds("' '"), vec![TokenKind::Char]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let x = "no // comment /* here */ unwrap()";"#);
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident,
                TokenKind::Ident,
                TokenKind::Punct,
                TokenKind::Str,
                TokenKind::Punct
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        assert_eq!(
            kinds("0..10"),
            vec![TokenKind::Number, TokenKind::Punct, TokenKind::Punct, TokenKind::Number]
        );
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Number]);
        assert_eq!(kinds("0x1F_u32"), vec![TokenKind::Number]);
    }

    #[test]
    fn unterminated_literals_lex_to_eof() {
        roundtrip(r#"let s = "unterminated"#);
        roundtrip("/* unterminated");
        roundtrip("r#\"unterminated");
    }

    #[test]
    fn line_map_is_one_based() {
        let src = "ab\ncd\n";
        let m = LineMap::new(src);
        assert_eq!(m.line_col(src, 0), (1, 1));
        assert_eq!(m.line_col(src, 4), (2, 2));
    }
}
