//! Fixed-point taint propagation over the call graph, and the four
//! interprocedural rules it powers (DESIGN.md §15):
//!
//! - **panic-reach** — a call in a panic-protected file must not reach
//!   a panicking site (unwrap/expect/`panic!`-family) in any transitive
//!   callee;
//! - **det-taint** — a call in a replay-contract file must not reach a
//!   nondeterministic source (`HashMap`/`HashSet`, `SystemTime`/
//!   `Instant`, `std::env`, `thread::current`);
//! - **lock-across-call** — a call made while holding a lock must not
//!   reach blocking I/O, nor a (re-)acquire of a lock already held, in
//!   any transitive callee;
//! - **alloc-in-hot-loop** — an allocation-shaped construct, direct or
//!   via any transitive callee, inside a loop of a hot-path file.
//!
//! The lattice per function is four booleans (panics / nondet / does
//! I/O / allocates) plus the set of lock names transitively acquired;
//! all five facts only ever grow, so the worklist converges. An
//! audited `// mb-lint: allow(<rule>) -- why` is a **propagation
//! boundary**: at a taint site it stops the fact from entering the
//! function, at a call site it stops the callee's fact from flowing
//! into the caller — so one audit at the right boundary clears every
//! transitive caller, instead of each caller re-suppressing.
//!
//! Findings are emitted at the *call site* in the protected file, with
//! a witness path (capped) showing one concrete route to the offending
//! site, and the callee name as the excerpt so spans slice exactly.

use crate::analyzer::RuleSet;
use crate::findings::Finding;
use crate::graph::{DefId, Graph};
use crate::items::{FileSummary, SiteKind};
use std::collections::BTreeSet;

/// Transitive facts for one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Facts {
    panics: bool,
    nondet: bool,
    does_io: bool,
    allocates: bool,
    /// Qualified lock names this function (transitively) acquires.
    acquires: BTreeSet<String>,
}

/// Witness-path length cap (hops shown in a finding message).
const WITNESS_CAP: usize = 6;

/// Map a local site to the facts it seeds and the allow rule that can
/// stop it from seeding.
fn site_rule(kind: SiteKind) -> &'static str {
    match kind {
        SiteKind::Panic => "panic-reach",
        SiteKind::Nondet => "det-taint",
        SiteKind::Io => "lock-across-call",
        SiteKind::Alloc => "alloc-in-hot-loop",
    }
}

/// Run the four interprocedural rules over the summarized workspace.
/// `files` must be in sorted-file order; `rules[i]` is the rule set of
/// `files[i]`. Returned findings are unsorted (the caller merges and
/// sorts them with the token-level ones).
pub fn run(files: &[(String, FileSummary)], rules: &[RuleSet], graph: &Graph) -> Vec<Finding> {
    let mut facts: Vec<Vec<Facts>> =
        files.iter().map(|(_, s)| vec![Facts::default(); s.fns.len()]).collect();

    // Seed local facts, honouring allow boundaries at the site line.
    for (fi, (_, summary)) in files.iter().enumerate() {
        for (di, item) in summary.fns.iter().enumerate() {
            let f = &mut facts[fi][di];
            for site in &item.sites {
                if summary.allows(site_rule(site.kind), site.line) {
                    continue;
                }
                match site.kind {
                    SiteKind::Panic => f.panics = true,
                    SiteKind::Nondet => f.nondet = true,
                    SiteKind::Io => f.does_io = true,
                    SiteKind::Alloc => f.allocates = true,
                }
            }
            f.acquires.extend(item.acquires.iter().cloned());
        }
    }

    // Fixed point: propagate callee facts into callers until stable.
    // Facts only grow, so this terminates; the workspace graph is
    // small enough that whole-sweep iteration beats worklist overhead.
    loop {
        let mut changed = false;
        for (fi, (_, summary)) in files.iter().enumerate() {
            for (di, item) in summary.fns.iter().enumerate() {
                for (ci, call) in item.calls.iter().enumerate() {
                    let Some(callee) = graph.resolved[fi][di][ci] else { continue };
                    let from = facts[callee.0][callee.1].clone();
                    let f = &mut facts[fi][di];
                    let blocked = |rule: &str| summary.allows(rule, call.line);
                    if from.panics && !f.panics && !blocked("panic-reach") {
                        f.panics = true;
                        changed = true;
                    }
                    if from.nondet && !f.nondet && !blocked("det-taint") {
                        f.nondet = true;
                        changed = true;
                    }
                    if !blocked("lock-across-call") {
                        if from.does_io && !f.does_io {
                            f.does_io = true;
                            changed = true;
                        }
                        for lock in &from.acquires {
                            if f.acquires.insert(lock.clone()) {
                                changed = true;
                            }
                        }
                    }
                    if from.allocates && !f.allocates && !blocked("alloc-in-hot-loop") {
                        f.allocates = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // A deterministic witness route for `rule` starting at `def`:
    // prefer the first local site of the right kind, else descend into
    // the first tainted resolved call edge.
    let witness = |start: DefId, kind: SiteKind| -> String {
        let has_fact = |id: DefId| {
            let f = &facts[id.0][id.1];
            match kind {
                SiteKind::Panic => f.panics,
                SiteKind::Nondet => f.nondet,
                SiteKind::Io => f.does_io,
                SiteKind::Alloc => f.allocates,
            }
        };
        let mut path = Vec::new();
        let mut seen = BTreeSet::new();
        let mut at = start;
        while seen.insert(at) && path.len() < WITNESS_CAP {
            let (file, summary) = &files[at.0];
            let item = &summary.fns[at.1];
            if let Some(site) = item
                .sites
                .iter()
                .find(|s| s.kind == kind && !summary.allows(site_rule(kind), s.line))
            {
                path.push(format!("`{}` ({}:{})", item.name, file, item.line));
                path.push(format!("`{}` at {}:{}", site.what, file, site.line));
                return path.join(" -> ");
            }
            let next = item.calls.iter().enumerate().find_map(|(ci, call)| {
                let callee = graph.resolved[at.0][at.1][ci]?;
                let ok = has_fact(callee) && !summary.allows(site_rule(kind), call.line);
                ok.then_some(callee)
            });
            path.push(format!("`{}` ({}:{})", item.name, file, item.line));
            match next {
                Some(n) => at = n,
                None => break,
            }
        }
        path.push("…".to_string());
        path.join(" -> ")
    };

    let mut findings = Vec::new();
    for (fi, (file, summary)) in files.iter().enumerate() {
        let r = rules[fi];
        for (di, item) in summary.fns.iter().enumerate() {
            for (ci, call) in item.calls.iter().enumerate() {
                let Some(callee) = graph.resolved[fi][di][ci] else { continue };
                let cf = &facts[callee.0][callee.1];
                let emit = |rule: &'static str, message: String, out: &mut Vec<Finding>| {
                    out.push(Finding {
                        rule,
                        file: file.clone(),
                        line: call.line,
                        col: call.col,
                        message,
                        excerpt: call.name.clone(),
                    });
                };
                if r.panic_reach && cf.panics && !summary.allows("panic-reach", call.line) {
                    emit(
                        "panic-reach",
                        format!(
                            "call to `{}` (in `{}`) can reach a panic: {}; make the callee \
                             chain return a typed error, or audit the boundary with an allow",
                            call.name,
                            item.name,
                            witness(callee, SiteKind::Panic)
                        ),
                        &mut findings,
                    );
                }
                if r.det_taint && cf.nondet && !summary.allows("det-taint", call.line) {
                    emit(
                        "det-taint",
                        format!(
                            "call to `{}` (in `{}`) reaches a nondeterministic source: {}; \
                             replay-contract paths must stay bit-identical — thread the value \
                             through or use an ordered structure",
                            call.name,
                            item.name,
                            witness(callee, SiteKind::Nondet)
                        ),
                        &mut findings,
                    );
                }
                if r.lock_across_call
                    && !call.held.is_empty()
                    && !summary.allows("lock-across-call", call.line)
                {
                    if cf.does_io {
                        emit(
                            "lock-across-call",
                            format!(
                                "call to `{}` while holding lock(s) {} (in `{}`) reaches \
                                 blocking I/O: {}; release the lock before the call",
                                call.name,
                                call.held.join(", "),
                                item.name,
                                witness(callee, SiteKind::Io)
                            ),
                            &mut findings,
                        );
                    } else if let Some(lock) = cf.acquires.iter().find(|l| call.held.contains(l)) {
                        emit(
                            "lock-across-call",
                            format!(
                                "call to `{}` while holding `{lock}` (in `{}`) re-acquires \
                                 `{lock}` in a callee — self-deadlock; release the lock before \
                                 the call or pass the guard down",
                                call.name, item.name
                            ),
                            &mut findings,
                        );
                    }
                }
                if r.alloc_hot_loop
                    && call.in_loop
                    && cf.allocates
                    && !summary.allows("alloc-in-hot-loop", call.line)
                {
                    emit(
                        "alloc-in-hot-loop",
                        format!(
                            "call to `{}` inside a loop of this hot path allocates: {}; hoist \
                             the allocation out of the loop or reuse a buffer",
                            call.name,
                            witness(callee, SiteKind::Alloc)
                        ),
                        &mut findings,
                    );
                }
            }
            // Local allocation sites in hot-path loops (no call edge
            // needed; the site itself is the violation).
            if r.alloc_hot_loop {
                for site in &item.sites {
                    if site.kind == SiteKind::Alloc
                        && site.in_loop
                        && !summary.allows("alloc-in-hot-loop", site.line)
                    {
                        findings.push(Finding {
                            rule: "alloc-in-hot-loop",
                            file: file.clone(),
                            line: site.line,
                            col: site.col,
                            message: format!(
                                "`{}` allocates on every iteration of a hot-path loop (in \
                                 `{}`); hoist the allocation out of the loop or reuse a buffer",
                                site.what, item.name
                            ),
                            excerpt: site.what.clone(),
                        });
                    }
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::summarize_file;

    /// Summarize `files`, run taint with `protected` rule flags on the
    /// first file and defaults on the rest.
    fn lint(files: &[(&str, &str)], protected: RuleSet) -> Vec<Finding> {
        let summaries: Vec<(String, FileSummary)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), summarize_file(p, s, RuleSet::none())))
            .collect();
        let mut rules = vec![RuleSet::none(); files.len()];
        rules[0] = protected;
        let graph = Graph::build(&summaries);
        run(&summaries, &rules, &graph)
    }

    fn panic_reach() -> RuleSet {
        RuleSet { panic_reach: true, ..RuleSet::default() }
    }

    #[test]
    fn panic_two_hops_deep_is_reached() {
        let f = lint(
            &[
                ("crates/serve/src/worker.rs", "fn work() { outer(); }"),
                (
                    "crates/core/src/helper.rs",
                    "pub fn outer() { inner(); }\nfn inner(x: Option<u32>) { x.unwrap(); }",
                ),
            ],
            panic_reach(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "panic-reach");
        assert_eq!(f[0].excerpt, "outer");
        assert!(f[0].message.contains("unwrap"), "{}", f[0].message);
        assert!(f[0].message.contains("crates/core/src/helper.rs"), "{}", f[0].message);
    }

    #[test]
    fn allow_at_the_boundary_stops_propagation() {
        let f = lint(
            &[
                ("crates/serve/src/worker.rs", "fn work() { outer(); }"),
                (
                    "crates/core/src/helper.rs",
                    "pub fn outer() {\n    // mb-lint: allow(panic-reach) -- input validated by caller\n    inner();\n}\nfn inner(x: Option<u32>) { x.unwrap(); }",
                ),
            ],
            panic_reach(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_at_the_call_site_silences_but_keeps_others() {
        let f = lint(
            &[
                (
                    "crates/serve/src/worker.rs",
                    "fn a() {\n    // mb-lint: allow(panic-reach) -- audited: spawn-time only\n    outer();\n}\nfn b() { outer(); }",
                ),
                ("crates/core/src/helper.rs", "pub fn outer(x: Option<u32>) { x.unwrap(); }"),
            ],
            panic_reach(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn det_taint_sees_hash_through_a_call() {
        let f = lint(
            &[
                ("crates/core/src/reweight.rs", "fn step() { tally(); }"),
                ("crates/common/src/util.rs", "pub fn tally() { let m = HashMap::new(); }"),
            ],
            RuleSet { det_taint: true, ..RuleSet::default() },
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "det-taint");
        assert!(f[0].message.contains("HashMap"));
    }

    #[test]
    fn lock_across_call_reaches_io_in_a_callee() {
        let f = lint(
            &[
                (
                    "crates/serve/src/server.rs",
                    "impl S { fn f(&self) {\n    let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n    flush_all();\n} }",
                ),
                (
                    "crates/serve/src/io.rs",
                    "pub fn flush_all(w: &mut W) { w.flush(); }",
                ),
            ],
            RuleSet { lock_across_call: true, ..RuleSet::default() },
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock-across-call");
        assert!(f[0].message.contains("S.state"), "{}", f[0].message);
        assert!(f[0].message.contains("blocking I/O"), "{}", f[0].message);
    }

    #[test]
    fn lock_across_call_catches_reacquire() {
        let src = "impl S {\n    fn f(&self) {\n        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n        self.g();\n    }\n    fn g(&self) {\n        let h = self.state.lock().unwrap_or_else(|e| e.into_inner());\n    }\n}";
        let f = lint(
            &[("crates/serve/src/server.rs", src)],
            RuleSet { lock_across_call: true, ..RuleSet::default() },
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("re-acquires"), "{}", f[0].message);
    }

    #[test]
    fn calls_without_held_locks_are_clean() {
        let f = lint(
            &[
                ("crates/serve/src/server.rs", "fn f(w: &mut W) { flush_all(w); }"),
                ("crates/serve/src/io.rs", "pub fn flush_all(w: &mut W) { w.flush(); }"),
            ],
            RuleSet { lock_across_call: true, ..RuleSet::default() },
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn alloc_in_hot_loop_fires_locally_and_through_calls() {
        let f = lint(
            &[
                (
                    "crates/tensor/src/kernels.rs",
                    "fn k(n: usize) {\n    for i in 0..n {\n        let v = vec![0; i];\n        helper();\n    }\n}",
                ),
                ("crates/tensor/src/util.rs", "pub fn helper() -> String { x.to_string() }"),
            ],
            RuleSet { alloc_hot_loop: true, ..RuleSet::default() },
        );
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(rules, vec!["alloc-in-hot-loop", "alloc-in-hot-loop"], "{f:?}");
        assert!(f.iter().any(|x| x.excerpt == "vec"));
        assert!(f.iter().any(|x| x.excerpt == "helper"));
    }

    #[test]
    fn alloc_outside_the_loop_is_fine() {
        let f = lint(
            &[(
                "crates/tensor/src/kernels.rs",
                "fn k(n: usize) {\n    let mut v = vec![0; n];\n    for i in 0..n { v.fill(i as f32); }\n}",
            )],
            RuleSet { alloc_hot_loop: true, ..RuleSet::default() },
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn recursion_terminates() {
        let f = lint(
            &[(
                "crates/serve/src/worker.rs",
                "fn a(n: u32) { b(n); }\nfn b(n: u32) { a(n); x.unwrap(); }",
            )],
            panic_reach(),
        );
        assert!(f.iter().all(|x| x.rule == "panic-reach"));
        assert_eq!(f.len(), 2, "{f:?}");
    }
}
