//! Item-level parsing: `fn` items, impl/trait context, call edges, and
//! taint-relevant sites, extracted from the total lexer's token stream.
//!
//! This is the per-file half of the interprocedural analysis
//! ([`crate::graph`] resolves the call edges, [`crate::taint`]
//! propagates over them). A [`FileSummary`] captures everything later
//! passes need, so a file whose content hash is unchanged never has to
//! be re-lexed — the incremental cache ([`crate::cache`]) persists
//! summaries verbatim and the workspace runner rebuilds the call graph
//! from them.
//!
//! Extraction is token-level and deliberately conservative:
//!
//! - a **function item** is a non-`#[cfg(test)]` `fn` with a body; its
//!   impl/trait type (the first type name of the enclosing `impl`/
//!   `trait` header, the `for` type for trait impls) is recorded as the
//!   qualifier;
//! - a **call edge** is an identifier followed by `(` — classified as a
//!   free call, a `.method(…)` call (with `self.` receivers kept
//!   distinct), or a `path::segment(…)` qualified call. Macros
//!   (`name!(…)`) are not call edges;
//! - **sites** are the local facts taint propagation starts from:
//!   panicking constructs, nondeterministic sources, allocation-shaped
//!   calls, and blocking I/O — each with its loop depth;
//! - **held locks** at each call site reuse the lock model of
//!   [`crate::locks`] (`let`-bound guards to scope end or `drop`,
//!   temporaries to statement end), with `self.…` receiver paths
//!   qualified by the impl type so acquisitions compare meaningfully
//!   across functions.

use crate::analyzer::{in_ranges, Sig, KEYWORDS};
use crate::findings::Finding;
use crate::lexer::LineMap;
use crate::locks::{self, LockEdge};
use std::collections::BTreeSet;

/// Everything the interprocedural passes and the cache need from one
/// file: the token-level findings, the lock-order edges, the function
/// items with their call edges and sites, and the per-line allow map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileSummary {
    /// Token-level findings (including `lock-io` and suppression
    /// hygiene), exactly as a cold [`crate::analyze_file`] run emits
    /// them.
    pub findings: Vec<Finding>,
    /// Lock-order edges observed in this file, first site per edge.
    pub lock_edges: Vec<LockEdge>,
    /// Non-test function items defined in this file.
    pub fns: Vec<FnItem>,
    /// Per-line `mb-lint: allow(…)` rules, sorted by line.
    pub allows: Vec<(usize, Vec<String>)>,
}

impl FileSummary {
    /// True if an `allow(rule)` covers `line`.
    pub fn allows(&self, rule: &str, line: usize) -> bool {
        self.allows
            .binary_search_by_key(&line, |&(l, _)| l)
            .is_ok_and(|i| self.allows[i].1.iter().any(|r| r == rule))
    }
}

/// One function item and its locally-extracted facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Simple function name.
    pub name: String,
    /// Impl/trait type context (`impl Server` → `Server`), if any.
    pub qual: Option<String>,
    /// 1-based line of the name token.
    pub line: usize,
    /// 1-based column of the name token.
    pub col: usize,
    /// Taint-relevant local sites, in token order.
    pub sites: Vec<Site>,
    /// Outgoing call edges, in token order.
    pub calls: Vec<CallSite>,
    /// Lock receiver paths this function acquires (self-qualified).
    pub acquires: Vec<String>,
}

/// What kind of local fact a [`Site`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// `.unwrap()`, `.expect(…)`, `panic!`-family macro.
    Panic,
    /// `HashMap`/`HashSet`, `SystemTime`/`Instant`, `std::env`,
    /// `thread::current` — per-process or environment-dependent state.
    Nondet,
    /// Allocation-shaped construct: `vec!`/`format!`,
    /// `with_capacity`/`to_vec`/`to_string`/`to_owned`/`collect`,
    /// `Box::new`/`String::from`.
    Alloc,
    /// A blocking I/O method call ([`crate::locks`] recognises it).
    Io,
}

/// One taint-relevant local fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// The fact kind.
    pub kind: SiteKind,
    /// The matched source token (`unwrap`, `HashMap`, `vec`, …).
    pub what: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// True when the site sits inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — a free function call.
    Free,
    /// `recv.name(…)` — a method call on a non-`self` receiver.
    Method,
    /// `self.name(…)` — a method call on `self`.
    SelfMethod,
    /// `seg::name(…)` — the immediately-preceding path segment.
    Qualified(String),
}

/// One outgoing call edge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee naming form.
    pub kind: CallKind,
    /// Callee simple name.
    pub name: String,
    /// 1-based line of the callee name token.
    pub line: usize,
    /// 1-based column of the callee name token.
    pub col: usize,
    /// True when the call sits inside a `for`/`while`/`loop` body.
    pub in_loop: bool,
    /// Lock receiver paths held at this call site (self-qualified).
    pub held: Vec<String>,
}

/// Alloc-shaped method/associated calls (`.to_vec()`,
/// `Vec::with_capacity(…)`): each allocates on every evaluation.
const ALLOC_METHODS: &[&str] = &["with_capacity", "to_vec", "to_string", "to_owned", "collect"];

/// Types whose `from`/`new` associated constructors allocate.
const ALLOC_TYPES: &[&str] = &["Box", "String", "Vec"];

/// Extract the function items of one file. `sig` must be the
/// significant-token stream of `src`; `#[cfg(test)]` items are skipped
/// entirely (tests may panic, hash, and allocate freely, and nothing
/// reachable from a serving entrypoint lives under `#[cfg(test)]`).
pub(crate) fn collect(
    src: &str,
    sig: &[Sig<'_>],
    map: &LineMap,
    test_ranges: &[(usize, usize)],
) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let mut ctx: Vec<(usize, String)> = Vec::new(); // (body depth, qual)
    let mut depth = 0usize;
    let mut i = 0;
    while i < sig.len() {
        let s = sig[i];
        match s.text {
            "{" => {
                depth += 1;
                i += 1;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                ctx.retain(|&(d, _)| d <= depth);
                i += 1;
            }
            "impl" | "trait" if s.tok.kind == crate::lexer::TokenKind::Ident => {
                match impl_header(sig, i) {
                    Some((qual, open)) => {
                        depth += 1;
                        if let Some(q) = qual {
                            ctx.push((depth, q));
                        }
                        i = open + 1;
                    }
                    None => i += 1,
                }
            }
            "fn" if s.tok.kind == crate::lexer::TokenKind::Ident
                && !in_ranges(test_ranges, s.tok.start) =>
            {
                let name = sig.get(i + 1).map_or("?", |n| n.text).to_string();
                let Some(open) = locks::body_open(sig, i) else {
                    i += 1;
                    continue;
                };
                let qual = ctx.last().map(|(_, q)| q.clone());
                let (line, col) =
                    sig.get(i + 1).map(|n| map.line_col(src, n.tok.start)).unwrap_or((1, 1));
                let params = param_names(sig, i + 1, open);
                let (item, end) = scan_fn(src, sig, map, open, name, qual, line, col, &params);
                fns.push(item);
                i = end;
            }
            _ => i += 1,
        }
    }
    fns
}

/// Parse an `impl`/`trait` header starting at `sig[at]`: the qualifier
/// type (the `for` type when present) and the index of the body `{`.
/// `None` when the header has no body (`impl Trait for T;` is not
/// valid Rust, but stay total).
fn impl_header(sig: &[Sig<'_>], at: usize) -> Option<(Option<String>, usize)> {
    let mut angle = 0i32;
    let mut qual: Option<String> = None;
    let mut j = at + 1;
    while j < sig.len() {
        let t = sig[j];
        match t.text {
            "<" => angle += 1,
            // `->` in an `impl Fn() -> T` bound must not unbalance.
            ">" if sig.get(j.wrapping_sub(1)).map(|p| p.text) != Some("-") => angle -= 1,
            "{" if angle <= 0 => return Some((qual, j)),
            ";" if angle <= 0 => return None,
            "for" if angle <= 0 => qual = None, // the `for` type wins
            _ if angle <= 0
                && qual.is_none()
                && t.tok.kind == crate::lexer::TokenKind::Ident
                && !KEYWORDS.contains(&t.text) =>
            {
                qual = Some(t.text.to_string());
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Names bound by the parameter list between the fn name and the body
/// `{`: idents immediately followed by `:` at parameter-list depth,
/// outside generics. A call to one of these names invokes a
/// caller-supplied closure, not a workspace function, so it must not
/// become a call edge.
fn param_names(sig: &[Sig<'_>], after_name: usize, open: usize) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut angle = 0i32;
    let mut paren = 0i32;
    let mut j = after_name;
    while j < open {
        let t = sig[j];
        match t.text {
            "<" => angle += 1,
            // `->` in an `impl Fn() -> T` bound must not unbalance.
            ">" if sig.get(j.wrapping_sub(1)).map(|p| p.text) != Some("-") => angle -= 1,
            "(" => paren += 1,
            ")" => {
                paren -= 1;
                if paren == 0 && angle <= 0 {
                    break; // end of the parameter list
                }
            }
            _ if paren == 1
                && angle <= 0
                && t.tok.kind == crate::lexer::TokenKind::Ident
                && t.text != "self"
                && !KEYWORDS.contains(&t.text)
                && sig.get(j + 1).map(|n| n.text) == Some(":") =>
            {
                names.insert(t.text.to_string());
            }
            _ => {}
        }
        j += 1;
    }
    names
}

/// A lock currently held (mirror of the model in [`crate::locks`]).
struct HeldLock {
    lock: String,
    depth: usize,
    guard: Option<String>,
    temp: bool,
}

/// Rewrite a `self.…` receiver path with the impl qualifier so lock
/// names compare meaningfully across functions of the same type.
fn qualify_lock(path: &str, qual: Option<&str>) -> String {
    match (path.strip_prefix("self"), qual) {
        (Some(rest), Some(q)) => format!("{q}{rest}"),
        _ => path.to_string(),
    }
}

/// Scan one function body from its `{` at `sig[open]`; returns the item
/// and the index one past the closing brace.
#[allow(clippy::too_many_arguments)]
fn scan_fn(
    src: &str,
    sig: &[Sig<'_>],
    map: &LineMap,
    open: usize,
    name: String,
    qual: Option<String>,
    line: usize,
    col: usize,
    params: &BTreeSet<String>,
) -> (FnItem, usize) {
    let mut sites = Vec::new();
    let mut calls = Vec::new();
    let mut acquires: BTreeSet<String> = BTreeSet::new();
    let mut held: Vec<HeldLock> = Vec::new();
    let mut loop_bodies: Vec<usize> = Vec::new();
    let mut pending_loop: Option<i32> = None;
    let mut depth = 0usize;
    let mut paren = 0i32;
    let mut end = sig.len();
    let mut i = open;
    while i < sig.len() {
        let s = sig[i];
        match s.text {
            "{" => {
                depth += 1;
                if pending_loop == Some(paren) {
                    loop_bodies.push(depth);
                    pending_loop = None;
                }
            }
            "}" => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
                while loop_bodies.last().is_some_and(|&d| d > depth) {
                    loop_bodies.pop();
                }
                if depth == 0 {
                    end = i + 1;
                    break;
                }
            }
            "(" => paren += 1,
            ")" => paren -= 1,
            ";" => held.retain(|h| !(h.temp && h.depth == depth)),
            "for" | "while" | "loop" if s.tok.kind == crate::lexer::TokenKind::Ident => {
                pending_loop = Some(paren);
            }
            _ => {}
        }
        // `drop(g)` releases a bound guard early.
        if s.text == "drop"
            && sig.get(i + 1).map(|n| n.text) == Some("(")
            && sig.get(i + 3).map(|n| n.text) == Some(")")
        {
            if let Some(g) = sig.get(i + 2) {
                held.retain(|h| h.guard.as_deref() != Some(g.text));
            }
        }
        // `<recv>.lock()` acquisition, same model as crate::locks.
        if s.text == "lock"
            && i >= 1
            && sig[i - 1].text == "."
            && sig.get(i + 1).map(|n| n.text) == Some("(")
            && sig.get(i + 2).map(|n| n.text) == Some(")")
        {
            if let Some((path, recv_start)) = locks::receiver_path(sig, i - 1) {
                let lock = qualify_lock(&path, qual.as_deref());
                acquires.insert(lock.clone());
                let guard = locks::guard_binding(sig, recv_start);
                let temp = guard.is_none();
                if !held.iter().any(|h| h.lock == lock) {
                    held.push(HeldLock { lock, depth, guard, temp });
                }
            }
        }
        if s.tok.kind == crate::lexer::TokenKind::Ident {
            let in_loop = !loop_bodies.is_empty();
            let (l, c) = map.line_col(src, s.tok.start);
            let held_now = || held.iter().map(|h| h.lock.clone()).collect::<Vec<_>>();
            if let Some(kind) = site_kind(sig, i) {
                sites.push(Site { kind, what: s.text.to_string(), line: l, col: c, in_loop });
                // I/O-named methods may also resolve to a workspace
                // function (`Storage::read`), so they stay call edges;
                // panic/alloc-shaped names are std-only.
                if kind != SiteKind::Io {
                    i += 1;
                    continue;
                }
            }
            if let Some(kind) = call_kind(sig, i) {
                // `f(x)` where `f` is a parameter invokes a
                // caller-supplied closure: never a workspace edge.
                if !(matches!(kind, CallKind::Free) && params.contains(s.text)) {
                    calls.push(CallSite {
                        kind,
                        name: s.text.to_string(),
                        line: l,
                        col: c,
                        in_loop,
                        held: held_now(),
                    });
                }
            }
        }
        i += 1;
    }
    let item =
        FnItem { name, qual, line, col, sites, calls, acquires: acquires.into_iter().collect() };
    (item, end)
}

/// Classify `sig[i]` as a taint site, if it is one.
fn site_kind(sig: &[Sig<'_>], i: usize) -> Option<SiteKind> {
    let s = sig[i];
    let text_at = |j: usize| sig.get(j).map(|t| t.text);
    let prev = i.checked_sub(1).and_then(text_at);
    let next = text_at(i + 1);
    let method_like = (prev == Some(".") || prev == Some(":")) && next == Some("(");
    match s.text {
        "unwrap" | "expect" if prev == Some(".") && next == Some("(") => Some(SiteKind::Panic),
        "panic" | "unreachable" | "todo" | "unimplemented" if next == Some("!") => {
            Some(SiteKind::Panic)
        }
        "HashMap" | "HashSet" | "SystemTime" | "Instant" => Some(SiteKind::Nondet),
        "env" => {
            let double_colon =
                |a: usize, b: usize| text_at(a) == Some(":") && text_at(b) == Some(":");
            let adjacent = (i >= 2 && double_colon(i - 2, i - 1)) || double_colon(i + 1, i + 2);
            adjacent.then_some(SiteKind::Nondet)
        }
        "current"
            if prev == Some(":")
                && i >= 3
                && text_at(i - 2) == Some(":")
                && text_at(i - 3) == Some("thread") =>
        {
            Some(SiteKind::Nondet)
        }
        "vec" | "format" if next == Some("!") => Some(SiteKind::Alloc),
        m if ALLOC_METHODS.contains(&m) && method_like => Some(SiteKind::Alloc),
        "new" | "from"
            if method_like
                && prev == Some(":")
                && i >= 3
                && text_at(i - 2) == Some(":")
                && sig.get(i - 3).is_some_and(|t| ALLOC_TYPES.contains(&t.text)) =>
        {
            Some(SiteKind::Alloc)
        }
        m if locks::IO_METHODS.contains(&m) && method_like => Some(SiteKind::Io),
        _ => None,
    }
}

/// Classify `sig[i]` as a call edge, if it is one.
fn call_kind(sig: &[Sig<'_>], i: usize) -> Option<CallKind> {
    let s = sig[i];
    if sig.get(i + 1).map(|t| t.text) != Some("(") || KEYWORDS.contains(&s.text) {
        return None;
    }
    let prev = i.checked_sub(1).map(|j| sig[j]);
    match prev.map(|p| p.text) {
        Some("fn") => None, // a nested definition, not a call
        Some(".") => {
            let receiver = i.checked_sub(2).map(|j| sig[j]);
            let self_recv = receiver.is_some_and(|r| r.text == "self")
                && i.checked_sub(3).map(|j| sig[j].text) != Some(".");
            Some(if self_recv { CallKind::SelfMethod } else { CallKind::Method })
        }
        Some(":") if i >= 2 && sig[i - 2].text == ":" => {
            let seg = i
                .checked_sub(3)
                .map(|j| sig[j])
                .filter(|t| t.tok.kind == crate::lexer::TokenKind::Ident)?;
            Some(CallKind::Qualified(seg.text.to_string()))
        }
        _ => Some(CallKind::Free),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{cfg_test_ranges, significant};
    use crate::lexer::{lex, LineMap};

    fn items(src: &str) -> Vec<FnItem> {
        let tokens = lex(src);
        let sig = significant(&tokens, src);
        let ranges = cfg_test_ranges(&sig);
        collect(src, &sig, &LineMap::new(src), &ranges)
    }

    #[test]
    fn free_method_and_qualified_calls_are_classified() {
        let fns = items("fn f(x: u32) { helper(x); self.step(); obj.run(); util::go(); }");
        assert_eq!(fns.len(), 1);
        let kinds: Vec<(&str, &CallKind)> =
            fns[0].calls.iter().map(|c| (c.name.as_str(), &c.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                ("helper", &CallKind::Free),
                ("step", &CallKind::SelfMethod),
                ("run", &CallKind::Method),
                ("go", &CallKind::Qualified("util".to_string())),
            ]
        );
    }

    #[test]
    fn macros_and_definitions_are_not_calls() {
        let fns = items("fn f() { println!(\"x\"); fn g() {} }");
        assert!(fns[0].calls.is_empty(), "{:?}", fns[0].calls);
    }

    #[test]
    fn closure_parameter_invocations_are_not_calls() {
        let fns = items(
            "fn drain<F: Fn(usize) -> bool>(n: usize, mut shed: F, keep: impl Fn(u32)) {\n    shed(n);\n    keep(0);\n    other(n);\n}",
        );
        let names: Vec<&str> = fns[0].calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["other"], "param-bound closures must not become edges");
        // …but a method call that merely shares a parameter's name still is one.
        let fns = items("fn f(shed: u32, q: &Q) { q.shed(); }");
        assert_eq!(fns[0].calls.len(), 1);
    }

    #[test]
    fn impl_context_becomes_the_qualifier() {
        let fns = items("impl Server { fn start(&self) {} }\nimpl Drop for Pool { fn drop(&mut self) {} }\nfn free() {}");
        let quals: Vec<(&str, Option<&str>)> =
            fns.iter().map(|f| (f.name.as_str(), f.qual.as_deref())).collect();
        assert_eq!(quals, vec![("start", Some("Server")), ("drop", Some("Pool")), ("free", None)]);
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let fns = items("impl<T: Clone> Wrap<T> { fn get(&self) {} }");
        assert_eq!(fns[0].qual.as_deref(), Some("Wrap"));
    }

    #[test]
    fn panic_nondet_and_alloc_sites_are_collected() {
        let fns = items(
            "fn f(x: Option<u32>) {\n    x.unwrap();\n    let m = HashMap::new();\n    let v = vec![1];\n    let s = n.to_string();\n}",
        );
        let kinds: Vec<(SiteKind, &str)> =
            fns[0].sites.iter().map(|s| (s.kind, s.what.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (SiteKind::Panic, "unwrap"),
                (SiteKind::Nondet, "HashMap"),
                (SiteKind::Alloc, "vec"),
                (SiteKind::Alloc, "to_string"),
            ]
        );
    }

    #[test]
    fn loop_depth_marks_sites_and_calls() {
        let fns = items(
            "fn f(n: usize) {\n    let v = vec![0];\n    for i in 0..n {\n        let w = vec![i];\n        helper(i);\n    }\n    tail();\n}",
        );
        let f = &fns[0];
        assert_eq!(f.sites.iter().map(|s| s.in_loop).collect::<Vec<_>>(), vec![false, true]);
        let by_name: Vec<(&str, bool)> =
            f.calls.iter().map(|c| (c.name.as_str(), c.in_loop)).collect();
        assert_eq!(by_name, vec![("helper", true), ("tail", false)]);
    }

    #[test]
    fn while_let_bodies_count_as_loops() {
        let fns = items("fn f(q: &Q) { while let Some(j) = q.pop() { handle(j); } }");
        let call = fns[0].calls.iter().find(|c| c.name == "handle").unwrap();
        assert!(call.in_loop);
        let pop = fns[0].calls.iter().find(|c| c.name == "pop").unwrap();
        assert!(!pop.in_loop, "the loop condition is evaluated before the body");
    }

    #[test]
    fn held_locks_are_qualified_and_scoped() {
        let src = "impl S {\n    fn f(&self) {\n        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n        helper();\n        drop(g);\n        tail();\n    }\n}";
        let fns = items(src);
        let f = &fns[0];
        assert_eq!(f.acquires, vec!["S.state".to_string()]);
        let helper = f.calls.iter().find(|c| c.name == "helper").unwrap();
        assert_eq!(helper.held, vec!["S.state".to_string()]);
        let tail = f.calls.iter().find(|c| c.name == "tail").unwrap();
        assert!(tail.held.is_empty(), "drop(g) releases before tail()");
    }

    #[test]
    fn cfg_test_functions_are_excluded() {
        let fns =
            items("fn real() {}\n#[cfg(test)]\nmod tests {\n    fn fake() { x.unwrap(); }\n}");
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn io_methods_are_both_sites_and_edges() {
        let fns = items("fn f(w: &mut W) { w.write_all(b\"x\").ok(); }");
        assert_eq!(fns[0].sites.iter().filter(|s| s.kind == SiteKind::Io).count(), 1);
        assert!(fns[0].calls.iter().any(|c| c.name == "write_all"));
    }
}
