//! Lock-discipline analysis: a per-function lock-acquisition model
//! feeding a crate-wide lock-order graph.
//!
//! The model is token-level and deliberately conservative:
//!
//! - an acquisition is any `<receiver>.lock()` call; the receiver path
//!   (`self.state`, `shared.cache`, …) names the lock;
//! - a guard bound with `let g = <recv>.lock()…;` is held until the
//!   enclosing brace closes or an explicit `drop(g)`;
//! - an unbound (temporary) guard is held to the end of its statement;
//! - `Condvar::wait(guard)` keeps the guard held (it is reacquired
//!   before returning).
//!
//! Two findings come out of this model: **lock-io** (a known blocking
//! I/O call while any lock is held — latency and, for reads on
//! untrusted peers, a availability hazard) and **lock-order** (the
//! directed held→acquired edges, aggregated across the crate by
//! [`LockGraph`], contain a cycle — a potential deadlock).

use crate::analyzer::Sig;
use crate::findings::Finding;
use crate::lexer::LineMap;
use std::collections::{BTreeMap, BTreeSet};

/// Blocking I/O methods we recognise on the serving path.
pub(crate) const IO_METHODS: &[&str] = &[
    "write",
    "write_all",
    "write_fmt",
    "flush",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "accept",
    "connect",
    "connect_timeout",
    "bind",
    "sync_all",
    "sync_data",
    "rename",
    "copy",
    "create",
    "create_dir_all",
    "open",
    "remove_file",
    "set_read_timeout",
    "set_write_timeout",
];

/// One `held → acquired` observation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Edge {
    held: String,
    acquired: String,
}

/// Where an edge was first observed.
#[derive(Debug, Clone)]
struct Site {
    file: String,
    line: usize,
    col: usize,
    function: String,
}

/// One `held → acquired` lock-order observation at its first site in a
/// file, in the file-summary form the incremental cache persists
/// ([`crate::items::FileSummary`]). Feeding these into [`LockGraph`]
/// in sorted-file order reproduces exactly the graph a cold full scan
/// builds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Receiver path of the lock already held.
    pub held: String,
    /// Receiver path of the lock being acquired.
    pub acquired: String,
    /// 1-based line of the acquisition.
    pub line: usize,
    /// 1-based column of the acquisition.
    pub col: usize,
    /// Enclosing function name.
    pub function: String,
}

/// Crate-wide lock-order graph, fed file by file, analysed by
/// [`LockGraph::finish`].
#[derive(Debug, Default)]
pub struct LockGraph {
    edges: BTreeMap<Edge, Site>,
}

impl LockGraph {
    /// An empty graph.
    pub fn new() -> Self {
        LockGraph::default()
    }

    /// Feed one summarized edge into the graph; the first site wins,
    /// so insertion order must be deterministic (sorted-file order).
    pub fn insert(&mut self, file: &str, edge: &LockEdge) {
        let key = Edge { held: edge.held.clone(), acquired: edge.acquired.clone() };
        self.edges.entry(key).or_insert_with(|| Site {
            file: file.to_string(),
            line: edge.line,
            col: edge.col,
            function: edge.function.clone(),
        });
    }

    /// Emit `lock-order` findings: every edge that participates in a
    /// cycle of the aggregated graph, reported at its first site.
    pub fn finish(&self) -> Vec<Finding> {
        // Successor sets over lock names.
        let mut succ: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for e in self.edges.keys() {
            succ.entry(&e.held).or_default().insert(&e.acquired);
        }
        // `a → b` is cyclic iff b reaches a.
        let reaches = |from: &str, to: &str| -> bool {
            let mut seen = BTreeSet::new();
            let mut stack = vec![from];
            while let Some(n) = stack.pop() {
                if n == to {
                    return true;
                }
                if !seen.insert(n) {
                    continue;
                }
                if let Some(next) = succ.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
            false
        };
        let mut findings = Vec::new();
        for (e, site) in &self.edges {
            if reaches(&e.acquired, &e.held) {
                findings.push(Finding {
                    rule: "lock-order",
                    file: site.file.clone(),
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "acquiring `{}` while holding `{}` (in `{}`) forms a lock-order cycle — \
                         potential deadlock; fix a global acquisition order",
                        e.acquired, e.held, site.function
                    ),
                    excerpt: format!("{} -> {}", e.held, e.acquired),
                });
            }
        }
        findings
    }
}

/// A lock currently held at some point of a function body.
#[derive(Debug)]
struct Held {
    lock: String,
    /// Brace depth at acquisition; popped when the depth drops below.
    depth: usize,
    /// `let` binding name, when the guard was bound.
    guard: Option<String>,
    /// Unbound temporary: released at the end of the statement.
    temp: bool,
}

/// Walk one file's significant tokens; returns `lock-io` findings plus
/// the file's held→acquired edges (first site per edge) for the file
/// summary.
pub(crate) fn analyze_collect(
    file: &str,
    src: &str,
    sig: &[Sig<'_>],
    map: &LineMap,
    test_ranges: &[(usize, usize)],
) -> (Vec<Finding>, Vec<LockEdge>) {
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].text == "fn" && !in_ranges(test_ranges, sig[i].tok.start) {
            let name = sig.get(i + 1).map_or_else(|| "?".to_string(), |s| s.text.to_string());
            // The body opens at the first `{` outside the parameter list.
            let Some(open) = body_open(sig, i) else {
                i += 1;
                continue;
            };
            let end = scan_function(file, src, sig, map, open, &name, &mut edges, &mut findings);
            i = end;
            continue;
        }
        i += 1;
    }
    (findings, edges)
}

/// Index of the `{` opening the body of the `fn` at `sig[at]`, skipping
/// the parameter list; `None` for trait methods without a body.
pub(crate) fn body_open(sig: &[Sig<'_>], at: usize) -> Option<usize> {
    let mut j = at + 1;
    let mut paren = 0usize;
    loop {
        match sig.get(j).map(|s| s.text) {
            None | Some(";") if paren == 0 => return None,
            None => return None,
            Some("(") => paren += 1,
            Some(")") => paren = paren.saturating_sub(1),
            Some("{") if paren == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
}

fn in_ranges(ranges: &[(usize, usize)], offset: usize) -> bool {
    ranges.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// The dotted receiver path ending just before `sig[dot]` (the `.` in
/// front of `lock`): collects `ident (. ident)*` right-to-left.
pub(crate) fn receiver_path(sig: &[Sig<'_>], dot: usize) -> Option<(String, usize)> {
    let mut parts: Vec<&str> = Vec::new();
    let mut k = dot; // index of the `.` before `lock`
    loop {
        let id = k.checked_sub(1)?;
        if sig[id].text == ")" || sig[id].text == "]" {
            return None; // computed receiver: give up on naming it
        }
        parts.push(sig[id].text);
        match sig.get(id.wrapping_sub(1)).map(|s| s.text) {
            Some(".") if id >= 1 => k = id - 1,
            _ => {
                parts.reverse();
                return Some((parts.join("."), id));
            }
        }
    }
}

/// Analyse one function body starting at the `{` at `sig[open]`.
/// Returns the index one past the closing brace.
#[allow(clippy::too_many_arguments)]
fn scan_function(
    file: &str,
    src: &str,
    sig: &[Sig<'_>],
    map: &LineMap,
    open: usize,
    function: &str,
    edges: &mut Vec<LockEdge>,
    findings: &mut Vec<Finding>,
) -> usize {
    let mut held: Vec<Held> = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < sig.len() {
        let s = sig[i];
        match s.text {
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                held.retain(|h| h.depth <= depth);
                if depth == 0 {
                    return i + 1;
                }
            }
            ";" => held.retain(|h| !(h.temp && h.depth == depth)),
            _ => {}
        }
        // `drop(g)` releases a bound guard early.
        if s.text == "drop"
            && sig.get(i + 1).map(|n| n.text) == Some("(")
            && sig.get(i + 3).map(|n| n.text) == Some(")")
        {
            if let Some(g) = sig.get(i + 2) {
                held.retain(|h| h.guard.as_deref() != Some(g.text));
            }
        }
        // `<recv>.lock()` acquisition.
        if s.text == "lock"
            && i >= 1
            && sig[i - 1].text == "."
            && sig.get(i + 1).map(|n| n.text) == Some("(")
            && sig.get(i + 2).map(|n| n.text) == Some(")")
        {
            if let Some((lock, recv_start)) = receiver_path(sig, i - 1) {
                let (line, col) = map.line_col(src, s.tok.start);
                for h in &held {
                    let seen = edges.iter().any(|e| e.held == h.lock && e.acquired == lock);
                    if h.lock != lock && !seen {
                        edges.push(LockEdge {
                            held: h.lock.clone(),
                            acquired: lock.clone(),
                            line,
                            col,
                            function: function.to_string(),
                        });
                    }
                }
                // `let [mut] g = <recv>.lock()…` binds the guard.
                let guard = guard_binding(sig, recv_start);
                let temp = guard.is_none();
                if !held.iter().any(|h| h.lock == lock) {
                    held.push(Held { lock, depth, guard, temp });
                }
            }
        }
        // Blocking I/O while any lock is held.
        if !held.is_empty()
            && s.tok.kind == crate::lexer::TokenKind::Ident
            && IO_METHODS.contains(&s.text)
            && i >= 1
            && matches!(sig[i - 1].text, "." | "::")
            && sig.get(i + 1).map(|n| n.text) == Some("(")
        {
            let (line, col) = map.line_col(src, s.tok.start);
            let locks: Vec<&str> = held.iter().map(|h| h.lock.as_str()).collect();
            findings.push(Finding {
                rule: "lock-io",
                file: file.to_string(),
                line,
                col,
                message: format!(
                    "blocking I/O call `{}` while holding lock(s) {} (in `{}`); \
                     release the lock before doing I/O",
                    s.text,
                    locks.join(", "),
                    function
                ),
                excerpt: s.text.to_string(),
            });
        }
        i += 1;
    }
    sig.len()
}

/// For an acquisition whose receiver starts at `sig[recv_start]`, find
/// a `let [mut] <g> =` immediately before it and return `<g>`.
pub(crate) fn guard_binding(sig: &[Sig<'_>], recv_start: usize) -> Option<String> {
    let eq = recv_start.checked_sub(1)?;
    if sig[eq].text != "=" {
        return None;
    }
    let name = eq.checked_sub(1)?;
    let kw = name.checked_sub(1)?;
    let is_let = sig[kw].text == "let"
        || (sig[kw].text == "mut" && kw.checked_sub(1).is_some_and(|k| sig[k].text == "let"));
    is_let.then(|| sig[name].text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{analyze_file, RuleSet};

    fn lock_rules() -> RuleSet {
        RuleSet { lock_discipline: true, ..RuleSet::default() }
    }

    #[test]
    fn io_under_lock_is_flagged() {
        let src = r#"
fn f(&self, out: &mut W) {
    let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
    out.write_all(b"x");
}
"#;
        let mut graph = LockGraph::new();
        let f = analyze_file("t.rs", src, lock_rules(), Some(&mut graph));
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock-io");
        assert!(f[0].message.contains("self.state"));
    }

    #[test]
    fn io_after_scope_release_is_clean() {
        let src = r#"
fn f(&self, out: &mut W) {
    {
        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
        g.touch();
    }
    out.write_all(b"x");
}
"#;
        let mut graph = LockGraph::new();
        let f = analyze_file("t.rs", src, lock_rules(), Some(&mut graph));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn explicit_drop_releases() {
        let src = r#"
fn f(&self, out: &mut W) {
    let g = self.state.lock().unwrap_or_else(|e| e.into_inner());
    drop(g);
    out.write_all(b"x");
}
"#;
        let mut graph = LockGraph::new();
        let f = analyze_file("t.rs", src, lock_rules(), Some(&mut graph));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn temporary_guard_releases_at_statement_end() {
        let src = r#"
fn f(&self, out: &mut W) {
    self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
    out.write_all(b"x");
}
"#;
        let mut graph = LockGraph::new();
        let f = analyze_file("t.rs", src, lock_rules(), Some(&mut graph));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn opposite_acquisition_orders_form_a_cycle() {
        let src = r#"
fn a(&self) {
    let g = self.first.lock().unwrap_or_else(|e| e.into_inner());
    let h = self.second.lock().unwrap_or_else(|e| e.into_inner());
}
fn b(&self) {
    let h = self.second.lock().unwrap_or_else(|e| e.into_inner());
    let g = self.first.lock().unwrap_or_else(|e| e.into_inner());
}
"#;
        let mut graph = LockGraph::new();
        let f = analyze_file("t.rs", src, lock_rules(), Some(&mut graph));
        assert!(f.is_empty(), "no per-file findings expected: {f:?}");
        let cycle = graph.finish();
        assert_eq!(cycle.len(), 2, "{cycle:?}");
        assert!(cycle.iter().all(|f| f.rule == "lock-order"));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = r#"
fn a(&self) {
    let g = self.first.lock().unwrap_or_else(|e| e.into_inner());
    let h = self.second.lock().unwrap_or_else(|e| e.into_inner());
}
fn b(&self) {
    let g = self.first.lock().unwrap_or_else(|e| e.into_inner());
    let h = self.second.lock().unwrap_or_else(|e| e.into_inner());
}
"#;
        let mut graph = LockGraph::new();
        analyze_file("t.rs", src, lock_rules(), Some(&mut graph));
        assert!(graph.finish().is_empty());
    }
}
