//! Token-level rule analysis for one file.
//!
//! The analyzer walks the significant (non-whitespace, non-comment)
//! token stream and applies the rule families enabled for the file's
//! path (see [`crate::workspace`] for the per-crate map):
//!
//! - **panic-freedom**: `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` / direct slice
//!   indexing;
//! - **determinism**: `HashMap` / `HashSet` (iteration order is
//!   per-process random), `SystemTime` / `Instant`, and `std::env`
//!   access;
//! - **unsafe gate**: any `unsafe` token;
//! - **float total order**: `sort_by`/`sort_unstable_by`/`max_by`/
//!   `min_by` whose comparator calls `partial_cmp` — on NaN the
//!   comparator returns an arbitrary ordering (or a fallback chosen at
//!   the call site), so sorted output depends on the input permutation;
//!   `f64::total_cmp` gives one answer for every input;
//! - **tape-free**: the serving path and the frozen forward must never
//!   allocate a gradient tape or copy parameter tensors — flags `Tape`,
//!   `.inject(` (the per-forward parameter copy), `.clone()` on a
//!   `…params` receiver, and `Params::clone(`;
//! - **bounded queue**: serving-path collections that buffer work
//!   (`queue`, `pending`, `backlog`, …) must be bounded — flags
//!   `.push_back(`/`.push_front(` and `.push(` on queue-like receivers
//!   unless the enclosing function visibly enforces a bound (mentions
//!   `capacity`, `truncate`, or `max_batch`);
//! - **as-truncation**: `id as u32`-style narrowing of identifier ids
//!   silently wraps once the id space outgrows the target type — use
//!   `TryFrom` or widen the target;
//! - **lock discipline**: see [`crate::locks`].
//!
//! Code under `#[cfg(test)]` is exempt from the panic-freedom and
//! determinism families (tests may unwrap and may hash), but not from
//! the unsafe gate.

use crate::findings::Finding;
use crate::lexer::{lex, LineMap, Token, TokenKind};
use crate::locks::LockGraph;
use crate::suppress;

/// Which rule families apply to a file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleSet {
    /// Deny panicking constructs and direct slice indexing.
    pub panic_freedom: bool,
    /// Deny order-nondeterministic and environment-dependent constructs.
    pub determinism: bool,
    /// Feed the cross-file lock-acquisition graph and flag locks held
    /// across I/O.
    pub lock_discipline: bool,
    /// Deny `unsafe` anywhere in the file, tests included.
    pub unsafe_gate: bool,
    /// Deny float comparators built on `partial_cmp` inside sort/extremum
    /// calls; they order NaN arbitrarily, so output depends on input
    /// permutation. Use `total_cmp`.
    pub float_total_order: bool,
    /// Deny gradient-tape allocation and parameter copies on the
    /// serving path: `Tape`, `.inject(`, and `…params` clones must not
    /// appear where every forward is meant to ride one shared
    /// `FrozenParams` snapshot.
    pub tape_free: bool,
    /// Deny unbounded growth of work-buffering collections on the
    /// serving path: every `.push_back(`/`.push_front(` (and `.push(`
    /// on a queue-like receiver) must sit in a function that visibly
    /// enforces a bound.
    pub bounded_queue: bool,
    /// Deny `as` narrowing of identifier ids to sub-`usize` integer
    /// types — a wrapped id silently aliases another entity.
    pub as_truncation: bool,
    /// Deny whole-file reads (`read_to_end`, `read_to_string`,
    /// `fs::read`) on store/shard load paths: those paths promise
    /// bounded-RAM section streaming, and one convenience read of a
    /// multi-gigabyte shard silently breaks the promise.
    pub unbounded_read: bool,
    /// Interprocedural: calls in this file must not transitively reach
    /// a panicking site anywhere in the workspace ([`crate::taint`]).
    pub panic_reach: bool,
    /// Interprocedural: calls in this file must not transitively reach
    /// a nondeterministic source (time, env, `HashMap` iteration,
    /// thread id) anywhere in the workspace ([`crate::taint`]).
    pub det_taint: bool,
    /// Interprocedural: a lock held at a call site must not reach
    /// blocking I/O or a conflicting acquire in any callee
    /// ([`crate::taint`]).
    pub lock_across_call: bool,
    /// Interprocedural: allocation-shaped calls (direct or transitive)
    /// inside loops of this hot-path file ([`crate::taint`]).
    pub alloc_hot_loop: bool,
}

impl RuleSet {
    /// Nothing enabled (still collects suppression diagnostics).
    pub fn none() -> Self {
        RuleSet::default()
    }

    /// Every family enabled — what the seeded golden fixtures use.
    pub fn all() -> Self {
        RuleSet {
            panic_freedom: true,
            determinism: true,
            lock_discipline: true,
            unsafe_gate: true,
            float_total_order: true,
            tape_free: true,
            bounded_queue: true,
            as_truncation: true,
            unbounded_read: true,
            panic_reach: true,
            det_taint: true,
            lock_across_call: true,
            alloc_hot_loop: true,
        }
    }
}

/// Keywords that can legitimately precede `[` without it being an
/// indexing expression (slice patterns, `for … in xs[..]` never parses
/// that way, etc.).
pub(crate) const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "static", "struct", "super", "trait", "type", "unsafe", "use", "where", "while",
];

/// A significant token: index into the full stream plus its slice.
#[derive(Clone, Copy)]
pub(crate) struct Sig<'s> {
    pub(crate) tok: Token,
    pub(crate) text: &'s str,
}

/// The significant (non-whitespace, non-comment) tokens of `src`.
pub(crate) fn significant<'s>(tokens: &[Token], src: &'s str) -> Vec<Sig<'s>> {
    tokens
        .iter()
        .filter(|t| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|&tok| Sig { tok, text: tok.text(src) })
        .collect()
}

/// Byte ranges covered by `#[cfg(test)]` items.
pub(crate) fn cfg_test_ranges(sig: &[Sig<'_>]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 6 < sig.len() {
        let is_attr = sig[i].text == "#"
            && sig[i + 1].text == "["
            && sig[i + 2].text == "cfg"
            && sig[i + 3].text == "("
            && sig[i + 4].text == "test"
            && sig[i + 5].text == ")"
            && sig[i + 6].text == "]";
        if !is_attr {
            i += 1;
            continue;
        }
        // The attribute governs the next item; skip to its body brace.
        // A `;` before any `{` means a braceless item — nothing to skip.
        let mut j = i + 7;
        let mut body = None;
        while j < sig.len() {
            match sig[j].text {
                ";" => break,
                "{" => {
                    body = Some(j);
                    break;
                }
                _ => j += 1,
            }
        }
        if let Some(open) = body {
            let mut depth = 0usize;
            let mut k = open;
            while k < sig.len() {
                match sig[k].text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = sig.get(k).map_or(usize::MAX, |s| s.tok.end);
            ranges.push((sig[i].tok.start, end));
            i = k.min(sig.len());
        }
        i += 1;
    }
    ranges
}

pub(crate) fn in_ranges(ranges: &[(usize, usize)], offset: usize) -> bool {
    ranges.iter().any(|&(s, e)| offset >= s && offset < e)
}

/// Analyze one file. `locks` receives this file's lock acquisitions
/// when the `lock_discipline` family is enabled (cycle findings are
/// emitted later by [`LockGraph::finish`]).
pub fn analyze_file(
    file: &str,
    src: &str,
    rules: RuleSet,
    locks: Option<&mut LockGraph>,
) -> Vec<Finding> {
    let summary = summarize_file(file, src, rules);
    if let Some(graph) = locks {
        for edge in &summary.lock_edges {
            graph.insert(file, edge);
        }
    }
    summary.findings
}

/// Analyze one file into the full summary form the interprocedural
/// passes and the incremental cache consume: token-level findings
/// (suppression-filtered, sorted), lock-order edges, function items
/// with call edges and taint sites, and the per-line allow map.
pub fn summarize_file(file: &str, src: &str, rules: RuleSet) -> crate::items::FileSummary {
    let tokens = lex(src);
    let map = LineMap::new(src);
    let (sup, mut findings) = suppress::collect(file, src, &tokens, &map);
    let sig = significant(&tokens, src);
    let test_ranges = cfg_test_ranges(&sig);

    let mut emit = |rule: &'static str, tok: Token, message: String| {
        let (line, col) = map.line_col(src, tok.start);
        findings.push(Finding {
            rule,
            file: file.to_string(),
            line,
            col,
            message,
            excerpt: tok.text(src).to_string(),
        });
    };

    for (i, s) in sig.iter().enumerate() {
        let prev = i.checked_sub(1).map(|j| sig[j]);
        let next = sig.get(i + 1);
        let exempt = in_ranges(&test_ranges, s.tok.start);
        if rules.unsafe_gate && s.tok.kind == TokenKind::Ident && s.text == "unsafe" {
            emit(
                "unsafe-gate",
                s.tok,
                "`unsafe` is denied workspace-wide; find a safe formulation".to_string(),
            );
        }
        if exempt {
            continue;
        }
        if rules.panic_freedom {
            panic_rules(s, prev, next, &mut emit);
        }
        if rules.determinism {
            determinism_rules(&sig, i, &mut emit);
        }
        if rules.float_total_order {
            float_order_rules(&sig, i, &mut emit);
        }
        if rules.tape_free {
            tape_free_rules(&sig, i, &mut emit);
        }
        if rules.bounded_queue {
            bounded_queue_rules(&sig, i, &mut emit);
        }
        if rules.as_truncation {
            as_truncation_rules(&sig, i, &mut emit);
        }
        if rules.unbounded_read {
            unbounded_read_rules(&sig, i, &mut emit);
        }
    }

    let mut lock_edges = Vec::new();
    if rules.lock_discipline {
        let (lock_findings, edges) =
            crate::locks::analyze_collect(file, src, &sig, &map, &test_ranges);
        findings.extend(lock_findings);
        lock_edges = edges;
    }

    findings.retain(|f| f.rule == "suppression" || !sup.covers(f));
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    let fns = crate::items::collect(src, &sig, &map, &test_ranges);
    crate::items::FileSummary { findings, lock_edges, fns, allows: sup.allowed_lines() }
}

fn panic_rules(
    s: &Sig<'_>,
    prev: Option<Sig<'_>>,
    next: Option<&Sig<'_>>,
    emit: &mut impl FnMut(&'static str, Token, String),
) {
    let prev_text = prev.map(|p| p.text);
    let next_text = next.map(|n| n.text);
    if s.tok.kind == TokenKind::Ident && prev_text == Some(".") && next_text == Some("(") {
        match s.text {
            "unwrap" => emit(
                "panic-unwrap",
                s.tok,
                "`.unwrap()` can panic on this path; return a typed error or recover".to_string(),
            ),
            "expect" => emit(
                "panic-expect",
                s.tok,
                "`.expect()` can panic on this path; return a typed error or recover".to_string(),
            ),
            _ => {}
        }
    }
    if s.tok.kind == TokenKind::Ident
        && next_text == Some("!")
        && matches!(s.text, "panic" | "unreachable" | "todo" | "unimplemented")
    {
        emit(
            "panic-macro",
            s.tok,
            format!("`{}!` aborts this panic-free path; return a typed error instead", s.text),
        );
    }
    // Direct indexing: `expr[…]` where expr ends in an identifier (not
    // a keyword), `)`, or `]`. Type positions (`: [u8; 4]`), attributes
    // (`#[…]`), macros (`vec![…]`), and patterns (`let [a, b]`) all
    // have a different preceding token and are not matched.
    if s.text == "[" && s.tok.kind == TokenKind::Punct {
        let indexable = match prev {
            Some(p) => {
                (p.tok.kind == TokenKind::Ident && !KEYWORDS.contains(&p.text))
                    || p.text == ")"
                    || p.text == "]"
            }
            None => false,
        };
        if indexable {
            emit(
                "indexing",
                s.tok,
                "direct indexing can panic out-of-bounds; use `.get(…)` or prove the bound"
                    .to_string(),
            );
        }
    }
}

fn determinism_rules(
    sig: &[Sig<'_>],
    i: usize,
    emit: &mut impl FnMut(&'static str, Token, String),
) {
    let s = &sig[i];
    if s.tok.kind != TokenKind::Ident {
        return;
    }
    match s.text {
        "HashMap" | "HashSet" => emit(
            "det-hash",
            s.tok,
            format!(
                "`{}` iteration order is per-process random and breaks replay-by-seed; \
                 use `BTree{}` or sort before iterating",
                s.text,
                if s.text == "HashMap" { "Map" } else { "Set" }
            ),
        ),
        "SystemTime" | "Instant" => emit(
            "det-time",
            s.tok,
            format!(
                "`{}` makes results depend on wall-clock time; thread a seeded value through \
                 instead",
                s.text
            ),
        ),
        "env" => {
            // `::` lexes as two `:` puncts; require both on one side so
            // a plain field or parameter named `env` does not match.
            let double_colon = |a: usize, b: usize| {
                sig.get(a).map(|t| t.text) == Some(":") && sig.get(b).map(|t| t.text) == Some(":")
            };
            let adjacent_path =
                (i >= 2 && double_colon(i - 2, i - 1)) || double_colon(i + 1, i + 2);
            if adjacent_path {
                emit(
                    "det-env",
                    s.tok,
                    "`std::env` makes results depend on the environment; take the value as an \
                     explicit parameter"
                        .to_string(),
                );
            }
        }
        _ => {}
    }
}

/// Sorting/extremum methods whose comparator closure we inspect for
/// `partial_cmp`.
const ORDERED_BY: &[&str] = &["sort_by", "sort_unstable_by", "max_by", "min_by"];

fn float_order_rules(
    sig: &[Sig<'_>],
    i: usize,
    emit: &mut impl FnMut(&'static str, Token, String),
) {
    let s = &sig[i];
    // `.sort_by(` — a method call, not a bare identifier or definition.
    if s.tok.kind != TokenKind::Ident
        || !ORDERED_BY.contains(&s.text)
        || i == 0
        || sig[i - 1].text != "."
        || sig.get(i + 1).map(|t| t.text) != Some("(")
    {
        return;
    }
    // Scan the balanced argument span for `partial_cmp`.
    let mut depth = 0usize;
    for t in &sig[i + 1..] {
        match t.text {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            "partial_cmp" if t.tok.kind == TokenKind::Ident => {
                emit(
                    "float-total-order",
                    s.tok,
                    format!(
                        "`{}` comparator uses `partial_cmp`, which orders NaN arbitrarily and \
                         makes the result depend on input permutation; use `f64::total_cmp`",
                        s.text
                    ),
                );
                return;
            }
            _ => {}
        }
    }
}

/// Tape-free serving: the serving path shares one immutable
/// `FrozenParams` snapshot, so any gradient-tape allocation or
/// parameter copy there is a regression to the per-forward-clone cost
/// the frozen forward exists to remove. Flags the `Tape` type,
/// `.inject(` (which clones every parameter tensor into a tape),
/// `.clone()` whose receiver is an identifier ending in `params`, and
/// explicit `Params::clone(`.
fn tape_free_rules(sig: &[Sig<'_>], i: usize, emit: &mut impl FnMut(&'static str, Token, String)) {
    let s = &sig[i];
    if s.tok.kind != TokenKind::Ident {
        return;
    }
    let text_at = |j: usize| sig.get(j).map(|t| t.text);
    let prev = i.checked_sub(1).and_then(text_at);
    let next = text_at(i + 1);
    match s.text {
        "Tape" => emit(
            "tape-free",
            s.tok,
            "`Tape` allocation on the tape-free serving path; use the frozen forward \
             (`FrozenParams` + `mb_tensor::frozen`) instead"
                .to_string(),
        ),
        "inject" if prev == Some(".") && next == Some("(") => emit(
            "tape-free",
            s.tok,
            "`.inject()` clones every parameter tensor per forward; freeze the parameters once \
             and share the `FrozenParams` snapshot"
                .to_string(),
        ),
        "clone" if prev == Some(".") && next == Some("(") => {
            let receiver_is_params = i
                .checked_sub(2)
                .map(|j| sig[j])
                .is_some_and(|r| r.tok.kind == TokenKind::Ident && r.text.ends_with("params"));
            if receiver_is_params {
                emit(
                    "tape-free",
                    s.tok,
                    "parameter clone on the tape-free serving path; share one `FrozenParams` \
                     snapshot instead of copying tensors"
                        .to_string(),
                );
            }
        }
        // `::` lexes as two `:` puncts.
        "Params"
            if next == Some(":")
                && text_at(i + 2) == Some(":")
                && text_at(i + 3) == Some("clone") =>
        {
            emit(
                "tape-free",
                s.tok,
                "`Params::clone` on the tape-free serving path; share one `FrozenParams` \
                 snapshot instead of copying tensors"
                    .to_string(),
            );
        }
        _ => {}
    }
}

/// Receiver identifiers that name work-buffering collections on the
/// serving path; a bare `.push(` on one of these is queue growth.
const QUEUE_RECEIVERS: &[&str] = &["queue", "pending", "backlog", "jobs", "inflight", "batch"];

/// Whether the function enclosing token `i` visibly enforces a bound:
/// any identifier between the nearest `fn` tokens mentions `capacity`
/// (`with_capacity`, `queue_capacity`, a `capacity` field check),
/// `truncate`, or `max_batch`.
fn fn_window_has_bound(sig: &[Sig<'_>], i: usize) -> bool {
    let start = sig[..i].iter().rposition(|t| t.text == "fn").unwrap_or(0);
    let end =
        sig[i + 1..].iter().position(|t| t.text == "fn").map(|p| i + 1 + p).unwrap_or(sig.len());
    sig[start..end].iter().any(|t| {
        t.tok.kind == TokenKind::Ident
            && (t.text.contains("capacity")
                || t.text.contains("truncate")
                || t.text.contains("max_batch"))
    })
}

/// Bounded-queue discipline: an unbounded `push_back`/`push_front`
/// (or `push` onto a queue-like receiver) on the serving path grows
/// without limit under overload — exactly the buffer bloat the
/// admission gate and the bounded `BatchQueue` in mb-serve exist to
/// prevent. The enclosing function must show its bound.
fn bounded_queue_rules(
    sig: &[Sig<'_>],
    i: usize,
    emit: &mut impl FnMut(&'static str, Token, String),
) {
    let s = &sig[i];
    if s.tok.kind != TokenKind::Ident
        || i == 0
        || sig[i - 1].text != "."
        || sig.get(i + 1).map(|t| t.text) != Some("(")
    {
        return;
    }
    let unbounded = match s.text {
        "push_back" | "push_front" => true,
        "push" => i
            .checked_sub(2)
            .map(|j| sig[j])
            .is_some_and(|r| r.tok.kind == TokenKind::Ident && QUEUE_RECEIVERS.contains(&r.text)),
        _ => false,
    };
    if unbounded && !fn_window_has_bound(sig, i) {
        emit(
            "bounded-queue",
            s.tok,
            format!(
                "`.{}()` grows a work buffer without a visible bound; check a capacity (or \
                 truncate) in this function, or shed instead of queueing",
                s.text
            ),
        );
    }
}

/// Integer types an id must not be `as`-cast into: every id in the
/// workspace is `usize`-like, and a narrowing cast wraps silently once
/// the entity space outgrows the target (aliasing another id).
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

fn as_truncation_rules(
    sig: &[Sig<'_>],
    i: usize,
    emit: &mut impl FnMut(&'static str, Token, String),
) {
    let s = &sig[i];
    if s.tok.kind != TokenKind::Ident || s.text != "as" {
        return;
    }
    let Some(ty) = sig.get(i + 1) else { return };
    if !NARROW_INTS.contains(&ty.text) {
        return;
    }
    // The cast source must be an id-flavoured identifier — `id`,
    // `entity_id`, `…Id` — or the `.0` field of one (newtype ids).
    let id_like = |t: Sig<'_>| {
        t.tok.kind == TokenKind::Ident
            && (t.text == "id" || t.text.ends_with("_id") || t.text.ends_with("Id"))
    };
    let Some(prev) = i.checked_sub(1).map(|j| sig[j]) else { return };
    let truncates_id = id_like(prev)
        || (prev.text == "0" && i >= 3 && sig[i - 2].text == "." && id_like(sig[i - 3]));
    if truncates_id {
        emit(
            "as-truncation",
            s.tok,
            format!(
                "`as {}` silently wraps an id once the space outgrows {}; use `TryFrom` (reject) \
                 or keep the id wide",
                ty.text, ty.text
            ),
        );
    }
}

/// Whole-file reads on a bounded-RAM load path. Flags
/// `.read_to_end(`/`.read_to_string(` method calls and `fs::read(` /
/// `fs::read_to_string(` free calls: shard and manifest loads must
/// verify sections in fixed-size chunks and seek per record, never
/// materialize a file.
fn unbounded_read_rules(
    sig: &[Sig<'_>],
    i: usize,
    emit: &mut impl FnMut(&'static str, Token, String),
) {
    let s = &sig[i];
    if s.tok.kind != TokenKind::Ident || sig.get(i + 1).map(|t| t.text) != Some("(") {
        return;
    }
    let prev = i.checked_sub(1).map(|j| sig[j].text);
    let method_read = prev == Some(".") && matches!(s.text, "read_to_end" | "read_to_string");
    // `::` lexes as two `:` puncts, so `fs::read(` is `fs : : read (`.
    let fs_read = matches!(s.text, "read" | "read_to_string")
        && prev == Some(":")
        && i.checked_sub(2).map(|j| sig[j].text) == Some(":")
        && i.checked_sub(3)
            .map(|j| sig[j])
            .is_some_and(|r| r.tok.kind == TokenKind::Ident && r.text == "fs");
    if method_read || fs_read {
        emit(
            "unbounded-read",
            s.tok,
            format!(
                "`{}` materializes a whole file on a bounded-RAM load path; stream the \
                 section in fixed-size chunks (or seek + `read_exact` a known length)",
                s.text
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        analyze_file("t.rs", src, RuleSet::all(), None)
    }

    fn rules_of(src: &str) -> Vec<&'static str> {
        run(src).into_iter().map(|f| f.rule).collect()
    }

    #[test]
    fn unwrap_expect_and_macros_fire() {
        assert_eq!(rules_of("fn f() { x.unwrap(); }"), vec!["panic-unwrap"]);
        assert_eq!(rules_of("fn f() { x.expect(\"m\"); }"), vec!["panic-expect"]);
        assert_eq!(rules_of("fn f() { panic!(\"m\"); }"), vec!["panic-macro"]);
        assert_eq!(rules_of("fn f() { unreachable!(); }"), vec!["panic-macro"]);
    }

    #[test]
    fn expect_as_a_field_or_fn_name_does_not_fire() {
        assert!(rules_of("fn expect() {}").is_empty());
        assert!(rules_of("let expect = 3; let y = expect + 1;").is_empty());
        assert!(rules_of("s.unwrap_or_else(|e| e.into_inner())").is_empty());
    }

    #[test]
    fn indexing_heuristic() {
        assert_eq!(rules_of("fn f() { let y = xs[0]; }"), vec!["indexing"]);
        assert_eq!(rules_of("fn f() { g()[1] }"), vec!["indexing"]);
        assert_eq!(rules_of("fn f() { m[0][1] }"), vec!["indexing", "indexing"]);
        assert!(rules_of("#[derive(Debug)] struct S;").is_empty());
        assert!(rules_of("fn f() { let v = vec![1, 2]; }").is_empty());
        assert!(rules_of("fn f(x: [u8; 4]) -> [u8; 4] { x }").is_empty());
        assert!(rules_of("fn f() { let [a, b] = pair; }").is_empty());
    }

    #[test]
    fn determinism_idents_fire_outside_strings() {
        assert_eq!(rules_of("use std::collections::HashMap;"), vec!["det-hash"]);
        assert_eq!(rules_of("let t = Instant::now();"), vec!["det-time"]);
        assert_eq!(rules_of("let p = std::env::temp_dir();"), vec!["det-env"]);
        assert!(rules_of("let s = \"HashMap Instant std::env\";").is_empty());
        assert!(rules_of("// HashMap in a comment\n").is_empty());
        assert!(rules_of("fn f(env: u32) -> u32 { env }").is_empty());
    }

    #[test]
    fn float_total_order_fires_on_partial_cmp_comparators() {
        assert_eq!(
            rules_of("fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }"),
            vec!["float-total-order", "panic-unwrap"]
        );
        assert_eq!(
            rules_of("fn f() { v.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect(\"m\")); }"),
            vec!["float-total-order", "panic-expect"]
        );
        assert_eq!(
            rules_of("fn f() { let m = v.iter().max_by(|a, b| a.partial_cmp(b).unwrap()); }"),
            vec!["float-total-order", "panic-unwrap"]
        );
        // total_cmp comparators and partial_cmp outside a sort are clean.
        assert!(rules_of("fn f() { v.sort_by(|a, b| a.total_cmp(b)); }").is_empty());
        assert!(rules_of("fn f() { let o = a.partial_cmp(&b); }").is_empty());
        // `sort_by` as a definition or bare identifier is not a call site.
        assert!(rules_of("fn sort_by() { partial_cmp(); }").is_empty());
    }

    #[test]
    fn tape_free_flags_tape_inject_and_params_clones() {
        assert_eq!(rules_of("fn f() { let mut t = Tape::new(); }"), vec!["tape-free"]);
        assert_eq!(rules_of("fn f() { let h = tape.inject(&params); }"), vec!["tape-free"]);
        assert_eq!(rules_of("fn f() { let p = params.clone(); }"), vec!["tape-free"]);
        assert_eq!(rules_of("fn f() { let p = bi_params.clone(); }"), vec!["tape-free"]);
        assert_eq!(rules_of("fn f() { let p = Params::clone(ps); }"), vec!["tape-free"]);
    }

    #[test]
    fn tape_free_leaves_legitimate_code_alone() {
        // Cloning a frozen handle is an Arc bump, not a tensor copy.
        assert!(rules_of("fn f() { let b = frozen_bi.clone(); }").is_empty());
        // `FrozenParams` is one identifier token, not `Params`.
        assert!(rules_of("fn f(p: &FrozenParams) { let q = FrozenParams::freeze(ps); }").is_empty());
        // A type mention of `Params` without `::clone` is fine.
        assert!(rules_of("fn f(p: &Params) -> usize { p.len() }").is_empty());
        // Strings and comments never fire.
        assert!(rules_of("fn f() { let s = \"Tape params.clone()\"; }").is_empty());
        assert!(rules_of("// Tape and params.clone() in prose\n").is_empty());
        // Tests may build tapes to pin the frozen forward against.
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Tape::new(); }\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn bounded_queue_flags_unbounded_growth() {
        assert_eq!(rules_of("fn f() { q.items.push_back(item); }"), vec!["bounded-queue"]);
        assert_eq!(rules_of("fn f() { deque.push_front(item); }"), vec!["bounded-queue"]);
        assert_eq!(rules_of("fn f() { self.pending.push(job); }"), vec!["bounded-queue"]);
        assert_eq!(rules_of("fn f() { queue.push(job); }"), vec!["bounded-queue"]);
    }

    #[test]
    fn bounded_queue_accepts_visible_bounds_and_plain_vecs() {
        // A capacity check in the same function is the bound.
        assert!(rules_of(
            "fn f(&self) { if s.items.len() >= self.capacity { return; } s.items.push_back(it); }"
        )
        .is_empty());
        assert!(rules_of("fn f() { jobs.push(j); jobs.truncate(max); }").is_empty());
        assert!(rules_of("fn f(max_batch: usize) { batch.push(job); }").is_empty());
        // Non-queue receivers may push freely (string building etc.).
        assert!(rules_of("fn f() { out.push('x'); headers.push(h); }").is_empty());
        // The bound must be in the same function, not a neighbour.
        assert_eq!(
            rules_of("fn a(capacity: usize) {}\nfn b() { queue.push(job); }"),
            vec!["bounded-queue"]
        );
    }

    #[test]
    fn as_truncation_flags_narrowing_id_casts() {
        assert_eq!(rules_of("fn f() { let x = id as u32; }"), vec!["as-truncation"]);
        assert_eq!(rules_of("fn f() { let x = entity_id as u16; }"), vec!["as-truncation"]);
        assert_eq!(rules_of("fn f() { buf.write(mention_id as u8) }"), vec!["as-truncation"]);
        // Newtype ids cast through their `.0` field.
        assert_eq!(rules_of("fn f(e: EntityId) { let x = entity_id.0 as u32; }"), {
            vec!["as-truncation"]
        });
    }

    #[test]
    fn as_truncation_leaves_widening_and_non_ids_alone() {
        // Widening or same-width targets are safe.
        assert!(rules_of("fn f() { let x = id as u64; let y = id as usize; }").is_empty());
        // Non-id identifiers (including ones merely containing "id").
        assert!(rules_of("fn f() { let x = count as u32; let v = valid as u8; }").is_empty());
        assert!(rules_of("fn f() { let w = width as u16; }").is_empty());
        // `as` in paths/imports does not match.
        assert!(rules_of("use std::io::Error as IoError;").is_empty());
    }

    #[test]
    fn unbounded_read_flags_whole_file_loads() {
        assert_eq!(rules_of("fn f() { file.read_to_end(&mut buf)?; }"), vec!["unbounded-read"]);
        assert_eq!(rules_of("fn f() { file.read_to_string(&mut s)?; }"), vec!["unbounded-read"]);
        assert_eq!(rules_of("fn f() { let b = std::fs::read(path)?; }"), vec!["unbounded-read"]);
        assert_eq!(
            rules_of("fn f() { let s = fs::read_to_string(path)?; }"),
            vec!["unbounded-read"]
        );
    }

    #[test]
    fn unbounded_read_leaves_streaming_reads_alone() {
        assert!(rules_of("fn f() { file.read_exact(&mut chunk)?; }").is_empty());
        assert!(rules_of("fn f() { let n = file.read(&mut chunk)?; }").is_empty());
        // `read` not rooted at an `fs` path segment is not a whole-file load.
        assert!(rules_of("fn f() { let v = Reader::read(x); }").is_empty());
    }

    #[test]
    fn cfg_test_is_exempt_except_unsafe() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); }\n}\n";
        assert!(rules_of(src).is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { unsafe { g() } }\n}\n";
        assert_eq!(rules_of(src), vec!["unsafe-gate"]);
    }

    #[test]
    fn suppression_silences_exactly_its_rule() {
        let src = "fn f() { x.unwrap(); } // mb-lint: allow(panic-unwrap) -- bootstrapping only\n";
        assert!(rules_of(src).is_empty());
        let src = "fn f() { x.unwrap(); } // mb-lint: allow(panic-expect) -- wrong rule\n";
        assert_eq!(rules_of(src), vec!["panic-unwrap"]);
    }

    #[test]
    fn findings_are_sorted_and_located() {
        let f = run("fn f() {\n    x.unwrap();\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].line, f[0].col), (2, 7));
        assert_eq!(f[0].excerpt, "unwrap");
    }
}
