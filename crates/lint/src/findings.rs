//! Finding records and their human / JSON renderings.

use std::fmt;

/// Every rule id mb-lint can emit, in catalogue order (DESIGN.md §10).
pub const RULE_IDS: &[&str] = &[
    "panic-unwrap",
    "panic-expect",
    "panic-macro",
    "indexing",
    "det-hash",
    "det-time",
    "det-env",
    "lock-order",
    "lock-io",
    "unsafe-gate",
    "float-total-order",
    "tape-free",
    "bounded-queue",
    "as-truncation",
    "unbounded-read",
    "panic-reach",
    "det-taint",
    "lock-across-call",
    "alloc-in-hot-loop",
    "suppression",
];

/// True if `rule` is a known rule id (usable in `allow(…)`).
pub fn is_known_rule(rule: &str) -> bool {
    RULE_IDS.contains(&rule)
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id from [`RULE_IDS`].
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column (chars).
    pub col: usize,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The offending source excerpt (the matched token or line).
    pub excerpt: String,
}

impl Finding {
    /// Stable identity used for baseline matching. Deliberately
    /// excludes the column and message so small same-line edits and
    /// message rewording do not churn the baseline.
    pub fn key(&self) -> String {
        format!("{}|{}|{}", self.rule, self.file, self.line)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {} (`{}`)",
            self.file, self.line, self.col, self.rule, self.message, self.excerpt
        )
    }
}

/// Minimal JSON string escaping (the workspace is zero-dependency).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a full machine-readable report.
///
/// Shape: `{"version":1,"total":N,"new":M,"stale_baseline":K,
/// "findings":[{"rule":…,"file":…,"line":…,"col":…,"message":…,
/// "excerpt":…,"new":bool}…]}` — findings sorted by (file, line, col,
/// rule), so output is byte-stable for a given workspace state.
pub fn to_json(findings: &[Finding], new: &[bool], stale_baseline: usize) -> String {
    debug_assert_eq!(findings.len(), new.len());
    let mut out = String::from("{\"version\":1");
    out.push_str(&format!(",\"total\":{}", findings.len()));
    out.push_str(&format!(",\"new\":{}", new.iter().filter(|&&n| n).count()));
    out.push_str(&format!(",\"stale_baseline\":{stale_baseline}"));
    out.push_str(",\"findings\":[");
    for (i, (f, is_new)) in findings.iter().zip(new).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"excerpt\":{},\"new\":{}}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            f.col,
            escape(&f.message),
            escape(&f.excerpt),
            is_new
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let f = Finding {
            rule: "panic-unwrap",
            file: "crates/serve/src/queue.rs".into(),
            line: 3,
            col: 7,
            message: "say \"no\"".into(),
            excerpt: "a\tb".into(),
        };
        let j = to_json(&[f], &[true], 2);
        assert!(j.starts_with("{\"version\":1,\"total\":1,\"new\":1,\"stale_baseline\":2"));
        assert!(j.contains("\"say \\\"no\\\"\""));
        assert!(j.contains("\"a\\tb\""));
        assert!(j.ends_with("]}"));
    }

    #[test]
    fn key_ignores_column_and_message() {
        let mut f = Finding {
            rule: "det-hash",
            file: "x.rs".into(),
            line: 9,
            col: 1,
            message: "m".into(),
            excerpt: "e".into(),
        };
        let k = f.key();
        f.col = 40;
        f.message = "other".into();
        assert_eq!(f.key(), k);
    }
}
