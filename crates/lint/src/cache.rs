//! Incremental lint cache: per-file content hash → parsed
//! [`FileSummary`], persisted as one text file with mb-params-style
//! atomicity (write a temp file, then rename into place).
//!
//! Invalidation rules (DESIGN.md §15):
//!
//! - a file whose FNV-1a content hash changed is re-analyzed;
//! - a cache whose header fingerprint (format version + the rule-id
//!   catalogue) differs from this binary's is discarded wholesale, so
//!   adding or renaming a rule can never serve stale findings;
//! - **any** parse anomaly — truncated block, unknown rule id, bad
//!   escape — discards the whole cache. A cold start is always
//!   correct; a partially-trusted cache is not.
//!
//! The cache stores only per-file summaries. Everything cross-file
//! (the lock-order graph, call resolution, taint propagation) is
//! recomputed from the summaries each run — that part is cheap, and it
//! means a one-file edit correctly re-taints every caller. Because a
//! hit returns byte-for-byte the summary a cold analysis would have
//! produced, `--json` output is byte-identical cached or cold
//! (property-tested in `tests/proptest_interproc.rs`, enforced in CI).

use crate::findings::{Finding, RULE_IDS};
use crate::items::{CallKind, CallSite, FileSummary, FnItem, Site, SiteKind};
use crate::locks::LockEdge;
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// FNV-1a 64-bit — tiny, dependency-free, and stable across runs and
/// platforms (unlike `DefaultHasher`, which is seeded per process).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Bumped whenever the serialized summary shape changes.
const FORMAT_VERSION: &str = "1";

/// Header fingerprint: format version + the rule catalogue, so a
/// binary with different rules never trusts this cache.
pub fn fingerprint() -> u64 {
    let mut text = String::from(FORMAT_VERSION);
    for rule in RULE_IDS {
        text.push('|');
        text.push_str(rule);
    }
    fnv64(text.as_bytes())
}

/// Escape `%`, field/list separators, and newlines as `%xx`.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '%' | '|' | ',' | '\n' | '\r' => out.push_str(&format!("%{:02x}", ch as u32)),
            _ => out.push(ch),
        }
    }
    out
}

/// Inverse of [`esc`]; `None` on a malformed escape.
fn unesc(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = s.get(i + 1..i + 3)?;
            out.push(u8::from_str_radix(hex, 16).ok()? as char);
            i += 3;
        } else {
            // Multi-byte UTF-8 passes through untouched by esc().
            let ch = s[i..].chars().next()?;
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Some(out)
}

/// The in-memory cache: file path → (content hash, summary).
#[derive(Debug, Default)]
pub struct Cache {
    entries: BTreeMap<String, (u64, FileSummary)>,
}

impl Cache {
    /// An empty (cold) cache.
    pub fn empty() -> Cache {
        Cache::default()
    }

    /// Load from `path`; cold on a missing file, a fingerprint
    /// mismatch, or any parse anomaly.
    pub fn load(path: &Path) -> Cache {
        match std::fs::read_to_string(path) {
            Ok(text) => parse(&text).unwrap_or_default(),
            Err(_) => Cache::default(),
        }
    }

    /// The cached summary for `file`, if its content hash still
    /// matches.
    pub fn get(&self, file: &str, hash: u64) -> Option<&FileSummary> {
        let (h, summary) = self.entries.get(file)?;
        (*h == hash).then_some(summary)
    }

    /// Insert or refresh one file's summary.
    pub fn put(&mut self, file: String, hash: u64, summary: FileSummary) {
        self.entries.insert(file, (hash, summary));
    }

    /// Drop entries for files that no longer exist.
    pub fn retain_files(&mut self, keep: &BTreeSet<String>) {
        self.entries.retain(|file, _| keep.contains(file));
    }

    /// Number of cached files.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Persist atomically: render, write `<path>.tmp`, rename into
    /// place. A byte-identical cache on disk is left untouched.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let rendered = render(self);
        if std::fs::read_to_string(path).is_ok_and(|cur| cur == rendered) {
            return Ok(());
        }
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, rendered)?;
        std::fs::rename(&tmp, path)
    }
}

fn render(cache: &Cache) -> String {
    let mut out = format!("mb-lint-cache v{FORMAT_VERSION} fp={:016x}\n", fingerprint());
    for (file, (hash, s)) in &cache.entries {
        out.push_str(&format!("file {}|{hash:016x}\n", esc(file)));
        for f in &s.findings {
            out.push_str(&format!(
                "f {}|{}|{}|{}|{}\n",
                f.rule,
                f.line,
                f.col,
                esc(&f.message),
                esc(&f.excerpt)
            ));
        }
        for e in &s.lock_edges {
            out.push_str(&format!(
                "e {}|{}|{}|{}|{}\n",
                esc(&e.held),
                esc(&e.acquired),
                e.line,
                e.col,
                esc(&e.function)
            ));
        }
        for (line, rules) in &s.allows {
            let list: Vec<String> = rules.iter().map(|r| esc(r)).collect();
            out.push_str(&format!("a {line}|{}\n", list.join(",")));
        }
        for item in &s.fns {
            let acq: Vec<String> = item.acquires.iter().map(|a| esc(a)).collect();
            out.push_str(&format!(
                "n {}|{}|{}|{}|{}\n",
                esc(&item.name),
                item.qual.as_deref().map_or_else(|| "-".to_string(), esc),
                item.line,
                item.col,
                acq.join(",")
            ));
            for site in &item.sites {
                let k = match site.kind {
                    SiteKind::Panic => "P",
                    SiteKind::Nondet => "N",
                    SiteKind::Alloc => "A",
                    SiteKind::Io => "I",
                };
                out.push_str(&format!(
                    "s {k}|{}|{}|{}|{}\n",
                    esc(&site.what),
                    site.line,
                    site.col,
                    u8::from(site.in_loop)
                ));
            }
            for call in &item.calls {
                let k = match &call.kind {
                    CallKind::Free => "F".to_string(),
                    CallKind::Method => "M".to_string(),
                    CallKind::SelfMethod => "S".to_string(),
                    CallKind::Qualified(seg) => format!("Q:{}", esc(seg)),
                };
                let held: Vec<String> = call.held.iter().map(|h| esc(h)).collect();
                out.push_str(&format!(
                    "c {k}|{}|{}|{}|{}|{}\n",
                    esc(&call.name),
                    call.line,
                    call.col,
                    u8::from(call.in_loop),
                    held.join(",")
                ));
            }
        }
        out.push_str("end\n");
    }
    out
}

/// Strict parse; `None` on any anomaly (the caller goes cold).
fn parse(text: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let expected = format!("mb-lint-cache v{FORMAT_VERSION} fp={:016x}", fingerprint());
    if header != expected {
        return None;
    }
    let mut cache = Cache::default();
    let mut current: Option<(String, u64, FileSummary)> = None;
    let static_rule = |r: &str| RULE_IDS.iter().find(|&&k| k == r).copied();
    let parse_list = |s: &str| -> Option<Vec<String>> {
        if s.is_empty() {
            return Some(Vec::new());
        }
        s.split(',').map(unesc).collect()
    };
    for line in lines {
        if let Some(rest) = line.strip_prefix("file ") {
            if current.is_some() {
                return None; // missing `end`
            }
            let (file, hash) = rest.split_once('|')?;
            let hash = u64::from_str_radix(hash, 16).ok()?;
            current = Some((unesc(file)?, hash, FileSummary::default()));
            continue;
        }
        if line == "end" {
            let (file, hash, summary) = current.take()?;
            cache.entries.insert(file, (hash, summary));
            continue;
        }
        let (file, _, summary) = current.as_mut()?;
        let (tag, rest) = line.split_once(' ')?;
        let fields: Vec<&str> = rest.split('|').collect();
        match tag {
            "f" => {
                let [rule, line, col, message, excerpt] = fields[..] else { return None };
                summary.findings.push(Finding {
                    rule: static_rule(rule)?,
                    file: file.clone(),
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    message: unesc(message)?,
                    excerpt: unesc(excerpt)?,
                });
            }
            "e" => {
                let [held, acquired, line, col, function] = fields[..] else { return None };
                summary.lock_edges.push(LockEdge {
                    held: unesc(held)?,
                    acquired: unesc(acquired)?,
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    function: unesc(function)?,
                });
            }
            "a" => {
                let [line, rules] = fields[..] else { return None };
                summary.allows.push((line.parse().ok()?, parse_list(rules)?));
            }
            "n" => {
                let [name, qual, line, col, acquires] = fields[..] else { return None };
                summary.fns.push(FnItem {
                    name: unesc(name)?,
                    qual: if qual == "-" { None } else { Some(unesc(qual)?) },
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    sites: Vec::new(),
                    calls: Vec::new(),
                    acquires: parse_list(acquires)?,
                });
            }
            "s" => {
                let [kind, what, line, col, in_loop] = fields[..] else { return None };
                let kind = match kind {
                    "P" => SiteKind::Panic,
                    "N" => SiteKind::Nondet,
                    "A" => SiteKind::Alloc,
                    "I" => SiteKind::Io,
                    _ => return None,
                };
                summary.fns.last_mut()?.sites.push(Site {
                    kind,
                    what: unesc(what)?,
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    in_loop: in_loop == "1",
                });
            }
            "c" => {
                let [kind, name, line, col, in_loop, held] = fields[..] else { return None };
                let kind = match kind {
                    "F" => CallKind::Free,
                    "M" => CallKind::Method,
                    "S" => CallKind::SelfMethod,
                    q => CallKind::Qualified(unesc(q.strip_prefix("Q:")?)?),
                };
                summary.fns.last_mut()?.calls.push(CallSite {
                    kind,
                    name: unesc(name)?,
                    line: line.parse().ok()?,
                    col: col.parse().ok()?,
                    in_loop: in_loop == "1",
                    held: parse_list(held)?,
                });
            }
            _ => return None,
        }
    }
    if current.is_some() {
        return None; // truncated final block
    }
    Some(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{summarize_file, RuleSet};

    fn summary_of(src: &str) -> FileSummary {
        summarize_file("crates/a/src/lib.rs", src, RuleSet::all())
    }

    #[test]
    fn escape_round_trips() {
        for s in ["plain", "with|pipe", "pct % and , comma", "line\nbreak", "100%|a,b\r\n"] {
            assert_eq!(unesc(&esc(s)).as_deref(), Some(s), "{s:?}");
        }
        assert!(unesc("%zz").is_none());
        assert!(unesc("%").is_none());
    }

    #[test]
    fn summary_round_trips_through_the_cache_file() {
        let src = "impl S {\n    fn f(&self, x: Option<u32>) {\n        let g = self.state.lock().unwrap_or_else(|e| e.into_inner());\n        for i in 0..3 { helper(i); }\n        x.unwrap();\n    }\n}\n// mb-lint: allow(det-hash) -- lookup only\nfn helper(i: u32) { util::go(i); }\n";
        let summary = summary_of(src);
        assert!(!summary.fns.is_empty());
        let mut cache = Cache::empty();
        cache.put("crates/a/src/lib.rs".to_string(), fnv64(src.as_bytes()), summary.clone());
        let dir = std::env::temp_dir().join(format!("mb-lint-cache-test-{}", std::process::id()));
        let path = dir.join("lint-cache.txt");
        cache.save(&path).unwrap();
        let loaded = Cache::load(&path);
        assert_eq!(loaded.get("crates/a/src/lib.rs", fnv64(src.as_bytes())), Some(&summary));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_hash_misses() {
        let mut cache = Cache::empty();
        cache.put("a.rs".to_string(), 1, FileSummary::default());
        assert!(cache.get("a.rs", 1).is_some());
        assert!(cache.get("a.rs", 2).is_none());
        assert!(cache.get("b.rs", 1).is_none());
    }

    #[test]
    fn corrupt_or_mismatched_cache_goes_cold() {
        assert!(parse("garbage\n").is_none());
        assert!(parse("mb-lint-cache v0 fp=0000000000000000\n").is_none());
        let good = render(&Cache::default());
        assert!(parse(&good).is_some());
        // A truncated block (missing `end`) poisons the whole cache.
        let bad = format!("{good}file x.rs|0000000000000001\n");
        assert!(parse(&bad).is_none());
        // An unknown rule id poisons it too.
        let bad = format!("{good}file x.rs|0000000000000001\nf no-such-rule|1|1|m|e\nend\n");
        assert!(parse(&bad).is_none());
    }

    #[test]
    fn retain_drops_deleted_files() {
        let mut cache = Cache::empty();
        cache.put("a.rs".to_string(), 1, FileSummary::default());
        cache.put("b.rs".to_string(), 2, FileSummary::default());
        let keep: BTreeSet<String> = ["a.rs".to_string()].into();
        cache.retain_files(&keep);
        assert_eq!(cache.len(), 1);
        assert!(cache.get("a.rs", 1).is_some());
    }

    #[test]
    fn fnv64_is_stable() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
