//! Workspace walking and the per-crate rule map.
//!
//! The map encodes which guarantees each part of the workspace has
//! signed up for (DESIGN.md §10):
//!
//! - **panic-freedom** on the serving path (`crates/serve/src`) and the
//!   checkpoint request/load paths (`crates/tensor/src/checkpoint.rs`,
//!   `crates/tensor/src/serialize.rs`, `crates/kb/src/store.rs`);
//! - **determinism** in every crate covered by the bit-identical
//!   resume guarantee (`tensor`, `core`, `datagen`, `nlg`, `kb`,
//!   `eval`, `par`);
//! - **lock discipline** across `crates/serve/src`;
//! - the **unsafe gate** workspace-wide;
//! - **float total order** workspace-wide (tests exempt): a
//!   `partial_cmp` comparator orders NaN arbitrarily, which silently
//!   breaks replay-by-seed wherever a float sort feeds results;
//! - **tape-free** on the serving path (`crates/serve/src`) and the
//!   frozen forward itself (`crates/tensor/src/frozen.rs`,
//!   `crates/tensor/src/quant.rs`, `crates/encoders/src/frozen.rs`):
//!   no gradient-tape allocation and no parameter copies — every
//!   serving forward rides one shared `FrozenParams` snapshot;
//! - **bounded-queue** on the serving path (`crates/serve/src`): a
//!   work buffer that grows without a visible bound is how overload
//!   turns into memory growth and minute-long queueing delays instead
//!   of fast 503 shedding;
//! - **as-truncation** workspace-wide (tests exempt): `id as u32`
//!   narrowing silently wraps once an id space outgrows the target
//!   type, aliasing two entities;
//! - **unbounded-read** on the sharded-store load paths
//!   (`crates/store/src`): shard and manifest opens promise
//!   bounded-RAM streaming verification, so `read_to_end`-style
//!   whole-file loads there silently break the promise at
//!   million-entity scale.

use crate::analyzer::{analyze_file, RuleSet};
use crate::findings::Finding;
use crate::locks::LockGraph;
use std::path::{Path, PathBuf};

/// Crates whose `src/` falls under the determinism family.
const DETERMINISM_CRATES: &[&str] = &["tensor", "core", "datagen", "nlg", "kb", "eval", "par"];

/// Files (beyond `crates/serve/src`) on the panic-free path.
const PANIC_FREE_FILES: &[&str] = &[
    "crates/tensor/src/checkpoint.rs",
    "crates/tensor/src/serialize.rs",
    "crates/kb/src/store.rs",
];

/// Files (beyond `crates/serve/src`) on the tape-free forward path:
/// the frozen-parameter forward and the quantized tables it scores
/// with must themselves never allocate a tape or copy parameters.
const TAPE_FREE_FILES: &[&str] =
    &["crates/tensor/src/frozen.rs", "crates/tensor/src/quant.rs", "crates/encoders/src/frozen.rs"];

/// The rule families enforced for a workspace-relative path
/// (`/`-separated).
pub fn rules_for(rel_path: &str) -> RuleSet {
    let mut rules = RuleSet {
        unsafe_gate: true,
        float_total_order: true,
        as_truncation: true,
        ..RuleSet::default()
    };
    if rel_path.starts_with("crates/serve/src/") {
        rules.panic_freedom = true;
        rules.lock_discipline = true;
        rules.tape_free = true;
        rules.bounded_queue = true;
    }
    if PANIC_FREE_FILES.contains(&rel_path) {
        rules.panic_freedom = true;
    }
    if TAPE_FREE_FILES.contains(&rel_path) {
        rules.tape_free = true;
    }
    if DETERMINISM_CRATES.iter().any(|c| rel_path.starts_with(&format!("crates/{c}/src/"))) {
        rules.determinism = true;
    }
    if rel_path.starts_with("crates/store/src/") {
        rules.unbounded_read = true;
    }
    rules
}

/// Directory names never descended into.
fn skipped_dir(name: &str) -> bool {
    name == "target" || name == ".git" || name == "fixtures"
}

/// All `.rs` files under `root`, workspace-relative with `/`
/// separators, sorted — the scan order (and so the report) is
/// deterministic. `fixtures` directories are skipped: they hold the
/// linter's own seeded-violation golden files.
pub fn rust_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(root.join(&rel)) else { continue };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let sub = rel.join(&name);
            let is_dir = entry.file_type().map(|t| t.is_dir()).unwrap_or(false);
            if is_dir {
                if !skipped_dir(&name) {
                    stack.push(sub);
                }
            } else if name.ends_with(".rs") {
                out.push(sub.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    out
}

/// Lint the whole workspace rooted at `root`. Findings are sorted by
/// (file, line, col, rule).
pub fn run(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut graph = LockGraph::new();
    for rel in rust_files(root) {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else { continue };
        findings.extend(analyze_file(&rel, &src, rules_for(&rel), Some(&mut graph)));
    }
    findings.extend(graph.finish());
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_gets_panic_lock_tape_free_and_bounded_queue_rules() {
        let r = rules_for("crates/serve/src/queue.rs");
        assert!(r.panic_freedom && r.lock_discipline && r.unsafe_gate && r.tape_free);
        assert!(r.bounded_queue);
        assert!(!r.determinism);
        // The queue discipline is a serving-path guarantee, not global.
        assert!(!rules_for("crates/core/src/linker.rs").bounded_queue);
        assert!(!rules_for("crates/serve/tests/chaos.rs").bounded_queue);
    }

    #[test]
    fn as_truncation_applies_workspace_wide() {
        assert!(rules_for("crates/serve/src/server.rs").as_truncation);
        assert!(rules_for("crates/kb/src/index.rs").as_truncation);
        assert!(rules_for("src/bin/metablink.rs").as_truncation);
    }

    #[test]
    fn frozen_forward_files_get_the_tape_free_rule() {
        for f in TAPE_FREE_FILES {
            assert!(rules_for(f).tape_free, "{f}");
        }
        // The tape itself and training code may of course build tapes.
        assert!(!rules_for("crates/tensor/src/tape.rs").tape_free);
        assert!(!rules_for("crates/encoders/src/train.rs").tape_free);
        assert!(!rules_for("crates/core/src/linker.rs").tape_free);
    }

    #[test]
    fn checkpoint_paths_get_panic_rules() {
        for f in PANIC_FREE_FILES {
            assert!(rules_for(f).panic_freedom, "{f}");
        }
        assert!(!rules_for("crates/tensor/src/tensor.rs").panic_freedom);
    }

    #[test]
    fn resume_covered_crates_get_determinism() {
        assert!(rules_for("crates/core/src/reweight.rs").determinism);
        assert!(rules_for("crates/kb/src/index.rs").determinism);
        assert!(rules_for("crates/par/src/lib.rs").determinism);
        assert!(!rules_for("crates/serve/src/server.rs").determinism);
        assert!(!rules_for("crates/common/src/lru.rs").determinism);
        // Tests and benches are outside every family but the unsafe
        // gate and float total order.
        let r = rules_for("crates/core/tests/determinism.rs");
        assert!(!r.determinism && !r.panic_freedom && r.unsafe_gate);
    }

    #[test]
    fn store_load_paths_get_the_unbounded_read_rule() {
        assert!(rules_for("crates/store/src/shard.rs").unbounded_read);
        assert!(rules_for("crates/store/src/store.rs").unbounded_read);
        assert!(rules_for("crates/store/src/ivf.rs").unbounded_read);
        // Everything else may still slurp small config files.
        assert!(!rules_for("crates/store/tests/proptest_store.rs").unbounded_read);
        assert!(!rules_for("crates/tensor/src/checkpoint.rs").unbounded_read);
        assert!(!rules_for("crates/serve/src/server.rs").unbounded_read);
    }

    #[test]
    fn float_total_order_applies_workspace_wide() {
        assert!(rules_for("crates/serve/src/server.rs").float_total_order);
        assert!(rules_for("crates/common/src/util.rs").float_total_order);
        assert!(rules_for("src/bin/metablink.rs").float_total_order);
    }
}
