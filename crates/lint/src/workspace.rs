//! Workspace walking, the per-crate rule map, and the full lint run
//! (token-level pass + interprocedural taint + incremental cache).
//!
//! The map encodes which guarantees each part of the workspace has
//! signed up for (DESIGN.md §10):
//!
//! - **panic-freedom** on the serving path (`crates/serve/src`) and the
//!   checkpoint request/load paths (`crates/tensor/src/checkpoint.rs`,
//!   `crates/tensor/src/serialize.rs`, `crates/kb/src/store.rs`);
//! - **determinism** in every crate covered by the bit-identical
//!   resume guarantee (`tensor`, `core`, `datagen`, `nlg`, `kb`,
//!   `eval`, `par`, `store`);
//! - **lock discipline** across `crates/serve/src`;
//! - the **unsafe gate** workspace-wide;
//! - **float total order** workspace-wide (tests exempt): a
//!   `partial_cmp` comparator orders NaN arbitrarily, which silently
//!   breaks replay-by-seed wherever a float sort feeds results;
//! - **tape-free** on the serving path (`crates/serve/src`) and the
//!   frozen forward itself (`crates/tensor/src/frozen.rs`,
//!   `crates/tensor/src/quant.rs`, `crates/encoders/src/frozen.rs`):
//!   no gradient-tape allocation and no parameter copies — every
//!   serving forward rides one shared `FrozenParams` snapshot;
//! - **bounded-queue** on the serving path (`crates/serve/src`): a
//!   work buffer that grows without a visible bound is how overload
//!   turns into memory growth and minute-long queueing delays instead
//!   of fast 503 shedding;
//! - **as-truncation** workspace-wide (tests exempt): `id as u32`
//!   narrowing silently wraps once an id space outgrows the target
//!   type, aliasing two entities;
//! - **unbounded-read** on the sharded-store load paths
//!   (`crates/store/src`): shard and manifest opens promise
//!   bounded-RAM streaming verification, so `read_to_end`-style
//!   whole-file loads there silently break the promise at
//!   million-entity scale.
//!
//! The interprocedural families ([`crate::taint`], DESIGN.md §15):
//!
//! - **panic-reach** everywhere panic-freedom applies, plus the store
//!   load paths and the loadgen driver (a panicking helper two calls
//!   below a serve worker is just as fatal as an inline `unwrap`);
//! - **det-taint** in every determinism crate (a nondeterministic
//!   helper called from a replay path breaks replay just as surely);
//! - **lock-across-call** wherever lock discipline applies;
//! - **alloc-in-hot-loop** in the hot kernel/batch-drain files.

use crate::analyzer::{self, RuleSet};
use crate::cache::{self, Cache};
use crate::findings::Finding;
use crate::graph::Graph;
use crate::items::FileSummary;
use crate::locks::LockGraph;
use crate::taint;
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose `src/` falls under the determinism family.
const DETERMINISM_CRATES: &[&str] =
    &["tensor", "core", "datagen", "nlg", "kb", "eval", "par", "store"];

/// Files (beyond `crates/serve/src`) on the panic-free path.
const PANIC_FREE_FILES: &[&str] = &[
    "crates/tensor/src/checkpoint.rs",
    "crates/tensor/src/serialize.rs",
    "crates/kb/src/store.rs",
];

/// Files (beyond `crates/serve/src`) on the tape-free forward path:
/// the frozen-parameter forward and the quantized tables it scores
/// with must themselves never allocate a tape or copy parameters.
const TAPE_FREE_FILES: &[&str] =
    &["crates/tensor/src/frozen.rs", "crates/tensor/src/quant.rs", "crates/encoders/src/frozen.rs"];

/// Paths (beyond the panic-freedom set) protected by `panic-reach`:
/// the store load paths keep serving under churn, and the loadgen
/// driver's panics abort a whole measurement run.
const PANIC_REACH_EXTRA: &[&str] = &["crates/store/src/", "crates/bench/src/bin/loadgen.rs"];

/// Hot-path files protected by `alloc-in-hot-loop`: the kernel inner
/// loops, the frozen forwards, and the serve batch drain.
const HOT_LOOP_FILES: &[&str] = &[
    "crates/tensor/src/kernels.rs",
    "crates/tensor/src/frozen.rs",
    "crates/encoders/src/frozen.rs",
    "crates/serve/src/queue.rs",
];

/// The rule families enforced for a workspace-relative path
/// (`/`-separated).
pub fn rules_for(rel_path: &str) -> RuleSet {
    let mut rules = RuleSet {
        unsafe_gate: true,
        float_total_order: true,
        as_truncation: true,
        ..RuleSet::default()
    };
    if rel_path.starts_with("crates/serve/src/") {
        rules.panic_freedom = true;
        rules.lock_discipline = true;
        rules.tape_free = true;
        rules.bounded_queue = true;
    }
    if PANIC_FREE_FILES.contains(&rel_path) {
        rules.panic_freedom = true;
    }
    if TAPE_FREE_FILES.contains(&rel_path) {
        rules.tape_free = true;
    }
    if DETERMINISM_CRATES.iter().any(|c| rel_path.starts_with(&format!("crates/{c}/src/"))) {
        rules.determinism = true;
    }
    if rel_path.starts_with("crates/store/src/") {
        rules.unbounded_read = true;
    }
    rules.panic_reach = rules.panic_freedom
        || PANIC_REACH_EXTRA
            .iter()
            .any(|p| rel_path.starts_with(p) || rel_path == p.trim_end_matches('/'));
    rules.det_taint = rules.determinism;
    rules.lock_across_call = rules.lock_discipline;
    rules.alloc_hot_loop = HOT_LOOP_FILES.contains(&rel_path);
    rules
}

/// Directory names never descended into.
fn skipped_dir(name: &str) -> bool {
    name == "target" || name == ".git" || name == "fixtures"
}

/// All `.rs` files under `root`, workspace-relative with `/`
/// separators, sorted — the scan order (and so the report) is
/// deterministic. `fixtures` directories are skipped: they hold the
/// linter's own seeded-violation golden files.
pub fn rust_files(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(root.join(&rel)) else { continue };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let sub = rel.join(&name);
            let is_dir = entry.file_type().map(|t| t.is_dir()).unwrap_or(false);
            if is_dir {
                if !skipped_dir(&name) {
                    stack.push(sub);
                }
            } else if name.ends_with(".rs") {
                out.push(sub.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    out
}

/// Knobs for a full lint run.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Worker threads for per-file analysis (`0`/`1` → sequential).
    /// Output is byte-identical at any thread count: files are
    /// assigned round-robin and merged back by index.
    pub threads: usize,
    /// Incremental cache file; `None` disables caching entirely.
    pub cache_path: Option<PathBuf>,
}

/// What a run did, for `--timing` and the CI cache check.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Files analyzed (cached + cold).
    pub files: usize,
    /// Files served from the cache.
    pub cached: usize,
    /// Wall-clock of the whole run, milliseconds.
    pub analysis_ms: u128,
}

/// A lint run that could not produce a trustworthy report.
#[derive(Debug)]
pub enum RunError {
    /// Workspace files that could not be read (missing, permission,
    /// non-UTF-8). A silently skipped file would silently skip its
    /// violations, so this is fatal.
    Unreadable(Vec<(String, String)>),
    /// The cache file could not be persisted.
    Cache(String, String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Unreadable(files) => {
                writeln!(f, "cannot analyze {} workspace file(s):", files.len())?;
                for (file, err) in files {
                    writeln!(f, "  {file}: {err}")?;
                }
                write!(f, "a skipped file would skip its violations; fix or remove the file(s)")
            }
            RunError::Cache(path, err) => write!(f, "cannot write lint cache {path}: {err}"),
        }
    }
}

/// Lint the whole workspace rooted at `root` with default options (no
/// cache, sequential). Findings are sorted by (file, line, col, rule).
pub fn run(root: &Path) -> Result<Vec<Finding>, RunError> {
    run_with(root, &RunOptions::default()).map(|(findings, _)| findings)
}

/// Lint the whole workspace rooted at `root`.
pub fn run_with(root: &Path, opts: &RunOptions) -> Result<(Vec<Finding>, RunStats), RunError> {
    let start = std::time::Instant::now();
    let mut sources: Vec<(String, String)> = Vec::new();
    let mut unreadable: Vec<(String, String)> = Vec::new();
    for rel in rust_files(root) {
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => sources.push((rel, src)),
            Err(e) => unreadable.push((rel, e.to_string())),
        }
    }
    if !unreadable.is_empty() {
        return Err(RunError::Unreadable(unreadable));
    }

    let mut cache = match &opts.cache_path {
        Some(path) => Cache::load(path),
        None => Cache::empty(),
    };
    let hashes: Vec<u64> = sources.iter().map(|(_, src)| cache::fnv64(src.as_bytes())).collect();
    let mut slots: Vec<Option<FileSummary>> = vec![None; sources.len()];
    let mut misses: Vec<usize> = Vec::new();
    let mut cached = 0usize;
    for (i, (rel, _)) in sources.iter().enumerate() {
        match cache.get(rel, hashes[i]) {
            Some(hit) => {
                slots[i] = Some(hit.clone());
                cached += 1;
            }
            None => misses.push(i),
        }
    }

    let threads = opts.threads.max(1).min(misses.len().max(1));
    if threads == 1 {
        for &i in &misses {
            let (rel, src) = &sources[i];
            slots[i] = Some(analyzer::summarize_file(rel, src, rules_for(rel)));
        }
    } else {
        // Round-robin assignment, merged back by index: the result is
        // byte-identical to the sequential pass at any thread count.
        let computed: Vec<Vec<(usize, FileSummary)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let misses = &misses;
                    let sources = &sources;
                    scope.spawn(move || {
                        misses
                            .iter()
                            .enumerate()
                            .filter(|(k, _)| k % threads == t)
                            .map(|(_, &i)| {
                                let (rel, src) = &sources[i];
                                (i, analyzer::summarize_file(rel, src, rules_for(rel)))
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for chunk in computed {
            for (i, summary) in chunk {
                slots[i] = Some(summary);
            }
        }
    }
    let summaries: Vec<(String, FileSummary)> =
        sources.iter().zip(slots).map(|((rel, _), slot)| (rel.clone(), slot.unwrap())).collect();

    let mut findings: Vec<Finding> = Vec::new();
    let mut lock_graph = LockGraph::new();
    for (rel, summary) in &summaries {
        findings.extend(summary.findings.iter().cloned());
        for edge in &summary.lock_edges {
            lock_graph.insert(rel, edge);
        }
    }
    findings.extend(lock_graph.finish());
    let rulesets: Vec<RuleSet> = summaries.iter().map(|(rel, _)| rules_for(rel)).collect();
    let call_graph = Graph::build(&summaries);
    findings.extend(taint::run(&summaries, &rulesets, &call_graph));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });

    if let Some(path) = &opts.cache_path {
        let keep: BTreeSet<String> = summaries.iter().map(|(rel, _)| rel.clone()).collect();
        for (i, (rel, summary)) in summaries.iter().enumerate() {
            cache.put(rel.clone(), hashes[i], summary.clone());
        }
        cache.retain_files(&keep);
        if let Err(e) = cache.save(path) {
            return Err(RunError::Cache(path.display().to_string(), e.to_string()));
        }
    }

    let stats =
        RunStats { files: summaries.len(), cached, analysis_ms: start.elapsed().as_millis() };
    Ok((findings, stats))
}

/// Locate the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_gets_panic_lock_tape_free_and_bounded_queue_rules() {
        let r = rules_for("crates/serve/src/queue.rs");
        assert!(r.panic_freedom && r.lock_discipline && r.unsafe_gate && r.tape_free);
        assert!(r.bounded_queue);
        assert!(!r.determinism);
        // The queue discipline is a serving-path guarantee, not global.
        assert!(!rules_for("crates/core/src/linker.rs").bounded_queue);
        assert!(!rules_for("crates/serve/tests/chaos.rs").bounded_queue);
    }

    #[test]
    fn as_truncation_applies_workspace_wide() {
        assert!(rules_for("crates/serve/src/server.rs").as_truncation);
        assert!(rules_for("crates/kb/src/index.rs").as_truncation);
        assert!(rules_for("src/bin/metablink.rs").as_truncation);
    }

    #[test]
    fn frozen_forward_files_get_the_tape_free_rule() {
        for f in TAPE_FREE_FILES {
            assert!(rules_for(f).tape_free, "{f}");
        }
        // The tape itself and training code may of course build tapes.
        assert!(!rules_for("crates/tensor/src/tape.rs").tape_free);
        assert!(!rules_for("crates/encoders/src/train.rs").tape_free);
        assert!(!rules_for("crates/core/src/linker.rs").tape_free);
    }

    #[test]
    fn checkpoint_paths_get_panic_rules() {
        for f in PANIC_FREE_FILES {
            assert!(rules_for(f).panic_freedom, "{f}");
        }
        assert!(!rules_for("crates/tensor/src/tensor.rs").panic_freedom);
    }

    #[test]
    fn resume_covered_crates_get_determinism() {
        assert!(rules_for("crates/core/src/reweight.rs").determinism);
        assert!(rules_for("crates/kb/src/index.rs").determinism);
        assert!(rules_for("crates/par/src/lib.rs").determinism);
        assert!(rules_for("crates/store/src/shard.rs").determinism);
        assert!(!rules_for("crates/serve/src/server.rs").determinism);
        assert!(!rules_for("crates/common/src/lru.rs").determinism);
        // Tests and benches are outside every family but the unsafe
        // gate and float total order.
        let r = rules_for("crates/core/tests/determinism.rs");
        assert!(!r.determinism && !r.panic_freedom && r.unsafe_gate);
    }

    #[test]
    fn store_load_paths_get_the_unbounded_read_rule() {
        assert!(rules_for("crates/store/src/shard.rs").unbounded_read);
        assert!(rules_for("crates/store/src/store.rs").unbounded_read);
        assert!(rules_for("crates/store/src/ivf.rs").unbounded_read);
        // Everything else may still slurp small config files.
        assert!(!rules_for("crates/store/tests/proptest_store.rs").unbounded_read);
        assert!(!rules_for("crates/tensor/src/checkpoint.rs").unbounded_read);
        assert!(!rules_for("crates/serve/src/server.rs").unbounded_read);
    }

    #[test]
    fn float_total_order_applies_workspace_wide() {
        assert!(rules_for("crates/serve/src/server.rs").float_total_order);
        assert!(rules_for("crates/common/src/util.rs").float_total_order);
        assert!(rules_for("src/bin/metablink.rs").float_total_order);
    }

    #[test]
    fn panic_reach_covers_serve_store_checkpoints_and_loadgen() {
        assert!(rules_for("crates/serve/src/worker.rs").panic_reach);
        assert!(rules_for("crates/store/src/shard.rs").panic_reach);
        assert!(rules_for("crates/tensor/src/checkpoint.rs").panic_reach);
        assert!(rules_for("crates/bench/src/bin/loadgen.rs").panic_reach);
        assert!(!rules_for("crates/encoders/src/train.rs").panic_reach);
        assert!(!rules_for("crates/serve/tests/chaos.rs").panic_reach);
    }

    #[test]
    fn det_taint_follows_the_determinism_family() {
        assert!(rules_for("crates/core/src/reweight.rs").det_taint);
        assert!(rules_for("crates/store/src/shard.rs").det_taint);
        assert!(!rules_for("crates/serve/src/server.rs").det_taint);
        assert!(!rules_for("crates/common/src/lru.rs").det_taint);
    }

    #[test]
    fn lock_across_call_follows_lock_discipline() {
        assert!(rules_for("crates/serve/src/server.rs").lock_across_call);
        assert!(!rules_for("crates/core/src/linker.rs").lock_across_call);
    }

    #[test]
    fn hot_loop_files_get_the_alloc_rule() {
        for f in HOT_LOOP_FILES {
            assert!(rules_for(f).alloc_hot_loop, "{f}");
        }
        assert!(!rules_for("crates/tensor/src/optim.rs").alloc_hot_loop);
        assert!(!rules_for("crates/serve/src/server.rs").alloc_hot_loop);
    }
}
