//! Crate-resolved call graph over the per-file item summaries.
//!
//! Resolution is a deterministic **under-approximation**: an edge is
//! only added when the callee is unambiguous under a fixed narrowing
//! chain, and an ambiguous or workspace-external name resolves to
//! nothing (std calls, trait objects, closures all fall out here).
//! Under-approximation is the right polarity for the taint rules in
//! [`crate::taint`]: a missed edge can hide a violation (which the
//! token-level rules still catch at its site), while a wrong edge
//! would manufacture unfixable findings.
//!
//! The narrowing chains, per call form (first step with ≥1 candidate
//! decides; exactly one candidate resolves, several is ambiguous):
//!
//! - `self.name(…)` — same crate + matching impl qualifier; then same
//!   file; then same crate; then unique in workspace `src/` files;
//! - `name(…)` / `recv.name(…)` — same file; then same crate; then
//!   unique in workspace `src/` files. Method calls whose name shadows
//!   a ubiquitous std method ([`STD_METHODS`]) never resolve;
//! - `seg::name(…)` — defs whose impl qualifier is `seg`; then defs in
//!   a file whose stem is `seg` (module files); an unmatched qualifier
//!   means an external target, with no local fallback.
//!
//! Cross-file steps only consider defs in `src/` trees so a test
//! helper sharing a production function's name can never become its
//! resolution target.

use crate::items::{CallKind, FileSummary};

/// Method names ubiquitous on std receivers (collections, iterators,
/// I/O, sync). A `recv.name(…)` call with one of these names is never
/// resolved to a workspace def: the receiver is overwhelmingly more
/// likely a `Vec`/iterator/`File` than the one workspace type that
/// happens to share the method name, and a wrong edge manufactures
/// unfixable findings. (`self.name(…)` calls are exempt — `self` is a
/// workspace type by construction.)
const STD_METHODS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "len",
    "is_empty",
    "clear",
    "contains",
    "extend",
    "iter",
    "iter_mut",
    "into_iter",
    "drain",
    "entry",
    "keys",
    "values",
    "map",
    "filter",
    "zip",
    "fold",
    "collect",
    "next",
    "take",
    "skip",
    "rev",
    "chain",
    "enumerate",
    "find",
    "position",
    "any",
    "all",
    "sum",
    "count",
    "min",
    "max",
    "last",
    "first",
    "peek",
    "sort",
    "join",
    "split",
    "trim",
    "parse",
    "clone",
    "write",
    "read",
    "flush",
    "open",
    "load",
    "store",
    "swap",
    "send",
    "recv",
    "lock",
    "wait",
    "replace",
    "finish",
    "reserve",
    "truncate",
    "retain",
    "append",
];

/// Index of one function definition: `(file index, fn index)` into the
/// summary list the graph was built from.
pub type DefId = (usize, usize);

/// One file's worth of context the resolver needs.
struct FileCtx {
    krate: String,
    stem: String,
    is_src: bool,
}

/// The workspace call graph: for every def, the resolution of each of
/// its call sites (same index as [`crate::items::FnItem::calls`]).
pub struct Graph {
    files: Vec<FileCtx>,
    /// Sorted `(name, DefId)` pairs over every def in the workspace.
    by_name: Vec<(String, DefId)>,
    /// `resolved[file][fn][call]` — `None` for unresolved/external.
    pub resolved: Vec<Vec<Vec<Option<DefId>>>>,
}

/// The crate a workspace-relative path belongs to: `crates/x/…` → `x`,
/// anything else (the root `src/`, `tests/`) → its first segment.
pub fn crate_of(rel_path: &str) -> &str {
    match rel_path.strip_prefix("crates/") {
        Some(rest) => rest.split('/').next().unwrap_or(rest),
        None => rel_path.split('/').next().unwrap_or(rel_path),
    }
}

/// True when the path is part of a `src/` tree (a production module,
/// not a test, bench, or fixture).
fn is_src(rel_path: &str) -> bool {
    rel_path.starts_with("src/") || rel_path.contains("/src/")
}

impl Graph {
    /// Build the graph over `(path, summary)` pairs in sorted-file
    /// order (ids and resolution are deterministic given that order).
    pub fn build(files: &[(String, FileSummary)]) -> Graph {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(path, _)| FileCtx {
                krate: crate_of(path).to_string(),
                stem: path.rsplit('/').next().unwrap_or(path).trim_end_matches(".rs").to_string(),
                is_src: is_src(path),
            })
            .collect();
        let mut by_name: Vec<(String, DefId)> = Vec::new();
        for (fi, (_, summary)) in files.iter().enumerate() {
            for (di, item) in summary.fns.iter().enumerate() {
                by_name.push((item.name.clone(), (fi, di)));
            }
        }
        by_name.sort();
        let mut graph = Graph { files: ctxs, by_name, resolved: Vec::new() };
        let resolved = files
            .iter()
            .enumerate()
            .map(|(fi, (_, summary))| {
                summary
                    .fns
                    .iter()
                    .map(|item| {
                        item.calls
                            .iter()
                            .map(|call| graph.resolve(files, fi, item.qual.as_deref(), call))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        graph.resolved = resolved;
        graph
    }

    /// All defs named `name`, in id order.
    fn candidates<'a>(&'a self, name: &'a str) -> impl Iterator<Item = DefId> + 'a {
        let start = self.by_name.partition_point(|(n, _)| n.as_str() < name);
        self.by_name[start..].iter().take_while(move |(n, _)| n == name).map(|&(_, id)| id)
    }

    /// Resolve one call site from file `fi` (caller qualifier `qual`).
    fn resolve(
        &self,
        files: &[(String, FileSummary)],
        fi: usize,
        qual: Option<&str>,
        call: &crate::items::CallSite,
    ) -> Option<DefId> {
        let def_qual = |id: DefId| files[id.0].1.fns[id.1].qual.as_deref();
        let same_file = |id: DefId| id.0 == fi;
        let same_crate =
            |id: DefId| self.files[id.0].krate == self.files[fi].krate && self.files[id.0].is_src;
        let any_src = |id: DefId| self.files[id.0].is_src;
        let steps: Vec<Box<dyn Fn(DefId) -> bool + '_>> = match &call.kind {
            CallKind::SelfMethod => vec![
                Box::new(move |id| (same_crate(id) || same_file(id)) && def_qual(id) == qual),
                Box::new(same_file),
                Box::new(same_crate),
                Box::new(any_src),
            ],
            CallKind::Method if STD_METHODS.contains(&call.name.as_str()) => return None,
            CallKind::Free | CallKind::Method => {
                vec![Box::new(same_file), Box::new(same_crate), Box::new(any_src)]
            }
            CallKind::Qualified(seg) => {
                // The author named the namespace; if no workspace impl
                // qualifier or module file matches it, the target is
                // external (`File::open`, `Vec::with_capacity`) — never
                // fall back to a same-named local def.
                let seg1 = seg.clone();
                let seg2 = seg.clone();
                vec![
                    Box::new(move |id: DefId| {
                        def_qual(id) == Some(seg1.as_str()) && (any_src(id) || same_file(id))
                    }),
                    Box::new(move |id: DefId| {
                        self.files[id.0].stem == seg2 && (any_src(id) || same_file(id))
                    }),
                ]
            }
        };
        for step in steps {
            let mut hits = self.candidates(&call.name).filter(|&id| step(id));
            if let Some(first) = hits.next() {
                return match hits.next() {
                    None => Some(first),
                    Some(_) => None, // ambiguous: no edge
                };
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::{summarize_file, RuleSet};

    fn build(files: &[(&str, &str)]) -> (Vec<(String, FileSummary)>, Graph) {
        let summaries: Vec<(String, FileSummary)> = files
            .iter()
            .map(|(path, src)| (path.to_string(), summarize_file(path, src, RuleSet::none())))
            .collect();
        let graph = Graph::build(&summaries);
        (summaries, graph)
    }

    /// The resolution of the only call of the only fn in file `fi`.
    fn only_call(graph: &Graph, fi: usize) -> Option<DefId> {
        graph.resolved[fi][0][0]
    }

    #[test]
    fn crate_of_maps_paths() {
        assert_eq!(crate_of("crates/serve/src/server.rs"), "serve");
        assert_eq!(crate_of("src/bin/metablink.rs"), "src");
        assert_eq!(crate_of("tests/ci_drift.rs"), "tests");
    }

    #[test]
    fn same_file_resolution_wins() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { helper(); }\nfn helper() {}"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
        ]);
        assert_eq!(only_call(&g, 0), Some((0, 1)));
    }

    #[test]
    fn unique_workspace_fallback_resolves_cross_crate() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { helper(); }"),
            ("crates/b/src/util.rs", "fn helper() {}"),
        ]);
        assert_eq!(only_call(&g, 0), Some((1, 0)));
    }

    #[test]
    fn cross_crate_ambiguity_yields_no_edge() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { helper(); }"),
            ("crates/b/src/lib.rs", "fn helper() {}"),
            ("crates/c/src/lib.rs", "fn helper() {}"),
        ]);
        assert_eq!(only_call(&g, 0), None);
    }

    #[test]
    fn test_helpers_are_never_cross_file_targets() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { helper(); }"),
            ("crates/a/tests/it.rs", "fn helper() {}"),
        ]);
        assert_eq!(only_call(&g, 0), None);
    }

    #[test]
    fn self_method_prefers_the_matching_impl() {
        let (_, g) = build(&[
            (
                "crates/a/src/lib.rs",
                "impl Server { fn caller(&self) { self.step(); } }\nimpl Server { fn step(&self) {} }",
            ),
            ("crates/a/src/other.rs", "impl Pool { fn step(&self) {} }"),
        ]);
        assert_eq!(only_call(&g, 0), Some((0, 1)));
    }

    #[test]
    fn qualified_calls_resolve_via_impl_qual_and_file_stem() {
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { Server::start(); }"),
            ("crates/a/src/server.rs", "impl Server { fn start() {} }"),
        ]);
        assert_eq!(only_call(&g, 0), Some((1, 0)));
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller() { util::tick(); }"),
            ("crates/a/src/util.rs", "fn tick() {}"),
        ]);
        assert_eq!(only_call(&g, 0), Some((1, 0)));
    }

    #[test]
    fn std_calls_resolve_to_nothing() {
        let (_, g) = build(&[("crates/a/src/lib.rs", "fn caller(x: &str) { x.trim(); }")]);
        assert_eq!(only_call(&g, 0), None);
    }

    #[test]
    fn std_shadowing_method_names_never_resolve() {
        // `writer.push(x)` is a Vec push even though the workspace has
        // a uniquely-named `push` method somewhere.
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "fn caller(buf: &mut Vec<u8>) { buf.push(1); }"),
            ("crates/b/src/store.rs", "impl Writer { fn push(&mut self) {} }"),
        ]);
        assert_eq!(only_call(&g, 0), None);
        // …but a free call or `self.push()` still resolves.
        let (_, g) = build(&[
            ("crates/a/src/lib.rs", "impl W { fn caller(&mut self) { self.push(); } }"),
            ("crates/a/src/store.rs", "impl W { fn push(&mut self) {} }"),
        ]);
        assert_eq!(only_call(&g, 0), Some((1, 0)));
    }

    #[test]
    fn unmatched_qualified_namespace_has_no_local_fallback() {
        // `File::open` must not resolve to the same-file `open`.
        let (_, g) =
            build(&[("crates/a/src/lib.rs", "fn caller() { File::open(\"x\"); }\nfn open() {}")]);
        assert_eq!(only_call(&g, 0), None);
    }
}
