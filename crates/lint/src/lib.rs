//! # mb-lint
//!
//! In-repo static analysis enforcing the guarantees the rest of this
//! workspace only holds by convention:
//!
//! - **panic-freedom** on the serving and checkpoint request/load
//!   paths (`crates/serve`, the `mb-params` checkpoint load/save in
//!   `crates/tensor`, `crates/kb/src/store.rs`): no `.unwrap()`,
//!   `.expect()`, `panic!`-family macros, or direct slice indexing;
//! - **determinism** in the crates covered by the bit-identical
//!   resume guarantee: no `HashMap`/`HashSet` (their iteration order
//!   is per-process random and silently breaks the replay-by-seed
//!   reweighting experiments), no `SystemTime`/`Instant`-derived
//!   values, no `std::env`;
//! - **lock discipline** across `crates/serve`: the per-function
//!   lock-acquisition graph must be cycle-free, and no blocking I/O
//!   while holding a lock;
//! - an **unsafe gate**: `unsafe` is denied workspace-wide.
//!
//! On top of the token-level families sit four **interprocedural**
//! rules that see across function boundaries: a lightweight item
//! parser ([`items`]) extracts `fn` items, impl/trait context, and
//! call edges; a deterministic resolver ([`graph`]) builds the
//! workspace call graph; and a fixed-point taint engine ([`taint`])
//! propagates panic / nondeterminism / I/O / allocation facts along it
//! (`panic-reach`, `det-taint`, `lock-across-call`,
//! `alloc-in-hot-loop`). Because every run now reads the whole
//! workspace, per-file summaries are memoized in an incremental cache
//! ([`cache`]) keyed by content hash — `--json` output is
//! byte-identical cached or cold.
//!
//! The pass is a hand-rolled lexer ([`lexer`]) — strings, char
//! literals, nested block comments and raw strings handled precisely —
//! feeding a token-level analyzer ([`analyzer`], [`locks`]).
//! Violations can be suppressed in place with
//! `// mb-lint: allow(<rule>) -- <justification>` ([`suppress`]);
//! suppressions are themselves linted for a non-empty justification,
//! and for the interprocedural rules an allow is also a propagation
//! boundary. Pre-existing findings live in a committed baseline
//! ([`baseline`]) that CI only lets shrink. `--explain <rule>`
//! ([`explain`]) prints each rule's contract and suppression form.
//!
//! Run it as `cargo run -p mb-lint`, `metablink lint`, or in CI via
//! `scripts/ci.sh`. The crate is deliberately zero-dependency: the
//! linter must stay buildable even when everything it checks is not.

#![warn(missing_docs)]

pub mod analyzer;
pub mod baseline;
pub mod cache;
pub mod cli;
pub mod explain;
pub mod findings;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod suppress;
pub mod taint;
pub mod workspace;

pub use analyzer::{analyze_file, summarize_file, RuleSet};
pub use findings::{Finding, RULE_IDS};
pub use items::FileSummary;
pub use locks::LockGraph;
