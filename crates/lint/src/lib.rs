//! # mb-lint
//!
//! In-repo static analysis enforcing the guarantees the rest of this
//! workspace only holds by convention:
//!
//! - **panic-freedom** on the serving and checkpoint request/load
//!   paths (`crates/serve`, the `mb-params` checkpoint load/save in
//!   `crates/tensor`, `crates/kb/src/store.rs`): no `.unwrap()`,
//!   `.expect()`, `panic!`-family macros, or direct slice indexing;
//! - **determinism** in the crates covered by the bit-identical
//!   resume guarantee: no `HashMap`/`HashSet` (their iteration order
//!   is per-process random and silently breaks the replay-by-seed
//!   reweighting experiments), no `SystemTime`/`Instant`-derived
//!   values, no `std::env`;
//! - **lock discipline** across `crates/serve`: the per-function
//!   lock-acquisition graph must be cycle-free, and no blocking I/O
//!   while holding a lock;
//! - an **unsafe gate**: `unsafe` is denied workspace-wide.
//!
//! The pass is a hand-rolled lexer ([`lexer`]) — strings, char
//! literals, nested block comments and raw strings handled precisely —
//! feeding a token-level analyzer ([`analyzer`], [`locks`]).
//! Violations can be suppressed in place with
//! `// mb-lint: allow(<rule>) -- <justification>` ([`suppress`]);
//! suppressions are themselves linted for a non-empty justification.
//! Pre-existing findings live in a committed baseline
//! ([`baseline`]) that CI only lets shrink.
//!
//! Run it as `cargo run -p mb-lint`, `metablink lint`, or in CI via
//! `scripts/ci.sh`. The crate is deliberately zero-dependency: the
//! linter must stay buildable even when everything it checks is not.

#![warn(missing_docs)]

pub mod analyzer;
pub mod baseline;
pub mod cli;
pub mod findings;
pub mod lexer;
pub mod locks;
pub mod suppress;
pub mod workspace;

pub use analyzer::{analyze_file, RuleSet};
pub use findings::{Finding, RULE_IDS};
pub use locks::LockGraph;
