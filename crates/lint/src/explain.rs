//! `--explain <rule>`: the contract behind each rule, one example
//! violation, and the suppression form, printed for humans at the
//! terminal (`mb-lint --explain panic-reach`, `metablink lint
//! --explain panic-reach`).

use crate::findings::RULE_IDS;

/// One rule's documentation.
struct Entry {
    rule: &'static str,
    contract: &'static str,
    example: &'static str,
}

const ENTRIES: &[Entry] = &[
    Entry {
        rule: "panic-unwrap",
        contract: "Panic-free paths (serve, checkpoint load/save, kb store) must not call \
                   `.unwrap()`: a panic there kills a serving worker or corrupts a checkpoint \
                   half-written. Return a typed error or recover.",
        example: "let v = map.get(&k).unwrap();        // violation\nlet v = map.get(&k).ok_or(Error::Missing)?;  // fixed",
    },
    Entry {
        rule: "panic-expect",
        contract: "Same contract as panic-unwrap: `.expect(\"…\")` panics with a nicer message, \
                   but still panics. Return a typed error or recover.",
        example: "let f = File::open(p).expect(\"open\");  // violation\nlet f = File::open(p).map_err(Error::Io)?;   // fixed",
    },
    Entry {
        rule: "panic-macro",
        contract: "`panic!` / `unreachable!` / `todo!` / `unimplemented!` abort panic-free \
                   paths. Encode the impossible case in the type or return an error.",
        example: "None => unreachable!(),              // violation\nNone => return Err(Error::Corrupt),  // fixed",
    },
    Entry {
        rule: "indexing",
        contract: "Direct `xs[i]` panics out of bounds on panic-free paths. Use `.get(i)` or \
                   prove the bound to the reader at the call site.",
        example: "let first = xs[0];                   // violation\nlet first = xs.first().ok_or(Error::Empty)?;  // fixed",
    },
    Entry {
        rule: "det-hash",
        contract: "`HashMap`/`HashSet` iteration order is per-process random; on replay-contract \
                   crates it silently breaks replay-by-seed. Use `BTreeMap`/`BTreeSet` or sort \
                   before iterating.",
        example: "for (k, v) in hash_map { … }         // violation\nfor (k, v) in btree_map { … }        // fixed",
    },
    Entry {
        rule: "det-time",
        contract: "`SystemTime`/`Instant` make results depend on wall-clock time. Thread a \
                   seeded or recorded value through instead.",
        example: "let seed = Instant::now().elapsed().as_nanos();  // violation\nlet seed = cfg.seed;                             // fixed",
    },
    Entry {
        rule: "det-env",
        contract: "`std::env` makes results depend on the launching environment. Take the value \
                   as an explicit parameter.",
        example: "let dir = std::env::var(\"MB_DIR\")?;  // violation\nfn run(dir: &Path) { … }             // fixed",
    },
    Entry {
        rule: "lock-order",
        contract: "All held→acquired lock pairs across the crate must form an acyclic order; a \
                   cycle is a potential deadlock. Fix one global acquisition order.",
        example: "thread A: state.lock() then cache.lock()\nthread B: cache.lock() then state.lock()   // violation: cycle",
    },
    Entry {
        rule: "lock-io",
        contract: "Blocking I/O while holding a lock stalls every thread contending for it (and \
                   hands slow peers a denial-of-service lever). Release the lock first.",
        example: "let g = self.state.lock()…; out.write_all(…)  // violation\ndrop(g); out.write_all(…)                     // fixed",
    },
    Entry {
        rule: "unsafe-gate",
        contract: "`unsafe` is denied workspace-wide, tests included. Find a safe formulation.",
        example: "let x = unsafe { *ptr };             // violation",
    },
    Entry {
        rule: "float-total-order",
        contract: "A float comparator built on `partial_cmp` orders NaN arbitrarily, so sorted \
                   output depends on input permutation — a silent replay break. Use \
                   `f64::total_cmp`.",
        example: "v.sort_by(|a, b| a.partial_cmp(b).unwrap());  // violation\nv.sort_by(|a, b| a.total_cmp(b));             // fixed",
    },
    Entry {
        rule: "tape-free",
        contract: "The serving path rides one shared `FrozenParams` snapshot: no gradient-tape \
                   allocation (`Tape`), no per-forward parameter copies (`.inject(`, \
                   `params.clone()`).",
        example: "let h = tape.inject(&params);        // violation\nlet h = frozen.forward(&input);      // fixed",
    },
    Entry {
        rule: "bounded-queue",
        contract: "Serving-path work buffers must show their bound in the pushing function \
                   (capacity check, truncate, max_batch) — unbounded queues turn overload into \
                   memory growth instead of fast shedding.",
        example: "self.pending.push(job);              // violation\nif self.pending.len() < self.capacity { self.pending.push(job); }  // fixed",
    },
    Entry {
        rule: "as-truncation",
        contract: "`id as u32`-style narrowing wraps silently once the id space outgrows the \
                   target, aliasing two entities. Use `TryFrom` (reject) or keep the id wide.",
        example: "buf.put(entity_id as u32);           // violation\nbuf.put(u32::try_from(entity_id)?);  // fixed",
    },
    Entry {
        rule: "unbounded-read",
        contract: "Store/shard load paths promise bounded-RAM streaming verification; \
                   `read_to_end` / `fs::read` materializes a multi-gigabyte shard. Stream \
                   fixed-size chunks or seek + `read_exact` a known length.",
        example: "file.read_to_end(&mut buf)?;         // violation\nfile.read_exact(&mut chunk)?;        // fixed",
    },
    Entry {
        rule: "panic-reach",
        contract: "Interprocedural: a call in a panic-protected file (serve, checkpoint, store, \
                   loadgen) must not transitively reach a panicking site anywhere in the \
                   workspace. The finding's witness path shows one route. Fix the root, or \
                   audit the boundary — an allow at a call site stops propagation for every \
                   transitive caller.",
        example: "// serve/src/worker.rs\nwork(job);           // violation: work -> parse -> unwrap\n// after the sweep\nwork(job)?;          // parse returns Result now",
    },
    Entry {
        rule: "det-taint",
        contract: "Interprocedural: replay-contract paths (tensor, core, datagen, store, …) \
                   must not transitively call nondeterministic sources — time, env, `HashMap` \
                   iteration, thread id. An allow at the boundary stops propagation.",
        example: "// core/src/reweight.rs\nlet w = stats();     // violation: stats -> HashMap::new\nlet w = stats_ordered();  // fixed: BTreeMap inside",
    },
    Entry {
        rule: "lock-across-call",
        contract: "Interprocedural: a lock held at a call site must not reach blocking I/O or a \
                   re-acquire of the same lock in any transitive callee (self-deadlock with \
                   std::sync::Mutex). Release the lock before the call or pass the guard down.",
        example: "let g = self.state.lock()…;\nself.flush_all();    // violation: flush_all -> write_all\ndrop(g);\nself.flush_all();    // fixed",
    },
    Entry {
        rule: "alloc-in-hot-loop",
        contract: "Interprocedural: allocation-shaped constructs (vec!/format!, to_vec, \
                   collect, Box::new, …), direct or via any transitive callee, inside loops of \
                   hot-path files (kernels, frozen forwards, batch drain). Hoist the allocation \
                   out of the loop or reuse a buffer.",
        example: "for row in 0..n {\n    let tmp = vec![0.0; d];   // violation: one alloc per row\n}\nlet mut tmp = vec![0.0; d];   // fixed: hoisted\nfor row in 0..n { tmp.fill(0.0); … }",
    },
    Entry {
        rule: "suppression",
        contract: "`// mb-lint: allow(rule) -- justification` silences a finding on its line \
                   (or the next line when the comment stands alone). The justification is \
                   mandatory and non-empty; unknown rule ids are rejected. This rule flags \
                   malformed suppressions.",
        example: "// mb-lint: allow(panic-unwrap)                  // violation: no justification\n// mb-lint: allow(panic-unwrap) -- init-only path  // well-formed",
    },
];

/// Render the explanation for `rule`, or an error listing known rules.
pub fn explain(rule: &str) -> Result<String, String> {
    let entry = ENTRIES.iter().find(|e| e.rule == rule).ok_or_else(|| {
        format!("unknown rule {rule:?}; known rules:\n  {}", RULE_IDS.join("\n  "))
    })?;
    Ok(format!(
        "rule: {}\n\ncontract:\n  {}\n\nexample:\n{}\n\nsuppression:\n  // mb-lint: allow({}) -- <justification>\n  (audited; the justification is mandatory. For the interprocedural rules an\n  allow is also a propagation boundary: one audit at the right call site\n  clears every transitive caller.)",
        entry.rule,
        entry.contract,
        entry
            .example
            .lines()
            .map(|l| format!("  {l}"))
            .collect::<Vec<_>>()
            .join("\n"),
        entry.rule,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_id_has_an_entry() {
        for rule in RULE_IDS {
            let text = explain(rule).unwrap_or_else(|e| panic!("{rule}: {e}"));
            assert!(text.contains(rule), "{rule}");
            assert!(text.contains("contract:"), "{rule}");
            assert!(text.contains("suppression:"), "{rule}");
        }
    }

    #[test]
    fn entries_match_the_catalogue_exactly() {
        let entry_ids: Vec<&str> = ENTRIES.iter().map(|e| e.rule).collect();
        assert_eq!(entry_ids, RULE_IDS, "explain entries must mirror RULE_IDS order");
    }

    #[test]
    fn unknown_rule_lists_the_catalogue() {
        let err = explain("no-such-rule").unwrap_err();
        assert!(err.contains("panic-reach"));
        assert!(err.contains("det-taint"));
    }
}
