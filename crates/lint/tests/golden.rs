//! Golden-file tests: one seeded fixture per rule family, asserting
//! the exact findings (rule, line, column) the analyzer produces —
//! positives fire, justified suppressions silence, clean code and
//! `#[cfg(test)]` bodies stay quiet — plus the JSON report shape and
//! an end-to-end run of the `mb-lint` binary against seeded-violation
//! and clean miniature workspaces.

use mb_lint::analyzer::{analyze_file, RuleSet};
use mb_lint::findings::to_json;
use mb_lint::graph::Graph;
use mb_lint::locks::LockGraph;
use mb_lint::{summarize_file, taint, FileSummary};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn spans(findings: &[mb_lint::Finding]) -> Vec<(&'static str, usize, usize)> {
    findings.iter().map(|f| (f.rule, f.line, f.col)).collect()
}

#[test]
fn panic_freedom_golden() {
    let src = fixture("panic.rs");
    let rules = RuleSet { panic_freedom: true, ..RuleSet::none() };
    let found = analyze_file("panic.rs", &src, rules, None);
    assert_eq!(
        spans(&found),
        vec![
            ("panic-unwrap", 3, 23),
            ("panic-expect", 4, 23),
            ("panic-macro", 5, 17),
            ("indexing", 6, 14),
        ],
        "suppressed (line 12), clean (line 16), and #[cfg(test)] uses must stay silent"
    );
}

#[test]
fn determinism_golden() {
    let src = fixture("determinism.rs");
    let rules = RuleSet { determinism: true, ..RuleSet::none() };
    let found = analyze_file("determinism.rs", &src, rules, None);
    assert_eq!(
        spans(&found),
        vec![
            ("det-hash", 3, 23),
            ("det-hash", 6, 12),
            ("det-hash", 6, 32),
            ("det-time", 7, 25),
            ("det-time", 8, 25),
            ("det-env", 9, 19),
        ],
        "the suppressed HashSet (line 14) and BTreeMap (line 19) must stay silent"
    );
}

#[test]
fn unsafe_gate_golden() {
    let src = fixture("unsafe.rs");
    let rules = RuleSet { unsafe_gate: true, ..RuleSet::none() };
    let found = analyze_file("unsafe.rs", &src, rules, None);
    assert_eq!(spans(&found), vec![("unsafe-gate", 3, 5)], "the justified unsafe must be silent");
}

#[test]
fn suppression_hygiene_golden() {
    let src = fixture("suppression.rs");
    // Suppression hygiene is checked regardless of enabled families.
    let found = analyze_file("suppression.rs", &src, RuleSet::none(), None);
    assert_eq!(
        spans(&found),
        vec![
            ("suppression", 3, 5),
            ("suppression", 4, 5),
            ("suppression", 5, 5),
            ("suppression", 6, 5),
        ]
    );
    assert!(found[0].message.contains("justification"), "{}", found[0].message);
    assert!(found[1].message.contains("empty"), "{}", found[1].message);
    assert!(found[2].message.contains("no-such-rule"), "{}", found[2].message);
    assert!(found[3].message.contains("allow"), "{}", found[3].message);
}

#[test]
fn float_total_order_golden() {
    let src = fixture("float_order.rs");
    let rules = RuleSet { float_total_order: true, ..RuleSet::none() };
    let found = analyze_file("float_order.rs", &src, rules, None);
    assert_eq!(
        spans(&found),
        vec![
            ("float-total-order", 4, 7),
            ("float-total-order", 5, 11),
            ("float-total-order", 6, 22),
            ("float-total-order", 7, 22),
        ],
        "suppressed (line 12), total_cmp (line 17), bare partial_cmp (line 18), \
         and #[cfg(test)] uses must stay silent"
    );
    assert!(found[0].message.contains("total_cmp"), "{}", found[0].message);
}

#[test]
fn tape_free_golden() {
    let src = fixture("tape_free.rs");
    let rules = RuleSet { tape_free: true, ..RuleSet::none() };
    let found = analyze_file("tape_free.rs", &src, rules, None);
    assert_eq!(
        spans(&found),
        vec![
            ("tape-free", 3, 25),
            ("tape-free", 4, 17),
            ("tape-free", 5, 18),
            ("tape-free", 6, 20),
            ("tape-free", 7, 23),
            ("tape-free", 8, 13),
        ],
        "suppressed (line 13), frozen-handle clones (lines 17-19), and #[cfg(test)] \
         tape uses must stay silent"
    );
    assert!(found[0].message.contains("FrozenParams"), "{}", found[0].message);
}

#[test]
fn bounded_queue_golden() {
    let src = fixture("bounded_queue.rs");
    let rules = RuleSet { bounded_queue: true, ..RuleSet::none() };
    let found = analyze_file("bounded_queue.rs", &src, rules, None);
    assert_eq!(
        spans(&found),
        vec![
            ("bounded-queue", 4, 13),
            ("bounded-queue", 5, 11),
            ("bounded-queue", 6, 18),
            ("bounded-queue", 7, 10),
        ],
        "suppressed (line 12), capacity-checked (line 19), truncating (line 24), \
         max_batch (line 28), non-queue pushes (lines 32-33), and #[cfg(test)] \
         pushes must stay silent"
    );
    assert!(found[0].message.contains("bound"), "{}", found[0].message);
}

#[test]
fn as_truncation_golden() {
    let src = fixture("as_truncation.rs");
    let rules = RuleSet { as_truncation: true, ..RuleSet::none() };
    let found = analyze_file("as_truncation.rs", &src, rules, None);
    assert_eq!(
        spans(&found),
        vec![("as-truncation", 4, 16), ("as-truncation", 5, 23), ("as-truncation", 6, 21)],
        "suppressed (line 11), widening/native casts (lines 15-16), non-id sources \
         (lines 17-18), and #[cfg(test)] casts must stay silent"
    );
    assert!(found[0].message.contains("TryFrom"), "{}", found[0].message);
}

#[test]
fn lock_discipline_golden() {
    let src = fixture("locks.rs");
    let rules = RuleSet { lock_discipline: true, ..RuleSet::none() };
    let mut graph = LockGraph::default();
    let mut found = analyze_file("locks.rs", &src, rules, Some(&mut graph));
    found.extend(graph.finish());
    assert_eq!(
        spans(&found),
        vec![("lock-io", 12, 7), ("lock-order", 18, 17), ("lock-order", 25, 17)],
        "clean_scoped must not contribute an edge (its locks never overlap)"
    );
    let cycle: Vec<&str> = found[1..].iter().map(|f| f.excerpt.as_str()).collect();
    assert_eq!(cycle, vec!["s.a -> s.b", "s.b -> s.a"]);
}

// --- Interprocedural golden fixtures ----------------------------------

/// Run one fixture through the full interprocedural pipeline as if it
/// were a protected `src/` file with `rules` enabled.
fn interproc(name: &str, rules: RuleSet) -> Vec<mb_lint::Finding> {
    let src = fixture(name);
    let file = format!("crates/x/src/{name}");
    let summaries: Vec<(String, FileSummary)> =
        vec![(file.clone(), summarize_file(&file, &src, rules))];
    let graph = Graph::build(&summaries);
    taint::run(&summaries, &[rules], &graph)
}

#[test]
fn panic_reach_golden() {
    let rules = RuleSet { panic_reach: true, ..RuleSet::none() };
    let found = interproc("interproc_panic.rs", rules);
    assert_eq!(
        spans(&found),
        vec![("panic-reach", 5, 5), ("panic-reach", 9, 5)],
        "audited (line 18) and fixed (line 22) variants must stay silent"
    );
    assert!(found[0].message.contains("unwrap"), "witness path: {}", found[0].message);
    assert!(found[0].message.contains("deep"), "witness path: {}", found[0].message);
}

#[test]
fn det_taint_golden() {
    let rules = RuleSet { det_taint: true, ..RuleSet::none() };
    let found = interproc("interproc_det.rs", rules);
    assert_eq!(
        spans(&found),
        vec![("det-taint", 5, 5)],
        "audited (line 15) and BTreeMap-backed (line 19) variants must stay silent"
    );
    assert!(found[0].message.contains("HashMap"), "witness path: {}", found[0].message);
}

#[test]
fn lock_across_call_golden() {
    let rules = RuleSet { lock_across_call: true, ..RuleSet::none() };
    let found = interproc("interproc_lock.rs", rules);
    assert_eq!(
        spans(&found),
        vec![("lock-across-call", 15, 14), ("lock-across-call", 25, 14)],
        "audited (line 35) and release-first (line 42) variants must stay silent"
    );
    assert!(found[0].message.contains("I/O"), "{}", found[0].message);
    assert!(found[1].message.contains("re-acquires"), "{}", found[1].message);
}

#[test]
fn alloc_in_hot_loop_golden() {
    let rules = RuleSet { alloc_hot_loop: true, ..RuleSet::none() };
    let found = interproc("interproc_alloc.rs", rules);
    assert_eq!(
        spans(&found),
        vec![("alloc-in-hot-loop", 8, 20), ("alloc-in-hot-loop", 20, 17)],
        "audited (line 30) and hoisted (line 36) variants must stay silent"
    );
    assert!(found[0].message.contains("vec"), "witness path: {}", found[0].message);
}

#[test]
fn json_report_shape() {
    let src = fixture("panic.rs");
    let rules = RuleSet { panic_freedom: true, ..RuleSet::none() };
    let found = analyze_file("panic.rs", &src, rules, None);
    let new: Vec<bool> = found.iter().map(|f| f.rule != "panic-unwrap").collect();
    let json = to_json(&found, &new, 2);
    assert!(json.starts_with("{\"version\":1,\"total\":4,\"new\":3,\"stale_baseline\":2,"));
    assert!(
        json.contains("{\"rule\":\"panic-unwrap\",\"file\":\"panic.rs\",\"line\":3,\"col\":23,")
    );
    assert!(json.contains("\"excerpt\":\"unwrap\",\"new\":false}"));
    assert!(json.ends_with("]}"));
    // Balanced and quote-escaped: a JSON-hostile excerpt must not
    // break the document.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

// --- End-to-end binary runs over miniature workspaces -----------------

struct TempWs {
    root: std::path::PathBuf,
}

impl TempWs {
    /// A miniature workspace under the target temp dir; `files` are
    /// `(relative path, contents)`.
    fn new(tag: &str, files: &[(&str, &str)]) -> TempWs {
        let root = std::env::temp_dir().join(format!("mb-lint-e2e-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
        for (rel, contents) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, contents).unwrap();
        }
        TempWs { root }
    }

    fn lint_json(&self) -> (i32, String) {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_mb-lint"))
            .args(["--root", self.root.to_str().unwrap(), "--json"])
            .output()
            .expect("spawn mb-lint");
        (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn binary_fails_on_seeded_violations_of_every_category() {
    let ws = TempWs::new(
        "seeded",
        &[
            // panic-freedom + lock-discipline territory.
            (
                "crates/serve/src/bad.rs",
                "use std::io::Write;\nuse std::sync::Mutex;\n\
                 fn f(v: &[u32], m: &Mutex<u32>, w: &mut impl Write) -> u32 {\n\
                 let g = m.lock().unwrap();\n\
                 w.write_all(b\"x\").ok();\n\
                 drop(g);\n\
                 v[0]\n}\n",
            ),
            // determinism territory.
            (
                "crates/core/src/bad.rs",
                "use std::collections::HashMap;\n\
                 fn f() -> usize { HashMap::<u32, u32>::new().len() }\n",
            ),
            // unsafe gate applies everywhere.
            ("crates/other/src/bad.rs", "fn f(p: *const u32) -> u32 { unsafe { *p } }\n"),
        ],
    );
    let (code, json) = ws.lint_json();
    assert_eq!(code, 1, "seeded violations must fail the lint\n{json}");
    for rule in ["panic-unwrap", "indexing", "lock-io", "det-hash", "unsafe-gate"] {
        assert!(json.contains(&format!("\"rule\":\"{rule}\"")), "missing {rule} in\n{json}");
    }
}

#[test]
fn binary_exits_2_when_a_workspace_file_cannot_be_parsed() {
    let ws = TempWs::new("unreadable", &[("crates/serve/src/good.rs", "fn f() -> u32 { 0 }\n")]);
    // A workspace .rs file that is not UTF-8 cannot be analyzed; the
    // run must fail loudly (exit 2) rather than silently skip it.
    std::fs::write(ws.root.join("crates/serve/src/bad.rs"), [0x66, 0x6e, 0xff, 0xfe]).unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_mb-lint"))
        .args(["--root", ws.root.to_str().unwrap(), "--json"])
        .output()
        .expect("spawn mb-lint");
    assert_eq!(out.status.code(), Some(2), "unreadable file must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad.rs"), "stderr must name the file:\n{stderr}");
    assert!(out.stdout.is_empty(), "no report on a failed parse");
}

#[test]
fn binary_passes_on_a_clean_workspace() {
    let ws = TempWs::new(
        "clean",
        &[
            (
                "crates/serve/src/good.rs",
                "fn f(v: &[u32]) -> u32 { v.first().copied().unwrap_or(0) }\n",
            ),
            (
                "crates/core/src/good.rs",
                "use std::collections::BTreeMap;\n\
                 fn f() -> usize { BTreeMap::<u32, u32>::new().len() }\n",
            ),
        ],
    );
    let (code, json) = ws.lint_json();
    assert_eq!(code, 0, "clean workspace must pass\n{json}");
    assert!(json.contains("\"total\":0"), "{json}");
}
