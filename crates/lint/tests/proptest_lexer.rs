//! Property tests of the mb-lint lexer and suppression parser.
//!
//! The lexer is *total* — any byte sequence lexes, and the
//! concatenation of token slices reconstructs the input byte-for-byte.
//! On top of that, container tokens must not leak: text placed inside a
//! string literal, raw string, or comment must never surface as an
//! identifier token (that would let `"unwrap"` in a log message trip
//! the panic-freedom rules, or hide a real `.unwrap()` from them).

use mb_check::gen::{self, Gen};
use mb_check::{prop_assert, prop_assert_eq};
use mb_lint::lexer::{lex, TokenKind};
use mb_lint::suppress::parse_allow;

/// Random fragments that exercise every lexer mode, including the
/// tricky ones (nested comments, raw strings, lifetimes vs chars).
fn fragment() -> impl Gen<Value = String> {
    let pool: Vec<String> = vec![
        "fn main() { }".into(),
        "let x = v[0];".into(),
        "a.unwrap()".into(),
        "\"a string with unwrap inside\"".into(),
        "\"esc \\\" quote\"".into(),
        "r\"raw\"".into(),
        "r#\"raw with \" quote\"#".into(),
        "r##\"nested \"# hash\"##".into(),
        "br#\"bytes\"#".into(),
        "// line comment with panic!\n".into(),
        "/* block */".into(),
        "/* outer /* nested */ still comment */".into(),
        "'c'".into(),
        "'\\n'".into(),
        "'static".into(),
        "&'a str".into(),
        "r#match".into(),
        "1_000".into(),
        "0xff".into(),
        "1.5e-3".into(),
        "0..n".into(),
        "::".into(),
        "->".into(),
        "\n".into(),
        "    ".into(),
        "ident_ω".into(),
        "λ".into(),
    ];
    gen::vec_of(gen::usize_in(0..27), 0..24)
        .map(move |idxs| idxs.into_iter().map(|i| pool[i].clone()).collect::<String>())
}

mb_check::check! {
    #![config(cases = 256)]

    fn roundtrip_on_structured_fragments(src in fragment()) {
        let toks = lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
    }

    fn roundtrip_on_arbitrary_text(src in gen::any_string(0..64)) {
        // Totality: even non-Rust garbage (unterminated strings,
        // stray quotes, control characters) lexes and reconstructs.
        let toks = lex(&src);
        let rebuilt: String = toks.iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(rebuilt, src);
        for t in &toks {
            prop_assert!(t.start < t.end, "empty token at {}", t.start);
        }
    }

    fn string_contents_never_leak_tokens(word in gen::lowercase_string(1..12)) {
        // `zq` prefix keeps the payload distinct from the real
        // identifiers in the surrounding code (`let`, `s`, `x`, `f`).
        let payload = format!("zq{word}");
        let src = format!("let s = \"{payload} unwrap panic\"; x.f()");
        let leaked = lex(&src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .any(|t| [payload.as_str(), "unwrap", "panic"].contains(&t.text(&src)));
        prop_assert!(!leaked, "string payload surfaced as an identifier");
    }

    fn comment_contents_never_leak_tokens(word in gen::lowercase_string(1..12)) {
        for src in [
            format!("/* {word} unwrap /* nested {word} */ tail */ y"),
            format!("// {word} unwrap\ny"),
            format!("r#\"{word} unwrap\"# ; y"),
        ] {
            let idents: Vec<&str> = lex(&src)
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(&src))
                .collect();
            prop_assert_eq!(idents, vec!["y"], "leak in {:?}", src);
        }
    }

    fn suppression_comments_parse_back(
        rules in gen::vec_of(gen::usize_in(0..11), 1..4),
        just in gen::lowercase_string(1..20),
    ) {
        let names: Vec<&str> =
            rules.iter().map(|&i| mb_lint::RULE_IDS[i % mb_lint::RULE_IDS.len()]).collect();
        let comment = format!("// mb-lint: allow({}) -- {}", names.join(", "), just);
        let allow = parse_allow(&comment).expect("marker present").expect("well-formed");
        prop_assert_eq!(allow.rules, names);
        prop_assert_eq!(allow.justification.as_deref(), Some(just.as_str()));
    }

    fn random_comment_text_never_panics_the_parser(text in gen::any_string(0..40)) {
        // parse_allow must be total over arbitrary comment bodies.
        let _ = parse_allow(&format!("// mb-lint:{text}"));
        let _ = parse_allow(&format!("/* {text} */"));
    }
}
