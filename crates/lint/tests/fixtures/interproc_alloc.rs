//! Seeded alloc-in-hot-loop fixture: a loop calling an allocating
//! callee, a direct allocation in a loop, an audited boundary, and a
//! hoisted fixed variant.

pub fn hot(n: usize) -> Vec<u32> {
    let mut out = Vec::new();
    for i in 0..n {
        out.extend(make(i));
    }
    out
}

fn make(i: usize) -> Vec<u32> {
    vec![i as u32]
}

pub fn direct(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        let s = format!("{i}");
        total += s.len();
    }
    total
}

pub fn audited(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        // mb-lint: allow(alloc-in-hot-loop) -- fixture: audited boundary
        total += make(i).len();
    }
    total
}

pub fn hoisted(n: usize) -> u64 {
    let buf = vec![0u64; n];
    let mut acc = 0;
    for v in &buf {
        acc += *v;
    }
    acc
}
