// Seeded unsafe-gate violation plus a justified suppression.
fn positive(p: *const u32) -> u32 {
    unsafe { *p }
}

fn suppressed(p: *const u32) -> u32 {
    // mb-lint: allow(unsafe-gate) -- FFI boundary audited in review
    unsafe { *p }
}
