//! Seeded lock-across-call fixture: a guard held across a call that
//! reaches I/O, one that re-acquires the same lock, an audited
//! boundary, and a release-first fixed variant.

use std::io::Write;
use std::sync::Mutex;

pub struct S {
    state: Mutex<u32>,
}

impl S {
    pub fn held_io(&self, w: &mut impl Write) {
        let g = self.state.lock();
        self.flush_all(w);
        drop(g);
    }

    fn flush_all(&self, w: &mut impl Write) {
        let _ = w.write_all(b"x");
    }

    pub fn held_reacquire(&self) {
        let g = self.state.lock();
        self.bump();
        drop(g);
    }

    fn bump(&self) {
        let _g = self.state.lock();
    }

    pub fn audited(&self, w: &mut impl Write) {
        let g = self.state.lock();
        // mb-lint: allow(lock-across-call) -- fixture: audited boundary
        self.flush_all(w);
        drop(g);
    }

    pub fn released(&self, w: &mut impl Write) {
        let g = self.state.lock();
        drop(g);
        self.flush_all(w);
    }
}
