// Seeded lock-discipline violations: I/O under a lock and a cycle.
use std::io::Write;
use std::sync::Mutex;

struct S {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

fn io_under_lock(s: &S, w: &mut impl Write) {
    let g = s.a.lock();
    w.write_all(b"x").ok();
    drop(g);
}

fn order_ab(s: &S) {
    let a = s.a.lock();
    let b = s.b.lock();
    drop(b);
    drop(a);
}

fn order_ba(s: &S) {
    let b = s.b.lock();
    let a = s.a.lock();
    drop(a);
    drop(b);
}

fn clean_scoped(s: &S) {
    {
        let _a = s.a.lock();
    }
    let _b = s.b.lock();
}
