//! Seeded as-truncation violations for the golden test.

fn positives(id: usize, entity_id: usize, nt: EntityId) {
    let a = id as u32;
    let b = entity_id as u16;
    let c = nt_id.0 as u8;
}

fn suppressed(domain_id: usize) {
    // mb-lint: allow(as-truncation) -- fixture: wire format caps ids at u16
    let w = domain_id as u16;
}

fn clean(id: usize, count: usize, valid: usize) {
    let wide = id as u64;
    let native = id as usize;
    let n = count as u32;
    let v = valid as u8;
    let t = u32::try_from(id);
}

#[cfg(test)]
mod tests {
    pub fn test_only(id: usize) {
        let x = id as u32;
    }
}
