// Seeded suppression-hygiene violations: every comment below is wrong.
fn f() -> u32 {
    // mb-lint: allow(panic-unwrap)
    // mb-lint: allow(panic-unwrap) --
    // mb-lint: allow(no-such-rule) -- because
    // mb-lint: bogus
    1
}
