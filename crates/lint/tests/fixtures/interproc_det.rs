//! Seeded det-taint fixture: a replay path reaching a HashMap through
//! a callee, an audited boundary, and an ordered fixed variant.

pub fn replay_entry() -> usize {
    stats()
}

fn stats() -> usize {
    let m = std::collections::HashMap::<u32, u32>::new();
    m.len()
}

pub fn audited_entry() -> usize {
    // mb-lint: allow(det-taint) -- fixture: audited boundary
    stats()
}

pub fn fixed_entry() -> usize {
    ordered()
}

fn ordered() -> usize {
    let m = std::collections::BTreeMap::<u32, u32>::new();
    m.len()
}
