//! Seeded panic-reach fixture: entrypoints reaching a transitive
//! panic, an audited boundary, and a fixed variant.

pub fn entry(x: Option<u32>) -> u32 {
    helper(x)
}

fn helper(x: Option<u32>) -> u32 {
    deep(x)
}

fn deep(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn audited(x: Option<u32>) -> u32 {
    // mb-lint: allow(panic-reach) -- fixture: audited boundary
    helper(x)
}

pub fn fixed(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}
