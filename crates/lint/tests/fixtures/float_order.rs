//! Seeded float-total-order violations for the golden test.

fn positives(v: &mut Vec<f64>, pairs: &mut Vec<(usize, f64)>) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    pairs.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    let _ = v.iter().max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let _ = v.iter().min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

fn suppressed(v: &mut Vec<f64>) {
    // mb-lint: allow(float-total-order) -- fixture: NaN-free by construction
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

fn clean(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.total_cmp(b));
    let _ = v[0].partial_cmp(&v[1]);
}

#[cfg(test)]
mod tests {
    pub fn test_only(v: &mut Vec<f64>) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }
}
