//! Seeded tape-free violations for the golden test.

fn positives(tape: &mut Tape, params: &Params, bi_params: &Params) {
    let mut t = Tape::new();
    let h = tape.inject(params);
    let p = params.clone();
    let q = bi_params.clone();
    let r = Params::clone(params);
}

fn suppressed(bi_params: &Params) {
    // mb-lint: allow(tape-free) -- fixture: one-time checkpoint load
    let p = bi_params.clone();
}

fn clean(frozen: &FrozenParams, frozen_bi: &FrozenBiEncoder) {
    let shared = frozen.clone();
    let handle = frozen_bi.clone();
    let snap = FrozenParams::freeze(source);
}

#[cfg(test)]
mod tests {
    pub fn test_only(params: &Params) {
        let mut tape = Tape::new();
        let h = tape.inject(params);
        let p = params.clone();
    }
}
