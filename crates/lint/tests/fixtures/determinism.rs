// Seeded determinism violations plus suppressed and clean cases.
use std::collections::BTreeMap;
use std::collections::HashMap;

fn positives() {
    let m: HashMap<u32, u32> = HashMap::new();
    let _t = std::time::SystemTime::now();
    let _i = std::time::Instant::now();
    let _e = std::env::var("HOME");
    let _ = m;
}

// mb-lint: allow(det-hash) -- lookup only, iteration order never observed
fn suppressed(m: &std::collections::HashSet<u32>) -> bool {
    m.contains(&1)
}

fn clean() {
    let _m: BTreeMap<u32, u32> = BTreeMap::new();
}
