// Seeded panic-freedom violations plus suppressed and clean cases.
fn positives(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = v.first().expect("must");
    if *a > 1 { panic!("boom") }
    let c = v[0];
    *a + *b + c
}

fn suppressed(v: &[u32]) -> u32 {
    // mb-lint: allow(indexing) -- caller guarantees non-empty
    v[0]
}

fn clean(v: &[u32]) -> u32 {
    v.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1u32];
        assert_eq!(v.first().unwrap(), &1);
    }
}
