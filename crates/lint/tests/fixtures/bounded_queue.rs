//! Seeded bounded-queue violations for the golden test.

fn positives(q: &mut Queue, deque: &mut VecDeque<Job>, jobs: &mut Vec<Job>) {
    q.items.push_back(job);
    deque.push_front(job);
    self.pending.push(job);
    jobs.push(job);
}

fn suppressed(backlog: &mut Vec<Job>) {
    // mb-lint: allow(bounded-queue) -- fixture: drained synchronously below
    backlog.push(job);
}

fn clean_bounded(&self, item: Job) {
    if self.items.len() >= self.capacity {
        return;
    }
    self.items.push_back(item);
}

fn clean_truncating(jobs: &mut Vec<Job>, job: Job) {
    jobs.push(job);
    jobs.truncate(LIMIT);
}

fn clean_batch(batch: &mut Vec<Job>, job: Job, max_batch: usize) {
    batch.push(job);
}

fn clean_non_queue(out: &mut String, headers: &mut Vec<Header>) {
    out.push('x');
    headers.push(header);
}

#[cfg(test)]
mod tests {
    pub fn test_only(queue: &mut Vec<Job>) {
        queue.push(job);
    }
}
