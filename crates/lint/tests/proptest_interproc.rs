//! Property tests of the interprocedural layer and the incremental
//! cache.
//!
//! Three contracts, each load-bearing for CI:
//!
//! - every interprocedural finding's `(line, col, excerpt)` slices its
//!   source file exactly — witness anchors must point at the real call
//!   or allocation token, or editors and reviewers land in the wrong
//!   place;
//! - the per-file summary survives a cache save/load round-trip
//!   byte-exactly, so a warm run analyzes nothing and still reports the
//!   identical findings;
//! - `--json` output is byte-identical across two runs of the binary
//!   (cold then warm cache) and across `--threads 1..4` — the report is
//!   a pure function of workspace content.

use mb_check::gen;
use mb_check::{prop_assert, prop_assert_eq};
use mb_lint::cache::{fnv64, Cache};
use mb_lint::graph::Graph;
use mb_lint::{summarize_file, taint, FileSummary, RuleSet};

/// Pool of mini-workspace files: violating, audited, and clean
/// variants across all four interprocedural rules, plus cross-file
/// chains. Paths are distinct so any subset forms a valid workspace.
const POOL: &[(&str, &str)] = &[
    (
        "crates/serve/src/entry.rs",
        "pub fn handle(x: Option<u32>) -> u32 { step(x) }\nfn step(x: Option<u32>) -> u32 { x.unwrap() }\n",
    ),
    (
        "crates/serve/src/relay.rs",
        "pub fn relay(x: Option<u32>) -> u32 { helper_far(x) }\n",
    ),
    (
        "crates/core/src/helpers.rs",
        "pub fn helper_far(x: Option<u32>) -> u32 { x.expect(\"far\") }\n",
    ),
    (
        "crates/core/src/replay.rs",
        "pub fn reweight() -> usize { stats() }\nfn stats() -> usize { std::collections::HashMap::<u32, u32>::new().len() }\n",
    ),
    (
        "crates/tensor/src/kernels.rs",
        "pub fn gemm(n: usize) -> usize {\n    let mut t = 0;\n    for i in 0..n {\n        let s = format!(\"{i}\");\n        t += s.len();\n    }\n    t\n}\n",
    ),
    (
        "crates/serve/src/locked.rs",
        "use std::io::Write;\nuse std::sync::Mutex;\npub struct S { state: Mutex<u32> }\nimpl S {\n    pub fn go(&self, w: &mut impl Write) {\n        let g = self.state.lock();\n        self.out(w);\n        drop(g);\n    }\n    fn out(&self, w: &mut impl Write) { let _ = w.write_all(b\"x\"); }\n}\n",
    ),
    (
        "crates/serve/src/audited.rs",
        "pub fn ok(x: Option<u32>) -> u32 {\n    // mb-lint: allow(panic-reach) -- property fixture boundary\n    step_a(x)\n}\nfn step_a(x: Option<u32>) -> u32 { x.unwrap() }\n",
    ),
    (
        "crates/serve/src/clean.rs",
        "pub fn fine(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n",
    ),
    (
        "crates/core/src/ordered.rs",
        "pub fn fine() -> usize { std::collections::BTreeMap::<u32, u32>::new().len() }\n",
    ),
];

/// Interprocedural rules on, token families off, so every finding the
/// pipeline emits comes from the taint engine.
fn interproc_rules() -> RuleSet {
    RuleSet {
        panic_reach: true,
        det_taint: true,
        lock_across_call: true,
        alloc_hot_loop: true,
        ..RuleSet::none()
    }
}

/// Summaries for the pool subset named by `idxs` (deduplicated,
/// sorted-path order like a real run).
fn build_subset(idxs: &[usize]) -> Vec<(String, FileSummary)> {
    let mut picked: Vec<usize> = idxs.iter().map(|&i| i % POOL.len()).collect();
    picked.sort_unstable();
    picked.dedup();
    picked
        .into_iter()
        .map(|i| {
            let (path, src) = POOL[i];
            (path.to_string(), summarize_file(path, src, interproc_rules()))
        })
        .collect()
}

mb_check::check! {
    #![config(cases = 128)]

    fn interproc_spans_slice_source_exactly(
        idxs in gen::vec_of(gen::usize_in(0..9), 1..9),
    ) {
        let summaries = build_subset(&idxs);
        let rules: Vec<RuleSet> = summaries.iter().map(|_| interproc_rules()).collect();
        let graph = Graph::build(&summaries);
        let findings = taint::run(&summaries, &rules, &graph);
        for f in &findings {
            let (_, src) = POOL
                .iter()
                .find(|(p, _)| *p == f.file)
                .unwrap_or_else(|| panic!("finding in unknown file {}", f.file));
            let line = src
                .lines()
                .nth(f.line - 1)
                .unwrap_or_else(|| panic!("{}:{} out of range", f.file, f.line));
            let got: String =
                line.chars().skip(f.col - 1).take(f.excerpt.chars().count()).collect();
            prop_assert_eq!(
                &got,
                &f.excerpt,
                "{}:{}:{} does not slice to the excerpt",
                f.file,
                f.line,
                f.col
            );
        }
    }

    fn summaries_round_trip_through_the_cache(
        idxs in gen::vec_of(gen::usize_in(0..9), 1..9),
        tag in gen::usize_in(0..1_000_000),
    ) {
        let summaries = build_subset(&idxs);
        let mut cache = Cache::empty();
        for (path, summary) in &summaries {
            let (_, src) = POOL.iter().find(|(p, _)| *p == path.as_str()).unwrap();
            cache.put(path.clone(), fnv64(src.as_bytes()), summary.clone());
        }
        let dir = std::env::temp_dir()
            .join(format!("mb-lint-prop-{}-{tag}", std::process::id()));
        let path = dir.join("cache.txt");
        cache.save(&path).expect("save cache");
        let loaded = Cache::load(&path);
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(loaded.len(), cache.len(), "entry count changed across save/load");
        for (file, summary) in &summaries {
            let (_, src) = POOL.iter().find(|(p, _)| *p == file.as_str()).unwrap();
            let back = loaded.get(file, fnv64(src.as_bytes()));
            prop_assert!(back.is_some(), "{file} missing after round-trip");
            prop_assert_eq!(back.unwrap(), summary, "{} summary changed", file);
        }
    }
}

// --- Byte-identity of the binary's --json output ----------------------

struct TempWs {
    root: std::path::PathBuf,
}

impl TempWs {
    fn new(tag: &str, files: &[(&str, &str)]) -> TempWs {
        let root = std::env::temp_dir().join(format!("mb-lint-prop-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").unwrap();
        for (rel, contents) in files {
            let path = root.join(rel);
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(path, contents).unwrap();
        }
        TempWs { root }
    }

    fn lint(&self, extra: &[&str]) -> (i32, String) {
        let out = std::process::Command::new(env!("CARGO_BIN_EXE_mb-lint"))
            .args(["--root", self.root.to_str().unwrap(), "--json"])
            .args(extra)
            .output()
            .expect("spawn mb-lint");
        (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stdout).into_owned())
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

#[test]
fn json_is_byte_identical_cold_warm_and_across_threads() {
    let ws = TempWs::new("json-ident", POOL);
    let cache = ws.root.join("cache.txt");
    let cache_args = ["--cache", cache.to_str().unwrap()];
    let (code_cold, cold) = ws.lint(&cache_args);
    assert!(cache.exists(), "first run must write the cache");
    let (code_warm, warm) = ws.lint(&cache_args);
    assert_eq!(code_cold, code_warm);
    assert_eq!(cold, warm, "cold and warm cache runs must be byte-identical");
    for threads in ["1", "2", "3", "4"] {
        let (code_t, with_threads) = ws.lint(&["--threads", threads, "--no-cache"]);
        assert_eq!(code_cold, code_t, "exit code changed at --threads {threads}");
        assert_eq!(cold, with_threads, "--threads {threads} changed the report bytes");
    }
}
