//! Hot-swap integration tests over real sockets: `POST /admin/reload`
//! must atomically flip the serving generation while sustained client
//! traffic sees zero dropped or malformed responses, and a corrupt
//! candidate checkpoint must be rejected (409) with the old generation
//! still serving.

use mb_common::storage::DiskStorage;
use mb_common::Rng;
use mb_core::linker::LinkerConfig;
use mb_core::pipeline::{BI_KEY, CROSS_KEY};
use mb_datagen::{LinkedMention, World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::build_vocab;
use mb_serve::{ModelLoader, ModelRegistry, ServeModel, Server, ServerConfig};
use mb_tensor::checkpoint::Checkpoint;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};

fn bi_cfg() -> BiEncoderConfig {
    BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() }
}

fn cross_cfg() -> CrossEncoderConfig {
    CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() }
}

/// Scratch dir removed on drop (panics leave it for inspection under
/// the OS temp dir, keyed by test tag + pid).
struct Scratch(PathBuf);

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn scratch(tag: &str) -> Scratch {
    let dir = std::env::temp_dir().join(format!("mb-swap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    Scratch(dir)
}

/// The startup model (encoder seed 1), test mentions, and a loader
/// that rebuilds candidate models from checkpoints against the same
/// world.
fn fixture() -> (ServeModel, Vec<LinkedMention>, ModelLoader) {
    let world = World::generate(WorldConfig::tiny(91));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(4);
    let mentions = mb_datagen::mentions::generate_mentions(&world, &domain, 24, &mut rng).mentions;
    let dictionary = world.kb().domain_entities(domain.id).to_vec();
    let model = ServeModel::new(
        vocab.clone(),
        world.kb().clone(),
        dictionary.clone(),
        BiEncoder::new(&vocab, bi_cfg(), &mut Rng::seed_from_u64(1)),
        CrossEncoder::new(&vocab, cross_cfg(), &mut Rng::seed_from_u64(2)),
        LinkerConfig { k: 8, ..LinkerConfig::default() },
        domain.name.clone(),
    );
    let kb = world.kb().clone();
    let domain_name = domain.name.clone();
    let loader: ModelLoader = Box::new(move |path: &Path| {
        let ck = Checkpoint::load(&mut DiskStorage::new(), path)?;
        ServeModel::from_checkpoint(
            &ck,
            vocab.clone(),
            kb.clone(),
            dictionary.clone(),
            domain_name.clone(),
            bi_cfg(),
            cross_cfg(),
            LinkerConfig { k: 8, ..LinkerConfig::default() },
        )
    });
    (model, mentions, loader)
}

/// Write a valid v2 candidate checkpoint (encoder seed `seed`) at
/// `path`.
fn write_candidate(path: &Path, seed: u64) {
    let world = World::generate(WorldConfig::tiny(91));
    let vocab = build_vocab(world.kb(), [], 1);
    let bi = BiEncoder::new(&vocab, bi_cfg(), &mut Rng::seed_from_u64(seed));
    let cross = CrossEncoder::new(&vocab, cross_cfg(), &mut Rng::seed_from_u64(seed + 1));
    let mut ck = Checkpoint::new();
    ck.params.insert(BI_KEY.to_string(), bi.params().clone());
    ck.params.insert(CROSS_KEY.to_string(), cross.params().clone());
    ck.save(&mut DiskStorage::new(), path).expect("write candidate");
}

fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split(' ').nth(1).expect("code").parse().expect("numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8"))
}

fn link_request(m: &LinkedMention) -> Vec<u8> {
    let body = format!(
        "{{\"surface\":{},\"left\":{},\"right\":{},\"k\":3}}",
        mb_serve::json::escape(&m.surface),
        mb_serve::json::escape(&m.left),
        mb_serve::json::escape(&m.right),
    );
    let mut req = format!(
        "POST /link HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body.as_bytes());
    req
}

const RELOAD: &[u8] = b"POST /admin/reload HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n";

/// The generation stamp a /link response carries.
fn response_generation(body: &str) -> u64 {
    let doc = mb_serve::json::parse(body.as_bytes()).expect("valid response JSON");
    doc.get("generation").and_then(|v| v.as_f64()).expect("generation field") as u64
}

#[test]
fn hot_swap_under_load_drops_nothing_and_flips_the_generation() {
    let dir = scratch("load");
    let candidate = dir.0.join("model.mbc");
    write_candidate(&candidate, 7);
    let (model, mentions, loader) = fixture();
    let registry =
        ModelRegistry::with_loader(model, candidate, loader).expect("valid startup model");
    let server = Server::start_with_registry(
        registry,
        ServerConfig { workers: 2, max_batch: 4, max_delay_us: 500, ..ServerConfig::default() },
    )
    .expect("start");
    let addr = server.addr();

    let (status, body) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"generation\":1"), "{body}");
    let (status, body) = roundtrip(addr, &link_request(&mentions[0]));
    assert_eq!(status, 200);
    assert_eq!(response_generation(&body), 1);

    // Sustained traffic racing the swap: every response must be a
    // complete 200 carrying a valid generation stamp (1 or 2 — never
    // torn, never an error).
    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..4)
            .map(|t: usize| {
                let mentions = &mentions;
                scope.spawn(move || {
                    let mut gens = Vec::new();
                    for i in 0..40 {
                        let m = &mentions[(t * 40 + i) % mentions.len()];
                        let (status, body) = roundtrip(addr, &link_request(m));
                        assert_eq!(status, 200, "dropped response during swap: {body}");
                        gens.push(response_generation(&body));
                    }
                    gens
                })
            })
            .collect();
        // Fire the reload mid-flight.
        std::thread::sleep(std::time::Duration::from_millis(30));
        let (status, body) = roundtrip(addr, RELOAD);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"status\":\"swapped\""), "{body}");
        assert!(body.contains("\"generation\":2"), "{body}");
        for c in clients {
            for g in c.join().expect("client thread") {
                assert!(g == 1 || g == 2, "impossible generation {g}");
            }
        }
    });

    // After the swap every new response rides generation 2.
    assert_eq!(server.generation(), 2);
    let (status, body) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"generation\":2"), "{body}");
    let (status, body) = roundtrip(addr, &link_request(&mentions[1]));
    assert_eq!(status, 200);
    assert_eq!(response_generation(&body), 2);

    let (_, metrics) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
    assert!(metrics.contains("serve_model_generation 2"), "{metrics}");
    assert!(metrics.contains("serve_model_swaps_total 1"), "{metrics}");
    server.shutdown();
}

#[test]
fn corrupt_candidate_answers_409_and_the_old_generation_keeps_serving() {
    let dir = scratch("corrupt");
    let candidate = dir.0.join("model.mbc");
    // A torn/garbage candidate: the v2 loader's CRC validation must
    // reject it before anything reaches the registry.
    std::fs::write(&candidate, b"MBPARAMS-from-a-crashed-writer\x00\x01\x02garbage")
        .expect("write garbage");
    let (model, mentions, loader) = fixture();
    let registry =
        ModelRegistry::with_loader(model, candidate, loader).expect("valid startup model");
    let server = Server::start_with_registry(registry, ServerConfig::default()).expect("start");
    let addr = server.addr();

    let (status, body) = roundtrip(addr, RELOAD);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("error"), "{body}");
    assert!(body.contains("\"generation\":1"), "{body}");

    // Serving is untouched: generation 1 still answers.
    let (status, body) = roundtrip(addr, &link_request(&mentions[0]));
    assert_eq!(status, 200, "{body}");
    assert_eq!(response_generation(&body), 1);
    let (_, metrics) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
    assert!(metrics.contains("serve_reload_rejected_total 1"), "{metrics}");
    assert!(metrics.contains("serve_model_generation 1"), "{metrics}");
    assert!(metrics.contains("serve_model_swaps_total 0"), "{metrics}");
    server.shutdown();
}

#[test]
fn reload_with_an_explicit_body_path_swaps_from_that_file() {
    let dir = scratch("bodypath");
    let elsewhere = dir.0.join("blue-green.mbc");
    write_candidate(&elsewhere, 21);
    let (model, _, loader) = fixture();
    let registry = ModelRegistry::with_loader(model, dir.0.join("missing-default.mbc"), loader)
        .expect("valid startup model");
    let server = Server::start_with_registry(registry, ServerConfig::default()).expect("start");
    let addr = server.addr();

    let body = format!("{{\"path\":{}}}", mb_serve::json::escape(&elsewhere.to_string_lossy()));
    let mut req = format!(
        "POST /admin/reload HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body.as_bytes());
    let (status, reply) = roundtrip(addr, &req);
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("\"generation\":2"), "{reply}");
    assert_eq!(server.generation(), 2);
    server.shutdown();
}

/// Write a sharded store of `n` dim-16 entities under `dir` (ids
/// 0..n, matching the head of the fixture KB's id space).
fn write_store(dir: &Path, n: usize) {
    use mb_store::{StoreBuilder, StoreConfig, StoreRecord};
    let cfg = StoreConfig { shard_capacity: 16, dim: 16, quant: mb_tensor::quant::QuantMode::Int8 };
    let mut builder = StoreBuilder::create(dir, cfg).expect("store builder");
    let mut rng = Rng::seed_from_u64(77);
    for i in 0..n {
        let mut vector: Vec<f64> = (0..16).map(|_| rng.gaussian()).collect();
        let norm = vector.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
        vector.iter_mut().for_each(|x| *x /= norm);
        builder
            .push(StoreRecord {
                title: format!("stored entity {i}"),
                description: format!("payload for stored entity {i}"),
                vector,
            })
            .expect("push record");
    }
    builder.finish().expect("finish store");
}

#[test]
fn reload_binds_a_sharded_store_next_to_the_checkpoint() {
    let dir = scratch("storebind");
    let candidate = dir.0.join("model.mbc");
    write_candidate(&candidate, 7);
    let (model, mentions, loader) = fixture();
    // A `store/` directory beside the checkpoint flips the next
    // generation to sharded-store retrieval (DESIGN.md §14).
    let n = model.kb.len().min(48);
    write_store(&dir.0.join("store"), n);

    let registry =
        ModelRegistry::with_loader(model, candidate, loader).expect("valid startup model");
    assert!(registry.current().store.is_none(), "generation 1 is dictionary-backed");
    let id = registry.reload(None).expect("store-backed reload");
    assert_eq!(id, 2);
    let generation = registry.current();
    let store = generation.store.as_ref().expect("generation 2 carries the store");
    assert_eq!(store.len(), n);
    let ann = generation.ann.as_ref().expect("generation 2 carries the IVF index");
    assert!(ann.nprobe() > 0);
    assert!(generation.index.is_empty(), "dense index stays empty for store-backed serving");
    assert!(generation.qindex.is_some(), "quantized tables come straight from the shards");

    // The swapped generation actually serves: run it behind a real
    // socket and link through the ANN path.
    let server = Server::start_with_registry(registry, ServerConfig::default()).expect("start");
    let addr = server.addr();
    assert_eq!(server.generation(), 2);
    let (status, body) = roundtrip(addr, &link_request(&mentions[0]));
    assert_eq!(status, 200, "{body}");
    assert_eq!(response_generation(&body), 2);
    server.shutdown();
}

#[test]
fn reload_without_a_configured_source_is_a_conflict() {
    let (model, _, _) = fixture();
    let server = Server::start(model, ServerConfig::default()).expect("start");
    let (status, body) = roundtrip(server.addr(), RELOAD);
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("no reload source configured"), "{body}");
    server.shutdown();
}
