//! End-to-end tests of the serving subsystem over real sockets: a tiny
//! synthetic-world model served on an ephemeral port, driven with a
//! minimal in-test HTTP client.

use mb_common::Rng;
use mb_core::linker::{LinkerConfig, TwoStageLinker};
use mb_datagen::{LinkedMention, World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::build_vocab;
use mb_serve::{ServeModel, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

struct Fixture {
    world: World,
    model: ServeModel,
    mentions: Vec<LinkedMention>,
}

/// An untrained (randomly initialized) model: inference correctness
/// and bit-identity do not depend on training, and skipping it keeps
/// the test fast.
fn fixture() -> Fixture {
    let world = World::generate(WorldConfig::tiny(91));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(4);
    let ms = mb_datagen::mentions::generate_mentions(&world, &domain, 40, &mut rng);
    let bi = BiEncoder::new(
        &vocab,
        BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() },
        &mut Rng::seed_from_u64(1),
    );
    let cross = CrossEncoder::new(
        &vocab,
        CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() },
        &mut Rng::seed_from_u64(2),
    );
    let model = ServeModel::new(
        vocab,
        world.kb().clone(),
        world.kb().domain_entities(domain.id).to_vec(),
        bi,
        cross,
        LinkerConfig { k: 8, ..LinkerConfig::default() },
        domain.name.clone(),
    );
    Fixture { world, model, mentions: ms.mentions }
}

/// Send one request and return (status, body). Opens a fresh
/// connection per call.
fn roundtrip(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("send");
    read_response(&mut BufReader::new(stream))
}

fn read_response<R: BufRead>(r: &mut R) -> (u16, String) {
    let mut status_line = String::new();
    r.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line.split(' ').nth(1).expect("status code").parse().expect("numeric");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        r.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn link_request(m: &LinkedMention, k: usize) -> Vec<u8> {
    let body = format!(
        "{{\"surface\":{},\"left\":{},\"right\":{},\"k\":{k}}}",
        mb_serve::json::escape(&m.surface),
        mb_serve::json::escape(&m.left),
        mb_serve::json::escape(&m.right),
    );
    let mut req = format!(
        "POST /link HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body.as_bytes());
    req
}

/// The mention as the server reconstructs it (no gold label).
fn served_mention(m: &LinkedMention) -> LinkedMention {
    LinkedMention { entity: mb_kb::EntityId(0), ..m.clone() }
}

#[test]
fn serves_health_metrics_and_errors() {
    let f = fixture();
    let server = Server::start(f.model, ServerConfig::default()).expect("start");
    let addr = server.addr();

    let (status, body) = roundtrip(addr, b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("TargetX"), "{body}");

    let (status, body) = roundtrip(addr, b"GET /nope HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 404);
    assert!(body.contains("error"));

    // Malformed JSON body and malformed HTTP framing are both 400s.
    let (status, _) =
        roundtrip(addr, b"POST /link HTTP/1.1\r\nhost: t\r\ncontent-length: 3\r\n\r\n{{{");
    assert_eq!(status, 400);
    let (status, _) = roundtrip(addr, b"POST /link HTTP/1.1\r\ncontent-length: zap\r\n\r\n");
    assert_eq!(status, 400);

    let (status, metrics) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(!metrics.is_empty());
    assert!(metrics.contains("serve_requests_total"), "{metrics}");
    assert!(metrics.contains("serve_queue_depth"), "{metrics}");

    server.shutdown();
}

#[test]
fn concurrent_batched_responses_match_sequential_link() {
    let f = fixture();
    // Build the identical linker locally: DenseIndex::build is
    // deterministic, so expected responses can be computed offline.
    let linker = TwoStageLinker::new(
        &f.model.bi,
        &f.model.cross,
        &f.model.vocab,
        &f.model.kb,
        &f.model.dictionary,
        f.model.linker,
    );
    let mentions: Vec<LinkedMention> = f.mentions.iter().take(12).map(served_mention).collect();
    let expected: Vec<_> = mentions.iter().map(|m| linker.link(m).expect("link")).collect();

    let server = Server::start(
        f.model,
        ServerConfig { max_batch: 8, max_delay_us: 5_000, ..ServerConfig::default() },
    )
    .expect("start");
    let addr = server.addr();

    // Fire all requests concurrently so the linger window actually
    // fuses them into batches.
    let responses: Vec<(u16, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = mentions
            .iter()
            .map(|m| scope.spawn(move || roundtrip(addr, &link_request(m, 3))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    for ((status, body), want) in responses.iter().zip(&expected) {
        assert_eq!(*status, 200, "{body}");
        let doc = mb_serve::json::parse(body.as_bytes()).expect("valid response JSON");
        let predicted = doc.get("predicted").expect("predicted field");
        let want_id = want.predicted.expect("non-empty dictionary").0;
        assert_eq!(
            predicted.get("id").and_then(|v| v.as_f64()),
            Some(want_id as f64),
            "prediction mismatch: {body}"
        );
        // Top candidate's rerank score must be BIT-identical to the
        // sequential link() score (f64 Display round-trips exactly).
        let top = want.rerank_scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let candidates = match doc.get("candidates") {
            Some(mb_serve::json::Json::Arr(items)) => items.clone(),
            other => panic!("bad candidates: {other:?}"),
        };
        assert!(!candidates.is_empty() && candidates.len() <= 3);
        let served_top = candidates[0].get("score").and_then(|v| v.as_f64()).expect("score");
        assert_eq!(served_top.to_bits(), top.to_bits(), "rerank score drifted: {body}");
    }

    // The server must have fused at least one multi-request batch.
    let (_, metrics) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
    let batches: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("serve_batches_total "))
        .and_then(|v| v.parse().ok())
        .expect("batches counter");
    let batched: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("serve_batched_requests_total "))
        .and_then(|v| v.parse().ok())
        .expect("batched counter");
    assert_eq!(batched, mentions.len() as u64);
    assert!(batches <= batched, "{batches} batches for {batched} requests");

    server.shutdown();
    let _ = f.world; // keep the world alive alongside kb clones
}

#[test]
fn repeated_requests_hit_the_embedding_cache() {
    let f = fixture();
    let m = served_mention(&f.mentions[0]);
    let server = Server::start(f.model, ServerConfig::default()).expect("start");
    let addr = server.addr();
    let (_, first) = roundtrip(addr, &link_request(&m, 3));
    for _ in 0..3 {
        let (status, body) = roundtrip(addr, &link_request(&m, 3));
        assert_eq!(status, 200);
        assert_eq!(body, first, "cached answers must be identical");
    }
    let (_, metrics) = roundtrip(addr, b"GET /metrics HTTP/1.1\r\nhost: t\r\n\r\n");
    let hits: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("serve_cache_hits_total "))
        .and_then(|v| v.parse().ok())
        .expect("cache hits");
    assert!(hits >= 3, "expected cache hits, metrics:\n{metrics}");
    server.shutdown();
}

#[test]
fn admin_shutdown_drains_and_join_returns() {
    let f = fixture();
    let m = served_mention(&f.mentions[0]);
    let server = Server::start(f.model, ServerConfig::default()).expect("start");
    let addr = server.addr();
    let (status, _) = roundtrip(addr, &link_request(&m, 2));
    assert_eq!(status, 200);
    let (status, body) = roundtrip(addr, b"POST /admin/shutdown HTTP/1.1\r\nhost: t\r\n\r\n");
    assert_eq!(status, 200);
    assert!(body.contains("draining"), "{body}");
    // Graceful: all server threads exit; a hang here fails the test
    // harness timeout.
    server.join();
}

#[test]
fn keep_alive_serves_multiple_requests_per_connection() {
    let f = fixture();
    let m = served_mention(&f.mentions[1]);
    let server = Server::start(f.model, ServerConfig::default()).expect("start");
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut write_half = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut bodies = Vec::new();
    for _ in 0..3 {
        write_half.write_all(&link_request(&m, 2)).expect("send");
        let (status, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        bodies.push(body);
    }
    assert_eq!(bodies[0], bodies[1]);
    assert_eq!(bodies[1], bodies[2]);
    server.shutdown();
}
