//! Chaos tests (`#[ignore]`, run in release by the CI `chaos-serve`
//! stage): the server behind a seed-replayable fault-injecting proxy
//! must never wedge, never emit a torn-but-complete `200`, and recover
//! to healthy — even while a hot model swap races the faulted traffic.
//! A second test drives the server past its deadline budget and
//! asserts shedding is fast (bounded 503 latency, `Retry-After` on
//! every shed, no 60-second pileups).

use mb_common::storage::DiskStorage;
use mb_common::Rng;
use mb_core::linker::LinkerConfig;
use mb_core::pipeline::{BI_KEY, CROSS_KEY};
use mb_datagen::{LinkedMention, World, WorldConfig};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CrossEncoder, CrossEncoderConfig};
use mb_encoders::input::build_vocab;
use mb_fault::net::{NetFault, NetFaultPlan, NetProxy};
use mb_serve::{ModelLoader, ModelRegistry, ServeConfig, ServeModel, Server, ServerConfig};
use mb_tensor::checkpoint::Checkpoint;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::Path;
use std::time::{Duration, Instant};

fn bi_cfg() -> BiEncoderConfig {
    BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() }
}

fn cross_cfg() -> CrossEncoderConfig {
    CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() }
}

/// Startup model, mentions to link, and a checkpoint loader over the
/// same world (mirrors the registry_swap fixture).
fn fixture() -> (ServeModel, Vec<LinkedMention>, ModelLoader) {
    let world = World::generate(WorldConfig::tiny(91));
    let vocab = build_vocab(world.kb(), [], 1);
    let domain = world.domain("TargetX").clone();
    let mut rng = Rng::seed_from_u64(4);
    let mentions = mb_datagen::mentions::generate_mentions(&world, &domain, 24, &mut rng).mentions;
    let dictionary = world.kb().domain_entities(domain.id).to_vec();
    let model = ServeModel::new(
        vocab.clone(),
        world.kb().clone(),
        dictionary.clone(),
        BiEncoder::new(&vocab, bi_cfg(), &mut Rng::seed_from_u64(1)),
        CrossEncoder::new(&vocab, cross_cfg(), &mut Rng::seed_from_u64(2)),
        LinkerConfig { k: 8, ..LinkerConfig::default() },
        domain.name.clone(),
    );
    let kb = world.kb().clone();
    let domain_name = domain.name.clone();
    let loader: ModelLoader = Box::new(move |path: &Path| {
        let ck = Checkpoint::load(&mut DiskStorage::new(), path)?;
        ServeModel::from_checkpoint(
            &ck,
            vocab.clone(),
            kb.clone(),
            dictionary.clone(),
            domain_name.clone(),
            bi_cfg(),
            cross_cfg(),
            LinkerConfig { k: 8, ..LinkerConfig::default() },
        )
    });
    (model, mentions, loader)
}

fn write_candidate(path: &Path, seed: u64) {
    let world = World::generate(WorldConfig::tiny(91));
    let vocab = build_vocab(world.kb(), [], 1);
    let bi = BiEncoder::new(&vocab, bi_cfg(), &mut Rng::seed_from_u64(seed));
    let cross = CrossEncoder::new(&vocab, cross_cfg(), &mut Rng::seed_from_u64(seed + 1));
    let mut ck = Checkpoint::new();
    ck.params.insert(BI_KEY.to_string(), bi.params().clone());
    ck.params.insert(CROSS_KEY.to_string(), cross.params().clone());
    ck.save(&mut DiskStorage::new(), path).expect("write candidate");
}

/// Truncate context to keep slow-loris wall clock bounded (the loris
/// trickles a few bytes per tick; body size is the clock).
fn clip(s: &str, n: usize) -> String {
    s.chars().take(n).collect()
}

fn link_request(m: &LinkedMention, deadline_ms: Option<u64>) -> Vec<u8> {
    let deadline = deadline_ms.map(|d| format!(",\"deadline_ms\":{d}")).unwrap_or_default();
    let body = format!(
        "{{\"surface\":{},\"left\":{},\"right\":{},\"k\":3{deadline}}}",
        mb_serve::json::escape(&m.surface),
        mb_serve::json::escape(&clip(&m.left, 12)),
        mb_serve::json::escape(&clip(&m.right, 12)),
    );
    let mut req = format!(
        "POST /link HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\
         content-type: application/json\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body.as_bytes());
    req
}

/// One full exchange; `Err` on any connect/read/parse failure or torn
/// response, `Ok((status, retry_after_seen, body))` on a complete reply.
fn try_roundtrip(
    addr: SocketAddr,
    raw: &[u8],
    timeout: Duration,
) -> Result<(u16, bool, String), String> {
    let stream = TcpStream::connect_timeout(&addr, timeout).map_err(|e| format!("connect: {e}"))?;
    stream.set_read_timeout(Some(timeout)).map_err(|e| format!("timeout: {e}"))?;
    let mut stream = stream;
    stream.write_all(raw).map_err(|e| format!("send: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).map_err(|e| format!("status: {e}"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("torn status line: {status_line:?}"))?;
    let mut content_length = None;
    let mut retry_after = false;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("header: {e}"))?;
        if n == 0 {
            return Err("EOF inside headers".to_string());
        }
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("content-length:") {
            content_length = v.trim().parse::<usize>().ok();
        }
        if line.starts_with("retry-after:") {
            retry_after = true;
        }
    }
    let len = content_length.ok_or("no content-length")?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).map_err(|e| format!("torn body: {e}"))?;
    let body = String::from_utf8(body).map_err(|e| format!("non-utf8 body: {e}"))?;
    Ok((status, retry_after, body))
}

fn expect_ok(addr: SocketAddr, raw: &[u8], what: &str) -> String {
    let (status, _, body) =
        try_roundtrip(addr, raw, Duration::from_secs(15)).unwrap_or_else(|e| panic!("{what}: {e}"));
    assert_eq!(status, 200, "{what}: {body}");
    body
}

/// Seed-replayable chaos: sixteen sequential connections through the
/// faulted proxy (two full cycles of the seeded plan), a hot swap fired
/// mid-run, then direct probes proving the server is healthy, on the
/// new generation, and was never wedged. Faults are assigned by accept
/// index, and connections are driven strictly one at a time, so the
/// fault seen by connection `i` is exactly `plan.fault_for(i)` — a
/// failure replays from the seed alone.
#[test]
#[ignore = "chaos suite: run in release via scripts/ci.sh chaos-serve"]
fn faulted_traffic_never_wedges_the_server_even_across_a_hot_swap() {
    let scratch = std::env::temp_dir().join(format!("mb-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch).expect("scratch");
    let candidate = scratch.join("model.mbc");
    write_candidate(&candidate, 7);

    let (model, mentions, loader) = fixture();
    let registry =
        ModelRegistry::with_loader(model, candidate, loader).expect("valid startup model");
    let cfg = ServerConfig {
        workers: 2,
        max_batch: 4,
        max_delay_us: 500,
        serve: ServeConfig {
            // Tight enough that a wedged read would fail the test fast,
            // loose enough for the slowest seeded loris (~6 s).
            read_timeout_ms: 10_000,
            ..ServeConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = Server::start_with_registry(registry, cfg).expect("start");
    let plan = NetFaultPlan::seeded(7);
    let proxy = NetProxy::start(server.addr(), plan.clone()).expect("proxy");

    let started = Instant::now();
    let mut clean_200 = 0u32;
    for i in 0..16u64 {
        let fault = plan.fault_for(i);
        let raw = link_request(&mentions[i as usize % mentions.len()], None);
        let outcome = try_roundtrip(proxy.addr(), &raw, Duration::from_secs(15));
        match fault {
            NetFault::None | NetFault::SlowLoris { .. } | NetFault::StalledClient { .. } => {
                let (status, _, body) =
                    outcome.unwrap_or_else(|e| panic!("conn {i} ({fault:?}) should survive: {e}"));
                assert_eq!(status, 200, "conn {i} ({fault:?}): {body}");
                assert!(body.contains("\"generation\":"), "conn {i}: torn 200? {body}");
                clean_200 += 1;
            }
            NetFault::TornReply { .. } | NetFault::Abort { .. } => {
                // The one outcome chaos must never produce is a torn
                // response that still parses as a complete 200.
                assert!(
                    outcome.is_err(),
                    "conn {i} ({fault:?}) returned a complete response through a torn pipe: {outcome:?}"
                );
            }
        }
        if i == 7 {
            // Hot swap racing the remaining faulted traffic (fired
            // directly at the server so proxy accept indices stay
            // aligned with the plan).
            let body = expect_ok(
                server.addr(),
                b"POST /admin/reload HTTP/1.1\r\nhost: t\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
                "mid-chaos reload",
            );
            assert!(body.contains("\"status\":\"swapped\""), "{body}");
        }
    }
    assert_eq!(clean_200, 12, "every clean/slow/stalled connection completes");
    assert_eq!(proxy.accepted(), 16);

    // Recovery: the server answers direct (unfaulted) traffic promptly,
    // on the swapped generation, with sane counters.
    let body = expect_ok(
        server.addr(),
        b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        "post-chaos healthz",
    );
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"generation\":2"), "{body}");
    let body = expect_ok(server.addr(), &link_request(&mentions[0], None), "post-chaos link");
    assert!(body.contains("\"generation\":2"), "{body}");
    let metrics = expect_ok(
        server.addr(),
        b"GET /metrics HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        "post-chaos metrics",
    );
    assert!(metrics.contains("serve_model_swaps_total 1"), "{metrics}");
    assert!(metrics.contains("serve_model_generation 2"), "{metrics}");

    assert!(
        started.elapsed() < Duration::from_secs(120),
        "chaos run took {:?} — something wedged",
        started.elapsed()
    );
    proxy.stop();
    server.shutdown();
}

/// Deadline pressure: requests whose budgets expire while batched must
/// shed as *fast* 503s carrying `Retry-After` — never 60-second
/// pileups — while generous-deadline traffic in the same batch window
/// is served, and the server stays healthy afterwards.
#[test]
#[ignore = "chaos suite: run in release via scripts/ci.sh chaos-serve"]
fn overloaded_deadlines_shed_fast_503s_with_retry_after() {
    let (model, mentions, _) = fixture();
    let cfg = ServerConfig {
        // Serial service: one worker draining one job at a time, so
        // concurrent arrivals wait in the queue for several service
        // times — far past a 1 ms budget, never near the 10 s default.
        workers: 1,
        max_batch: 1,
        max_delay_us: 100,
        queue_capacity: 64,
        ..ServerConfig::default()
    };
    let server = Server::start(model, cfg).expect("start");
    let addr = server.addr();

    type Outcome = (u64, Result<(u16, bool, String), String>, Duration);
    let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..52u64)
            .map(|i| {
                let m = &mentions[i as usize % mentions.len()];
                // 48 requests with a hopeless 1 ms budget, 4 with
                // the generous default.
                let deadline = if i < 48 { Some(1) } else { None };
                let raw = link_request(m, deadline);
                scope.spawn(move || {
                    let t0 = Instant::now();
                    let r = try_roundtrip(addr, &raw, Duration::from_secs(15));
                    (i, r, t0.elapsed())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).collect()
    });

    let mut shed = 0u32;
    let mut served = 0u32;
    for (i, outcome, elapsed) in outcomes {
        let (status, retry_after, body) =
            outcome.unwrap_or_else(|e| panic!("client {i} failed outright: {e}"));
        match status {
            200 => served += 1,
            503 => {
                shed += 1;
                assert!(retry_after, "503 without Retry-After for client {i}: {body}");
                assert!(
                    elapsed < Duration::from_secs(3),
                    "client {i} shed after {elapsed:?} — shedding must be fast"
                );
            }
            other => panic!("client {i}: unexpected status {other}: {body}"),
        }
    }
    assert!(shed >= 16, "expected most 1 ms-budget requests shed, got {shed}");
    assert!(served >= 4, "generous-deadline requests must be served, got {served}");

    // Recovery probe: normal traffic flows again and the shed counters
    // moved.
    let body = expect_ok(addr, &link_request(&mentions[0], None), "post-overload link");
    assert!(body.contains("\"generation\":1"), "{body}");
    let metrics = expect_ok(
        addr,
        b"GET /metrics HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        "post-overload metrics",
    );
    let shed_total: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("serve_deadline_shed_total "))
        .and_then(|v| v.trim().parse().ok())
        .expect("serve_deadline_shed_total in metrics");
    assert!(shed_total >= u64::from(shed), "metrics undercount sheds: {shed_total} < {shed}");
    server.shutdown();
}
