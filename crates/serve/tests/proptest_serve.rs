//! Property tests hardening the serving front end against arbitrary
//! network input: the HTTP parser and the JSON layer must reject
//! malformed data with typed errors — never panic, never read past
//! their configured limits.

use mb_check::{gen, prop_assert, prop_assert_eq};
use mb_serve::http::{read_request, HttpError, HttpLimits};
use mb_serve::json;
use std::io::Cursor;

fn parse_bytes(
    bytes: &[u8],
    limits: &HttpLimits,
) -> Result<Option<mb_serve::http::Request>, HttpError> {
    read_request(&mut Cursor::new(bytes.to_vec()), limits)
}

/// A syntactically valid POST with the given body.
fn valid_post(path: &str, body: &[u8]) -> Vec<u8> {
    let mut req = format!(
        "POST {path} HTTP/1.1\r\nhost: localhost\r\ncontent-length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    req
}

mb_check::check! {
    #![config(cases = 96)]

    fn http_parser_never_panics_on_random_bytes(
        bytes in gen::vec_of(gen::u32_in(0..256), 0..600),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        // Any outcome is fine; reaching this line means no panic.
        let _ = parse_bytes(&bytes, &HttpLimits::default());
    }

    fn http_parser_never_panics_on_ascii_noise(
        text in gen::charset_string("GET POST/link HTTP1.\r\n:content-length 0123456789{}\"", 0..400),
    ) {
        let _ = parse_bytes(text.as_bytes(), &HttpLimits::default());
    }

    fn truncating_a_valid_request_never_panics(
        body in gen::vec_of(gen::u32_in(0..256), 0..64),
        cut_seed in gen::usize_in(0..10_000),
    ) {
        let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
        let full = valid_post("/link", &body);
        let cut = cut_seed % (full.len() + 1);
        match parse_bytes(&full[..cut], &HttpLimits::default()) {
            Ok(Some(req)) => prop_assert_eq!(req.body, body, "only the full request parses"),
            Ok(None) => prop_assert_eq!(cut, 0, "Ok(None) only on empty input"),
            Err(e) => prop_assert!(e.status() == 400 || e.status() == 0),
        }
    }

    fn bad_content_length_is_always_a_400(
        junk in gen::charset_string("abc-. 9e", 1..10),
    ) {
        // Headers whose content-length fails to parse as usize.
        if junk.parse::<usize>().is_ok() {
            return Ok(());
        }
        let req = format!("POST /link HTTP/1.1\r\ncontent-length: {junk}\r\n\r\n");
        match parse_bytes(req.as_bytes(), &HttpLimits::default()) {
            Err(e) => prop_assert_eq!(e.status(), 400),
            Ok(_) => prop_assert!(false, "parser accepted content-length {junk:?}"),
        }
    }

    fn oversized_bodies_are_rejected_without_allocation(
        excess in gen::usize_in(1..1_000_000),
    ) {
        let limits = HttpLimits { max_body: 1024, ..HttpLimits::default() };
        let req = format!("POST /link HTTP/1.1\r\ncontent-length: {}\r\n\r\n", 1024 + excess);
        match parse_bytes(req.as_bytes(), &limits) {
            Err(e) => prop_assert_eq!(e.status(), 413),
            Ok(_) => prop_assert!(false, "parser accepted an oversized body"),
        }
    }

    fn valid_requests_round_trip(
        path in gen::charset_string("/abcdefghij_0123456789", 1..30),
        body in gen::vec_of(gen::u32_in(0..256), 0..128),
    ) {
        let body: Vec<u8> = body.into_iter().map(|b| b as u8).collect();
        let req = parse_bytes(&valid_post(&path, &body), &HttpLimits::default())
            .expect("valid request")
            .expect("not EOF");
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.path.as_str(), path.as_str());
        prop_assert_eq!(req.body, body);
    }

    fn json_parser_never_panics_on_random_bytes(
        bytes in gen::vec_of(gen::u32_in(0..256), 0..300),
    ) {
        let bytes: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        let _ = json::parse(&bytes);
    }

    fn json_parser_never_panics_on_jsonish_noise(
        text in gen::charset_string("{}[]\",:0123456789.eE+-truefalsn \\u", 0..200),
    ) {
        let _ = json::parse(text.as_bytes());
    }

    fn json_escape_round_trips(s in gen::any_string(0..60)) {
        let doc = json::escape(&s);
        prop_assert_eq!(json::parse(doc.as_bytes()), Ok(json::Json::Str(s)));
    }

    fn json_numbers_round_trip(x in gen::f64_normal_or_zero()) {
        let doc = json::num(x);
        let parsed = json::parse(doc.as_bytes()).expect("finite numbers serialize validly");
        prop_assert_eq!(parsed.as_f64(), Some(x), "{doc}");
    }
}
