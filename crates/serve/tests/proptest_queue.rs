//! Property tests for [`BatchQueue`] under concurrent push, shed, and
//! shutdown: the shedding drain must partition work exactly — every
//! accepted item is either answered (drained into a batch) or shed,
//! never both and never neither — and shed decisions must be a pure
//! function of the item given a deterministic predicate, so a seeded
//! arrival schedule replays to the same shed set.

use mb_check::{gen, prop_assert, prop_assert_eq};
use mb_serve::queue::{BatchQueue, PushError};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// Drain the queue to exhaustion with a deterministic predicate,
/// returning (answered ids, shed ids) in drain order.
fn drain_all(queue: &BatchQueue<u64>, max_batch: usize, shed_mod: u64) -> (Vec<u64>, Vec<u64>) {
    let mut answered = Vec::new();
    let mut shed = Vec::new();
    loop {
        let drained = queue.pop_batch_shed(max_batch, Duration::from_micros(200), |id| {
            shed_mod > 1 && id % shed_mod == 0
        });
        if drained.is_exit() {
            return (answered, shed);
        }
        answered.extend(drained.batch);
        shed.extend(drained.shed);
    }
}

mb_check::check! {
    #![config(cases = 48)]

    /// Concurrent pushers + a shedding drainer + shutdown: each pushed
    /// id lands in exactly one of {answered, shed, rejected-at-push}.
    fn partition_is_exact_under_concurrency(
        items in gen::usize_in(1..120),
        capacity in gen::usize_in(1..16),
        max_batch in gen::usize_in(1..8),
        shed_mod in gen::u32_in(0..5),
    ) {
        let shed_mod = shed_mod as u64;
        let queue = Arc::new(BatchQueue::new(capacity));
        let (accepted, rejected, answered, shed) = std::thread::scope(|scope| {
            let drainer = {
                let queue = Arc::clone(&queue);
                scope.spawn(move || drain_all(&queue, max_batch, shed_mod))
            };
            let (mut accepted, mut rejected) = (Vec::new(), Vec::new());
            for id in 0..items as u64 {
                match queue.try_push(id) {
                    Ok(()) => accepted.push(id),
                    Err(PushError::Full(id)) => rejected.push(id),
                    Err(PushError::Closed(_)) => unreachable!("nobody closed yet"),
                }
            }
            queue.close();
            let (answered, shed) = drainer.join().expect("drainer");
            (accepted, rejected, answered, shed)
        });

        let answered_set: BTreeSet<u64> = answered.iter().copied().collect();
        let shed_set: BTreeSet<u64> = shed.iter().copied().collect();
        prop_assert_eq!(answered_set.len(), answered.len(), "an id was answered twice");
        prop_assert_eq!(shed_set.len(), shed.len(), "an id was shed twice");
        prop_assert!(
            answered_set.is_disjoint(&shed_set),
            "ids both answered and shed: {:?}",
            answered_set.intersection(&shed_set).collect::<Vec<_>>()
        );
        let mut drained: BTreeSet<u64> = answered_set.union(&shed_set).copied().collect();
        for id in &rejected {
            prop_assert!(!drained.contains(id), "rejected id {id} was also drained");
            drained.insert(*id);
        }
        let all: BTreeSet<u64> = (0..items as u64).collect();
        prop_assert_eq!(drained, all, "every pushed id is accounted for exactly once");
        prop_assert_eq!(accepted.len() + rejected.len(), items);
    }

    /// Shed membership is decided by the predicate alone: with a
    /// deterministic predicate, the shed SET depends only on which
    /// items were accepted, not on drain timing or batch boundaries.
    fn shed_set_is_deterministic_for_a_seeded_schedule(
        seed in gen::u32_in(0..10_000),
        items in gen::usize_in(1..64),
        max_batch in gen::usize_in(1..8),
    ) {
        let shed_mod = 2 + (seed as u64 % 3);
        let run = || {
            let queue = BatchQueue::new(items.max(1));
            // Seeded arrival schedule: the same ids in the same order.
            for i in 0..items as u64 {
                let id = (seed as u64)
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(i)
                    % 1_000;
                queue.try_push(id).expect("capacity covers the schedule");
            }
            queue.close();
            let (answered, shed) = drain_all(&queue, max_batch, shed_mod);
            let answered: BTreeSet<u64> = answered.into_iter().collect();
            let shed: BTreeSet<u64> = shed.into_iter().collect();
            (answered, shed)
        };
        let (a1, s1) = run();
        let (a2, s2) = run();
        prop_assert_eq!(&s1, &s2, "replaying the schedule changed the shed set");
        prop_assert_eq!(&a1, &a2, "replaying the schedule changed the answered set");
        for id in &s1 {
            prop_assert_eq!(id % shed_mod, 0, "shed an id the predicate accepts");
        }
        for id in &a1 {
            prop_assert!(id % shed_mod != 0, "answered an id the predicate sheds");
        }
    }

    /// Closing while a drainer blocks always unblocks it, and pushes
    /// after close are returned to the caller rather than dropped.
    fn close_unblocks_and_rejects_late_pushes(
        capacity in gen::usize_in(1..8),
        max_batch in gen::usize_in(1..8),
    ) {
        let queue = Arc::new(BatchQueue::new(capacity));
        let drainer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || drain_all(&queue, max_batch, 0))
        };
        queue.close();
        let (answered, shed) = drainer.join().expect("drainer unblocked by close");
        prop_assert!(answered.is_empty() && shed.is_empty());
        match queue.try_push(7) {
            Err(PushError::Closed(id)) => prop_assert_eq!(id, 7),
            other => prop_assert!(false, "push after close: {other:?}"),
        }
    }
}
