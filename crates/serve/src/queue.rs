//! Bounded MPSC queue with adaptive batch draining.
//!
//! Acceptor threads [`BatchQueue::try_push`] jobs; a full queue rejects
//! immediately (the server turns that into `503 Service Unavailable`)
//! instead of buffering without bound. Worker threads call
//! [`BatchQueue::pop_batch`], which blocks for the first job and then
//! lingers up to `max_delay` for more — whichever of `max_batch` or the
//! deadline comes first closes the batch. That linger window is what
//! turns concurrent single requests into one fused forward pass.

use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed load now rather than queue
    /// unboundedly.
    Full(T),
    /// The queue was closed for shutdown; no new work is accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// One drained batch split by the shed predicate: `batch` is served,
/// `shed` gets fast rejections. Both empty only when the queue is
/// closed and fully drained (the worker exit signal).
#[derive(Debug)]
pub struct Drained<T> {
    /// Items to serve in one fused forward pass.
    pub batch: Vec<T>,
    /// Items whose deadline can no longer be met; reject immediately.
    pub shed: Vec<T>,
}

impl<T> Drained<T> {
    fn empty(max_batch: usize) -> Self {
        Drained { batch: Vec::with_capacity(max_batch), shed: Vec::new() }
    }

    /// True when the queue closed and drained: nothing to serve or shed.
    pub fn is_exit(&self) -> bool {
        self.batch.is_empty() && self.shed.is_empty()
    }
}

/// A bounded multi-producer queue drained in batches.
pub struct BatchQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BatchQueue: capacity must be positive");
        BatchQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking; a full or closed queue returns the
    /// item to the caller.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = lock_recover(&self.state);
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Drain the next batch: block until one item is queued (or the
    /// queue closes), then keep collecting until `max_batch` items are
    /// in hand or `max_delay` has passed since the first item arrived.
    ///
    /// Returns an empty vector only when the queue is closed and fully
    /// drained — the worker-thread exit signal.
    pub fn pop_batch(&self, max_batch: usize, max_delay: Duration) -> Vec<T> {
        self.pop_batch_shed(max_batch, max_delay, |_| false).batch
    }

    /// Like [`BatchQueue::pop_batch`], but every item is first offered
    /// to `shed` — items it claims (deadline already unmeetable) land
    /// in [`Drained::shed`] instead of the batch and do **not** count
    /// toward `max_batch`. Each popped item is classified exactly once,
    /// so no item can be both shed and served.
    ///
    /// When the first drain pass yields only shed items, the call
    /// returns immediately (no linger): their rejections should reach
    /// clients as fast as possible.
    pub fn pop_batch_shed(
        &self,
        max_batch: usize,
        max_delay: Duration,
        mut shed: impl FnMut(&T) -> bool,
    ) -> Drained<T> {
        let max_batch = max_batch.max(1);
        let mut s = lock_recover(&self.state);
        while s.items.is_empty() {
            if s.closed {
                // mb-lint: allow(alloc-in-hot-loop) -- shutdown return; with_capacity(0) does not allocate
                return Drained::empty(0);
            }
            s = wait_recover(&self.available, s);
        }
        let mut drained = Drained::empty(max_batch.min(s.items.len()));
        let deadline = Instant::now() + max_delay;
        loop {
            while drained.batch.len() < max_batch {
                match s.items.pop_front() {
                    Some(item) if shed(&item) => drained.shed.push(item),
                    Some(item) => drained.batch.push(item),
                    None => break,
                }
            }
            if drained.batch.len() >= max_batch || s.closed {
                break;
            }
            if drained.batch.is_empty() && !drained.shed.is_empty() {
                break; // all-shed drain: reject now, don't linger
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = wait_timeout_recover(&self.available, s, deadline - now);
            s = guard;
            if timeout.timed_out() && s.items.is_empty() {
                break;
            }
        }
        drained
    }

    /// Close the queue: future pushes fail, waiting workers wake, and
    /// already-queued items still drain (graceful shutdown).
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.available.notify_all();
    }

    /// Whether [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }

    /// Items currently queued (the `/metrics` queue-depth gauge).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BatchQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let q = BatchQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(4, Duration::from_millis(0));
        assert_eq!(batch, vec![0, 1, 2, 3]);
        let batch = q.pop_batch(100, Duration::from_millis(0));
        assert_eq!(batch, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BatchQueue::new(8);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop_batch(8, Duration::from_millis(5)), vec![1]);
        assert!(q.pop_batch(8, Duration::from_millis(5)).is_empty());
    }

    #[test]
    fn closing_wakes_a_blocked_worker() {
        let q = Arc::new(BatchQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_empty());
    }

    #[test]
    fn shed_items_do_not_count_toward_the_batch() {
        let q = BatchQueue::new(16);
        for i in 0..8 {
            q.try_push(i).unwrap();
        }
        // Shed the evens; the batch should still fill to 4 odds.
        let d = q.pop_batch_shed(4, Duration::from_millis(0), |i| i % 2 == 0);
        assert_eq!(d.batch, vec![1, 3, 5, 7]);
        assert_eq!(d.shed, vec![0, 2, 4, 6]);
        assert!(q.is_empty());
    }

    #[test]
    fn all_shed_drain_returns_without_linger() {
        let q = BatchQueue::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let started = Instant::now();
        let d = q.pop_batch_shed(8, Duration::from_secs(2), |_| true);
        assert!(d.batch.is_empty());
        assert_eq!(d.shed, vec![1, 2]);
        assert!(started.elapsed() < Duration::from_millis(500), "lingered on an all-shed drain");
        assert!(!d.is_exit(), "shed-only drains are not the exit signal");
    }

    #[test]
    fn closed_and_drained_is_the_exit_signal() {
        let q = BatchQueue::<u32>::new(4);
        q.close();
        let d = q.pop_batch_shed(4, Duration::from_millis(1), |_| true);
        assert!(d.is_exit());
    }

    #[test]
    fn linger_window_collects_late_arrivals() {
        let q = Arc::new(BatchQueue::new(8));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(3, Duration::from_secs(5)));
        for i in 0..3 {
            std::thread::sleep(Duration::from_millis(10));
            q.try_push(i).unwrap();
        }
        // The batch fills to max_batch well before the 5 s linger cap.
        assert_eq!(h.join().unwrap(), vec![0, 1, 2]);
    }
}
