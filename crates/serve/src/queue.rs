//! Bounded MPSC queue with adaptive batch draining.
//!
//! Acceptor threads [`BatchQueue::try_push`] jobs; a full queue rejects
//! immediately (the server turns that into `503 Service Unavailable`)
//! instead of buffering without bound. Worker threads call
//! [`BatchQueue::pop_batch`], which blocks for the first job and then
//! lingers up to `max_delay` for more — whichever of `max_batch` or the
//! deadline comes first closes the batch. That linger window is what
//! turns concurrent single requests into one fused forward pass.

use crate::sync::{lock_recover, wait_recover, wait_timeout_recover};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was rejected.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — shed load now rather than queue
    /// unboundedly.
    Full(T),
    /// The queue was closed for shutdown; no new work is accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer queue drained in batches.
pub struct BatchQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BatchQueue<T> {
    /// An empty queue holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BatchQueue: capacity must be positive");
        BatchQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Enqueue without blocking; a full or closed queue returns the
    /// item to the caller.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut s = lock_recover(&self.state);
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Drain the next batch: block until one item is queued (or the
    /// queue closes), then keep collecting until `max_batch` items are
    /// in hand or `max_delay` has passed since the first item arrived.
    ///
    /// Returns an empty vector only when the queue is closed and fully
    /// drained — the worker-thread exit signal.
    pub fn pop_batch(&self, max_batch: usize, max_delay: Duration) -> Vec<T> {
        let max_batch = max_batch.max(1);
        let mut s = lock_recover(&self.state);
        while s.items.is_empty() {
            if s.closed {
                return Vec::new();
            }
            s = wait_recover(&self.available, s);
        }
        let mut batch = Vec::with_capacity(max_batch.min(s.items.len()));
        let deadline = Instant::now() + max_delay;
        loop {
            while batch.len() < max_batch {
                match s.items.pop_front() {
                    Some(item) => batch.push(item),
                    None => break,
                }
            }
            if batch.len() >= max_batch || s.closed {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (guard, timeout) = wait_timeout_recover(&self.available, s, deadline - now);
            s = guard;
            if timeout.timed_out() && s.items.is_empty() {
                break;
            }
        }
        batch
    }

    /// Close the queue: future pushes fail, waiting workers wake, and
    /// already-queued items still drain (graceful shutdown).
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.available.notify_all();
    }

    /// Whether [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }

    /// Items currently queued (the `/metrics` queue-depth gauge).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BatchQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_batch_respects_max_batch() {
        let q = BatchQueue::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(4, Duration::from_millis(0));
        assert_eq!(batch, vec![0, 1, 2, 3]);
        let batch = q.pop_batch(100, Duration::from_millis(0));
        assert_eq!(batch, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = BatchQueue::new(8);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(PushError::Closed(2)));
        assert_eq!(q.pop_batch(8, Duration::from_millis(5)), vec![1]);
        assert!(q.pop_batch(8, Duration::from_millis(5)).is_empty());
    }

    #[test]
    fn closing_wakes_a_blocked_worker() {
        let q = Arc::new(BatchQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(4, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(h.join().unwrap().is_empty());
    }

    #[test]
    fn linger_window_collects_late_arrivals() {
        let q = Arc::new(BatchQueue::new(8));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(3, Duration::from_secs(5)));
        for i in 0..3 {
            std::thread::sleep(Duration::from_millis(10));
            q.try_push(i).unwrap();
        }
        // The batch fills to max_batch well before the 5 s linger cap.
        assert_eq!(h.join().unwrap(), vec![0, 1, 2]);
    }
}
