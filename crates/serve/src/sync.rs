//! Poison-tolerant lock helpers for the serving path.
//!
//! `Mutex::lock` returns `Err` only when another thread panicked while
//! holding the guard. The serving path is panic-free by contract —
//! mb-lint denies `unwrap`/`expect`/`panic!`/indexing throughout
//! `crates/serve` — so poisoning cannot originate here; it could only
//! leak in from test code or a future bug. Either way, aborting the
//! whole server (what `.expect("poisoned")` did) is the worst possible
//! response for availability: every protected structure in this crate
//! ([`crate::queue::BatchQueue`] state, the embedding LRU) is valid
//! after *any* interleaving of its mutations, because each critical
//! section performs single-field writes and `VecDeque`/`LruCache`
//! operations that never leave the structure half-updated at a panic
//! point. Recovering the guard with [`std::sync::PoisonError::into_inner`]
//! is therefore sound, and it keeps serving.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Lock `m`, recovering the guard from a poisoned mutex.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait`, recovering the guard from a poisoned mutex.
pub(crate) fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout`, recovering the guard from a poisoned mutex.
pub(crate) fn wait_timeout_recover<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn poisoned_mutex_recovers_with_state_intact() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        // Poison the mutex by panicking while holding the guard.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_recover(&m), 7);
    }
}
