//! The servable model bundle and its checkpoint loader.

use mb_common::{Error, Result, Rng};
use mb_core::linker::LinkerConfig;
use mb_core::pipeline::{BI_KEY, CROSS_KEY};
use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
use mb_encoders::crossencoder::{CrossEncoder, CrossEncoderConfig};
use mb_encoders::frozen::{FrozenBiEncoder, FrozenCrossEncoder};
use mb_kb::{EntityId, KnowledgeBase};
use mb_tensor::checkpoint::Checkpoint;
use mb_text::Vocab;

/// Everything the server owns: the trained encoders plus the world
/// they were trained against. Self-contained (no borrows), so the
/// server can move it into its worker threads.
///
/// Construction freezes (and, per `linker.quant`, quantizes) both
/// encoders exactly once; every worker thread then serves from those
/// `Arc`-shared tape-free handles — the serving hot path never touches
/// the tape encoders or clones a parameter tensor.
pub struct ServeModel {
    /// Shared vocabulary (featurization must match training).
    pub vocab: Vocab,
    /// The knowledge base entities are linked into.
    pub kb: KnowledgeBase,
    /// The candidate dictionary served (usually one domain's entities).
    pub dictionary: Vec<EntityId>,
    /// Trained bi-encoder (stage one; kept for index building and
    /// diagnostics — serving uses [`ServeModel::frozen_bi`]).
    pub bi: BiEncoder,
    /// Trained cross-encoder (stage two; serving uses
    /// [`ServeModel::frozen_cross`]).
    pub cross: CrossEncoder,
    /// Retrieval/truncation settings used at inference time.
    pub linker: LinkerConfig,
    /// Label for logs and the `/healthz` payload.
    pub domain: String,
    frozen_bi: FrozenBiEncoder,
    frozen_cross: FrozenCrossEncoder,
}

impl ServeModel {
    /// Bundle trained encoders into a servable model, freezing both
    /// under `linker.quant` (the model's single freeze/quantize point).
    pub fn new(
        vocab: Vocab,
        kb: KnowledgeBase,
        dictionary: Vec<EntityId>,
        bi: BiEncoder,
        cross: CrossEncoder,
        linker: LinkerConfig,
        domain: String,
    ) -> ServeModel {
        let frozen_bi = bi.freeze(linker.quant);
        let frozen_cross = cross.freeze(linker.quant);
        ServeModel { vocab, kb, dictionary, bi, cross, linker, domain, frozen_bi, frozen_cross }
    }

    /// The shared tape-free bi-encoder every worker serves with.
    pub fn frozen_bi(&self) -> &FrozenBiEncoder {
        &self.frozen_bi
    }

    /// The shared tape-free cross-encoder every worker serves with.
    pub fn frozen_cross(&self) -> &FrozenCrossEncoder {
        &self.frozen_cross
    }

    /// Rebuild the encoders from an `mb-params v2` [`Checkpoint`]
    /// holding parameters under the training pipeline's `"bi"` and
    /// `"cross"` keys (legacy v1 files load through
    /// [`Checkpoint::from_bytes`]'s fallback before reaching here).
    ///
    /// # Errors
    /// [`Error::Checkpoint`] when either encoder's parameters are
    /// missing from the checkpoint.
    #[allow(clippy::too_many_arguments)]
    pub fn from_checkpoint(
        ck: &Checkpoint,
        vocab: Vocab,
        kb: KnowledgeBase,
        dictionary: Vec<EntityId>,
        domain: String,
        bi_cfg: BiEncoderConfig,
        cross_cfg: CrossEncoderConfig,
        linker: LinkerConfig,
    ) -> Result<ServeModel> {
        let bi_params = ck.params.get(BI_KEY).ok_or_else(|| {
            Error::Checkpoint(format!("checkpoint has no {BI_KEY:?} parameter section"))
        })?;
        let cross_params = ck.params.get(CROSS_KEY).ok_or_else(|| {
            Error::Checkpoint(format!("checkpoint has no {CROSS_KEY:?} parameter section"))
        })?;
        // The init RNG is irrelevant: every tensor is overwritten.
        let mut bi = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(0));
        // mb-lint: allow(tape-free) -- one-time checkpoint load, not a forward path
        bi.set_params(bi_params.clone());
        let mut cross = CrossEncoder::new(&vocab, cross_cfg, &mut Rng::seed_from_u64(0));
        // mb-lint: allow(tape-free) -- one-time checkpoint load, not a forward path
        cross.set_params(cross_params.clone());
        Ok(ServeModel::new(vocab, kb, dictionary, bi, cross, linker, domain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::input::build_vocab;

    #[test]
    fn from_checkpoint_requires_both_encoders() {
        let world = World::generate(WorldConfig::tiny(5));
        let vocab = build_vocab(world.kb(), [], 1);
        let bi_cfg = BiEncoderConfig { emb_dim: 8, hidden: 8, out_dim: 8, ..Default::default() };
        let cross_cfg = CrossEncoderConfig { emb_dim: 8, hidden: 8, ..Default::default() };
        let bi = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(1));
        let cross = CrossEncoder::new(&vocab, cross_cfg, &mut Rng::seed_from_u64(2));

        let mut ck = Checkpoint::new();
        ck.params.insert(BI_KEY.to_string(), bi.params().clone());
        let missing = ServeModel::from_checkpoint(
            &ck,
            vocab.clone(),
            world.kb().clone(),
            Vec::new(),
            "TargetX".to_string(),
            bi_cfg,
            cross_cfg,
            LinkerConfig::default(),
        );
        assert!(missing.is_err(), "cross params are missing");

        ck.params.insert(CROSS_KEY.to_string(), cross.params().clone());
        let model = ServeModel::from_checkpoint(
            &ck,
            vocab,
            world.kb().clone(),
            Vec::new(),
            "TargetX".to_string(),
            bi_cfg,
            cross_cfg,
            LinkerConfig::default(),
        )
        .expect("both sections present");
        assert_eq!(model.bi.params(), bi.params());
        assert_eq!(model.cross.params(), cross.params());
    }
}
