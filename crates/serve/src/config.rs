//! Resilience tunables ([`ServeConfig`]) and the token-style admission
//! gate that sits ahead of the batch queue.
//!
//! Every timeout and shedding threshold the server applies lives here
//! instead of as a hard-coded constant, so operators can trade latency
//! SLOs against throughput per deployment. The admission gate bounds
//! the number of `/link` requests *inside* the server (queued or
//! waiting on a reply) so overload degrades to fast `503 + Retry-After`
//! rejections instead of a pile of handler threads parked on reply
//! channels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Resilience knobs: timeouts, deadline budgets, admission limits.
///
/// All durations are milliseconds; `0` means "disabled" where a knob is
/// optional (read timeout, watcher) and "use the default" is expressed
/// by [`ServeConfig::default`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Socket read timeout for connection handlers (ms); `0` disables
    /// the timeout entirely. Bounds how long a slow-loris peer can park
    /// a handler thread.
    pub read_timeout_ms: u64,
    /// Upper bound a handler waits for a worker's reply (ms) — the
    /// guard against a dead worker pool, not the normal path.
    pub reply_timeout_ms: u64,
    /// Deadline budget applied when a `/link` request does not carry
    /// its own `deadline_ms` field.
    pub default_deadline_ms: u64,
    /// Hard cap on client-supplied `deadline_ms`; larger requests are
    /// clamped, so a client cannot opt out of shedding.
    pub max_deadline_ms: u64,
    /// Value of the `Retry-After` header (seconds) on every 503.
    pub retry_after_s: u64,
    /// Most `/link` requests admitted into the server at once (queued
    /// plus awaiting reply); `0` sizes it automatically from the queue
    /// capacity and worker fan-out.
    pub admission_limit: u64,
    /// Poll interval for the model-registry source watcher (ms); `0`
    /// disables watching (reloads happen only via `POST /admin/reload`).
    pub watch_interval_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            read_timeout_ms: 30_000,
            reply_timeout_ms: 60_000,
            default_deadline_ms: 10_000,
            max_deadline_ms: 30_000,
            retry_after_s: 1,
            admission_limit: 0,
            watch_interval_ms: 0,
        }
    }
}

impl ServeConfig {
    /// The handler read timeout as an `Option` (0 → no timeout).
    pub fn read_timeout(&self) -> Option<Duration> {
        (self.read_timeout_ms > 0).then(|| Duration::from_millis(self.read_timeout_ms))
    }

    /// The reply-channel timeout, floored at 1 ms so a zero config
    /// cannot make every request fail instantly.
    pub fn reply_timeout(&self) -> Duration {
        Duration::from_millis(self.reply_timeout_ms.max(1))
    }

    /// Clamp a request's deadline budget: absent → default, present →
    /// floored at 1 ms and capped at `max_deadline_ms`.
    pub fn clamp_deadline_ms(&self, requested: Option<u64>) -> u64 {
        let max = self.max_deadline_ms.max(1);
        requested.unwrap_or(self.default_deadline_ms).clamp(1, max)
    }

    /// The effective admission limit given the queue capacity and
    /// worker fan-out: explicit when configured, otherwise everything
    /// that can be queued plus one full batch per worker in flight.
    pub fn effective_admission_limit(
        &self,
        queue_capacity: usize,
        workers: usize,
        max_batch: usize,
    ) -> u64 {
        if self.admission_limit > 0 {
            return self.admission_limit;
        }
        (queue_capacity + workers.max(1) * max_batch.max(1)) as u64
    }
}

/// A token-style concurrency gate: [`AdmissionGate::try_acquire`] hands
/// out at most `limit` permits; a denied acquire is the caller's cue to
/// shed immediately. Permits release on drop, so every exit path of a
/// handler — reply, timeout, shed — returns its token.
#[derive(Debug)]
pub struct AdmissionGate {
    limit: u64,
    inflight: AtomicU64,
}

impl AdmissionGate {
    /// A gate admitting at most `limit` concurrent holders (`limit` is
    /// floored at 1 — a zero-width gate would reject everything).
    pub fn new(limit: u64) -> Self {
        AdmissionGate { limit: limit.max(1), inflight: AtomicU64::new(0) }
    }

    /// Acquire a permit, or `None` when the gate is full.
    pub fn try_acquire(&self) -> Option<AdmissionPermit<'_>> {
        let prev = self.inflight.fetch_add(1, Ordering::AcqRel);
        if prev >= self.limit {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return None;
        }
        Some(AdmissionPermit { gate: self })
    }

    /// Permits currently held.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Acquire)
    }

    /// The configured permit cap.
    pub fn limit(&self) -> u64 {
        self.limit
    }
}

/// An admission token; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionPermit<'a> {
    gate: &'a AdmissionGate,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_clamping_applies_default_floor_and_cap() {
        let cfg = ServeConfig {
            default_deadline_ms: 5_000,
            max_deadline_ms: 8_000,
            ..Default::default()
        };
        assert_eq!(cfg.clamp_deadline_ms(None), 5_000);
        assert_eq!(cfg.clamp_deadline_ms(Some(2_000)), 2_000);
        assert_eq!(cfg.clamp_deadline_ms(Some(99_999)), 8_000);
        assert_eq!(cfg.clamp_deadline_ms(Some(0)), 1);
    }

    #[test]
    fn zero_read_timeout_means_none() {
        let mut cfg = ServeConfig::default();
        assert_eq!(cfg.read_timeout(), Some(Duration::from_millis(30_000)));
        cfg.read_timeout_ms = 0;
        assert_eq!(cfg.read_timeout(), None);
    }

    #[test]
    fn auto_admission_limit_tracks_queue_and_workers() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.effective_admission_limit(256, 2, 16), 256 + 32);
        let explicit = ServeConfig { admission_limit: 7, ..Default::default() };
        assert_eq!(explicit.effective_admission_limit(256, 2, 16), 7);
    }

    #[test]
    fn gate_caps_concurrent_permits_and_releases_on_drop() {
        let gate = AdmissionGate::new(2);
        let a = gate.try_acquire().expect("slot 1");
        let _b = gate.try_acquire().expect("slot 2");
        assert!(gate.try_acquire().is_none(), "gate is full");
        assert_eq!(gate.inflight(), 2);
        drop(a);
        assert_eq!(gate.inflight(), 1);
        assert!(gate.try_acquire().is_some(), "slot freed by drop");
    }

    #[test]
    fn gate_is_safe_under_contention() {
        let gate = std::sync::Arc::new(AdmissionGate::new(8));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let gate = std::sync::Arc::clone(&gate);
                std::thread::spawn(move || {
                    let mut admitted = 0u64;
                    for _ in 0..1_000 {
                        if let Some(p) = gate.try_acquire() {
                            admitted += 1;
                            drop(p);
                        }
                    }
                    admitted
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap() > 0);
        }
        assert_eq!(gate.inflight(), 0, "all permits returned");
    }
}
