//! The HTTP server: acceptor, connection handlers, and batch workers.
//!
//! Threading model (see DESIGN.md §9):
//!
//! - one **acceptor** thread turns accepted sockets into per-connection
//!   handler threads;
//! - **handler** threads parse requests; `/link` jobs go through the
//!   bounded [`BatchQueue`] (full queue → `503`) and block on a reply
//!   channel; `/healthz`, `/metrics`, and `/admin/shutdown` answer
//!   inline;
//! - a pool of **batch workers** drains the queue adaptively (up to
//!   `max_batch` jobs or `max_delay_us`, whichever first) and runs one
//!   fused [`TwoStageLinker::link_batch_cached`] per drained batch.
//!
//! Shutdown is a flag, not a signal: `POST /admin/shutdown` (or
//! [`Server::shutdown`]) closes the queue so workers drain in-flight
//! batches and exit, wakes the acceptor, and [`Server::join`] returns.

use crate::http::{read_request, write_response, HttpError, HttpLimits, Request};
use crate::json::{self, Json};
use crate::metrics::Metrics;
use crate::model::ServeModel;
use crate::queue::{BatchQueue, PushError};
use mb_core::linker::{EmbedCache, LinkResult, TwoStageLinker};
use mb_datagen::LinkedMention;
use mb_encoders::retrieval::{DenseIndex, QuantizedIndex};
use mb_kb::EntityId;
use mb_text::OverlapCategory;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Most requests fused into one forward pass.
    pub max_batch: usize,
    /// How long a batch lingers for more requests (µs) after its first.
    pub max_delay_us: u64,
    /// Bounded queue capacity; beyond it, `/link` answers 503.
    pub queue_capacity: usize,
    /// Mention-embedding LRU capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Batch-worker threads.
    pub workers: usize,
    /// HTTP parser limits.
    pub limits: HttpLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_delay_us: 2_000,
            queue_capacity: 256,
            cache_capacity: 4_096,
            workers: 1,
            limits: HttpLimits::default(),
        }
    }
}

/// One queued `/link` request.
struct Job {
    mention: LinkedMention,
    reply: mpsc::Sender<LinkResult>,
}

/// State shared by every thread of the server.
struct Shared {
    model: ServeModel,
    index: Arc<DenseIndex>,
    qindex: Option<Arc<QuantizedIndex>>,
    cfg: ServerConfig,
    queue: BatchQueue<Job>,
    metrics: Metrics,
    cache: Mutex<EmbedCache>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flip the shutdown flag, close the queue, and poke the acceptor
    /// loose from `accept()` with a throwaway connection.
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] or let `POST /admin/shutdown` end it.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Precompute the entity index for `model`'s dictionary, bind
    /// `cfg.addr`, and start serving.
    ///
    /// # Errors
    /// [`mb_common::Error::Io`] when the address cannot be bound;
    /// index-validation errors from
    /// [`TwoStageLinker::with_frozen`] when the model is inconsistent.
    pub fn start(model: ServeModel, cfg: ServerConfig) -> mb_common::Result<Server> {
        let index = Arc::new(DenseIndex::build(
            &model.bi,
            &model.vocab,
            &model.linker.input,
            &model.kb,
            &model.dictionary,
        ));
        // Quantize the retrieval index once (None under QuantMode::Exact);
        // workers share the handle.
        let qindex = QuantizedIndex::from_dense(&index, model.linker.quant).map(Arc::new);
        // Fail fast on an inconsistent model rather than per request.
        TwoStageLinker::with_frozen(
            &model.bi,
            &model.cross,
            &model.vocab,
            &model.kb,
            model.linker,
            Arc::clone(&index),
            qindex.clone(),
            model.frozen_bi().clone(),
            model.frozen_cross().clone(),
        )?;
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| mb_common::Error::Io(format!("bind {}: {e}", cfg.addr)))?;
        let addr =
            listener.local_addr().map_err(|e| mb_common::Error::Io(format!("local_addr: {e}")))?;

        let shared = Arc::new(Shared {
            queue: BatchQueue::new(cfg.queue_capacity.max(1)),
            metrics: Metrics::new(),
            cache: Mutex::new(EmbedCache::new(cfg.cache_capacity)),
            shutdown: AtomicBool::new(false),
            model,
            index,
            qindex,
            cfg,
            addr,
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(Server { shared, acceptor, workers })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Block until the server shuts down (via `POST /admin/shutdown`
    /// or a concurrent [`Server::shutdown`]); in-flight batches drain
    /// before this returns.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain queued work, join all
    /// server threads.
    pub fn shutdown(self) {
        self.shared.request_shutdown();
        self.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Handler threads are detached: an idle keep-alive connection
        // must not block shutdown, and the read timeout below bounds
        // their lifetime after the process stops serving.
        std::thread::spawn(move || handle_connection(stream, &shared));
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    // Assembled from Arc handles only: every worker serves one frozen
    // model — no tape, no per-worker parameter or index copies.
    let linker = match TwoStageLinker::with_frozen(
        &shared.model.bi,
        &shared.model.cross,
        &shared.model.vocab,
        &shared.model.kb,
        shared.model.linker,
        Arc::clone(&shared.index),
        shared.qindex.clone(),
        shared.model.frozen_bi().clone(),
        shared.model.frozen_cross().clone(),
    ) {
        Ok(linker) => linker,
        Err(e) => {
            // Server::start validated this exact construction, so this
            // arm is unreachable in practice; losing one worker beats
            // taking the process down.
            eprintln!("mb-serve: worker failed to build linker: {e}");
            return;
        }
    };
    let delay = Duration::from_micros(shared.cfg.max_delay_us);
    loop {
        let jobs = shared.queue.pop_batch(shared.cfg.max_batch, delay);
        if jobs.is_empty() {
            return; // queue closed and drained
        }
        shared.metrics.record_batch(jobs.len());
        let mentions: Vec<LinkedMention> = jobs.iter().map(|j| j.mention.clone()).collect();
        let results = {
            let mut cache = crate::sync::lock_recover(&shared.cache);
            let results = linker.link_batch_cached(&mentions, Some(&mut cache));
            shared.metrics.set_cache_counters(cache.hits(), cache.misses());
            results
        };
        for (job, result) in jobs.into_iter().zip(results) {
            // A dropped receiver just means the client went away.
            let _ = job.reply.send(result);
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Bound blocking reads so handler threads cannot hang forever on a
    // silent peer.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader, &shared.cfg.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                shared.metrics.record_request();
                shared.metrics.record_response(e.status());
                let body = format!("{{\"error\":{}}}", json::escape(&e.to_string()));
                let _ = write_response(
                    &mut writer,
                    e.status(),
                    "application/json",
                    body.as_bytes(),
                    true,
                );
                return; // framing is unreliable after a parse error
            }
        };
        shared.metrics.record_request();
        let is_shutdown = req.method == "POST" && req.path == "/admin/shutdown";
        let closing = is_shutdown || req.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        let (status, content_type, body) = route(&req, shared);
        shared.metrics.record_response(status);
        let written = write_response(&mut writer, status, content_type, body.as_bytes(), closing);
        if is_shutdown {
            // Trigger only after the response is flushed: once the
            // queue closes, the process may exit (and take this
            // detached handler thread with it) before a later write
            // would reach the client.
            shared.request_shutdown();
            return;
        }
        if written.is_err() || closing {
            return;
        }
    }
}

fn route(req: &Request, shared: &Arc<Shared>) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let body = format!(
                "{{\"status\":\"ok\",\"domain\":{},\"entities\":{}}}",
                json::escape(&shared.model.domain),
                shared.model.dictionary.len()
            );
            (200, "application/json", body)
        }
        ("GET", "/metrics") => {
            (200, "text/plain; charset=utf-8", shared.metrics.render(shared.queue.len()))
        }
        // The handler triggers the actual shutdown AFTER this response
        // is flushed (see `handle_connection`).
        ("POST", "/admin/shutdown") => {
            (200, "application/json", "{\"status\":\"draining\"}".to_string())
        }
        ("POST", "/link") => handle_link(req, shared),
        ("GET" | "POST" | "PUT" | "DELETE" | "HEAD", _) => {
            (404, "application/json", "{\"error\":\"no such endpoint\"}".to_string())
        }
        _ => (405, "application/json", "{\"error\":\"method not allowed\"}".to_string()),
    }
}

/// Parse a `/link` body into a mention plus the answer size.
fn parse_link_body(body: &[u8]) -> Result<(LinkedMention, usize), String> {
    let doc = json::parse(body)?;
    let surface = doc
        .get("surface")
        .and_then(Json::as_str)
        .ok_or("missing string field \"surface\"")?
        .to_string();
    if surface.trim().is_empty() {
        return Err("\"surface\" must be non-empty".to_string());
    }
    let text = |key: &str| -> Result<String, String> {
        match doc.get(key) {
            None => Ok(String::new()),
            Some(v) => Ok(v.as_str().ok_or(format!("field {key:?} must be a string"))?.to_string()),
        }
    };
    let k = match doc.get("k") {
        None => 5,
        Some(v) => v.as_usize().ok_or("field \"k\" must be a non-negative integer")?,
    };
    let mention = LinkedMention {
        left: text("left")?,
        surface,
        right: text("right")?,
        // Serving has no gold label; id 0 only marks gold in training.
        entity: EntityId(0),
        category: OverlapCategory::LowOverlap,
    };
    Ok((mention, k))
}

fn handle_link(req: &Request, shared: &Arc<Shared>) -> (u16, &'static str, String) {
    let (mention, k) = match parse_link_body(&req.body) {
        Ok(parsed) => parsed,
        Err(e) => return (400, "application/json", format!("{{\"error\":{}}}", json::escape(&e))),
    };
    let started = Instant::now();
    let (tx, rx) = mpsc::channel();
    match shared.queue.try_push(Job { mention, reply: tx }) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared.metrics.record_rejected();
            return (
                503,
                "application/json",
                "{\"error\":\"queue full, retry later\"}".to_string(),
            );
        }
        Err(PushError::Closed(_)) => {
            return (
                503,
                "application/json",
                "{\"error\":\"server is shutting down\"}".to_string(),
            );
        }
    }
    // The bound guards against a dead worker pool; in normal operation
    // (including shutdown drain) every queued job gets a reply.
    let Ok(result) = rx.recv_timeout(Duration::from_secs(60)) else {
        return (503, "application/json", "{\"error\":\"server is shutting down\"}".to_string());
    };
    shared.metrics.record_latency_us(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
    (200, "application/json", render_result(&result, k, shared))
}

/// Render a [`LinkResult`] as the `/link` response document, with the
/// rerank-ordered top-`k` candidates.
fn render_result(result: &LinkResult, k: usize, shared: &Arc<Shared>) -> String {
    // Pairing via `zip` (which truncates to the shorter side) instead
    // of parallel-array indexing keeps this panic-free even if the two
    // lists ever disagreed in length.
    let mut ranked: Vec<_> = result
        .retrieved
        .iter()
        .zip(&result.rerank_scores)
        .map(|(&(id, bi_score), &score)| (id, bi_score, score))
        .collect();
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
    let candidates: Vec<String> = ranked
        .iter()
        .take(k)
        .map(|&(id, bi_score, score)| {
            let entity = shared.model.kb.entity(id);
            format!(
                "{{\"id\":{},\"title\":{},\"bi_score\":{},\"score\":{}}}",
                id.0,
                json::escape(&entity.title),
                json::num(bi_score),
                json::num(score)
            )
        })
        .collect();
    let predicted = match result.predicted {
        Some(id) => format!(
            "{{\"id\":{},\"title\":{}}}",
            id.0,
            json::escape(&shared.model.kb.entity(id).title)
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"domain\":{},\"predicted\":{},\"candidates\":[{}]}}",
        json::escape(&shared.model.domain),
        predicted,
        candidates.join(",")
    )
}
