//! The HTTP server: acceptor, connection handlers, and batch workers.
//!
//! Threading model (see DESIGN.md §9 and §13):
//!
//! - one **acceptor** thread turns accepted sockets into per-connection
//!   handler threads;
//! - **handler** threads parse requests; `/link` jobs pass the
//!   admission gate, then the bounded [`BatchQueue`] (full queue →
//!   `503`) and block on a reply channel; `/healthz`, `/metrics`,
//!   `/admin/reload`, and `/admin/shutdown` answer inline;
//! - a pool of **batch workers** drains the queue adaptively (up to
//!   `max_batch` jobs or `max_delay_us`, whichever first) and runs one
//!   fused [`TwoStageLinker::link_batch_cached`] per drained batch.
//!
//! Every batch is served by exactly one model [`Generation`] resolved
//! from the [`ModelRegistry`]: workers re-check the generation id after
//! draining and rebuild their linker before serving a batch that
//! arrived across a hot swap, and each reply carries the generation
//! that computed it so responses are never mixed across generations.
//!
//! Overload degrades to fast rejections: the admission gate bounds
//! requests inside the server, per-request deadlines shed queue entries
//! that can no longer be met at the current drain rate, and every `503`
//! carries `Retry-After` ([`ServeConfig`]).
//!
//! Shutdown is a flag, not a signal: `POST /admin/shutdown` (or
//! [`Server::shutdown`]) closes the queue so workers drain in-flight
//! batches and exit, wakes the acceptor, and [`Server::join`] returns.

use crate::config::{AdmissionGate, ServeConfig};
use crate::http::{read_request, write_response_ext, HttpError, HttpLimits, Request};
use crate::json::{self, Json};
use crate::metrics::{Gauges, Metrics};
use crate::model::ServeModel;
use crate::queue::{BatchQueue, PushError};
use crate::registry::{Generation, ModelRegistry};
use mb_core::linker::{EmbedCache, LinkResult, TwoStageLinker};
use mb_datagen::LinkedMention;
use mb_kb::EntityId;
use mb_text::OverlapCategory;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Most requests fused into one forward pass.
    pub max_batch: usize,
    /// How long a batch lingers for more requests (µs) after its first.
    pub max_delay_us: u64,
    /// Bounded queue capacity; beyond it, `/link` answers 503.
    pub queue_capacity: usize,
    /// Mention-embedding LRU capacity (0 disables caching).
    pub cache_capacity: usize,
    /// Batch-worker threads.
    pub workers: usize,
    /// HTTP parser limits.
    pub limits: HttpLimits,
    /// Resilience knobs: timeouts, deadlines, admission control.
    pub serve: ServeConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_batch: 16,
            max_delay_us: 2_000,
            queue_capacity: 256,
            cache_capacity: 4_096,
            workers: 1,
            limits: HttpLimits::default(),
            serve: ServeConfig::default(),
        }
    }
}

/// What a worker sends back for one queued job.
enum Reply {
    /// Served: the result plus the generation that computed it (the
    /// handler renders entity titles against *that* generation's KB).
    Done(LinkResult, Arc<Generation>),
    /// Shed at drain time: the deadline could not be met.
    Shed,
    /// Inference reported a typed error (unreachable for a
    /// publish-validated generation); the handler answers 500 instead
    /// of the worker panicking.
    Failed(String),
}

/// One queued `/link` request.
struct Job {
    mention: LinkedMention,
    reply: mpsc::Sender<Reply>,
    /// Absolute deadline derived from the request's budget; the drain
    /// predicate sheds jobs whose deadline is unreachable.
    deadline: Instant,
}

/// The mention-embedding LRU, tagged with the generation whose
/// embeddings it holds — a hot swap must not serve stale vectors.
struct GenCache {
    generation: u64,
    cache: EmbedCache,
}

/// One routed response, plus the `Retry-After` seconds carried by
/// shedding 503s.
struct HttpReply {
    status: u16,
    content_type: &'static str,
    body: String,
    retry_after_s: Option<u64>,
}

impl HttpReply {
    fn json(status: u16, body: String) -> HttpReply {
        HttpReply { status, content_type: "application/json", body, retry_after_s: None }
    }

    /// A load-shedding 503 with `Retry-After`.
    fn shed(message: &str, retry_after_s: u64) -> HttpReply {
        HttpReply {
            status: 503,
            content_type: "application/json",
            body: format!("{{\"error\":{}}}", json::escape(message)),
            retry_after_s: Some(retry_after_s),
        }
    }
}

/// State shared by every thread of the server.
struct Shared {
    registry: ModelRegistry,
    cfg: ServerConfig,
    queue: BatchQueue<Job>,
    gate: AdmissionGate,
    metrics: Metrics,
    cache: Mutex<GenCache>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    /// Flip the shutdown flag, close the queue, and poke the acceptor
    /// loose from `accept()` with a throwaway connection.
    fn request_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue.close();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
    }

    /// Point-in-time gauges for `/metrics`.
    fn gauges(&self) -> Gauges {
        Gauges {
            queue_depth: self.queue.len(),
            inflight: self.gate.inflight(),
            generation: self.registry.generation_id(),
            swaps: self.registry.swaps(),
            reload_rejected: self.registry.rejected(),
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`Server::shutdown`] or let `POST /admin/shutdown` end it.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl Server {
    /// Serve `model` as generation 1 with no reload source
    /// (`POST /admin/reload` answers 409).
    ///
    /// # Errors
    /// [`mb_common::Error::Io`] when the address cannot be bound;
    /// index-validation errors from
    /// [`TwoStageLinker::with_frozen`] when the model is inconsistent.
    pub fn start(model: ServeModel, cfg: ServerConfig) -> mb_common::Result<Server> {
        Server::start_with_registry(ModelRegistry::new(model)?, cfg)
    }

    /// Serve from an existing [`ModelRegistry`] (built with a loader
    /// when hot reloads are wanted). When `cfg.serve.watch_interval_ms`
    /// is non-zero and the registry has a source, a watcher thread
    /// polls the source file and reloads on change.
    ///
    /// # Errors
    /// [`mb_common::Error::Io`] when the address cannot be bound.
    pub fn start_with_registry(
        registry: ModelRegistry,
        cfg: ServerConfig,
    ) -> mb_common::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| mb_common::Error::Io(format!("bind {}: {e}", cfg.addr)))?;
        let addr =
            listener.local_addr().map_err(|e| mb_common::Error::Io(format!("local_addr: {e}")))?;

        let admission =
            cfg.serve.effective_admission_limit(cfg.queue_capacity, cfg.workers, cfg.max_batch);
        let shared = Arc::new(Shared {
            queue: BatchQueue::new(cfg.queue_capacity.max(1)),
            gate: AdmissionGate::new(admission),
            metrics: Metrics::new(),
            cache: Mutex::new(GenCache {
                generation: registry.generation_id(),
                cache: EmbedCache::new(cfg.cache_capacity),
            }),
            shutdown: AtomicBool::new(false),
            registry,
            cfg,
            addr,
        });

        let workers = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&listener, &shared))
        };
        let watcher = watcher_thread(&shared);
        Ok(Server { shared, acceptor, workers, watcher })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The current model generation id.
    pub fn generation(&self) -> u64 {
        self.shared.registry.generation_id()
    }

    /// Block until the server shuts down (via `POST /admin/shutdown`
    /// or a concurrent [`Server::shutdown`]); in-flight batches drain
    /// before this returns.
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        if let Some(w) = self.watcher {
            let _ = w.join();
        }
    }

    /// Graceful shutdown: stop accepting, drain queued work, join all
    /// server threads.
    pub fn shutdown(self) {
        self.shared.request_shutdown();
        self.join();
    }
}

/// Spawn the model-source watcher when configured: poll the source
/// file's (mtime, size) every `watch_interval_ms` and reload on change.
/// Reload failures are logged and counted; the old generation serves on.
fn watcher_thread(shared: &Arc<Shared>) -> Option<JoinHandle<()>> {
    let interval = shared.cfg.serve.watch_interval_ms;
    if interval == 0 || !shared.registry.has_source() {
        return None;
    }
    let shared = Arc::clone(shared);
    Some(std::thread::spawn(move || {
        let stat = |shared: &Shared| {
            shared.registry.source().and_then(|p| {
                let meta = std::fs::metadata(p).ok()?;
                Some((meta.modified().ok()?, meta.len()))
            })
        };
        let mut last = stat(&shared);
        let step = Duration::from_millis(interval.clamp(1, 50));
        let mut waited = Duration::ZERO;
        while !shared.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(step);
            waited += step;
            if waited < Duration::from_millis(interval) {
                continue;
            }
            waited = Duration::ZERO;
            let now = stat(&shared);
            if now.is_some() && now != last {
                match shared.registry.reload(None) {
                    Ok(id) => eprintln!("mb-serve: watcher swapped to generation {id}"),
                    Err(e) => eprintln!("mb-serve: watcher reload rejected: {e}"),
                }
            }
            last = now;
        }
    }))
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Handler threads are detached: an idle keep-alive connection
        // must not block shutdown, and the read timeout below bounds
        // their lifetime after the process stops serving.
        std::thread::spawn(move || handle_connection(stream, &shared));
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    let delay = Duration::from_micros(shared.cfg.max_delay_us);
    // A batch drained across a hot swap is carried here and served by
    // the *new* generation's linker after the rebuild below.
    let mut pending: Vec<Job> = Vec::with_capacity(shared.cfg.max_batch.max(1));
    loop {
        // Resolve the current generation and assemble its linker from
        // Arc handles only: no tape, no parameter or index copies.
        let generation = shared.registry.current();
        let linker = match TwoStageLinker::with_frozen(
            &generation.model.bi,
            &generation.model.cross,
            &generation.model.vocab,
            &generation.model.kb,
            generation.model.linker,
            Arc::clone(&generation.index),
            generation.qindex.clone(),
            generation.model.frozen_bi().clone(),
            generation.model.frozen_cross().clone(),
        ) {
            Ok(linker) => linker,
            Err(e) => {
                // Generation::build validated this exact construction,
                // so this arm is unreachable in practice; losing one
                // worker beats taking the process down.
                eprintln!("mb-serve: worker failed to build linker: {e}");
                return;
            }
        };
        // Store-backed generations route stage-one retrieval through
        // the IVF index; validated at publish time, so the same
        // unreachable-in-practice policy applies here.
        let linker = match generation.ann_source() {
            Some(ann) => match linker.with_ann(ann) {
                Ok(linker) => linker,
                Err(e) => {
                    eprintln!("mb-serve: worker failed to attach ANN index: {e}");
                    return;
                }
            },
            None => linker,
        };
        loop {
            let drained = if pending.is_empty() {
                let margin = Duration::from_micros(shared.metrics.service_ewma_us());
                shared.queue.pop_batch_shed(shared.cfg.max_batch, delay, |job| {
                    // Shed when one more batch's service time would
                    // already land past the job's deadline.
                    job.deadline < Instant::now() + margin
                })
            } else {
                crate::queue::Drained { batch: std::mem::take(&mut pending), shed: Vec::new() }
            };
            for job in drained.shed {
                shared.metrics.record_deadline_shed();
                shared.metrics.record_rejected();
                let _ = job.reply.send(Reply::Shed);
            }
            if drained.batch.is_empty() {
                if shared.queue.is_closed() && shared.queue.is_empty() {
                    return; // closed and drained
                }
                continue;
            }
            // Hot-swap check: a batch drained across a swap is served
            // by the new generation — rebuild the linker first.
            if shared.registry.generation_id() != generation.id {
                pending = drained.batch;
                break;
            }
            shared.metrics.record_batch(drained.batch.len());
            let mentions: Vec<LinkedMention> =
                drained.batch.iter().map(|j| j.mention.clone()).collect();
            let started = Instant::now();
            let outcome = link_with_cache(shared, &linker, generation.id, &mentions);
            shared
                .metrics
                .record_service_us(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
            match outcome {
                Ok(results) => {
                    for (job, result) in drained.batch.into_iter().zip(results) {
                        // A dropped receiver just means the client went away.
                        let _ = job.reply.send(Reply::Done(result, Arc::clone(&generation)));
                    }
                }
                Err(e) => {
                    // Every job in the batch gets the typed failure;
                    // the worker stays up for the next drain.
                    let msg = e.to_string();
                    for job in drained.batch {
                        let _ = job.reply.send(Reply::Failed(msg.clone()));
                    }
                }
            }
        }
    }
}

/// Run one fused batch through the shared embedding cache — but only
/// when the cache belongs to this worker's generation. After a swap the
/// first current-generation worker resets the cache (stale vectors must
/// never be served); a worker still finishing on an older generation
/// skips the cache entirely rather than polluting the new one.
fn link_with_cache(
    shared: &Arc<Shared>,
    linker: &TwoStageLinker<'_>,
    generation_id: u64,
    mentions: &[LinkedMention],
) -> mb_common::Result<Vec<LinkResult>> {
    let mut guard = crate::sync::lock_recover(&shared.cache);
    if guard.generation != generation_id {
        if shared.registry.generation_id() == generation_id {
            guard.generation = generation_id;
            guard.cache = EmbedCache::new(shared.cfg.cache_capacity);
        } else {
            // Stale generation: serve cacheless.
            drop(guard);
            return linker.link_batch_cached(mentions, None);
        }
    }
    let results = linker.link_batch_cached(mentions, Some(&mut guard.cache));
    shared.metrics.set_cache_counters(guard.cache.hits(), guard.cache.misses());
    results
}

fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    // Bound blocking reads so handler threads cannot hang forever on a
    // silent peer (slow-loris); the bound is configuration, not a
    // constant, and 0 disables it.
    let _ = stream.set_read_timeout(shared.cfg.serve.read_timeout());
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let req = match read_request(&mut reader, &shared.cfg.limits) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean close between requests
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                shared.metrics.record_request();
                shared.metrics.record_response(e.status());
                let body = format!("{{\"error\":{}}}", json::escape(&e.to_string()));
                let _ = write_response_ext(
                    &mut writer,
                    e.status(),
                    "application/json",
                    body.as_bytes(),
                    true,
                    &[],
                );
                return; // framing is unreliable after a parse error
            }
        };
        shared.metrics.record_request();
        let is_shutdown = req.method == "POST" && req.path == "/admin/shutdown";
        let closing = is_shutdown || req.wants_close() || shared.shutdown.load(Ordering::SeqCst);
        let reply = route(&req, shared);
        shared.metrics.record_response(reply.status);
        let retry_after: Vec<(&str, String)> =
            reply.retry_after_s.map(|s| vec![("retry-after", s.to_string())]).unwrap_or_default();
        let written = write_response_ext(
            &mut writer,
            reply.status,
            reply.content_type,
            reply.body.as_bytes(),
            closing,
            &retry_after,
        );
        if is_shutdown {
            // Trigger only after the response is flushed: once the
            // queue closes, the process may exit (and take this
            // detached handler thread with it) before a later write
            // would reach the client.
            shared.request_shutdown();
            return;
        }
        if written.is_err() || closing {
            return;
        }
    }
}

fn route(req: &Request, shared: &Arc<Shared>) -> HttpReply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let generation = shared.registry.current();
            let body = format!(
                "{{\"status\":\"ok\",\"domain\":{},\"entities\":{},\"generation\":{}}}",
                json::escape(&generation.model.domain),
                generation.model.dictionary.len(),
                generation.id
            );
            HttpReply::json(200, body)
        }
        ("GET", "/metrics") => HttpReply {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: shared.metrics.render(&shared.gauges()),
            retry_after_s: None,
        },
        // The handler triggers the actual shutdown AFTER this response
        // is flushed (see `handle_connection`).
        ("POST", "/admin/shutdown") => {
            HttpReply::json(200, "{\"status\":\"draining\"}".to_string())
        }
        ("POST", "/admin/reload") => handle_reload(req, shared),
        ("POST", "/link") => handle_link(req, shared),
        ("GET" | "POST" | "PUT" | "DELETE" | "HEAD", _) => {
            HttpReply::json(404, "{\"error\":\"no such endpoint\"}".to_string())
        }
        _ => HttpReply::json(405, "{\"error\":\"method not allowed\"}".to_string()),
    }
}

/// `POST /admin/reload`: pull a candidate generation (body `{"path":…}`
/// overrides the configured source) and hot-swap it. A corrupt or
/// inconsistent candidate answers 409 with the old generation still
/// serving; a concurrent reload answers 503 + `Retry-After`.
fn handle_reload(req: &Request, shared: &Arc<Shared>) -> HttpReply {
    let path: Option<PathBuf> = if req.body.is_empty() {
        None
    } else {
        match json::parse(&req.body) {
            Ok(doc) => doc.get("path").and_then(Json::as_str).map(PathBuf::from),
            Err(e) => {
                return HttpReply::json(
                    400,
                    format!("{{\"error\":{}}}", json::escape(&format!("bad reload body: {e}"))),
                )
            }
        }
    };
    match shared.registry.reload(path.as_deref()) {
        Ok(id) => HttpReply::json(200, format!("{{\"status\":\"swapped\",\"generation\":{id}}}")),
        // The registry reports a reload already in flight as Error::Io
        // with this exact phrase; that one sheds rather than conflicts.
        Err(mb_common::Error::Io(msg)) if msg.contains("already in progress") => {
            HttpReply::shed(&msg, shared.cfg.serve.retry_after_s)
        }
        Err(e) => HttpReply::json(
            409,
            format!(
                "{{\"error\":{},\"generation\":{}}}",
                json::escape(&e.to_string()),
                shared.registry.generation_id()
            ),
        ),
    }
}

/// Parse a `/link` body into a mention, the answer size, and an
/// optional client deadline budget (ms).
fn parse_link_body(body: &[u8]) -> Result<(LinkedMention, usize, Option<u64>), String> {
    let doc = json::parse(body)?;
    let surface = doc
        .get("surface")
        .and_then(Json::as_str)
        .ok_or("missing string field \"surface\"")?
        .to_string();
    if surface.trim().is_empty() {
        return Err("\"surface\" must be non-empty".to_string());
    }
    let text = |key: &str| -> Result<String, String> {
        match doc.get(key) {
            None => Ok(String::new()),
            Some(v) => Ok(v.as_str().ok_or(format!("field {key:?} must be a string"))?.to_string()),
        }
    };
    let k = match doc.get("k") {
        None => 5,
        Some(v) => v.as_usize().ok_or("field \"k\" must be a non-negative integer")?,
    };
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => {
            Some(v.as_usize().ok_or("field \"deadline_ms\" must be a non-negative integer")? as u64)
        }
    };
    let mention = LinkedMention {
        left: text("left")?,
        surface,
        right: text("right")?,
        // Serving has no gold label; id 0 only marks gold in training.
        entity: EntityId(0),
        category: OverlapCategory::LowOverlap,
    };
    Ok((mention, k, deadline_ms))
}

fn handle_link(req: &Request, shared: &Arc<Shared>) -> HttpReply {
    let (mention, k, requested_deadline) = match parse_link_body(&req.body) {
        Ok(parsed) => parsed,
        Err(e) => {
            return HttpReply::json(400, format!("{{\"error\":{}}}", json::escape(&e)));
        }
    };
    let scfg = shared.cfg.serve;
    let started = Instant::now();
    let deadline = started + Duration::from_millis(scfg.clamp_deadline_ms(requested_deadline));

    // Token-style admission: bound the requests inside the server so
    // overload rejects here, fast, instead of parking handler threads.
    let Some(_permit) = shared.gate.try_acquire() else {
        shared.metrics.record_admission_rejected();
        shared.metrics.record_rejected();
        return HttpReply::shed("admission limit reached, retry later", scfg.retry_after_s);
    };

    // Early shed: if the queue already holds more batches than this
    // deadline buys at the measured drain rate, reject before queueing.
    let ewma_us = shared.metrics.service_ewma_us();
    if ewma_us > 0 {
        let batches_ahead = (shared.queue.len() / shared.cfg.max_batch.max(1)) as u64 + 1;
        let wait = Duration::from_micros(batches_ahead.saturating_mul(ewma_us));
        if started + wait > deadline {
            shared.metrics.record_deadline_shed();
            shared.metrics.record_rejected();
            return HttpReply::shed("deadline cannot be met at current load", scfg.retry_after_s);
        }
    }

    let (tx, rx) = mpsc::channel();
    match shared.queue.try_push(Job { mention, reply: tx, deadline }) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            shared.metrics.record_rejected();
            return HttpReply::shed("queue full, retry later", scfg.retry_after_s);
        }
        Err(PushError::Closed(_)) => {
            return HttpReply::shed("server is shutting down", scfg.retry_after_s);
        }
    }
    // The bound guards against a dead worker pool; in normal operation
    // (including shutdown drain) every queued job gets a reply.
    match rx.recv_timeout(scfg.reply_timeout()) {
        Ok(Reply::Done(result, generation)) => {
            shared
                .metrics
                .record_latency_us(started.elapsed().as_micros().min(u64::MAX as u128) as u64);
            HttpReply::json(200, render_result(&result, k, &generation))
        }
        Ok(Reply::Shed) => {
            HttpReply::shed("deadline exceeded while queued, retry later", scfg.retry_after_s)
        }
        Ok(Reply::Failed(msg)) => {
            HttpReply::json(500, format!("{{\"error\":{}}}", json::escape(&msg)))
        }
        Err(_) => {
            shared.metrics.record_reply_timeout();
            HttpReply::shed("no reply from worker pool", scfg.retry_after_s)
        }
    }
}

/// Render a [`LinkResult`] as the `/link` response document, with the
/// rerank-ordered top-`k` candidates, against the generation that
/// computed it (its entity ids are only meaningful in that KB).
fn render_result(result: &LinkResult, k: usize, generation: &Generation) -> String {
    // Pairing via `zip` (which truncates to the shorter side) instead
    // of parallel-array indexing keeps this panic-free even if the two
    // lists ever disagreed in length.
    let mut ranked: Vec<_> = result
        .retrieved
        .iter()
        .zip(&result.rerank_scores)
        .map(|(&(id, bi_score), &score)| (id, bi_score, score))
        .collect();
    ranked.sort_by(|a, b| b.2.total_cmp(&a.2));
    let candidates: Vec<String> = ranked
        .iter()
        .take(k)
        .map(|&(id, bi_score, score)| {
            let entity = generation.model.kb.entity(id);
            format!(
                "{{\"id\":{},\"title\":{},\"bi_score\":{},\"score\":{}}}",
                id.0,
                json::escape(&entity.title),
                json::num(bi_score),
                json::num(score)
            )
        })
        .collect();
    let predicted = match result.predicted {
        Some(id) => format!(
            "{{\"id\":{},\"title\":{}}}",
            id.0,
            json::escape(&generation.model.kb.entity(id).title)
        ),
        None => "null".to_string(),
    };
    format!(
        "{{\"domain\":{},\"generation\":{},\"predicted\":{},\"candidates\":[{}]}}",
        json::escape(&generation.model.domain),
        generation.id,
        predicted,
        candidates.join(",")
    )
}
