//! Lock-free serving metrics with fixed-bucket histograms.
//!
//! Everything is an atomic counter, so the hot path (acceptors and
//! batch workers) never takes a lock to record. Latency quantiles are
//! estimated from a fixed-bucket histogram: the reported pXX is the
//! upper bound of the bucket holding that quantile, which is exact
//! enough for dashboards and avoids retaining per-request samples.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (microseconds) of the latency histogram buckets; one
/// implicit overflow bucket follows the last bound.
pub const LATENCY_BUCKETS_US: [u64; 12] =
    [100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000];

/// Upper bounds of the batch-size histogram buckets (power-of-two
/// ranges), plus one implicit overflow bucket.
pub const BATCH_BUCKETS: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

const NLAT: usize = LATENCY_BUCKETS_US.len() + 1;
const NBATCH: usize = BATCH_BUCKETS.len() + 1;

/// Point-in-time gauges the caller samples when rendering `/metrics`
/// (queue depth from the [`crate::queue::BatchQueue`], the rest from
/// the admission gate and the model registry).
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Items currently queued.
    pub queue_depth: usize,
    /// Admission permits currently held.
    pub inflight: u64,
    /// Current model generation id.
    pub generation: u64,
    /// Successful hot swaps so far.
    pub swaps: u64,
    /// Candidate generations rejected (corrupt or inconsistent).
    pub reload_rejected: u64,
}

/// Counters exposed on `GET /metrics`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total HTTP requests parsed (any endpoint).
    requests: AtomicU64,
    /// Responses by coarse status class.
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    /// `/link` requests shed by the bounded queue (also counted 5xx).
    rejected: AtomicU64,
    /// Requests refused by the admission gate (also counted 5xx).
    admission_rejected: AtomicU64,
    /// Requests shed because their deadline could not be met (at
    /// admission estimate or queue drain; also counted 5xx).
    deadline_shed: AtomicU64,
    /// Handlers that hit the reply-timeout guard (dead worker pool).
    reply_timeouts: AtomicU64,
    /// EWMA of batch service time (µs), the drain-rate estimate the
    /// shedding policy divides deadlines by.
    service_ewma_us: AtomicU64,
    /// End-to-end `/link` latency histogram (microseconds).
    latency: [AtomicU64; NLAT],
    latency_sum_us: AtomicU64,
    latency_count: AtomicU64,
    /// Inference batch sizes.
    batch: [AtomicU64; NBATCH],
    batches: AtomicU64,
    batched_requests: AtomicU64,
    /// Mention-embedding cache counters (mirrored from the LRU).
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

fn bucket_of(bounds: &[u64], value: u64) -> usize {
    bounds.iter().position(|&b| value <= b).unwrap_or(bounds.len())
}

impl Metrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Count one parsed request.
    pub fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one response by status code.
    pub fn record_response(&self, status: u16) {
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one load-shed (503) rejection.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one admission-gate refusal.
    pub fn record_admission_rejected(&self) {
        self.admission_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one deadline-based shed.
    pub fn record_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one reply-timeout (the dead-worker-pool guard firing).
    pub fn record_reply_timeout(&self) {
        self.reply_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one batch's service time into the drain-rate EWMA
    /// (weight 1/8 — smooth enough to ignore one outlier batch, fresh
    /// enough to track a load shift within a few batches).
    pub fn record_service_us(&self, us: u64) {
        let prev = self.service_ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 { us } else { (prev * 7 + us) / 8 };
        self.service_ewma_us.store(next, Ordering::Relaxed);
    }

    /// The current batch-service EWMA (µs); 0 until a batch completes.
    pub fn service_ewma_us(&self) -> u64 {
        self.service_ewma_us.load(Ordering::Relaxed)
    }

    /// Record one end-to-end `/link` latency.
    pub fn record_latency_us(&self, us: u64) {
        // bucket_of returns at most bounds.len(), and the array has
        // bounds.len() + 1 slots, so `get` always finds a counter.
        if let Some(c) = self.latency.get(bucket_of(&LATENCY_BUCKETS_US, us)) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        self.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one drained inference batch of `size` requests.
    pub fn record_batch(&self, size: usize) {
        if let Some(c) = self.batch.get(bucket_of(&BATCH_BUCKETS, size as u64)) {
            c.fetch_add(1, Ordering::Relaxed);
        }
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Mirror the embedding cache's hit/miss counters.
    pub fn set_cache_counters(&self, hits: u64, misses: u64) {
        self.cache_hits.store(hits, Ordering::Relaxed);
        self.cache_misses.store(misses, Ordering::Relaxed);
    }

    /// Total requests seen so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Estimate the `q` quantile (0 < q ≤ 1) of recorded latencies:
    /// the upper bound of the histogram bucket containing it, in
    /// microseconds. Returns 0 when nothing was recorded.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.latency.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.latency.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Render the Prometheus-style text exposition; `gauges` carries
    /// the point-in-time values sampled by the caller at render time.
    pub fn render(&self, gauges: &Gauges) -> String {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("serve_requests_total {}\n", load(&self.requests)));
        out.push_str(&format!(
            "serve_responses_total{{class=\"2xx\"}} {}\n",
            load(&self.responses_2xx)
        ));
        out.push_str(&format!(
            "serve_responses_total{{class=\"4xx\"}} {}\n",
            load(&self.responses_4xx)
        ));
        out.push_str(&format!(
            "serve_responses_total{{class=\"5xx\"}} {}\n",
            load(&self.responses_5xx)
        ));
        out.push_str(&format!("serve_rejected_total {}\n", load(&self.rejected)));
        out.push_str(&format!(
            "serve_admission_rejected_total {}\n",
            load(&self.admission_rejected)
        ));
        out.push_str(&format!("serve_deadline_shed_total {}\n", load(&self.deadline_shed)));
        out.push_str(&format!("serve_reply_timeout_total {}\n", load(&self.reply_timeouts)));
        out.push_str(&format!("serve_queue_depth {}\n", gauges.queue_depth));
        out.push_str(&format!("serve_inflight_requests {}\n", gauges.inflight));
        out.push_str(&format!("serve_model_generation {}\n", gauges.generation));
        out.push_str(&format!("serve_model_swaps_total {}\n", gauges.swaps));
        out.push_str(&format!("serve_reload_rejected_total {}\n", gauges.reload_rejected));
        out.push_str(&format!("serve_batch_service_ewma_us {}\n", load(&self.service_ewma_us)));

        let mut cum = 0u64;
        for (i, c) in self.latency.iter().enumerate() {
            cum += load(c);
            let le = LATENCY_BUCKETS_US
                .get(i)
                .map(|b| b.to_string())
                .unwrap_or_else(|| "+Inf".to_string());
            out.push_str(&format!("serve_latency_us_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("serve_latency_us_sum {}\n", load(&self.latency_sum_us)));
        out.push_str(&format!("serve_latency_us_count {}\n", load(&self.latency_count)));
        for q in [0.5, 0.95, 0.99] {
            out.push_str(&format!(
                "serve_latency_p{:02}_us {}\n",
                (q * 100.0) as u32,
                self.latency_quantile_us(q)
            ));
        }

        let mut cum = 0u64;
        for (i, c) in self.batch.iter().enumerate() {
            cum += load(c);
            let le =
                BATCH_BUCKETS.get(i).map(|b| b.to_string()).unwrap_or_else(|| "+Inf".to_string());
            out.push_str(&format!("serve_batch_size_bucket{{le=\"{le}\"}} {cum}\n"));
        }
        out.push_str(&format!("serve_batches_total {}\n", load(&self.batches)));
        out.push_str(&format!("serve_batched_requests_total {}\n", load(&self.batched_requests)));

        let hits = load(&self.cache_hits);
        let misses = load(&self.cache_misses);
        out.push_str(&format!("serve_cache_hits_total {hits}\n"));
        out.push_str(&format!("serve_cache_misses_total {misses}\n"));
        let rate = if hits + misses == 0 { 0.0 } else { hits as f64 / (hits + misses) as f64 };
        out.push_str(&format!("serve_cache_hit_rate {rate:.6}\n"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_come_from_bucket_bounds() {
        let m = Metrics::new();
        for _ in 0..90 {
            m.record_latency_us(80); // bucket ≤100
        }
        for _ in 0..10 {
            m.record_latency_us(40_000); // bucket ≤50_000
        }
        assert_eq!(m.latency_quantile_us(0.5), 100);
        assert_eq!(m.latency_quantile_us(0.95), 50_000);
        assert_eq!(m.latency_quantile_us(0.99), 50_000);
    }

    #[test]
    fn render_is_non_empty_and_consistent() {
        let m = Metrics::new();
        m.record_request();
        m.record_response(200);
        m.record_batch(3);
        m.record_latency_us(700);
        m.set_cache_counters(3, 1);
        let gauges =
            Gauges { queue_depth: 2, inflight: 1, generation: 3, swaps: 2, reload_rejected: 1 };
        let text = m.render(&gauges);
        assert!(text.contains("serve_requests_total 1"));
        assert!(text.contains("serve_queue_depth 2"));
        assert!(text.contains("serve_inflight_requests 1"));
        assert!(text.contains("serve_model_generation 3"));
        assert!(text.contains("serve_model_swaps_total 2"));
        assert!(text.contains("serve_reload_rejected_total 1"));
        assert!(text.contains("serve_batch_size_bucket{le=\"4\"} 1"));
        assert!(text.contains("serve_cache_hit_rate 0.75"));
    }

    #[test]
    fn shedding_counters_render() {
        let m = Metrics::new();
        m.record_admission_rejected();
        m.record_deadline_shed();
        m.record_deadline_shed();
        m.record_reply_timeout();
        let text = m.render(&Gauges::default());
        assert!(text.contains("serve_admission_rejected_total 1"));
        assert!(text.contains("serve_deadline_shed_total 2"));
        assert!(text.contains("serve_reply_timeout_total 1"));
    }

    #[test]
    fn service_ewma_smooths_toward_new_samples() {
        let m = Metrics::new();
        assert_eq!(m.service_ewma_us(), 0);
        m.record_service_us(800);
        assert_eq!(m.service_ewma_us(), 800, "first sample seeds the EWMA");
        m.record_service_us(1_600);
        assert_eq!(m.service_ewma_us(), 900, "(800*7 + 1600) / 8");
        assert!(m.render(&Gauges::default()).contains("serve_batch_service_ewma_us 900"));
    }

    #[test]
    fn overflow_latency_lands_in_inf_bucket() {
        let m = Metrics::new();
        m.record_latency_us(10_000_000);
        assert_eq!(m.latency_quantile_us(0.5), u64::MAX);
        assert!(m.render(&Gauges::default()).contains("serve_latency_us_bucket{le=\"+Inf\"} 1"));
    }
}
