//! # mb-serve
//!
//! Production inference serving for metablink-rs: a std-only HTTP/1.1
//! server answering `POST /link` with two-stage entity linking, built
//! around an **adaptive micro-batching engine**.
//!
//! Why batching is the whole game: every un-batched forward pass pays
//! a fixed tape-construction cost (cloning all parameter tensors into
//! the autodiff tape, including the token-embedding tables) before the
//! first multiply. The [`queue::BatchQueue`] lingers up to
//! `max_delay_us` after a request arrives, fuses up to `max_batch`
//! concurrent requests into **one**
//! [`mb_core::linker::TwoStageLinker::link_batch_cached`] call, and
//! amortizes that cost across all of them. Because every tensor op on
//! the inference path is row-independent, batched responses are
//! bit-identical to sequential [`mb_core::linker::TwoStageLinker::link`]
//! calls — serving never changes model outputs.
//!
//! The HTTP layer ([`http`]) and JSON layer ([`json`]) are hand-rolled
//! (the workspace is hermetic — no external crates) and hardened
//! against malformed network input by property tests. Production
//! affordances: `GET /healthz`, `GET /metrics` (latency and batch-size
//! histograms, cache hit rate, queue depth), bounded-queue
//! backpressure (503), a mention-embedding LRU, and graceful drain on
//! `POST /admin/shutdown`.
//!
//! ```no_run
//! use mb_serve::{ServeModel, Server, ServerConfig};
//! # fn model() -> ServeModel { unimplemented!() }
//! let server = Server::start(model(), ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! server.join(); // until POST /admin/shutdown
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod http;
pub mod json;
pub mod metrics;
pub mod model;
pub mod queue;
pub mod registry;
pub mod server;
pub(crate) mod sync;

pub use config::ServeConfig;
pub use model::ServeModel;
pub use registry::{Generation, ModelLoader, ModelRegistry};
pub use server::{Server, ServerConfig};
