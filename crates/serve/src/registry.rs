//! Versioned model registry with atomic hot swap.
//!
//! A [`Generation`] bundles one validated [`ServeModel`] with the
//! retrieval index built from it; the [`ModelRegistry`] owns the
//! current generation behind an `Arc` and swaps it atomically. The
//! swap protocol (DESIGN.md §13):
//!
//! 1. **Load off the request path.** [`ModelRegistry::reload`] runs on
//!    the caller's thread (an admin-request handler or the source
//!    watcher), never on a batch worker. The candidate checkpoint is
//!    read through the `mb-params v2` loader, whose per-section CRCs
//!    reject torn or bit-flipped files.
//! 2. **Validate before publishing.** Building a [`Generation`]
//!    constructs the dense index, the quantized tables, and a
//!    throwaway [`TwoStageLinker`] — the same fail-fast check the
//!    server start-up runs. A candidate that fails *any* of this is
//!    rejected; the old generation keeps serving untouched.
//! 3. **Swap one pointer.** Publishing replaces the `Arc<Generation>`
//!    under a mutex held for the duration of a pointer write. Workers
//!    re-resolve the current generation between batches; handlers
//!    render each response with the generation that actually computed
//!    it, so a reply is never mixed across generations.
//!
//! Reloads are serialized by an atomic flag rather than a lock so an
//! in-progress reload answers `503 + Retry-After` instead of queueing
//! admin requests behind an index build.

use crate::model::ServeModel;
use mb_common::{Error, Result};
use mb_core::linker::TwoStageLinker;
use mb_encoders::retrieval::{CandidateSource, DenseIndex, QuantizedIndex};
use mb_store::{EntityStore, IvfConfig, IvfIndex, Threads, IVF_FILE, MANIFEST};
use mb_tensor::Tensor;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Subdirectory of a reload source that, when it holds a store
/// manifest, switches the generation to sharded-store retrieval.
pub const STORE_SUBDIR: &str = "store";

/// Loads a candidate [`ServeModel`] from a checkpoint path. The closure
/// owns whatever context rebuilding a model needs (vocab, KB, encoder
/// configs); the registry only cares that corrupt inputs come back as
/// `Err`.
pub type ModelLoader = Box<dyn Fn(&Path) -> Result<ServeModel> + Send + Sync>;

/// One immutable published model generation: the model plus the
/// retrieval index built and validated from it. Workers and handlers
/// hold it via `Arc`, so an old generation stays alive exactly as long
/// as requests still riding it.
pub struct Generation {
    /// Monotonic generation number (1 = the model the server started
    /// with).
    pub id: u64,
    /// Where this generation came from (checkpoint path or a label).
    pub source: String,
    /// The servable model bundle.
    pub model: ServeModel,
    /// Dense retrieval index over the model's dictionary (empty when
    /// the generation retrieves from a sharded store instead).
    pub index: Arc<DenseIndex>,
    /// Quantized retrieval tables (`None` under exact scoring). For a
    /// store-backed generation these are assembled **from the shard
    /// sections byte-for-byte** — start-up and reload never re-quantize
    /// embeddings.
    pub qindex: Option<Arc<QuantizedIndex>>,
    /// The sharded entity store backing this generation, when any.
    pub store: Option<Arc<EntityStore>>,
    /// Deterministic IVF index over `store` (stage-one retrieval).
    pub ann: Option<Arc<IvfIndex>>,
}

impl Generation {
    /// Build and validate a generation: construct the retrieval index
    /// and prove a linker can be assembled — the same check
    /// server start-up performs, so a corrupt candidate is rejected
    /// here instead of failing per request after a swap.
    ///
    /// # Errors
    /// Index- or model-consistency errors from
    /// [`TwoStageLinker::with_frozen`].
    pub fn build(id: u64, source: String, model: ServeModel) -> Result<Generation> {
        let index = Arc::new(DenseIndex::try_build(
            &model.bi,
            &model.vocab,
            &model.linker.input,
            &model.kb,
            &model.dictionary,
        )?);
        let qindex = QuantizedIndex::from_dense(&index, model.linker.quant).map(Arc::new);
        TwoStageLinker::with_frozen(
            &model.bi,
            &model.cross,
            &model.vocab,
            &model.kb,
            model.linker,
            Arc::clone(&index),
            qindex.clone(),
            model.frozen_bi().clone(),
            model.frozen_cross().clone(),
        )?;
        Ok(Generation { id, source, model, index, qindex, store: None, ann: None })
    }

    /// Build a generation whose stage-one retrieval reads from a
    /// sharded [`EntityStore`] at `store_dir` instead of re-embedding
    /// the dictionary:
    ///
    /// - the quantized tables are assembled from the shard sections
    ///   byte-for-byte ([`EntityStore::quantized_index`]), so the swap
    ///   never re-quantizes;
    /// - the IVF index is loaded from `store_dir/IVF` when present and
    ///   otherwise built deterministically with a size-scaled config;
    /// - the same throwaway-linker validation as [`Generation::build`]
    ///   runs, with the ANN source attached, before anything is
    ///   published.
    ///
    /// # Errors
    /// Corrupt store or IVF files ([`Error::Checkpoint`]), geometry
    /// mismatches between the store and the model, or linker validation
    /// failures.
    pub fn with_store(
        id: u64,
        source: String,
        model: ServeModel,
        store_dir: &Path,
    ) -> Result<Generation> {
        let store = Arc::new(EntityStore::open(store_dir)?);
        let out_dim = model.bi.config().out_dim;
        if store.dim() != out_dim {
            return Err(Error::shape(
                "Generation::with_store",
                format!("store dim == model out_dim ({out_dim})"),
                format!("store dim {}", store.dim()),
            ));
        }
        if store.len() > model.kb.len() {
            return Err(Error::Checkpoint(format!(
                "store holds {} entities but the model KB resolves only {}",
                store.len(),
                model.kb.len()
            )));
        }
        let qindex = Some(Arc::new(store.quantized_index()?));
        // Store-backed generations keep an *empty* dense index: every
        // retrieval goes through the ANN source, and `with_frozen`
        // accepts an empty index without a dimension check.
        let index =
            Arc::new(DenseIndex::try_from_vectors(Tensor::zeros(vec![0, out_dim]), Vec::new())?);
        let ivf_path = store_dir.join(IVF_FILE);
        let ann = if ivf_path.is_file() {
            Arc::new(IvfIndex::load(&ivf_path, Arc::clone(&store))?)
        } else {
            Arc::new(IvfIndex::build(
                Arc::clone(&store),
                Self::scaled_ivf(store.len()),
                Threads::default(),
            )?)
        };
        TwoStageLinker::with_frozen(
            &model.bi,
            &model.cross,
            &model.vocab,
            &model.kb,
            model.linker,
            Arc::clone(&index),
            qindex.clone(),
            model.frozen_bi().clone(),
            model.frozen_cross().clone(),
        )?
        .with_ann(Arc::clone(&ann) as Arc<dyn CandidateSource>)?;
        Ok(Generation { id, source, model, index, qindex, store: Some(store), ann: Some(ann) })
    }

    /// The ANN candidate source for worker linkers, when this
    /// generation is store-backed.
    pub fn ann_source(&self) -> Option<Arc<dyn CandidateSource>> {
        self.ann.clone().map(|a| a as Arc<dyn CandidateSource>)
    }

    /// Size-scaled IVF defaults for a store shipped without a prebuilt
    /// `IVF` file: `nlist ≈ √n`, `nprobe = nlist / 8`, both clamped so
    /// tiny fixtures stay exact-ish and huge stores stay bounded.
    fn scaled_ivf(n: usize) -> IvfConfig {
        let nlist = (n as f64).sqrt().ceil() as usize;
        let nlist = nlist.clamp(1, 4096);
        let nprobe = (nlist / 8).max(1);
        IvfConfig { nlist, nprobe, ..IvfConfig::default() }
    }
}

/// The registry: current generation, swap bookkeeping, and an optional
/// loader for pulling new generations from disk.
pub struct ModelRegistry {
    current: Mutex<Arc<Generation>>,
    /// Mirror of `current.id` readable without the lock (workers check
    /// it between batches).
    generation_id: AtomicU64,
    loader: Option<ModelLoader>,
    source: Option<PathBuf>,
    /// Serializes reloads; a losing caller sheds instead of queueing.
    reloading: AtomicBool,
    swaps: AtomicU64,
    rejected: AtomicU64,
}

impl ModelRegistry {
    /// A registry serving `model` as generation 1, with no reload
    /// source (`POST /admin/reload` then answers 409).
    ///
    /// # Errors
    /// Validation errors from [`Generation::build`].
    pub fn new(model: ServeModel) -> Result<ModelRegistry> {
        Self::with_source(model, None, None)
    }

    /// A registry whose `POST /admin/reload` (and source watcher, when
    /// enabled) pulls candidate generations from `source` via `loader`.
    ///
    /// # Errors
    /// Validation errors from [`Generation::build`].
    pub fn with_loader(
        model: ServeModel,
        source: PathBuf,
        loader: ModelLoader,
    ) -> Result<ModelRegistry> {
        Self::with_source(model, Some(source), Some(loader))
    }

    fn with_source(
        model: ServeModel,
        source: Option<PathBuf>,
        loader: Option<ModelLoader>,
    ) -> Result<ModelRegistry> {
        let label = source
            .as_ref()
            .map(|p| p.to_string_lossy().into_owned())
            .unwrap_or_else(|| "startup".to_string());
        let generation = Arc::new(Generation::build(1, label, model)?);
        Ok(ModelRegistry {
            generation_id: AtomicU64::new(generation.id),
            current: Mutex::new(generation),
            loader,
            source,
            reloading: AtomicBool::new(false),
            swaps: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        })
    }

    /// The generation currently serving. In-flight requests keep their
    /// own `Arc`, so this is only a pointer clone.
    pub fn current(&self) -> Arc<Generation> {
        Arc::clone(&crate::sync::lock_recover(&self.current))
    }

    /// The current generation id without taking the lock.
    pub fn generation_id(&self) -> u64 {
        self.generation_id.load(Ordering::Acquire)
    }

    /// Successful swaps so far (excludes generation 1).
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Candidate generations rejected by validation so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Whether a reload source is configured.
    pub fn has_source(&self) -> bool {
        self.loader.is_some() && self.source.is_some()
    }

    /// The configured reload source path, when present.
    pub fn source(&self) -> Option<&Path> {
        self.source.as_deref()
    }

    /// Validate `model` and atomically publish it as the next
    /// generation. On error the current generation is untouched.
    ///
    /// # Errors
    /// [`Error::Io`] when another reload is already in flight (shed and
    /// retry); validation errors from [`Generation::build`].
    pub fn publish(&self, model: ServeModel, source: String) -> Result<u64> {
        if self.reloading.swap(true, Ordering::AcqRel) {
            return Err(Error::Io("a model reload is already in progress".to_string()));
        }
        let result = self.publish_locked(model, source, None);
        self.reloading.store(false, Ordering::Release);
        result
    }

    /// The sharded-store directory a reload from `path` should bind,
    /// when one is present: `<dir>/store/MANIFEST` next to the
    /// checkpoint (where `<dir>` is `path` itself for a directory
    /// source, its parent otherwise).
    fn store_dir_for(path: &Path) -> Option<PathBuf> {
        let base = if path.is_dir() { path } else { path.parent()? };
        let dir = base.join(STORE_SUBDIR);
        dir.join(MANIFEST).is_file().then_some(dir)
    }

    /// Load a candidate from `path` (default: the configured source)
    /// through the registry's loader, then publish it. Corrupt or
    /// inconsistent candidates are rejected with the old generation
    /// still serving.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] for no configured loader or a corrupt
    /// candidate; [`Error::Io`] when a reload is already in flight.
    pub fn reload(&self, path: Option<&Path>) -> Result<u64> {
        let Some(loader) = self.loader.as_ref() else {
            return Err(Error::Checkpoint("no reload source configured".to_string()));
        };
        let Some(path) = path.or(self.source.as_deref()) else {
            return Err(Error::Checkpoint("no reload source configured".to_string()));
        };
        if self.reloading.swap(true, Ordering::AcqRel) {
            return Err(Error::Io("a model reload is already in progress".to_string()));
        }
        // Load + validate run here, on the admin/watcher thread, with
        // the old generation still serving every request.
        let result = loader(path)
            .inspect_err(|_| {
                self.rejected.fetch_add(1, Ordering::Relaxed);
            })
            .and_then(|model| {
                self.publish_locked(
                    model,
                    path.to_string_lossy().into_owned(),
                    Self::store_dir_for(path),
                )
            });
        self.reloading.store(false, Ordering::Release);
        result
    }

    /// The swap itself; caller holds the `reloading` flag.
    fn publish_locked(
        &self,
        model: ServeModel,
        source: String,
        store_dir: Option<PathBuf>,
    ) -> Result<u64> {
        let next_id = self.generation_id.load(Ordering::Acquire) + 1;
        let built = match store_dir {
            Some(dir) => Generation::with_store(next_id, source, model, &dir),
            None => Generation::build(next_id, source, model),
        };
        let generation = match built {
            Ok(g) => Arc::new(g),
            Err(e) => {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(e);
            }
        };
        // Atomic swap: one pointer write under the lock. Readers that
        // already cloned the old Arc finish on the old generation.
        *crate::sync::lock_recover(&self.current) = generation;
        self.generation_id.store(next_id, Ordering::Release);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(next_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mb_common::Rng;
    use mb_core::linker::LinkerConfig;
    use mb_datagen::{World, WorldConfig};
    use mb_encoders::biencoder::{BiEncoder, BiEncoderConfig};
    use mb_encoders::crossencoder::{CrossEncoder, CrossEncoderConfig};
    use mb_encoders::input::build_vocab;

    fn model(seed: u64) -> ServeModel {
        let world = World::generate(WorldConfig::tiny(91));
        let vocab = build_vocab(world.kb(), [], 1);
        let domain = world.domain("TargetX").clone();
        let bi_cfg = BiEncoderConfig { emb_dim: 16, hidden: 16, out_dim: 16, ..Default::default() };
        let cross_cfg = CrossEncoderConfig { emb_dim: 16, hidden: 16, ..Default::default() };
        let bi = BiEncoder::new(&vocab, bi_cfg, &mut Rng::seed_from_u64(seed));
        let cross = CrossEncoder::new(&vocab, cross_cfg, &mut Rng::seed_from_u64(seed + 1));
        ServeModel::new(
            vocab,
            world.kb().clone(),
            world.kb().domain_entities(domain.id).to_vec(),
            bi,
            cross,
            LinkerConfig::default(),
            domain.name.clone(),
        )
    }

    #[test]
    fn starts_at_generation_one_and_publishes_monotonically() {
        let registry = ModelRegistry::new(model(1)).expect("valid model");
        assert_eq!(registry.generation_id(), 1);
        assert_eq!(registry.current().id, 1);
        let id = registry.publish(model(2), "test".to_string()).expect("valid candidate");
        assert_eq!(id, 2);
        assert_eq!(registry.generation_id(), 2);
        assert_eq!(registry.current().id, 2);
        assert_eq!(registry.swaps(), 1);
        assert_eq!(registry.rejected(), 0);
    }

    #[test]
    fn old_generation_survives_for_holders_across_a_swap() {
        let registry = ModelRegistry::new(model(1)).expect("valid model");
        let held = registry.current();
        registry.publish(model(2), "test".to_string()).expect("swap");
        // The held Arc still serves the old generation's KB and index.
        assert_eq!(held.id, 1);
        assert!(!held.model.dictionary.is_empty());
        assert_eq!(registry.current().id, 2);
    }

    #[test]
    fn reload_without_a_source_is_rejected() {
        let registry = ModelRegistry::new(model(1)).expect("valid model");
        assert!(!registry.has_source());
        let err = registry.reload(None).unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)), "got {err:?}");
        assert_eq!(registry.generation_id(), 1);
    }

    #[test]
    fn failing_loader_leaves_the_old_generation_serving() {
        let loader: ModelLoader =
            Box::new(|_| Err(Error::Checkpoint("corrupt candidate".to_string())));
        let registry = ModelRegistry::with_loader(model(1), PathBuf::from("nowhere.mbc"), loader)
            .expect("valid model");
        let err = registry.reload(None).unwrap_err();
        assert!(matches!(err, Error::Checkpoint(_)), "got {err:?}");
        assert_eq!(registry.generation_id(), 1, "old generation keeps serving");
        assert_eq!(registry.rejected(), 1);
        assert_eq!(registry.swaps(), 0);
    }
}
